// Direct unit tests for the Design-2 IPC substrate (src/ipc): the
// shared-memory channel of Section 4.1 and the executor protocol layered on
// it. designs_test.cc exercises these end-to-end through SQL; here each
// channel behavior is pinned down in isolation — message-type round-trips,
// payloads at exactly the fixed capacity, oversized rejection, the
// callback-suspends-request interleaving, and the shutdown handshake.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "ipc/remote_executor.h"
#include "ipc/shm_channel.h"
#include "obs/metrics.h"

namespace jaguar {
namespace {

using ipc::MsgType;
using ipc::ShmChannel;

// The semaphores simply count, so a single process can play both ends: post
// with SendToChild, collect with ReceiveInChild. That keeps the pure
// message-format tests fork-free.

TEST(ShmChannelUnitTest, RoundTripEveryMsgType) {
  auto channel = ShmChannel::Create(256).value();
  const MsgType kAll[] = {MsgType::kRequest,       MsgType::kCallbackRequest,
                          MsgType::kCallbackReply, MsgType::kResult,
                          MsgType::kError,         MsgType::kShutdown};
  for (MsgType type : kAll) {
    std::string payload = "t" + std::to_string(static_cast<uint32_t>(type));
    ASSERT_TRUE(channel->SendToChild(type, Slice(payload)).ok());
    auto down = channel->ReceiveInChild().value();
    EXPECT_EQ(down.first, type);
    EXPECT_EQ(Slice(down.second).ToString(), payload);

    ASSERT_TRUE(channel->SendToParent(type, Slice(payload)).ok());
    auto up = channel->ReceiveInParent().value();
    EXPECT_EQ(up.first, type);
    EXPECT_EQ(Slice(up.second).ToString(), payload);
  }
}

TEST(ShmChannelUnitTest, PayloadAtExactCapacityRoundTrips) {
  constexpr size_t kCapacity = 128;
  auto channel = ShmChannel::Create(kCapacity).value();
  EXPECT_EQ(channel->data_capacity(), kCapacity);

  std::vector<uint8_t> payload(kCapacity);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice(payload)).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(msg.second, payload);  // every byte intact at the boundary
}

TEST(ShmChannelUnitTest, OversizedPayloadRejectedInBothDirections) {
  auto channel = ShmChannel::Create(64).value();
  std::vector<uint8_t> big(65);
  EXPECT_TRUE(channel->SendToChild(MsgType::kRequest, Slice(big))
                  .IsInvalidArgument());
  EXPECT_TRUE(channel->SendToParent(MsgType::kResult, Slice(big))
                  .IsInvalidArgument());
  // The failed send must not have posted: the channel stays usable and the
  // next receive sees only the good message.
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("ok")).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(Slice(msg.second).ToString(), "ok");
}

TEST(ShmChannelUnitTest, EmptyPayloadIsLegal) {
  auto channel = ShmChannel::Create(16).value();
  ASSERT_TRUE(channel->SendToChild(MsgType::kShutdown, Slice()).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(msg.first, MsgType::kShutdown);
  EXPECT_TRUE(msg.second.empty());
}

TEST(ShmChannelUnitTest, ReceiveTimesOutOnSilentPeer) {
  auto channel = ShmChannel::Create(16).value();
  channel->set_timeout_seconds(1);
  Result<std::pair<MsgType, std::vector<uint8_t>>> r =
      channel->ReceiveInParent();
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(ShmChannelUnitTest, SendIsCountedInMetrics) {
  auto channel = ShmChannel::Create(64).value();
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
  obs::MetricsSnapshot before = reg->Snapshot("ipc.shm.");
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("12345")).ok());
  ASSERT_TRUE(channel->SendToParent(MsgType::kResult, Slice("123")).ok());
  obs::MetricsSnapshot delta =
      obs::SnapshotDelta(before, reg->Snapshot("ipc.shm."));
  EXPECT_GE(delta.at("ipc.shm.messages"), 2u);
  EXPECT_GE(delta.at("ipc.shm.payload_bytes"), 8u);
  (void)channel->ReceiveInChild();
  (void)channel->ReceiveInParent();
}

// ---------------------------------------------------------------------------
// Cross-process: callback interleaving and shutdown
// ---------------------------------------------------------------------------

TEST(ShmChannelUnitTest, CallbackSuspendsRequestUntilReplied) {
  // The Section 4.1 interleaving: the child starts a request, issues a
  // callback, and must not produce its result until the parent replies. The
  // child proves the ordering by folding the callback reply into the result.
  auto channel = ShmChannel::Create(4096).value();
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto req = channel->ReceiveInChild();
    if (!req.ok() || req->first != MsgType::kRequest) _exit(1);
    if (!channel->SendToParent(MsgType::kCallbackRequest, Slice("need"))
             .ok()) {
      _exit(2);
    }
    auto reply = channel->ReceiveInChild();
    if (!reply.ok() || reply->first != MsgType::kCallbackReply) _exit(3);
    std::string result = Slice(req->second).ToString() + "+" +
                         Slice(reply->second).ToString();
    if (!channel->SendToParent(MsgType::kResult, Slice(result)).ok()) _exit(4);
    _exit(0);
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("work")).ok());
  // First message up is the callback — the request is suspended, not done.
  auto up = channel->ReceiveInParent().value();
  ASSERT_EQ(up.first, MsgType::kCallbackRequest);
  EXPECT_EQ(Slice(up.second).ToString(), "need");
  ASSERT_TRUE(
      channel->SendToChild(MsgType::kCallbackReply, Slice("answer")).ok());
  auto result = channel->ReceiveInParent().value();
  EXPECT_EQ(result.first, MsgType::kResult);
  EXPECT_EQ(Slice(result.second).ToString(), "work+answer");
  int status;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ShmChannelUnitTest, ShutdownHandshakeReapsChildCleanly) {
  auto channel = ShmChannel::Create(1024).value();
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    while (true) {
      auto msg = channel->ReceiveInChild();
      if (!msg.ok()) _exit(7);
      if (msg->first == MsgType::kShutdown) _exit(0);
      channel->SendToParent(MsgType::kResult, Slice(msg->second)).ok();
    }
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("ping")).ok());
  EXPECT_EQ(Slice(channel->ReceiveInParent().value().second).ToString(),
            "ping");
  ASSERT_TRUE(channel->SendToChild(MsgType::kShutdown, Slice()).ok());
  int status;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(RemoteExecutorUnitTest, ShutdownIsIdempotentAndDtorSafe) {
  auto handler = [](Slice request,
                    ipc::ShmChannel*) -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>(request.data(),
                                request.data() + request.size());
  };
  auto executor = ipc::RemoteExecutor::Spawn(1024, handler).value();
  auto echo = executor
                  ->Execute(Slice("abc"),
                            [](Slice) -> Result<std::vector<uint8_t>> {
                              return Internal("no callbacks expected");
                            })
                  .value();
  EXPECT_EQ(Slice(echo).ToString(), "abc");
  ASSERT_TRUE(executor->Shutdown().ok());
  EXPECT_TRUE(executor->Shutdown().ok());  // second shutdown: no-op
  executor.reset();                        // dtor after explicit shutdown
}

}  // namespace
}  // namespace jaguar
