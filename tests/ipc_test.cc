// Direct unit tests for the Design-2 IPC substrate (src/ipc): the
// shared-memory channel of Section 4.1 and the executor protocol layered on
// it. designs_test.cc exercises these end-to-end through SQL; here each
// channel behavior is pinned down in isolation — message-type round-trips,
// payloads at exactly the fixed capacity, oversized rejection, the
// callback-suspends-request interleaving, and the shutdown handshake.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "ipc/remote_executor.h"
#include "ipc/ring_channel.h"
#include "ipc/shm_channel.h"
#include "obs/metrics.h"

namespace jaguar {
namespace {

using ipc::MsgType;
using ipc::RingChannel;
using ipc::ShmChannel;

// The semaphores simply count, so a single process can play both ends: post
// with SendToChild, collect with ReceiveInChild. That keeps the pure
// message-format tests fork-free.

TEST(ShmChannelUnitTest, RoundTripEveryMsgType) {
  auto channel = ShmChannel::Create(256).value();
  const MsgType kAll[] = {MsgType::kRequest,       MsgType::kCallbackRequest,
                          MsgType::kCallbackReply, MsgType::kResult,
                          MsgType::kError,         MsgType::kShutdown};
  for (MsgType type : kAll) {
    std::string payload = "t" + std::to_string(static_cast<uint32_t>(type));
    ASSERT_TRUE(channel->SendToChild(type, Slice(payload)).ok());
    auto down = channel->ReceiveInChild().value();
    EXPECT_EQ(down.first, type);
    EXPECT_EQ(Slice(down.second).ToString(), payload);

    ASSERT_TRUE(channel->SendToParent(type, Slice(payload)).ok());
    auto up = channel->ReceiveInParent().value();
    EXPECT_EQ(up.first, type);
    EXPECT_EQ(Slice(up.second).ToString(), payload);
  }
}

TEST(ShmChannelUnitTest, PayloadAtExactCapacityRoundTrips) {
  constexpr size_t kCapacity = 128;
  auto channel = ShmChannel::Create(kCapacity).value();
  EXPECT_EQ(channel->data_capacity(), kCapacity);

  std::vector<uint8_t> payload(kCapacity);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice(payload)).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(msg.second, payload);  // every byte intact at the boundary
}

TEST(ShmChannelUnitTest, OversizedPayloadRejectedInBothDirections) {
  auto channel = ShmChannel::Create(64).value();
  std::vector<uint8_t> big(65);
  EXPECT_TRUE(channel->SendToChild(MsgType::kRequest, Slice(big))
                  .IsInvalidArgument());
  EXPECT_TRUE(channel->SendToParent(MsgType::kResult, Slice(big))
                  .IsInvalidArgument());
  // The failed send must not have posted: the channel stays usable and the
  // next receive sees only the good message.
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("ok")).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(Slice(msg.second).ToString(), "ok");
}

TEST(ShmChannelUnitTest, EmptyPayloadIsLegal) {
  auto channel = ShmChannel::Create(16).value();
  ASSERT_TRUE(channel->SendToChild(MsgType::kShutdown, Slice()).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(msg.first, MsgType::kShutdown);
  EXPECT_TRUE(msg.second.empty());
}

TEST(ShmChannelUnitTest, ReceiveTimesOutOnSilentPeer) {
  auto channel = ShmChannel::Create(16).value();
  channel->set_timeout_seconds(1);
  Result<std::pair<MsgType, std::vector<uint8_t>>> r =
      channel->ReceiveInParent();
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(ShmChannelUnitTest, SendIsCountedInMetrics) {
  auto channel = ShmChannel::Create(64).value();
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
  obs::MetricsSnapshot before = reg->Snapshot("ipc.shm.");
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("12345")).ok());
  ASSERT_TRUE(channel->SendToParent(MsgType::kResult, Slice("123")).ok());
  obs::MetricsSnapshot delta =
      obs::SnapshotDelta(before, reg->Snapshot("ipc.shm."));
  EXPECT_GE(delta.at("ipc.shm.messages"), 2u);
  EXPECT_GE(delta.at("ipc.shm.payload_bytes"), 8u);
  (void)channel->ReceiveInChild();
  (void)channel->ReceiveInParent();
}

// ---------------------------------------------------------------------------
// Cross-process: callback interleaving and shutdown
// ---------------------------------------------------------------------------

TEST(ShmChannelUnitTest, CallbackSuspendsRequestUntilReplied) {
  // The Section 4.1 interleaving: the child starts a request, issues a
  // callback, and must not produce its result until the parent replies. The
  // child proves the ordering by folding the callback reply into the result.
  auto channel = ShmChannel::Create(4096).value();
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto req = channel->ReceiveInChild();
    if (!req.ok() || req->first != MsgType::kRequest) _exit(1);
    if (!channel->SendToParent(MsgType::kCallbackRequest, Slice("need"))
             .ok()) {
      _exit(2);
    }
    auto reply = channel->ReceiveInChild();
    if (!reply.ok() || reply->first != MsgType::kCallbackReply) _exit(3);
    std::string result = Slice(req->second).ToString() + "+" +
                         Slice(reply->second).ToString();
    if (!channel->SendToParent(MsgType::kResult, Slice(result)).ok()) _exit(4);
    _exit(0);
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("work")).ok());
  // First message up is the callback — the request is suspended, not done.
  auto up = channel->ReceiveInParent().value();
  ASSERT_EQ(up.first, MsgType::kCallbackRequest);
  EXPECT_EQ(Slice(up.second).ToString(), "need");
  ASSERT_TRUE(
      channel->SendToChild(MsgType::kCallbackReply, Slice("answer")).ok());
  auto result = channel->ReceiveInParent().value();
  EXPECT_EQ(result.first, MsgType::kResult);
  EXPECT_EQ(Slice(result.second).ToString(), "work+answer");
  int status;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ShmChannelUnitTest, ShutdownHandshakeReapsChildCleanly) {
  auto channel = ShmChannel::Create(1024).value();
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    while (true) {
      auto msg = channel->ReceiveInChild();
      if (!msg.ok()) _exit(7);
      if (msg->first == MsgType::kShutdown) _exit(0);
      channel->SendToParent(MsgType::kResult, Slice(msg->second)).ok();
    }
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("ping")).ok());
  EXPECT_EQ(Slice(channel->ReceiveInParent().value().second).ToString(),
            "ping");
  ASSERT_TRUE(channel->SendToChild(MsgType::kShutdown, Slice()).ok());
  int status;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------------
// Ring transport
// ---------------------------------------------------------------------------

TEST(RingChannelUnitTest, FactorySelectsTransportAndRejectsUnknownNames) {
  auto ring = ipc::Channel::Create(ipc::Transport::kRing, 256).value();
  EXPECT_STREQ(ring->transport_name(), "ring");
  EXPECT_TRUE(ring->zero_copy());
  EXPECT_EQ(ring->send_queue_depth(), 2u);

  auto message = ipc::Channel::Create(ipc::Transport::kMessage, 256).value();
  EXPECT_STREQ(message->transport_name(), "message");
  EXPECT_FALSE(message->zero_copy());
  EXPECT_EQ(message->send_queue_depth(), 1u);

  EXPECT_EQ(ipc::ParseTransport("ring").value(), ipc::Transport::kRing);
  EXPECT_EQ(ipc::ParseTransport("message").value(), ipc::Transport::kMessage);
  EXPECT_TRUE(ipc::ParseTransport("carrier-pigeon").status()
                  .IsInvalidArgument());
}

TEST(RingChannelUnitTest, RoundTripEveryMsgType) {
  auto channel = RingChannel::Create(256).value();
  const MsgType kAll[] = {MsgType::kRequest,       MsgType::kCallbackRequest,
                          MsgType::kCallbackReply, MsgType::kResult,
                          MsgType::kError,         MsgType::kShutdown};
  for (MsgType type : kAll) {
    std::string payload = "t" + std::to_string(static_cast<uint32_t>(type));
    ASSERT_TRUE(channel->SendToChild(type, Slice(payload)).ok());
    auto down = channel->ReceiveInChild().value();
    EXPECT_EQ(down.first, type);
    EXPECT_EQ(Slice(down.second).ToString(), payload);

    ASSERT_TRUE(channel->SendToParent(type, Slice(payload)).ok());
    auto up = channel->ReceiveInParent().value();
    EXPECT_EQ(up.first, type);
    EXPECT_EQ(Slice(up.second).ToString(), payload);
  }
}

TEST(RingChannelUnitTest, PayloadAtExactCapacityRoundTrips) {
  constexpr size_t kCapacity = 128;
  auto channel = RingChannel::Create(kCapacity).value();
  EXPECT_EQ(channel->data_capacity(), kCapacity);

  std::vector<uint8_t> payload(kCapacity);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice(payload)).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(msg.second, payload);
}

TEST(RingChannelUnitTest, OversizedPayloadRejectedInBothDirections) {
  auto channel = RingChannel::Create(64).value();
  std::vector<uint8_t> big(65);
  EXPECT_TRUE(channel->SendToChild(MsgType::kRequest, Slice(big))
                  .IsInvalidArgument());
  EXPECT_TRUE(channel->SendToParent(MsgType::kResult, Slice(big))
                  .IsInvalidArgument());
  EXPECT_TRUE(channel->PrepareToChild(65).status().IsInvalidArgument());
  // The failed sends must not have published anything.
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("ok")).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(Slice(msg.second).ToString(), "ok");
}

TEST(RingChannelUnitTest, EmptyPayloadIsLegal) {
  auto channel = RingChannel::Create(16).value();
  ASSERT_TRUE(channel->SendToChild(MsgType::kShutdown, Slice()).ok());
  auto msg = channel->ReceiveInChild().value();
  EXPECT_EQ(msg.first, MsgType::kShutdown);
  EXPECT_TRUE(msg.second.empty());
}

TEST(RingChannelUnitTest, ReceiveTimesOutOnSilentPeer) {
  auto channel = RingChannel::Create(16).value();
  channel->set_timeout_seconds(1);
  Result<ipc::Channel::Msg> r = channel->ReceiveInParent();
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(RingChannelUnitTest, SendBumpsCrossingAndRingCounters) {
  auto channel = RingChannel::Create(64).value();
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
  obs::MetricsSnapshot before = reg->Snapshot("ipc.");
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("12345")).ok());
  ASSERT_TRUE(channel->SendToParent(MsgType::kResult, Slice("123")).ok());
  obs::MetricsSnapshot delta =
      obs::SnapshotDelta(before, reg->Snapshot("ipc."));
  // The transport-independent crossing counters (every committed frame is
  // one Section-4.1 crossing, whatever carries it)...
  EXPECT_GE(delta.at("ipc.shm.messages"), 2u);
  EXPECT_GE(delta.at("ipc.shm.payload_bytes"), 8u);
  // ...plus the ring's own accounting.
  EXPECT_GE(delta.at("ipc.ring.frames"), 2u);
  EXPECT_GE(delta.at("ipc.ring.bytes"), 8u);
  (void)channel->ReceiveInChild();
  (void)channel->ReceiveInParent();
}

TEST(RingChannelUnitTest, ZeroCopyPrepareCommitViewRelease) {
  auto channel = RingChannel::Create(1024).value();
  auto buf = channel->PrepareToChild(5);
  ASSERT_TRUE(buf.ok());
  std::memcpy(*buf, "hello", 5);
  ASSERT_TRUE(channel->CommitToChild(MsgType::kRequest, 5).ok());

  auto view = channel->ReceiveViewInChild().value();
  EXPECT_EQ(view.first, MsgType::kRequest);
  // The view aliases the bytes the producer serialized in place.
  EXPECT_EQ(view.second.data(), *buf);
  EXPECT_EQ(view.second.ToString(), "hello");
  channel->ReleaseInChild();
  channel->ReleaseInChild();  // idempotent

  auto reply = channel->PrepareToParent(3);
  ASSERT_TRUE(reply.ok());
  std::memcpy(*reply, "ack", 3);
  ASSERT_TRUE(channel->CommitToParent(MsgType::kResult, 3).ok());
  auto up = channel->ReceiveViewInParent().value();
  EXPECT_EQ(up.first, MsgType::kResult);
  EXPECT_EQ(up.second.ToString(), "ack");
  channel->ReleaseInParent();
}

TEST(RingChannelUnitTest, CallbackSuspendsRequestUntilReplied) {
  // The Section 4.1 interleaving over the ring transport: fork a child that
  // starts a request, issues a callback, and folds the reply into its
  // result, proving the request stayed suspended until the parent answered.
  auto channel = RingChannel::Create(4096).value();
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto req = channel->ReceiveInChild();
    if (!req.ok() || req->first != MsgType::kRequest) _exit(1);
    if (!channel->SendToParent(MsgType::kCallbackRequest, Slice("need"))
             .ok()) {
      _exit(2);
    }
    auto reply = channel->ReceiveInChild();
    if (!reply.ok() || reply->first != MsgType::kCallbackReply) _exit(3);
    std::string result = Slice(req->second).ToString() + "+" +
                         Slice(reply->second).ToString();
    if (!channel->SendToParent(MsgType::kResult, Slice(result)).ok()) _exit(4);
    _exit(0);
  }
  ASSERT_TRUE(channel->SendToChild(MsgType::kRequest, Slice("work")).ok());
  auto up = channel->ReceiveInParent().value();
  ASSERT_EQ(up.first, MsgType::kCallbackRequest);
  EXPECT_EQ(Slice(up.second).ToString(), "need");
  ASSERT_TRUE(
      channel->SendToChild(MsgType::kCallbackReply, Slice("answer")).ok());
  auto result = channel->ReceiveInParent().value();
  EXPECT_EQ(result.first, MsgType::kResult);
  EXPECT_EQ(Slice(result.second).ToString(), "work+answer");
  int status;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(RingExecutorUnitTest, PipelinesTwoRequestsAndRejectsAThird) {
  auto handler = [](Slice request,
                    ipc::Channel*) -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>(request.data(),
                                request.data() + request.size());
  };
  auto executor =
      ipc::RemoteExecutor::Spawn(1024, handler, ipc::Transport::kRing)
          .value();
  EXPECT_EQ(executor->send_queue_depth(), 2u);
  auto no_callbacks = [](Slice) -> Result<std::vector<uint8_t>> {
    return Internal("no callbacks expected");
  };

  ASSERT_TRUE(executor->BeginExecute(Slice("one")).ok());
  ASSERT_TRUE(executor->BeginExecute(Slice("two")).ok());
  EXPECT_EQ(executor->in_flight(), 2u);
  // A third request exceeds the ring's pipeline depth.
  EXPECT_FALSE(executor->BeginExecute(Slice("three")).ok());

  // Results come back in FIFO order.
  EXPECT_EQ(Slice(executor->FinishExecute(no_callbacks).value()).ToString(),
            "one");
  EXPECT_EQ(Slice(executor->FinishExecute(no_callbacks).value()).ToString(),
            "two");
  EXPECT_EQ(executor->in_flight(), 0u);
  ASSERT_TRUE(executor->Shutdown().ok());
}

TEST(RingExecutorUnitTest, MessageTransportKeepsSingleSlotDepth) {
  auto handler = [](Slice request,
                    ipc::Channel*) -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>(request.data(),
                                request.data() + request.size());
  };
  auto executor =
      ipc::RemoteExecutor::Spawn(1024, handler, ipc::Transport::kMessage)
          .value();
  EXPECT_EQ(executor->send_queue_depth(), 1u);
  auto no_callbacks = [](Slice) -> Result<std::vector<uint8_t>> {
    return Internal("no callbacks expected");
  };
  ASSERT_TRUE(executor->BeginExecute(Slice("one")).ok());
  EXPECT_FALSE(executor->BeginExecute(Slice("two")).ok());
  EXPECT_EQ(Slice(executor->FinishExecute(no_callbacks).value()).ToString(),
            "one");
  ASSERT_TRUE(executor->Shutdown().ok());
}

TEST(RingExecutorUnitTest, StashKeepsPipelinedRequestsOrderedAcrossCallbacks) {
  // While the child waits for a callback reply, the pipelined next request
  // is already ahead of the reply in the FIFO to-child ring. The child must
  // set it aside (stash) and still serve both requests in order.
  auto handler = [](Slice request,
                    ipc::Channel* channel) -> Result<std::vector<uint8_t>> {
    std::vector<uint8_t> req(request.data(), request.data() + request.size());
    channel->ReleaseInChild();
    JAGUAR_RETURN_IF_ERROR(
        channel->SendToParent(MsgType::kCallbackRequest, Slice("cb")));
    while (true) {
      JAGUAR_ASSIGN_OR_RETURN(auto msg, channel->ReceiveFreshInChild());
      if (msg.first == MsgType::kRequest) {
        channel->StashInChild(msg.first, std::move(msg.second));
        continue;
      }
      if (msg.first != MsgType::kCallbackReply) {
        return Internal("unexpected reply type");
      }
      req.push_back('+');
      req.insert(req.end(), msg.second.begin(), msg.second.end());
      return req;
    }
  };
  auto executor =
      ipc::RemoteExecutor::Spawn(4096, handler, ipc::Transport::kRing)
          .value();
  auto callbacks = [](Slice payload) -> Result<std::vector<uint8_t>> {
    EXPECT_EQ(payload.ToString(), "cb");
    return std::vector<uint8_t>{'X'};
  };
  ASSERT_TRUE(executor->BeginExecute(Slice("a")).ok());
  ASSERT_TRUE(executor->BeginExecute(Slice("b")).ok());
  EXPECT_EQ(Slice(executor->FinishExecute(callbacks).value()).ToString(),
            "a+X");
  EXPECT_EQ(Slice(executor->FinishExecute(callbacks).value()).ToString(),
            "b+X");
  ASSERT_TRUE(executor->Shutdown().ok());
}

TEST(RemoteExecutorUnitTest, ShutdownIsIdempotentAndDtorSafe) {
  auto handler = [](Slice request,
                    ipc::Channel*) -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>(request.data(),
                                request.data() + request.size());
  };
  auto executor = ipc::RemoteExecutor::Spawn(1024, handler).value();
  auto echo = executor
                  ->Execute(Slice("abc"),
                            [](Slice) -> Result<std::vector<uint8_t>> {
                              return Internal("no callbacks expected");
                            })
                  .value();
  EXPECT_EQ(Slice(echo).ToString(), "abc");
  ASSERT_TRUE(executor->Shutdown().ok());
  EXPECT_TRUE(executor->Shutdown().ok());  // second shutdown: no-op
  executor.reset();                        // dtor after explicit shutdown
}

}  // namespace
}  // namespace jaguar
