// Tests for src/common: Status/Result, Slice, byte streams, strings, RNG.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/string_util.h"

namespace jaguar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "table t");
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(IoError("x").IsIoError());
  EXPECT_TRUE(Corruption("x").IsCorruption());
  EXPECT_TRUE(Internal("x").IsInternal());
  EXPECT_TRUE(NotSupported("x").IsNotSupported());
  EXPECT_TRUE(SecurityViolation("x").IsSecurityViolation());
  EXPECT_TRUE(ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(RuntimeError("x").IsRuntimeError());
  EXPECT_TRUE(VerificationError("x").IsVerificationError());
}

TEST(StatusTest, CopyIsCheap) {
  Status a = Internal("boom");
  Status b = a;  // shared rep
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.value_or(42), 42);
}

Status UseAssignOrReturn(int v, int* out) {
  JAGUAR_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssignOrReturn(-3, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 11u);
  EXPECT_EQ(sl.ToString(), "hello world");
  Slice sub = sl.SubSlice(6, 5);
  EXPECT_EQ(sub.ToString(), "world");
  EXPECT_EQ(sl.SubSlice(100, 5).size(), 0u);
  EXPECT_EQ(sl.SubSlice(6, 100).ToString(), "world");
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice().Compare(Slice()), 0);
  EXPECT_EQ(Slice(), Slice(""));
}

TEST(SliceTest, RemovePrefix) {
  Slice sl("abcdef");
  sl.RemovePrefix(2);
  EXPECT_EQ(sl.ToString(), "cdef");
}

TEST(BytesTest, RoundTripAllWidths) {
  BufferWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-12345);
  w.PutDouble(3.25);
  w.PutString("hi");
  w.PutLengthPrefixed(Slice("xyz"));

  BufferReader r(w.AsSlice());
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI64().value(), -12345);
  EXPECT_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_EQ(r.ReadString().value(), "hi");
  EXPECT_EQ(r.ReadLengthPrefixed().value().ToString(), "xyz");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadsFailWithCorruption) {
  BufferWriter w;
  w.PutU16(7);
  BufferReader r(w.AsSlice());
  EXPECT_TRUE(r.ReadU32().status().IsCorruption());
  // The failed read must not consume anything usable afterwards.
  BufferReader r2(w.AsSlice());
  EXPECT_TRUE(r2.ReadU16().ok());
  EXPECT_TRUE(r2.ReadU8().status().IsCorruption());
}

TEST(BytesTest, LengthPrefixLongerThanBufferFails) {
  BufferWriter w;
  w.PutU32(1000);  // claims 1000 bytes, none follow
  BufferReader r(w.AsSlice());
  EXPECT_TRUE(r.ReadLengthPrefixed().status().IsCorruption());
}

TEST(BytesTest, PatchU32) {
  BufferWriter w;
  w.PutU32(0);
  w.PutString("data");
  w.PatchU32(0, static_cast<uint32_t>(w.size()));
  BufferReader r(w.AsSlice());
  EXPECT_EQ(r.ReadU32().value(), w.size());
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, SplitTrimJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, BytesLengthAndVariety) {
  Random r(9);
  auto bytes = r.Bytes(4096);
  EXPECT_EQ(bytes.size(), 4096u);
  // Very weak uniformity check: at least 200 distinct byte values.
  std::set<uint8_t> distinct(bytes.begin(), bytes.end());
  EXPECT_GT(distinct.size(), 200u);
}

}  // namespace
}  // namespace jaguar
