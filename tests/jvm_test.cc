// Tests for the JagVM: bytecode encoding, class files, the assembler, the
// verifier, the interpreter, the x86-64 JIT (differentially against the
// interpreter and a C++ reference model), class-loader namespaces, the
// security manager and resource limits.

#include <gtest/gtest.h>

#include "common/random.h"
#include "jvm/assembler.h"
#include "jvm/class_file.h"
#include "jvm/class_loader.h"
#include "jvm/heap.h"
#include "jvm/interpreter.h"
#include "jvm/jit.h"
#include "jvm/verifier.h"
#include "jvm/vm.h"

namespace jaguar {
namespace jvm {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Assembles + verifies + loads `source` into a fresh loader on `vm`.
const LoadedClass* MustLoad(ClassLoader* loader, const std::string& source) {
  Result<ClassFile> cf = Assemble(source);
  EXPECT_TRUE(cf.ok()) << cf.status();
  Result<const LoadedClass*> loaded = loader->LoadClass(cf->Serialize());
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return loaded.value_or(nullptr);
}

/// Runs `Cls.method(args)` with the given jit setting; returns result slot.
Result<int64_t> RunMethod(Jvm* vm, const ClassLoader* loader,
                    const std::string& cls, const std::string& method,
                    std::vector<int64_t> args, ResourceLimits limits = {}) {
  SecurityManager allow = SecurityManager::AllowAll();
  ExecContext ctx(vm, loader, &allow, limits);
  return ctx.CallStatic(cls, method, args);
}

// ---------------------------------------------------------------------------
// Signatures / bytecode primitives
// ---------------------------------------------------------------------------

TEST(SignatureTest, ParseAndPrint) {
  Signature s = Signature::Parse("(IBA)I").value();
  ASSERT_EQ(s.params.size(), 3u);
  EXPECT_EQ(s.params[0], VType::kInt);
  EXPECT_EQ(s.params[1], VType::kByteArray);
  EXPECT_EQ(s.params[2], VType::kIntArray);
  EXPECT_FALSE(s.returns_void);
  EXPECT_EQ(s.ToString(), "(IBA)I");

  Signature v = Signature::Parse("()V").value();
  EXPECT_TRUE(v.returns_void);
  EXPECT_TRUE(v.params.empty());

  EXPECT_FALSE(Signature::Parse("I").ok());
  EXPECT_FALSE(Signature::Parse("(X)I").ok());
  EXPECT_FALSE(Signature::Parse("(I)").ok());
  EXPECT_FALSE(Signature::Parse("(I)IZ").ok());
}

TEST(BytecodeTest, EncodeDecodeRoundTrip) {
  CodeWriter w;
  w.EmitImm(Op::kIConst, -42);
  w.EmitA(Op::kILoad, 3);
  w.Emit(Op::kIAdd);
  uint32_t br = w.EmitA(Op::kGoto, 0);
  w.Emit(Op::kIReturn);
  w.PatchA(br, 0);  // jump to start

  auto instrs = DecodeCode(w.code()).value();
  ASSERT_EQ(instrs.size(), 5u);
  EXPECT_EQ(instrs[0].op, Op::kIConst);
  EXPECT_EQ(instrs[0].imm, -42);
  EXPECT_EQ(instrs[1].a, 3u);
  ASSERT_TRUE(RetargetBranches(&instrs).ok());
  EXPECT_EQ(instrs[3].a, 0u);  // instruction index

  std::string dis = Disassemble(instrs);
  EXPECT_NE(dis.find("iconst"), std::string::npos);
  EXPECT_NE(dis.find("->0"), std::string::npos);
}

TEST(BytecodeTest, DecodeRejectsBadInput) {
  EXPECT_FALSE(DecodeCode({0xFF}).ok());           // unknown opcode
  EXPECT_FALSE(DecodeCode({0x01, 0x01}).ok());     // truncated iconst
  // Branch into the middle of an instruction.
  CodeWriter w;
  w.EmitImm(Op::kIConst, 7);
  w.EmitA(Op::kGoto, 3);  // offset 3 is inside the iconst immediate
  auto instrs = DecodeCode(w.code()).value();
  EXPECT_FALSE(RetargetBranches(&instrs).ok());
}

// ---------------------------------------------------------------------------
// Class files
// ---------------------------------------------------------------------------

TEST(ClassFileTest, SerializeParseRoundTrip) {
  ClassFile cf;
  cf.class_name = "Foo";
  MethodDef m;
  m.name_idx = cf.InternUtf8("run");
  m.sig_idx = cf.InternUtf8("(I)I");
  m.max_locals = 2;
  CodeWriter w;
  w.EmitA(Op::kILoad, 0);
  w.Emit(Op::kIReturn);
  m.code = w.Release();
  cf.methods.push_back(m);
  cf.AddMethodRef("Bar", "helper", "()V");
  cf.AddNativeRef("Jaguar.callback", "(II)I");

  auto bytes = cf.Serialize();
  ClassFile back = ClassFile::Parse(Slice(bytes)).value();
  EXPECT_EQ(back.class_name, "Foo");
  EXPECT_EQ(back.methods.size(), 1u);
  EXPECT_EQ(back.MethodName(back.methods[0]).value(), "run");
  EXPECT_EQ(back.MethodSignature(back.methods[0]).value().ToString(), "(I)I");
  EXPECT_EQ(back.FindMethod("run").value(), 0u);
  EXPECT_TRUE(back.FindMethod("nope").status().IsNotFound());
}

TEST(ClassFileTest, ParseRejectsGarbage) {
  EXPECT_TRUE(ClassFile::Parse(Slice("not a class file")).status()
                  .IsVerificationError());
  // Truncations of a valid file must all fail cleanly.
  ClassFile cf;
  cf.class_name = "T";
  auto bytes = cf.Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(ClassFile::Parse(Slice(bytes.data(), len)).ok());
  }
  // Trailing junk is rejected too.
  bytes.push_back(0);
  EXPECT_FALSE(ClassFile::Parse(Slice(bytes)).ok());
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  EXPECT_TRUE(Assemble("bogus").status().IsInvalidArgument());
  Status s = Assemble("class T\nmethod f ()I\n  fly\nend").status();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
  EXPECT_TRUE(Assemble("class T\nmethod f ()I\n  goto nowhere\nend")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Assemble("class T\nmethod f ()I\n  iconst 1\n  ireturn")
                  .status()
                  .IsInvalidArgument());  // missing end
}

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

Status VerifySource(const std::string& source) {
  Result<ClassFile> cf = Assemble(source);
  if (!cf.ok()) return cf.status();
  return Verify(*cf).status();
}

TEST(VerifierTest, AcceptsWellTypedCode) {
  EXPECT_TRUE(VerifySource(R"(
class Good
method add (II)I
  iload 0
  iload 1
  iadd
  ireturn
end
method sumarray (B)I locals=3
  iconst 0
  istore 1
  iconst 0
  istore 2
loop:
  iload 2
  aload 0
  arraylen
  if_icmpge done
  iload 1
  aload 0
  iload 2
  baload
  iadd
  istore 1
  iload 2
  iconst 1
  iadd
  istore 2
  goto loop
done:
  iload 1
  ireturn
end
method mk (I)B
  iload 0
  newbarray
  areturn
end
method nothing ()V
  return
end
)").ok());
}

TEST(VerifierTest, RejectsStackUnderflow) {
  EXPECT_TRUE(VerifySource("class B\nmethod f ()I\n  iadd\n  ireturn\nend")
                  .IsVerificationError());
}

TEST(VerifierTest, RejectsTypeConfusion) {
  // Using a byte[] as an int.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (B)I
  aload 0
  iconst 1
  iadd
  ireturn
end
)").IsVerificationError());
  // Using an int as an array (forging a pointer!).
  EXPECT_TRUE(VerifySource(R"(
class B
method f (I)I
  iload 0
  iconst 0
  baload
  ireturn
end
)").IsVerificationError());
  // int[] used where byte[] expected.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (A)I
  aload 0
  iconst 0
  baload
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, RejectsUninitializedLocals) {
  EXPECT_TRUE(VerifySource(R"(
class B
method f ()I locals=2
  iload 1
  ireturn
end
)").IsVerificationError());
  // Reference local read before any store.
  EXPECT_TRUE(VerifySource(R"(
class B
method f ()I locals=1
  aload 0
  arraylen
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, RejectsFallOffEnd) {
  EXPECT_TRUE(VerifySource("class B\nmethod f ()I\n  iconst 1\nend")
                  .IsVerificationError());
}

TEST(VerifierTest, RejectsWrongReturn) {
  EXPECT_TRUE(VerifySource("class B\nmethod f ()V\n  iconst 1\n  ireturn\nend")
                  .IsVerificationError());
  EXPECT_TRUE(VerifySource("class B\nmethod f ()I\n  return\nend")
                  .IsVerificationError());
  EXPECT_TRUE(VerifySource(R"(
class B
method f (B)B
  iconst 1
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, RejectsMergeConflicts) {
  // Stack holds an int on one path and a byte[] on the other.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (IB)I
  iload 0
  ifeq other
  iconst 5
  goto merge
other:
  aload 1
merge:
  pop
  iconst 0
  ireturn
end
)").IsVerificationError());
  // Conflicting stack depths at a merge point.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (I)I
  iload 0
  ifeq merge
  iconst 1
merge:
  iconst 0
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, PoisonedLocalMergeIsOkUntilUsed) {
  // The local holds int on one path, byte[] on the other: fine while unused.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (IB)I locals=3
  iload 0
  ifeq other
  iconst 5
  istore 2
  goto merge
other:
  aload 1
  astore 2
merge:
  iconst 7
  ireturn
end
)").ok());
  // ... but reading it after the merge is rejected.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (IB)I locals=3
  iload 0
  ifeq other
  iconst 5
  istore 2
  goto merge
other:
  aload 1
  astore 2
merge:
  iload 2
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, RejectsBadCallSignatures) {
  // Calling with the wrong argument type.
  EXPECT_TRUE(VerifySource(R"(
class B
method f (B)I
  aload 0
  call B.g (I)I
  ireturn
end
method g (I)I
  iload 0
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, RejectsDuplicateMethods) {
  EXPECT_TRUE(VerifySource(R"(
class B
method f ()I
  iconst 1
  ireturn
end
method f ()I
  iconst 2
  ireturn
end
)").IsVerificationError());
}

TEST(VerifierTest, ComputesMaxStack) {
  ClassFile cf = Assemble(R"(
class S
method f ()I
  iconst 1
  iconst 2
  iconst 3
  iadd
  iadd
  ireturn
end
)").value();
  VerifiedClass vc = Verify(cf).value();
  EXPECT_EQ(vc.methods[0].max_stack, 3u);
}

TEST(VerifierTest, FuzzedClassFilesNeverCrash) {
  // Random mutations of a valid class file must either parse+verify or fail
  // cleanly — never crash. (The server runs this on every client upload.)
  ClassFile cf = Assemble(R"(
class F
method f (B)I locals=3
  iconst 0
  istore 1
loop:
  iload 1
  aload 0
  arraylen
  if_icmpge done
  iload 1
  iconst 1
  iadd
  istore 1
  goto loop
done:
  iload 1
  ireturn
end
)").value();
  std::vector<uint8_t> bytes = cf.Serialize();
  Random rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    Result<ClassFile> parsed = ClassFile::Parse(Slice(mutated));
    if (parsed.ok()) {
      Verify(*parsed).ok();  // must not crash
    }
  }
}

// ---------------------------------------------------------------------------
// Execution: interpreter and JIT (every test runs both engines)
// ---------------------------------------------------------------------------

class ExecTest : public ::testing::TestWithParam<bool> {
 protected:
  ExecTest() {
    JvmOptions opts;
    opts.enable_jit = GetParam();
    vm_ = std::make_unique<Jvm>(opts);
  }
  std::unique_ptr<Jvm> vm_;
};

TEST_P(ExecTest, Arithmetic) {
  const char* src = R"(
class M
method calc (II)I
  iload 0
  iload 1
  imul
  iload 0
  iload 1
  isub
  iadd
  ireturn
end
)";
  const LoadedClass* cls = MustLoad(vm_->system_loader(), src);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(RunMethod(vm_.get(), vm_->system_loader(), "M", "calc", {7, 3}).value(),
            7 * 3 + (7 - 3));
  EXPECT_EQ(RunMethod(vm_.get(), vm_->system_loader(), "M", "calc", {-5, 9}).value(),
            -5 * 9 + (-5 - 9));
}

TEST_P(ExecTest, DivRemSemantics) {
  const char* src = R"(
class M
method div (II)I
  iload 0
  iload 1
  idiv
  ireturn
end
method rem (II)I
  iload 0
  iload 1
  irem
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  auto* L = vm_->system_loader();
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "div", {17, 5}).value(), 3);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "div", {-17, 5}).value(), -3);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "rem", {17, 5}).value(), 2);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "rem", {-17, 5}).value(), -2);
  // Division by zero traps cleanly.
  EXPECT_TRUE(RunMethod(vm_.get(), L, "M", "div", {1, 0}).status().IsRuntimeError());
  EXPECT_TRUE(RunMethod(vm_.get(), L, "M", "rem", {1, 0}).status().IsRuntimeError());
  // INT64_MIN / -1 wraps (defined behavior, both engines agree).
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "div", {INT64_MIN, -1}).value(), INT64_MIN);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "rem", {INT64_MIN, -1}).value(), 0);
}

TEST_P(ExecTest, ShiftsAndBitwise) {
  const char* src = R"(
class M
method shl (II)I
  iload 0
  iload 1
  ishl
  ireturn
end
method shr (II)I
  iload 0
  iload 1
  ishr
  ireturn
end
method ushr (II)I
  iload 0
  iload 1
  iushr
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  auto* L = vm_->system_loader();
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "shl", {1, 10}).value(), 1024);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "shr", {-8, 1}).value(), -4);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "ushr", {-8, 1}).value(),
            static_cast<int64_t>(static_cast<uint64_t>(-8) >> 1));
  // Shift counts mask to 63.
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "shl", {3, 64}).value(), 3);
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "shl", {3, 65}).value(), 6);
}

TEST_P(ExecTest, LoopSumsArray) {
  const char* src = R"(
class M
method sum (B)I locals=3
  iconst 0
  istore 1
  iconst 0
  istore 2
loop:
  iload 2
  aload 0
  arraylen
  if_icmpge done
  iload 1
  aload 0
  iload 2
  baload
  iadd
  istore 1
  iload 2
  iconst 1
  iadd
  istore 2
  goto loop
done:
  iload 1
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  SecurityManager allow = SecurityManager::AllowAll();
  ExecContext ctx(vm_.get(), vm_->system_loader(), &allow, {});
  Random rng(42);
  auto data = rng.Bytes(10000);
  ArrayObject* arr = ctx.NewByteArray(Slice(data)).value();
  int64_t expected = 0;
  for (uint8_t b : data) expected += b;
  EXPECT_EQ(
      ctx.CallStatic("M", "sum", {reinterpret_cast<int64_t>(arr)}).value(),
      expected);
}

TEST_P(ExecTest, ArrayStoreAndIntArrays) {
  const char* src = R"(
class M
method fill (I)I locals=3
  iload 0
  newiarray
  astore 1
  iconst 0
  istore 2
loop:
  iload 2
  iload 0
  if_icmpge done
  aload 1
  iload 2
  iload 2
  iload 2
  imul
  iastore
  iload 2
  iconst 1
  iadd
  istore 2
  goto loop
done:
  aload 1
  iconst 7
  iaload
  ireturn
end
method bytes ()I locals=1
  iconst 10
  newbarray
  astore 0
  aload 0
  iconst 3
  iconst 300
  bastore
  aload 0
  iconst 3
  baload
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  auto* L = vm_->system_loader();
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "fill", {20}).value(), 49);
  // bastore truncates to the low 8 bits; baload zero-extends.
  EXPECT_EQ(RunMethod(vm_.get(), L, "M", "bytes", {}).value(), 300 & 0xFF);
}

TEST_P(ExecTest, BoundsChecksTrap) {
  const char* src = R"(
class M
method get (BI)I
  aload 0
  iload 1
  baload
  ireturn
end
method put (BI)I
  aload 0
  iload 1
  iconst 1
  bastore
  iconst 0
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  SecurityManager allow = SecurityManager::AllowAll();
  ExecContext ctx(vm_.get(), vm_->system_loader(), &allow, {});
  ArrayObject* arr = ctx.NewByteArray(Slice("abcd")).value();
  int64_t ref = reinterpret_cast<int64_t>(arr);
  EXPECT_EQ(ctx.CallStatic("M", "get", {ref, 3}).value(), 'd');
  EXPECT_TRUE(ctx.CallStatic("M", "get", {ref, 4}).status().IsRuntimeError());
  EXPECT_TRUE(ctx.CallStatic("M", "get", {ref, -1}).status().IsRuntimeError());
  EXPECT_TRUE(
      ctx.CallStatic("M", "put", {ref, 1000000}).status().IsRuntimeError());
}

TEST_P(ExecTest, CrossMethodCalls) {
  const char* src = R"(
class M
method fib (I)I
  iload 0
  iconst 2
  if_icmplt base
  iload 0
  iconst 1
  isub
  call M.fib (I)I
  iload 0
  iconst 2
  isub
  call M.fib (I)I
  iadd
  ireturn
base:
  iload 0
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  EXPECT_EQ(RunMethod(vm_.get(), vm_->system_loader(), "M", "fib", {15}).value(),
            610);
}

TEST_P(ExecTest, CallDepthLimitStopsRunawayRecursion) {
  const char* src = R"(
class M
method forever (I)I
  iload 0
  call M.forever (I)I
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  ResourceLimits limits;
  limits.max_call_depth = 50;
  Result<int64_t> r =
      RunMethod(vm_.get(), vm_->system_loader(), "M", "forever", {1}, limits);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST_P(ExecTest, InstructionBudgetStopsInfiniteLoop) {
  const char* src = R"(
class M
method spin ()I
loop:
  goto loop
end
)";
  // Note: an infinite loop with no return still verifies (no fall-through).
  MustLoad(vm_->system_loader(), src);
  ResourceLimits limits;
  limits.instruction_budget = 100000;
  Result<int64_t> r =
      RunMethod(vm_.get(), vm_->system_loader(), "M", "spin", {}, limits);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST_P(ExecTest, HeapQuotaStopsAllocationBomb) {
  const char* src = R"(
class M
method bomb ()I locals=1
loop:
  iconst 1048576
  newbarray
  astore 0
  goto loop
end
)";
  MustLoad(vm_->system_loader(), src);
  ResourceLimits limits;
  limits.heap_quota_bytes = 16 << 20;
  Result<int64_t> r =
      RunMethod(vm_.get(), vm_->system_loader(), "M", "bomb", {}, limits);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST_P(ExecTest, NegativeArraySizeTraps) {
  const char* src = R"(
class M
method neg ()I
  iconst -5
  newbarray
  arraylen
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  Result<int64_t> r = RunMethod(vm_.get(), vm_->system_loader(), "M", "neg", {});
  EXPECT_FALSE(r.ok());
}

TEST_P(ExecTest, NativeCallsAndSecurity) {
  ASSERT_TRUE(vm_->RegisterNative({"Test.add",
                                   Signature::Parse("(II)I").value(),
                                   "test.add",
                                   [](NativeCallInfo* info) {
                                     info->result =
                                         info->args[0] + info->args[1];
                                     return Status::OK();
                                   }})
                  .ok());
  const char* src = R"(
class M
method go (II)I
  iload 0
  iload 1
  callnative Test.add (II)I
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);

  // Granted: works.
  SecurityManager granted;
  granted.Grant("test.add");
  {
    ExecContext ctx(vm_.get(), vm_->system_loader(), &granted, {});
    EXPECT_EQ(ctx.CallStatic("M", "go", {20, 22}).value(), 42);
    EXPECT_EQ(ctx.native_calls(), 1u);
  }
  // Default-deny: SecurityViolation.
  SecurityManager denied;
  {
    ExecContext ctx(vm_.get(), vm_->system_loader(), &denied, {});
    EXPECT_TRUE(
        ctx.CallStatic("M", "go", {1, 2}).status().IsSecurityViolation());
  }
}

TEST_P(ExecTest, NativeErrorsPropagate) {
  ASSERT_TRUE(vm_->RegisterNative({"Test.fail",
                                   Signature::Parse("()I").value(),
                                   "test.fail",
                                   [](NativeCallInfo* info) -> Status {
                                     return RuntimeError("native boom");
                                   }})
                  .ok());
  const char* src = R"(
class M
method go ()I
  callnative Test.fail ()I
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  Result<int64_t> r = RunMethod(vm_.get(), vm_->system_loader(), "M", "go", {});
  ASSERT_TRUE(r.status().IsRuntimeError());
  EXPECT_NE(r.status().message().find("native boom"), std::string::npos);
}

TEST_P(ExecTest, UnknownNativeFailsAtCall) {
  const char* src = R"(
class M
method go ()I
  callnative No.Such ()I
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  EXPECT_FALSE(RunMethod(vm_.get(), vm_->system_loader(), "M", "go", {}).ok());
}

TEST_P(ExecTest, DupPopSwap) {
  const char* src = R"(
class M
method go (I)I
  iload 0
  dup
  imul
  iconst 99
  pop
  iconst 3
  swap
  isub
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  // stack: x*x, then 3, swap -> x*x on top? swap yields [x*x below 3]?
  // Sequence: push x; dup -> x,x; imul -> x*x; push 99; pop -> x*x;
  // push 3 -> x*x,3; swap -> 3,x*x; isub -> 3 - x*x.
  EXPECT_EQ(RunMethod(vm_.get(), vm_->system_loader(), "M", "go", {5}).value(),
            3 - 25);
}

TEST_P(ExecTest, InstructionsRetiredAreCounted) {
  const char* src = R"(
class M
method go ()I
  iconst 1
  iconst 2
  iadd
  ireturn
end
)";
  MustLoad(vm_->system_loader(), src);
  SecurityManager allow = SecurityManager::AllowAll();
  ExecContext ctx(vm_.get(), vm_->system_loader(), &allow, {});
  ASSERT_TRUE(ctx.CallStatic("M", "go", {}).ok());
  EXPECT_EQ(ctx.instructions_retired(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Interp, ExecTest, ::testing::Values(false));
INSTANTIATE_TEST_SUITE_P(Jit, ExecTest, ::testing::Values(true));

// ---------------------------------------------------------------------------
// Differential property tests: random programs, JIT vs interpreter vs C++.
// ---------------------------------------------------------------------------

/// Random integer expression tree compiled to bytecode and evaluated in C++.
class ExprGen {
 public:
  explicit ExprGen(Random* rng) : rng_(rng) {}

  /// Emits code computing a random expression over locals 0/1; returns its
  /// reference value given the two parameters.
  int64_t Gen(CodeWriter* w, int64_t p0, int64_t p1, int depth) {
    if (depth <= 0 || rng_->Bernoulli(0.3)) {
      switch (rng_->Uniform(3)) {
        case 0: {
          int64_t c = static_cast<int64_t>(rng_->Next());
          w->EmitImm(Op::kIConst, c);
          return c;
        }
        case 1:
          w->EmitA(Op::kILoad, 0);
          return p0;
        default:
          w->EmitA(Op::kILoad, 1);
          return p1;
      }
    }
    if (rng_->Bernoulli(0.1)) {
      int64_t v = Gen(w, p0, p1, depth - 1);
      w->Emit(Op::kINeg);
      return static_cast<int64_t>(-static_cast<uint64_t>(v));
    }
    int64_t a = Gen(w, p0, p1, depth - 1);
    int64_t b = Gen(w, p0, p1, depth - 1);
    switch (rng_->Uniform(8)) {
      case 0:
        w->Emit(Op::kIAdd);
        return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                    static_cast<uint64_t>(b));
      case 1:
        w->Emit(Op::kISub);
        return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                    static_cast<uint64_t>(b));
      case 2:
        w->Emit(Op::kIMul);
        return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                    static_cast<uint64_t>(b));
      case 3:
        w->Emit(Op::kIAnd);
        return a & b;
      case 4:
        w->Emit(Op::kIOr);
        return a | b;
      case 5:
        w->Emit(Op::kIXor);
        return a ^ b;
      case 6:
        w->Emit(Op::kIShl);
        return static_cast<int64_t>(static_cast<uint64_t>(a) << (b & 63));
      default:
        w->Emit(Op::kIShr);
        return a >> (b & 63);
    }
  }

 private:
  Random* rng_;
};

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, RandomExpressionsAgreeAcrossEngines) {
  Random rng(GetParam() * 1000003 + 17);
  int64_t p0 = static_cast<int64_t>(rng.Next());
  int64_t p1 = static_cast<int64_t>(rng.Next());

  CodeWriter w;
  ExprGen gen(&rng);
  int64_t expected = gen.Gen(&w, p0, p1, 6);
  w.Emit(Op::kIReturn);

  ClassFile cf;
  cf.class_name = "Rand";
  MethodDef m;
  m.name_idx = cf.InternUtf8("go");
  m.sig_idx = cf.InternUtf8("(II)I");
  m.max_locals = 2;
  m.code = w.Release();
  cf.methods.push_back(std::move(m));
  auto bytes = cf.Serialize();

  for (bool jit : {false, true}) {
    JvmOptions opts;
    opts.enable_jit = jit;
    Jvm vm(opts);
    ASSERT_TRUE(vm.system_loader()->LoadClass(Slice(bytes)).ok());
    Result<int64_t> r = RunMethod(&vm, vm.system_loader(), "Rand", "go", {p0, p1});
    ASSERT_TRUE(r.ok()) << r.status() << " (jit=" << jit << ")";
    EXPECT_EQ(*r, expected) << "engine disagrees (jit=" << jit << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 60));

// Deep expressions exercise the JIT's register-pool spilling.
TEST(JitSpillTest, DeepExpressionSpillsCorrectly) {
  // ((((1+2)+3)+...)+n) built with all intermediate values on the stack:
  // push 1..n, then n-1 adds.
  CodeWriter w;
  const int n = 40;  // far more than the 6 pool registers
  int64_t expected = 0;
  for (int i = 1; i <= n; ++i) {
    w.EmitImm(Op::kIConst, i);
    expected += i;
  }
  for (int i = 1; i < n; ++i) w.Emit(Op::kIAdd);
  w.Emit(Op::kIReturn);

  ClassFile cf;
  cf.class_name = "Deep";
  MethodDef m;
  m.name_idx = cf.InternUtf8("go");
  m.sig_idx = cf.InternUtf8("()I");
  m.max_locals = 0;
  m.code = w.Release();
  cf.methods.push_back(std::move(m));

  for (bool jit : {false, true}) {
    JvmOptions opts;
    opts.enable_jit = jit;
    Jvm vm(opts);
    ASSERT_TRUE(vm.system_loader()->LoadClass(Slice(cf.Serialize())).ok());
    EXPECT_EQ(RunMethod(&vm, vm.system_loader(), "Deep", "go", {}).value(),
              expected);
  }
}

// ---------------------------------------------------------------------------
// Class loader namespaces
// ---------------------------------------------------------------------------

TEST(ClassLoaderTest, NamespaceIsolation) {
  Jvm vm;
  // Two UDF namespaces sharing the system loader as parent.
  ClassLoader ns1(vm.system_loader());
  ClassLoader ns2(vm.system_loader());

  MustLoad(&ns1, "class Secret\nmethod f ()I\n  iconst 1\n  ireturn\nend");
  MustLoad(&ns2, "class Secret\nmethod f ()I\n  iconst 2\n  ireturn\nend");

  // Same name, different classes — namespaces are isolated.
  EXPECT_EQ(RunMethod(&vm, &ns1, "Secret", "f", {}).value(), 1);
  EXPECT_EQ(RunMethod(&vm, &ns2, "Secret", "f", {}).value(), 2);

  // A namespace cannot see a sibling's classes.
  MustLoad(&ns1, "class OnlyInNs1\nmethod f ()I\n  iconst 3\n  ireturn\nend");
  EXPECT_TRUE(ns2.FindClass("OnlyInNs1").status().IsNotFound());

  // Delegation: classes in the system loader are visible from children.
  MustLoad(vm.system_loader(),
           "class SystemLib\nmethod f ()I\n  iconst 9\n  ireturn\nend");
  EXPECT_EQ(RunMethod(&vm, &ns1, "SystemLib", "f", {}).value(), 9);
  EXPECT_EQ(RunMethod(&vm, &ns2, "SystemLib", "f", {}).value(), 9);

  // Duplicate definition within one namespace is rejected.
  Result<ClassFile> cf =
      Assemble("class Secret\nmethod f ()I\n  iconst 3\n  ireturn\nend");
  EXPECT_TRUE(
      ns1.LoadClass(Slice(cf->Serialize())).status().IsAlreadyExists());
}

TEST(ClassLoaderTest, CrossClassCallsResolveInNamespace) {
  Jvm vm;
  ClassLoader ns(vm.system_loader());
  MustLoad(&ns, R"(
class Lib
method twice (I)I
  iload 0
  iconst 2
  imul
  ireturn
end
)");
  MustLoad(&ns, R"(
class App
method go (I)I
  iload 0
  call Lib.twice (I)I
  iconst 1
  iadd
  ireturn
end
)");
  EXPECT_EQ(RunMethod(&vm, &ns, "App", "go", {21}).value(), 43);
}

TEST(ClassLoaderTest, CallToMissingClassFailsAtRuntime) {
  Jvm vm;
  ClassLoader ns(vm.system_loader());
  MustLoad(&ns, R"(
class App
method go ()I
  iconst 1
  call Ghost.f (I)I
  ireturn
end
)");
  EXPECT_TRUE(RunMethod(&vm, &ns, "App", "go", {}).status().IsNotFound());
}

TEST(ClassLoaderTest, LinkTimeSignatureMismatchIsCaught) {
  Jvm vm;
  ClassLoader ns(vm.system_loader());
  // Lib.f actually takes (II); App declares (I)I in its constant pool.
  MustLoad(&ns, R"(
class Lib
method f (II)I
  iload 0
  ireturn
end
)");
  MustLoad(&ns, R"(
class App
method go ()I
  iconst 1
  call Lib.f (I)I
  ireturn
end
)");
  Result<int64_t> r = RunMethod(&vm, &ns, "App", "go", {});
  EXPECT_TRUE(r.status().IsVerificationError()) << r.status();
}

// ---------------------------------------------------------------------------
// Heap
// ---------------------------------------------------------------------------

TEST(HeapTest, QuotaAccounting) {
  VmHeap heap(1000);
  ArrayObject* a = heap.NewByteArray(100).value();
  EXPECT_EQ(a->length, 100u);
  EXPECT_EQ(heap.bytes_allocated(), 100 + ArrayObject::kDataOffset);
  // int arrays cost 8 bytes per element.
  ASSERT_TRUE(heap.NewIntArray(50).ok());
  EXPECT_TRUE(heap.NewByteArray(1000).status().IsResourceExhausted());
  heap.Reset();
  EXPECT_EQ(heap.bytes_allocated(), 0u);
  EXPECT_TRUE(heap.NewByteArray(900).ok());
}

TEST(HeapTest, ArraysAreZeroInitialized) {
  VmHeap heap;
  ArrayObject* a = heap.NewByteArray(4096).value();
  for (size_t i = 0; i < 4096; ++i) EXPECT_EQ(a->bytes()[i], 0);
  ArrayObject* b = heap.NewIntArray(512).value();
  for (size_t i = 0; i < 512; ++i) EXPECT_EQ(b->ints()[i], 0);
}

TEST(HeapTest, IntArrayMarshalling) {
  Jvm vm;
  SecurityManager allow = SecurityManager::AllowAll();
  ExecContext ctx(&vm, vm.system_loader(), &allow, {});
  ArrayObject* arr = ctx.NewIntArray({-1, 0, 1LL << 40}).value();
  EXPECT_EQ(arr->length, 3u);
  EXPECT_EQ(arr->ints()[0], -1);
  EXPECT_EQ(arr->ints()[2], 1LL << 40);
}

TEST(SecurityManagerTest, GrantRevokeAndAllowAll) {
  SecurityManager m;
  EXPECT_FALSE(m.IsGranted("x"));
  EXPECT_TRUE(m.Check("x").IsSecurityViolation());
  m.Grant("x");
  EXPECT_TRUE(m.Check("x").ok());
  m.Revoke("x");
  EXPECT_TRUE(m.Check("x").IsSecurityViolation());
  EXPECT_TRUE(SecurityManager::AllowAll().Check("anything").ok());
}

TEST(AuditLogTest, RingBufferAndCounters) {
  AuditLog audit(4);
  SecurityManager m;
  m.Grant("ok");
  m.SetAudit(&audit, "udf-a");
  for (int i = 0; i < 6; ++i) m.Check("denied").ok();
  m.Check("ok").ok();
  EXPECT_EQ(audit.denials(), 6u);
  EXPECT_EQ(audit.grants(), 1u);
  EXPECT_EQ(audit.events().size(), 4u);  // ring capped
  EXPECT_FALSE(audit.DenialsFor("udf-a").empty());
  EXPECT_TRUE(audit.DenialsFor("udf-b").empty());
}

TEST(ByteArrayTest, ByteArrayFromSliceCopies) {
  VmHeap heap;
  std::vector<uint8_t> src = {1, 2, 3};
  ArrayObject* a = heap.NewByteArrayFrom(Slice(src)).value();
  src[0] = 99;  // must not affect the VM copy
  EXPECT_EQ(a->bytes()[0], 1);
  EXPECT_EQ(ExecContext::ReadByteArray(a), (std::vector<uint8_t>{1, 2, 3}));
}

}  // namespace
}  // namespace jvm
}  // namespace jaguar
