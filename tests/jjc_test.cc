// Tests for jjc, the JJava compiler. Programs are compiled, verified, and
// executed on both JagVM engines; results are checked against C++ reference
// computations.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "jjc/jjc.h"
#include "jvm/class_loader.h"
#include "jvm/verifier.h"
#include "jvm/vm.h"
#include "udf/generic_udf.h"

namespace jaguar {
namespace jjc {
namespace {

/// Compiles, verifies, loads into a fresh VM, runs `cls.method(args)` with
/// both engines, requires them to agree, and returns the value.
Result<int64_t> CompileAndRun(const std::string& source,
                              const std::string& cls,
                              const std::string& method,
                              const std::vector<int64_t>& args) {
  JAGUAR_ASSIGN_OR_RETURN(jvm::ClassFile cf, Compile(source));
  std::vector<uint8_t> bytes = cf.Serialize();
  Result<int64_t> results[2] = {Internal("unset"), Internal("unset")};
  int i = 0;
  for (bool jit : {false, true}) {
    jvm::JvmOptions opts;
    opts.enable_jit = jit;
    jvm::Jvm vm(opts);
    JAGUAR_RETURN_IF_ERROR(
        vm.system_loader()->LoadClass(Slice(bytes)).status());
    jvm::SecurityManager allow = jvm::SecurityManager::AllowAll();
    jvm::ExecContext ctx(&vm, vm.system_loader(), &allow, {});
    results[i++] = ctx.CallStatic(cls, method, args);
  }
  if (results[0].ok() != results[1].ok()) {
    return Internal("interpreter and JIT disagree on success");
  }
  if (results[0].ok() && *results[0] != *results[1]) {
    return Internal("interpreter and JIT disagree on value");
  }
  return results[0];
}



TEST(JjcTest, MinimalFunction) {
  EXPECT_EQ(CompileAndRun("class A { static int f() { return 42; } }", "A",
                          "f", {})
                .value(),
            42);
}

TEST(JjcTest, ArithmeticAndPrecedence) {
  const char* src = R"(
class A {
  static int f(int x, int y) {
    return x + y * 2 - (x - y) / 3 % 5;
  }
})";
  auto ref = [](int64_t x, int64_t y) {
    return x + y * 2 - (x - y) / 3 % 5;
  };
  EXPECT_EQ(CompileAndRun(src, "A", "f", {10, 4}).value(), ref(10, 4));
  EXPECT_EQ(CompileAndRun(src, "A", "f", {-33, 7}).value(), ref(-33, 7));
}

TEST(JjcTest, HexLiteralsAndUnary) {
  EXPECT_EQ(CompileAndRun(
                "class A { static int f() { return -0xFF + !0 + !7; } }", "A",
                "f", {})
                .value(),
            -255 + 1 + 0);
}

TEST(JjcTest, ComparisonsAsValues) {
  const char* src = R"(
class A {
  static int f(int x, int y) {
    int lt = x < y;
    int ge = x >= y;
    int eq = x == y;
    int ne = x != y;
    return lt * 1000 + ge * 100 + eq * 10 + ne;
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "f", {1, 2}).value(), 1001);
  EXPECT_EQ(CompileAndRun(src, "A", "f", {2, 2}).value(), 110);
  EXPECT_EQ(CompileAndRun(src, "A", "f", {3, 2}).value(), 101);
}

TEST(JjcTest, ShortCircuitEvaluation) {
  // The right side of && must not run when the left is false: here the right
  // side would divide by zero.
  const char* src = R"(
class A {
  static int f(int x) {
    if (x != 0 && 100 / x > 5) { return 1; }
    return 0;
  }
  static int g(int x) {
    if (x == 0 || 100 / x > 5) { return 1; }
    return 0;
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "f", {0}).value(), 0);
  EXPECT_EQ(CompileAndRun(src, "A", "f", {10}).value(), 1);
  EXPECT_EQ(CompileAndRun(src, "A", "g", {0}).value(), 1);
  EXPECT_EQ(CompileAndRun(src, "A", "g", {50}).value(), 0);
}

TEST(JjcTest, WhileAndForLoops) {
  const char* src = R"(
class A {
  static int sumWhile(int n) {
    int acc = 0;
    int i = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    return acc;
  }
  static int sumFor(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
    return acc;
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "sumWhile", {100}).value(), 4950);
  EXPECT_EQ(CompileAndRun(src, "A", "sumFor", {100}).value(), 4950);
  EXPECT_EQ(CompileAndRun(src, "A", "sumFor", {0}).value(), 0);
}

TEST(JjcTest, NestedIfElseAndScopes) {
  const char* src = R"(
class A {
  static int classify(int x) {
    int r = 0;
    if (x < 0) {
      int mag = -x;
      if (mag > 100) { r = -2; } else { r = -1; }
    } else if (x == 0) {
      r = 0;
    } else {
      r = 1;
    }
    return r;
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "classify", {-500}).value(), -2);
  EXPECT_EQ(CompileAndRun(src, "A", "classify", {-5}).value(), -1);
  EXPECT_EQ(CompileAndRun(src, "A", "classify", {0}).value(), 0);
  EXPECT_EQ(CompileAndRun(src, "A", "classify", {9}).value(), 1);
}

TEST(JjcTest, ArraysEndToEnd) {
  const char* src = R"(
class A {
  static int f(int n) {
    byte[] b = new byte[n];
    int[] v = new int[n];
    for (int i = 0; i < n; i = i + 1) {
      b[i] = i * 3;        // truncated to a byte
      v[i] = i * 100000;
    }
    int acc = 0;
    for (int i = 0; i < b.length; i = i + 1) { acc = acc + b[i]; }
    for (int i = 0; i < v.length; i = i + 1) { acc = acc + v[i]; }
    return acc;
  }
})";
  int64_t expected = 0;
  for (int i = 0; i < 50; ++i) {
    expected += static_cast<uint8_t>(i * 3);
    expected += i * 100000;
  }
  EXPECT_EQ(CompileAndRun(src, "A", "f", {50}).value(), expected);
}

TEST(JjcTest, HelperMethodCalls) {
  const char* src = R"(
class A {
  static int square(int x) { return x * x; }
  static int f(int x) { return square(x) + A.square(x + 1); }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "f", {3}).value(), 9 + 16);
}

TEST(JjcTest, RecursionWorks) {
  const char* src = R"(
class A {
  static int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "fact", {10}).value(), 3628800);
}

TEST(JjcTest, VoidMethods) {
  const char* src = R"(
class A {
  static void touch(int[] v, int i) { v[i] = 7; }
  static int f() {
    int[] v = new int[3];
    touch(v, 1);
    return v[0] + v[1] + v[2];
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "f", {}).value(), 7);
}

TEST(JjcTest, RuntimeBoundsTrapPropagates) {
  const char* src = R"(
class A {
  static int f(int i) {
    byte[] b = new byte[4];
    return b[i];
  }
})";
  EXPECT_EQ(CompileAndRun(src, "A", "f", {3}).value(), 0);
  EXPECT_TRUE(CompileAndRun(src, "A", "f", {4}).status().IsRuntimeError());
  EXPECT_TRUE(CompileAndRun(src, "A", "f", {-1}).status().IsRuntimeError());
}

TEST(JjcTest, CompileErrors) {
  auto err = [](const std::string& src) {
    return Compile(src).status();
  };
  // Type errors.
  EXPECT_TRUE(err("class A { static int f(byte[] b) { return b; } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f(byte[] b) { return b + 1; } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f(int x) { return x[0]; } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f(int x) { return x.length; } }")
                  .IsInvalidArgument());
  // Unknown names.
  EXPECT_TRUE(err("class A { static int f() { return y; } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f() { return g(); } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f() { return Other.g(); } }")
                  .IsInvalidArgument());
  // Arity / duplicate vars.
  EXPECT_TRUE(err("class A { static int g(int x) { return x; } "
                  "static int f() { return g(); } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f() { int x = 1; int x = 2; "
                  "return x; } }")
                  .IsInvalidArgument());
  // Void misuse.
  EXPECT_TRUE(err("class A { static void f() { return 5; } }")
                  .IsInvalidArgument());
  EXPECT_TRUE(err("class A { static int f() { return; } }")
                  .IsInvalidArgument());
  // Syntax errors carry line numbers.
  Status s = err("class A {\n static int f( { return 1; }\n}");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(JjcTest, MissingReturnCaughtByVerifier) {
  // jjc emits no implicit return for int methods; the verifier rejects the
  // fall-off — the compiler is untrusted, the verifier is the gate.
  Result<jvm::ClassFile> cf =
      Compile("class A { static int f(int x) { if (x > 0) { return 1; } } }");
  ASSERT_TRUE(cf.ok());
  EXPECT_TRUE(jvm::Verify(*cf).status().IsVerificationError());
}

TEST(JjcTest, OutputAlwaysVerifies) {
  // A battery of nontrivial programs whose compiled form must verify.
  const char* programs[] = {
      "class A { static int f() { for (;;) { return 1; } } }",
      "class A { static int f(int n) { int a = 0; int b = 1; "
      "while (n > 0) { int t = a + b; a = b; b = t; n = n - 1; } "
      "return a; } }",
      "class A { static byte[] mk(int n) { byte[] b = new byte[n]; "
      "return b; } static int f() { return mk(3).length; } }",
      "class A { static int f(byte[] d) { int acc = 0; "
      "for (int p = 0; p < 3; p = p + 1) { "
      "for (int i = 0; i < d.length; i = i + 1) { acc = acc + d[i]; } } "
      "return acc; } }",
  };
  for (const char* src : programs) {
    Result<jvm::ClassFile> cf = Compile(src);
    ASSERT_TRUE(cf.ok()) << src << " -> " << cf.status();
    EXPECT_TRUE(jvm::Verify(*cf).ok()) << src;
  }
}

TEST(JjcTest, NativeCallsUseDeclaredSignatures) {
  Result<jvm::ClassFile> cf = Compile(R"(
class A {
  static int f(int k) { return Jaguar.callback(k, 5); }
  static int g(int h) {
    byte[] clip = Jaguar.fetch(h, 0, 4);
    return clip.length;
  }
})");
  ASSERT_TRUE(cf.ok()) << cf.status();
  ASSERT_TRUE(jvm::Verify(*cf).ok());

  // Wrong arg types for a native are compile errors.
  EXPECT_TRUE(Compile("class A { static int f(byte[] b) "
                      "{ return Jaguar.callback(b, 1); } }")
                  .status()
                  .IsInvalidArgument());
}

TEST(JjcTest, GenericUdfSourceCompilesAndMatchesReference) {
  // The paper's benchmark UDF in JJava, wired to a callback that echoes its
  // argument — must reproduce the native reference result exactly.
  Result<jvm::ClassFile> cf = Compile(GenericUdfJJavaSource());
  ASSERT_TRUE(cf.ok()) << cf.status();
  std::vector<uint8_t> bytes = cf->Serialize();

  Random rng(99);
  auto data = rng.Bytes(500);

  for (bool jit : {false, true}) {
    jvm::JvmOptions opts;
    opts.enable_jit = jit;
    jvm::Jvm vm(opts);
    ASSERT_TRUE(vm.RegisterNative(
                      {"Jaguar.callback",
                       jvm::Signature::Parse("(II)I").value(),
                       "udf.callback",
                       [](jvm::NativeCallInfo* info) {
                         info->result = info->args[1];  // echo
                         return Status::OK();
                       }})
                    .ok());
    ASSERT_TRUE(vm.system_loader()->LoadClass(Slice(bytes)).ok());
    jvm::SecurityManager sec;
    sec.Grant("udf.callback");
    jvm::ExecContext ctx(&vm, vm.system_loader(), &sec, {});
    jvm::ArrayObject* arr = ctx.NewByteArray(Slice(data)).value();
    int64_t got = ctx.CallStatic("GenericUdf", "run",
                                 {reinterpret_cast<int64_t>(arr), 37, 3, 11})
                      .value();
    EXPECT_EQ(got, GenericUdfExpected(data, 37, 3, 11)) << "jit=" << jit;
  }
}

// Property sweep: Fibonacci-style iterative programs with random constants
// agree with a C++ model for many seeds.
class JjcPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JjcPropertyTest, RandomLinearRecurrencesMatch) {
  Random rng(GetParam() * 77 + 5);
  int64_t c1 = rng.UniformRange(-9, 9);
  int64_t c2 = rng.UniformRange(-9, 9);
  int64_t n = rng.UniformRange(1, 40);
  std::string src = StringPrintf(R"(
class R {
  static int f(int n) {
    int a = 1;
    int b = 1;
    int i = 0;
    while (i < n) {
      int t = a * (%lld) + b * (%lld);
      a = b;
      b = t;
      i = i + 1;
    }
    return b;
  }
})",
                                 static_cast<long long>(c1),
                                 static_cast<long long>(c2));
  // Reference model in the unsigned domain: the recurrence overflows by
  // design, and the VM's wrap-around semantics are two's complement.
  int64_t a = 1, b = 1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t t = static_cast<int64_t>(
        static_cast<uint64_t>(a) * static_cast<uint64_t>(c1) +
        static_cast<uint64_t>(b) * static_cast<uint64_t>(c2));
    a = b;
    b = t;
  }
  EXPECT_EQ(CompileAndRun(src, "R", "f", {n}).value(), b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JjcPropertyTest, ::testing::Range(0, 25));

// -- JIT stress: register pinning, helper-call spills, budget sync -----------

TEST(JitStressTest, ManyHotLocalsWithCallsInLoops) {
  // More hot locals than pin registers, with a helper call inside the loop:
  // exercises caller-saved pin spill/reload around jag_rt_call and the
  // budget register writeback/reload across nested JIT frames.
  const char* src = R"(
class S {
  static int helper(int x, int y) { return x * 2 + y; }
  static int f(int n) {
    int a = 0; int b = 1; int c = 2; int d = 3; int e = 4; int g = 5;
    int i = 0;
    while (i < n) {
      a = a + helper(b, c);
      b = b + c;
      c = c + d;
      d = d + e;
      e = e + g;
      g = g + 1;
      i = i + 1;
    }
    return a + b + c + d + e + g;
  }
})";
  // C++ reference model.
  auto ref = [](int64_t n) {
    int64_t a = 0, b = 1, c = 2, d = 3, e = 4, g = 5;
    for (int64_t i = 0; i < n; ++i) {
      a += b * 2 + c;
      b += c;
      c += d;
      d += e;
      e += g;
      g += 1;
    }
    return a + b + c + d + e + g;
  };
  for (int64_t n : {0, 1, 7, 100}) {
    EXPECT_EQ(CompileAndRun(src, "S", "f", {n}).value(), ref(n)) << n;
  }
}

TEST(JitStressTest, BudgetEnforcedAcrossNestedJitFrames) {
  // The instruction budget is shared across nested JIT frames via the
  // writeback/reload protocol; deep call trees must still exhaust it.
  const char* src = R"(
class S {
  static int leaf(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
    return acc;
  }
  static int f(int reps, int n) {
    int total = 0;
    for (int r = 0; r < reps; r = r + 1) { total = total + leaf(n); }
    return total;
  }
})";
  auto cf = Compile(src).value();
  jvm::Jvm vm;  // JIT on
  ASSERT_TRUE(vm.system_loader()->LoadClass(Slice(cf.Serialize())).ok());
  jvm::SecurityManager allow = jvm::SecurityManager::AllowAll();
  {
    // Generous budget: runs fine, and the retired count reflects nested work.
    jvm::ResourceLimits limits;
    limits.instruction_budget = 10'000'000;
    jvm::ExecContext ctx(&vm, vm.system_loader(), &allow, limits);
    ASSERT_TRUE(ctx.CallStatic("S", "f", {100, 100}).ok());
    EXPECT_GT(ctx.instructions_retired(), 100u * 100u);
  }
  {
    // Tight budget: the work happens in the *leaf* frames; exhaustion must
    // still be detected there and propagate out.
    jvm::ResourceLimits limits;
    limits.instruction_budget = 5000;
    jvm::ExecContext ctx(&vm, vm.system_loader(), &allow, limits);
    Result<int64_t> r = ctx.CallStatic("S", "f", {1000, 1000});
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  }
}

TEST(JitStressTest, ArraysPlusCallsPlusDeepExpressions) {
  const char* src = R"(
class S {
  static int mix(byte[] data, int n) {
    int[] scratch = new int[8];
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      scratch[i % 8] = scratch[i % 8] + data[i % data.length];
      acc = acc + ((i * 3 + scratch[i % 8]) * 2 - (acc / (i + 1)))
            + (i % 5) * (i % 7);
    }
    return acc + scratch[0] + scratch[7];
  }
})";
  // Differential check is built into CompileAndRun (interp vs JIT); a fixed
  // expected value guards against both engines being wrong the same way.
  auto cf = Compile(src).value();
  std::vector<uint8_t> bytes = cf.Serialize();
  int64_t results[2];
  int idx = 0;
  for (bool jit : {false, true}) {
    jvm::JvmOptions opts;
    opts.enable_jit = jit;
    jvm::Jvm vm(opts);
    ASSERT_TRUE(vm.system_loader()->LoadClass(Slice(bytes)).ok());
    jvm::SecurityManager allow = jvm::SecurityManager::AllowAll();
    jvm::ExecContext ctx(&vm, vm.system_loader(), &allow, {});
    auto arr = ctx.NewByteArray(Slice(" @")).value();
    results[idx++] =
        ctx.CallStatic("S", "mix", {reinterpret_cast<int64_t>(arr), 500})
            .value();
  }
  EXPECT_EQ(results[0], results[1]);
}

}  // namespace
}  // namespace jjc
}  // namespace jaguar
