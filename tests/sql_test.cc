// Tests for src/sql: lexer and parser.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace jaguar {
namespace sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT * FROM t WHERE x <= 10.5").value();
  ASSERT_EQ(tokens.size(), 9u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_TRUE(tokens[1].IsSymbol("*"));
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].text, "t");
  EXPECT_TRUE(tokens[5].kind == TokenKind::kIdentifier);
  EXPECT_TRUE(tokens[6].IsSymbol("<="));
  EXPECT_EQ(tokens[7].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[8].kind, TokenKind::kEnd);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'it''s'").value();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsInvalidArgument());
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("SELECT -- everything\n1").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kInteger);
}

TEST(LexerTest, NumbersIncludingExponents) {
  auto tokens = Tokenize("1 2.5 3e4 5e-2 6e 7").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloat);
  // "6e" is integer 6 followed by identifier e.
  EXPECT_EQ(tokens[4].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[5].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("SELECT @x").status().IsInvalidArgument());
}

TEST(ParserTest, PaperQueryInvestVal) {
  // The motivating query from the paper's introduction.
  auto stmt = Parse("SELECT * FROM Stocks S "
                    "WHERE S.type = 'tech' and InvestVal(S.history) > 5")
                  .value();
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  const SelectStmt& sel = stmt.select;
  ASSERT_EQ(sel.items.size(), 1u);
  EXPECT_TRUE(sel.items[0].is_star);
  EXPECT_EQ(sel.table, "Stocks");
  EXPECT_EQ(sel.table_alias, "S");
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->ToString(),
            "((S.type = 'tech') AND (InvestVal(S.history) > 5))");
}

TEST(ParserTest, PaperQueryRedness) {
  auto stmt = Parse("SELECT * FROM Sunsets S "
                    "WHERE REDNESS(S.picture) > 0.7 AND "
                    "S.location = 'fingerlakes'")
                  .value();
  EXPECT_EQ(stmt.select.where->ToString(),
            "((REDNESS(S.picture) > 0.7) AND (S.location = 'fingerlakes'))");
}

TEST(ParserTest, SelectItemsAliasesAndLimit) {
  auto stmt =
      Parse("SELECT a, b + 1 AS bb, f(a, 2) FROM t LIMIT 10;").value();
  const SelectStmt& sel = stmt.select;
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[0].expr->ToString(), "a");
  EXPECT_EQ(sel.items[1].alias, "bb");
  EXPECT_EQ(sel.items[2].expr->ToString(), "f(a, 2)");
  EXPECT_EQ(sel.limit, 10);
  EXPECT_TRUE(sel.table_alias.empty());
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE Rel10000 (id INT, bytes BYTEARRAY, "
                    "name VARCHAR, price DOUBLE, ok BOOL)")
                  .value();
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  const Schema& s = stmt.create_table.schema;
  ASSERT_EQ(s.num_columns(), 5u);
  EXPECT_EQ(s.column(0).type, TypeId::kInt);
  EXPECT_EQ(s.column(1).type, TypeId::kBytes);
  EXPECT_EQ(s.column(2).type, TypeId::kString);
  EXPECT_EQ(s.column(3).type, TypeId::kDouble);
  EXPECT_EQ(s.column(4).type, TypeId::kBool);
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt =
      Parse("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL)").value();
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  ASSERT_EQ(stmt.insert.rows.size(), 3u);
  EXPECT_EQ(stmt.insert.rows[2][1]->ToString(), "NULL");
}

TEST(ParserTest, InsertWithFunctionCalls) {
  auto stmt = Parse("INSERT INTO r VALUES (randbytes(100, 7), 1 + 2)").value();
  EXPECT_EQ(stmt.insert.rows[0][0]->ToString(), "randbytes(100, 7)");
  EXPECT_EQ(stmt.insert.rows[0][1]->ToString(), "(1 + 2)");
}

TEST(ParserTest, DropTable) {
  auto stmt = Parse("DROP TABLE old_stuff").value();
  ASSERT_EQ(stmt.kind, StatementKind::kDropTable);
  EXPECT_EQ(stmt.drop_table.table, "old_stuff");
}

TEST(ParserTest, SetTimeout) {
  auto stmt = Parse("SET TIMEOUT 500").value();
  ASSERT_EQ(stmt.kind, StatementKind::kSetTimeout);
  EXPECT_EQ(stmt.set_timeout.timeout_ms, 500);

  // Keywords are case-insensitive; 0 clears the session override.
  auto cleared = Parse("set timeout 0").value();
  ASSERT_EQ(cleared.kind, StatementKind::kSetTimeout);
  EXPECT_EQ(cleared.set_timeout.timeout_ms, 0);

  EXPECT_TRUE(Parse("SET TIMEOUT").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SET TIMEOUT forever").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SET TIMEOUT -5").status().IsInvalidArgument());
}

TEST(ParserTest, OperatorPrecedence) {
  EXPECT_EQ(ParseExpression("1 + 2 * 3").value()->ToString(),
            "(1 + (2 * 3))");
  EXPECT_EQ(ParseExpression("(1 + 2) * 3").value()->ToString(),
            "((1 + 2) * 3)");
  EXPECT_EQ(ParseExpression("a OR b AND c").value()->ToString(),
            "(a OR (b AND c))");
  EXPECT_EQ(ParseExpression("NOT a = 1").value()->ToString(),
            "NOT ((a = 1))");
  EXPECT_EQ(ParseExpression("-2 + 3").value()->ToString(), "(-(2) + 3)");
  EXPECT_EQ(ParseExpression("1 < 2 AND 3 >= 2").value()->ToString(),
            "((1 < 2) AND (3 >= 2))");
  EXPECT_EQ(ParseExpression("10 % 3").value()->ToString(), "(10 % 3)");
}

TEST(ParserTest, BooleanAndNullLiterals) {
  EXPECT_EQ(ParseExpression("TRUE").value()->ToString(), "true");
  EXPECT_EQ(ParseExpression("false").value()->ToString(), "false");
  EXPECT_EQ(ParseExpression("NULL").value()->ToString(), "NULL");
}

TEST(ParserTest, ErrorsCarryContext) {
  EXPECT_TRUE(Parse("SELECT FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE TABLE t ()").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE TABLE t (a POINT)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("INSERT INTO t VALUES 1").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t LIMIT x").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("BOGUS STATEMENT").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT 1 FROM t extra junk").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpression("1 +").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExpression("f(1,").status().IsInvalidArgument());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(Parse("SELECT 1 FROM t;").ok());
}

TEST(ParserTest, QualifiedAndUnqualifiedColumns) {
  auto e = ParseExpression("S.history").value();
  EXPECT_EQ(e->kind, ExprKind::kColumnRef);
  EXPECT_EQ(e->qualifier, "S");
  EXPECT_EQ(e->column, "history");
  auto e2 = ParseExpression("history").value();
  EXPECT_TRUE(e2->qualifier.empty());
}

TEST(ParserTest, EmptyArgFunctionCall) {
  auto e = ParseExpression("now()").value();
  EXPECT_EQ(e->kind, ExprKind::kFunctionCall);
  EXPECT_TRUE(e->args.empty());
}

TEST(ParserTest, CreateIndex) {
  auto stmt = Parse("CREATE INDEX idx_sym ON stocks (symbol)").value();
  ASSERT_EQ(stmt.kind, StatementKind::kCreateIndex);
  EXPECT_EQ(stmt.create_index.index, "idx_sym");
  EXPECT_EQ(stmt.create_index.table, "stocks");
  EXPECT_EQ(stmt.create_index.column, "symbol");

  EXPECT_TRUE(Parse("create index i on t (c);").ok());  // case + semicolon
  EXPECT_TRUE(Parse("CREATE INDEX ON t (c)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE INDEX i t (c)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE INDEX i ON t ()").status().IsInvalidArgument());
  EXPECT_TRUE(
      Parse("CREATE INDEX i ON t (a, b)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE INDEX i ON t (a").status().IsInvalidArgument());
}

TEST(ParserTest, DropIndex) {
  auto stmt = Parse("DROP INDEX idx_sym").value();
  ASSERT_EQ(stmt.kind, StatementKind::kDropIndex);
  EXPECT_EQ(stmt.drop_index.index, "idx_sym");
  EXPECT_TRUE(Parse("DROP INDEX").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("DROP INDEX i j").status().IsInvalidArgument());
}

TEST(ParserTest, IntegerLiteralsOutsideInt64Fail) {
  // In-range boundaries still parse.
  auto ok = ParseExpression("9223372036854775807").value();
  EXPECT_EQ(ok->literal.AsInt(), INT64_MAX);

  // One past INT64_MAX: previously strtoll silently clamped via errno=ERANGE
  // being ignored; each of the three literal sites must now report an error.
  EXPECT_TRUE(ParseExpression("9223372036854775808").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseExpression("99999999999999999999999999")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE k = 9223372036854775808")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t LIMIT 9223372036854775808")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Parse("SET TIMEOUT 9223372036854775808")
                  .status()
                  .IsInvalidArgument());
  // The error message names the offending literal.
  auto status = Parse("SELECT * FROM t LIMIT 18446744073709551616").status();
  EXPECT_NE(status.message().find("out of 64-bit range"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace sql
}  // namespace jaguar
