// Tests for the UDF execution designs of Table 1 end-to-end through SQL:
// Design 1 (C++), Design 2 (IC++, forked executor over shared memory),
// Design 3 (JNI, JagVM), and the SFI variant — all running the paper's
// generic UDF and agreeing bit-for-bit. Plus unit tests for the ipc and sfi
// substrates.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "ipc/remote_executor.h"
#include "ipc/shm_channel.h"
#include "jjc/jjc.h"
#include "sfi/sfi.h"
#include "udf/generic_udf.h"
#include "udf/isolated_udf_runner.h"
#include "udf/jvm_udf_runner.h"
#include "udf/sfi_udf_runner.h"

namespace jaguar {
namespace {

// ---------------------------------------------------------------------------
// ipc substrate
// ---------------------------------------------------------------------------

TEST(ShmChannelTest, ParentChildPingPong) {
  auto channel = ipc::ShmChannel::Create(4096).value();
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: echo messages back with a prefix until shutdown.
    while (true) {
      auto msg = channel->ReceiveInChild();
      if (!msg.ok() || msg->first == ipc::MsgType::kShutdown) _exit(0);
      std::string text = "echo:" + Slice(msg->second).ToString();
      channel->SendToParent(ipc::MsgType::kResult, Slice(text)).ok();
    }
  }
  for (int i = 0; i < 10; ++i) {
    std::string payload = "msg" + std::to_string(i);
    ASSERT_TRUE(
        channel->SendToChild(ipc::MsgType::kRequest, Slice(payload)).ok());
    auto reply = channel->ReceiveInParent().value();
    EXPECT_EQ(reply.first, ipc::MsgType::kResult);
    EXPECT_EQ(Slice(reply.second).ToString(), "echo:" + payload);
  }
  ASSERT_TRUE(channel->SendToChild(ipc::MsgType::kShutdown, Slice()).ok());
  int status;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
}

TEST(ShmChannelTest, OversizePayloadRejected) {
  auto channel = ipc::ShmChannel::Create(64).value();
  std::vector<uint8_t> big(65);
  EXPECT_TRUE(channel->SendToChild(ipc::MsgType::kRequest, Slice(big))
                  .IsInvalidArgument());
  EXPECT_TRUE(channel->SendToChild(ipc::MsgType::kRequest,
                                   Slice(std::vector<uint8_t>(64)))
                  .ok());
}

TEST(RemoteExecutorTest, ExecutesRequestsAndCallbacks) {
  // Child handler: interprets the request as a count, makes that many
  // callbacks, sums the replies.
  auto handler = [](Slice request,
                    ipc::Channel* channel) -> Result<std::vector<uint8_t>> {
    BufferReader r(request);
    JAGUAR_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    int64_t sum = 0;
    for (uint32_t i = 0; i < count; ++i) {
      BufferWriter cb;
      cb.PutU32(i);
      JAGUAR_RETURN_IF_ERROR(
          channel->SendToParent(ipc::MsgType::kCallbackRequest, cb.AsSlice()));
      JAGUAR_ASSIGN_OR_RETURN(auto reply, channel->ReceiveInChild());
      if (reply.first != ipc::MsgType::kCallbackReply) {
        return Internal("bad reply type");
      }
      BufferReader rr((Slice(reply.second)));
      JAGUAR_ASSIGN_OR_RETURN(int64_t v, rr.ReadI64());
      sum += v;
    }
    BufferWriter out;
    out.PutI64(sum);
    return out.Release();
  };
  auto executor = ipc::RemoteExecutor::Spawn(4096, handler).value();
  EXPECT_GT(executor->child_pid(), 0);

  int callbacks_served = 0;
  auto on_callback = [&](Slice payload) -> Result<std::vector<uint8_t>> {
    BufferReader r(payload);
    JAGUAR_ASSIGN_OR_RETURN(uint32_t i, r.ReadU32());
    ++callbacks_served;
    BufferWriter reply;
    reply.PutI64(i * 10);
    return reply.Release();
  };

  BufferWriter req;
  req.PutU32(5);
  auto result = executor->Execute(req.AsSlice(), on_callback).value();
  BufferReader r((Slice(result)));
  EXPECT_EQ(r.ReadI64().value(), (0 + 1 + 2 + 3 + 4) * 10);
  EXPECT_EQ(callbacks_served, 5);

  // Executors are reusable across requests (per query, per the paper).
  BufferWriter req2;
  req2.PutU32(2);
  ASSERT_TRUE(executor->Execute(req2.AsSlice(), on_callback).ok());
  ASSERT_TRUE(executor->Shutdown().ok());
}

TEST(RemoteExecutorTest, ChildErrorsArriveAsStatus) {
  auto handler = [](Slice request,
                    ipc::Channel*) -> Result<std::vector<uint8_t>> {
    return RuntimeError("deliberate failure in child");
  };
  auto executor = ipc::RemoteExecutor::Spawn(4096, handler).value();
  Result<std::vector<uint8_t>> r = executor->Execute(
      Slice("x"), [](Slice) -> Result<std::vector<uint8_t>> {
        return Internal("no callbacks expected");
      });
  ASSERT_TRUE(r.status().IsRuntimeError());
  EXPECT_NE(r.status().message().find("deliberate failure"),
            std::string::npos);
}

TEST(RemoteExecutorTest, DeadChildTimesOutInsteadOfHanging) {
  auto handler = [](Slice, ipc::Channel*) -> Result<std::vector<uint8_t>> {
    return std::vector<uint8_t>{};
  };
  auto executor = ipc::RemoteExecutor::Spawn(4096, handler).value();
  executor->channel()->set_timeout_seconds(1);
  kill(executor->child_pid(), SIGKILL);
  Result<std::vector<uint8_t>> r = executor->Execute(
      Slice("x"),
      [](Slice) -> Result<std::vector<uint8_t>> { return Internal("none"); });
  EXPECT_TRUE(r.status().IsIoError());
}

// ---------------------------------------------------------------------------
// sfi substrate
// ---------------------------------------------------------------------------

TEST(SfiRegionTest, MaskingConfinesWildAddresses) {
  auto region = sfi::SfiRegion::Create(16).value();  // 64 KB
  EXPECT_EQ(region.size(), 65536u);
  // Base is region-aligned, so OR-free masking works.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(region.base()) % region.size(), 0u);

  region.StoreByte(5, 0xAB);
  EXPECT_EQ(region.LoadByte(5), 0xAB);
  // A wild 64-bit address wraps inside the sandbox instead of escaping.
  region.StoreByte(0xDEADBEEF12345678ULL, 0xCD);
  EXPECT_EQ(region.LoadByte(0xDEADBEEF12345678ULL & region.mask()), 0xCD);
  // Word accessors are 8-byte aligned within the region.
  region.StoreWord(64, -12345);
  EXPECT_EQ(region.LoadWord(64), -12345);
  EXPECT_EQ(region.LoadWord(64 + region.size()), -12345);  // wraps
}

TEST(SfiRegionTest, CopyInOutBoundsChecked) {
  auto region = sfi::SfiRegion::Create(12).value();  // 4 KB
  std::vector<uint8_t> data(100, 7);
  ASSERT_TRUE(region.CopyIn(0, data.data(), data.size()).ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(region.CopyOut(0, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(region.CopyIn(4000, data.data(), 100).IsInvalidArgument());
  EXPECT_TRUE(region.CopyOut(5000, out.data(), 1).IsInvalidArgument());
  EXPECT_TRUE(sfi::SfiRegion::Create(5).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// All designs end-to-end through SQL
// ---------------------------------------------------------------------------

class DesignsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_designs_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_, options_).value();
    MustExecute("CREATE TABLE r (b BYTEARRAY)");
    MustExecute("INSERT INTO r VALUES (randbytes(300, 21)), "
                "(randbytes(300, 22))");
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  QueryResult MustExecute(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  /// Registers the generic UDF as `name` under the given design.
  void RegisterGeneric(const std::string& name, UdfLanguage lang) {
    UdfInfo info;
    info.name = name;
    info.language = lang;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                      TypeId::kInt};
    if (lang == UdfLanguage::kJJava || lang == UdfLanguage::kJJavaIsolated) {
      auto cf = jjc::Compile(GenericUdfJJavaSource()).value();
      info.impl_name = "GenericUdf.run";
      info.payload = cf.Serialize();
    } else {
      info.impl_name = "generic_udf";
    }
    ASSERT_TRUE(db_->RegisterUdf(info).ok()) << name;
  }

  DatabaseOptions options_;
  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(DesignsTest, AllDesignsComputeIdenticalResults) {
  RegisterGeneric("g_ic", UdfLanguage::kNativeIsolated);
  RegisterGeneric("g_jni", UdfLanguage::kJJava);
  RegisterGeneric("g_sfi", UdfLanguage::kNativeSfi);
  RegisterGeneric("g_ijni", UdfLanguage::kJJavaIsolated);  // Design 4

  const char* query_fmt = "SELECT %s(b, 50, 3, 4) FROM r";
  QueryResult native = MustExecute(StringPrintf(query_fmt, "generic_udf"));
  for (const char* name : {"g_ic", "g_jni", "g_sfi", "g_ijni"}) {
    QueryResult r = MustExecute(StringPrintf(query_fmt, name));
    ASSERT_EQ(r.rows.size(), native.rows.size()) << name;
    for (size_t i = 0; i < r.rows.size(); ++i) {
      EXPECT_TRUE(r.rows[i].value(0).Equals(native.rows[i].value(0)))
          << name << " row " << i;
    }
  }
  // Cross-check against the pure model.
  EXPECT_EQ(native.rows[0].value(0).AsInt(),
            GenericUdfExpected(Random(21).Bytes(300), 50, 3, 4));
}

TEST_F(DesignsTest, CallbacksReachTheServerFromEveryDesign) {
  RegisterGeneric("g_ic", UdfLanguage::kNativeIsolated);
  RegisterGeneric("g_jni", UdfLanguage::kJJava);
  RegisterGeneric("g_ijni", UdfLanguage::kJJavaIsolated);
  uint64_t before = db_->callbacks_served();
  MustExecute("SELECT g_ic(b, 0, 0, 5) FROM r");    // 2 rows x 5
  MustExecute("SELECT g_jni(b, 0, 0, 7) FROM r");   // 2 rows x 7
  MustExecute("SELECT g_ijni(b, 0, 0, 3) FROM r");  // 2 rows x 3: the
  // callback crosses VM boundary + process boundary + back.
  EXPECT_EQ(db_->callbacks_served() - before, 2u * 5 + 2u * 7 + 2u * 3);
}

TEST_F(DesignsTest, Design4FaultsStayInTheChild) {
  // A runtime fault in the isolated VM fails the query; both the executor
  // child and the server survive (double isolation).
  const char* bad_src = R"(
class Bad4 {
  static int run(byte[] data) { return data[9999999]; }
})";
  UdfInfo info;
  info.name = "bad4";
  info.language = UdfLanguage::kJJavaIsolated;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "Bad4.run";
  info.payload = jjc::Compile(bad_src).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());
  EXPECT_TRUE(db_->Execute("SELECT bad4(b) FROM r").status().IsRuntimeError());
  // The same executor keeps serving after the fault.
  EXPECT_TRUE(db_->Execute("SELECT bad4(b) FROM r").status().IsRuntimeError());
  EXPECT_EQ(MustExecute("SELECT length(b) FROM r").rows.size(), 2u);
}

TEST_F(DesignsTest, JJavaRuntimeFaultsFailTheQueryNotTheServer) {
  // A UDF with an out-of-bounds access: the query fails cleanly and the
  // server keeps serving (the paper's core safety claim for Design 3).
  const char* bad_src = R"(
class Bad {
  static int run(byte[] data) { return data[data.length]; }
})";
  UdfInfo info;
  info.name = "bad";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "Bad.run";
  info.payload = jjc::Compile(bad_src).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());

  EXPECT_TRUE(db_->Execute("SELECT bad(b) FROM r").status().IsRuntimeError());
  // Server is fine.
  EXPECT_EQ(MustExecute("SELECT length(b) FROM r").rows.size(), 2u);
}

TEST_F(DesignsTest, JJavaInstructionBudgetKillsInfiniteLoops) {
  db_.reset();
  std::remove(path_.c_str());
  options_.udf_instruction_budget = 1000000;
  db_ = Database::Open(path_, options_).value();
  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (zerobytes(1))");

  const char* spin_src = R"(
class Spin {
  static int run(byte[] data) {
    int x = 0;
    while (0 == 0) { x = x + 1; }
    return x;
  }
})";
  UdfInfo info;
  info.name = "spin";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "Spin.run";
  info.payload = jjc::Compile(spin_src).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());
  EXPECT_TRUE(db_->Execute("SELECT spin(b) FROM r")
                  .status()
                  .IsResourceExhausted());
  // The server survives the denial-of-service attempt.
  EXPECT_TRUE(db_->Execute("SELECT length(b) FROM r").ok());
}

TEST_F(DesignsTest, JJavaHeapQuotaStopsAllocationBombs) {
  db_.reset();
  std::remove(path_.c_str());
  options_.udf_heap_quota_bytes = 4 << 20;
  db_ = Database::Open(path_, options_).value();
  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (zerobytes(1))");

  const char* bomb_src = R"(
class Bomb {
  static int run(byte[] data) {
    int i = 0;
    while (i < 1000000) {
      byte[] waste = new byte[1048576];
      waste[0] = 1;
      i = i + 1;
    }
    return i;
  }
})";
  UdfInfo info;
  info.name = "bomb";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "Bomb.run";
  info.payload = jjc::Compile(bomb_src).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());
  EXPECT_TRUE(
      db_->Execute("SELECT bomb(b) FROM r").status().IsResourceExhausted());
}

TEST_F(DesignsTest, SecurityManagerBlocksUngrantedNatives) {
  // The server offers a privileged native that UDFs are NOT granted.
  ASSERT_TRUE(db_->vm()
                  ->RegisterNative(
                      {"Server.dropAllTables",
                       jvm::Signature::Parse("()I").value(),
                       "server.admin",
                       [](jvm::NativeCallInfo* info) {
                         info->result = 1;
                         return Status::OK();
                       }})
                  .ok());
  jjc::CompileOptions copts;
  copts.native_decls["Server.dropAllTables"] = "()I";
  const char* evil_src = R"(
class Evil {
  static int run(byte[] data) { return Server.dropAllTables(); }
})";
  UdfInfo info;
  info.name = "evil";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "Evil.run";
  info.payload = jjc::Compile(evil_src, copts).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());
  EXPECT_TRUE(db_->Execute("SELECT evil(b) FROM r")
                  .status()
                  .IsSecurityViolation());
}

TEST_F(DesignsTest, RegistrationRejectsBadUploads) {
  UdfInfo info;
  info.name = "broken";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "X.run";
  // Garbage payload: rejected at registration, not at query time.
  info.payload = {1, 2, 3, 4};
  EXPECT_TRUE(db_->RegisterUdf(info).IsVerificationError());

  // Valid class, wrong declared signature.
  info.payload =
      jjc::Compile("class X { static int run(int a) { return a; } }")
          .value()
          .Serialize();
  EXPECT_TRUE(db_->RegisterUdf(info).IsInvalidArgument());

  // Missing entry point.
  info.payload =
      jjc::Compile("class X { static int other(byte[] b) { return 0; } }")
          .value()
          .Serialize();
  EXPECT_TRUE(db_->RegisterUdf(info).IsNotFound());
}

TEST_F(DesignsTest, JJavaFetchCallbackReadsLobs) {
  // A JJava UDF that fetches a clip of a server-side large object by handle
  // (the Clip()/Lookup() pattern of Section 5.5).
  Random rng(5);
  auto img = rng.Bytes(4096);
  int64_t handle = db_->StoreLob(img).value();

  const char* src = R"(
class ClipSum {
  static int run(int handle, int offset, int len) {
    byte[] clip = Jaguar.fetch(handle, offset, len);
    int acc = 0;
    for (int i = 0; i < clip.length; i = i + 1) { acc = acc + clip[i]; }
    return acc;
  }
})";
  UdfInfo info;
  info.name = "clipsum";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kInt, TypeId::kInt, TypeId::kInt};
  info.impl_name = "ClipSum.run";
  info.payload = jjc::Compile(src).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());

  QueryResult r = MustExecute(
      StringPrintf("SELECT clipsum(%lld, 100, 50) FROM r LIMIT 1",
                   static_cast<long long>(handle)));
  int64_t expected = 0;
  for (int i = 100; i < 150; ++i) expected += img[i];
  EXPECT_EQ(r.rows[0].value(0).AsInt(), expected);
}

TEST_F(DesignsTest, IsolatedExecutorSurvivesManyInvocations) {
  RegisterGeneric("g_ic", UdfLanguage::kNativeIsolated);
  // One executor, many invocations (amortization per Section 2.5).
  QueryResult r = MustExecute("SELECT g_ic(b, 1, 1, 1) FROM r");
  EXPECT_EQ(r.rows.size(), 2u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(MustExecute("SELECT g_ic(b, 0, 0, 0) FROM r").rows.size(), 2u);
  }
}

TEST_F(DesignsTest, BatchedExecutionMatchesScalarAndHalvesCrossings) {
  // Scalar database (the fixture's) vs a vectorized one over identical
  // data: every design must produce byte-identical rows, and the designs
  // that pay a per-invocation boundary crossing (IC++, JNI, IJNI) must pay
  // at least 2x fewer crossings in batch mode.
  auto load = [](Database* db) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Execute(StringPrintf(
                                  "INSERT INTO r VALUES (randbytes(100, %d))",
                                  30 + i))
                      .ok());
    }
  };
  db_.reset();
  std::remove(path_.c_str());
  db_ = Database::Open(path_, options_).value();
  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  load(db_.get());
  RegisterGeneric("g_ic", UdfLanguage::kNativeIsolated);
  RegisterGeneric("g_jni", UdfLanguage::kJJava);
  RegisterGeneric("g_sfi", UdfLanguage::kNativeSfi);
  RegisterGeneric("g_ijni", UdfLanguage::kJJavaIsolated);

  const std::string batched_path = path_ + ".batched";
  std::remove(batched_path.c_str());
  DatabaseOptions batched_options = options_;
  batched_options.vectorized_execution = true;
  batched_options.batch_size = 4;
  auto batched_db = Database::Open(batched_path, batched_options).value();
  ASSERT_TRUE(batched_db->Execute("CREATE TABLE r (b BYTEARRAY)").ok());
  load(batched_db.get());
  auto register_on = [](Database* db, const std::string& name,
                        UdfLanguage lang) {
    UdfInfo info;
    info.name = name;
    info.language = lang;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
    if (lang == UdfLanguage::kJJava || lang == UdfLanguage::kJJavaIsolated) {
      info.impl_name = "GenericUdf.run";
      info.payload = jjc::Compile(GenericUdfJJavaSource()).value().Serialize();
    } else {
      info.impl_name = "generic_udf";
    }
    ASSERT_TRUE(db->RegisterUdf(info).ok()) << name;
  };
  register_on(batched_db.get(), "g_ic", UdfLanguage::kNativeIsolated);
  register_on(batched_db.get(), "g_jni", UdfLanguage::kJJava);
  register_on(batched_db.get(), "g_sfi", UdfLanguage::kNativeSfi);
  register_on(batched_db.get(), "g_ijni", UdfLanguage::kJJavaIsolated);

  auto crossings = [](const QueryResult& r, const std::string& design) {
    const std::string key = design == "g_jni" ? "jvm.boundary.crossings"
                                              : "ipc.shm.messages";
    auto it = r.metrics_delta.find(key);
    return it != r.metrics_delta.end() ? it->second : uint64_t{0};
  };
  const char* query_fmt = "SELECT %s(b, 20, 3, 0) FROM r";
  for (const char* name : {"generic_udf", "g_ic", "g_jni", "g_sfi", "g_ijni"}) {
    QueryResult scalar = MustExecute(StringPrintf(query_fmt, name));
    Result<QueryResult> br =
        batched_db->Execute(StringPrintf(query_fmt, name));
    ASSERT_TRUE(br.ok()) << name << " -> " << br.status();
    const QueryResult& batched = *br;
    ASSERT_EQ(batched.rows.size(), scalar.rows.size()) << name;
    for (size_t i = 0; i < scalar.rows.size(); ++i) {
      EXPECT_EQ(Slice(batched.rows[i].Serialize()).ToString(),
                Slice(scalar.rows[i].Serialize()).ToString())
          << name << " row " << i;
    }
    if (std::string(name) == "g_ic" || std::string(name) == "g_jni" ||
        std::string(name) == "g_ijni") {
      const uint64_t per_tuple = crossings(scalar, name);
      const uint64_t per_batch = crossings(batched, name);
      EXPECT_GE(per_tuple, 2 * per_batch) << name << ": " << per_tuple
                                          << " -> " << per_batch;
      EXPECT_GT(per_batch, 0u) << name;
    }
    if (std::string(name) == "g_ic" || std::string(name) == "g_ijni") {
      // Batched requests carry >1 row per shm message; scalar never does.
      EXPECT_GE(batched.metrics_delta.count("ipc.batch_messages"), 1u) << name;
      EXPECT_EQ(scalar.metrics_delta.count("ipc.batch_messages"), 0u) << name;
    }
  }

  // Callbacks still reach the server exactly once per (row, callback) in
  // batch mode — forwarded out of the batched crossing individually.
  uint64_t before = batched_db->callbacks_served();
  Result<QueryResult> cb = batched_db->Execute("SELECT g_ic(b, 0, 0, 2) FROM r");
  ASSERT_TRUE(cb.ok()) << cb.status();
  EXPECT_EQ(batched_db->callbacks_served() - before, 10u * 2);

  batched_db.reset();
  std::remove(batched_path.c_str());
}

TEST_F(DesignsTest, JitToggleChangesNothingSemantically) {
  db_.reset();
  std::remove(path_.c_str());
  options_.udf_jit = false;
  db_ = Database::Open(path_, options_).value();
  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (randbytes(200, 9))");
  RegisterGeneric("g_jni", UdfLanguage::kJJava);
  QueryResult r = MustExecute("SELECT g_jni(b, 25, 2, 3) FROM r");
  EXPECT_EQ(r.rows[0].value(0).AsInt(),
            GenericUdfExpected(Random(9).Bytes(200), 25, 2, 3));
  EXPECT_EQ(db_->vm()->stats().methods_jitted, 0u);
}

}  // namespace
}  // namespace jaguar
