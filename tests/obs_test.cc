// Tests for the src/obs metrics layer: registry registration/lookup, counter
// concurrency, histogram bucket/percentile math, snapshot-delta semantics,
// prefix filtering — plus the end-to-end acceptance path: a query invoking a
// JNI-design UDF 10,000 times is fully observable through both SHOW METRICS
// and the QueryResult metrics delta.

#include "obs/metrics.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "engine/database.h"
#include "jjc/jjc.h"
#include "udf/generic_udf.h"
#include "udf/udf.h"

namespace jaguar {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// Metric names in these tests are namespaced under "test.obs." so they never
// collide with the real instrumentation (the registry is process-global and
// shared with every other test in this binary).

TEST(MetricsRegistryTest, CounterRegistrationAndLookup) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  Counter* a = reg->GetCounter("test.obs.reg.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reg->GetCounter("test.obs.reg.a"), a);  // stable pointer
  EXPECT_NE(reg->GetCounter("test.obs.reg.b"), a);

  a->Add();
  a->Add(41);
  EXPECT_EQ(a->value(), 42u);
}

TEST(MetricsRegistryTest, NameHoldsOneKindOnly) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  ASSERT_NE(reg->GetCounter("test.obs.kind.counter"), nullptr);
  EXPECT_EQ(reg->GetHistogram("test.obs.kind.counter"), nullptr);
  ASSERT_NE(reg->GetHistogram("test.obs.kind.hist"), nullptr);
  EXPECT_EQ(reg->GetCounter("test.obs.kind.hist"), nullptr);
}

TEST(MetricsRegistryTest, CounterConcurrencySumsExactly) {
  Counter* c = MetricsRegistry::Global()->GetCounter("test.obs.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket index == bit width: bucket 0 holds only 0, bucket i holds
  // [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 62), 63);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()), 63);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(63),
            std::numeric_limits<uint64_t>::max());

  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(3);
  h.Record(8);
  std::vector<uint64_t> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[4], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(HistogramTest, PercentileMath) {
  Histogram empty;
  EXPECT_EQ(empty.ValueAtPercentile(50), 0u);

  Histogram single;
  single.Record(5);
  // One sample in bucket 3 ([4,7]); every percentile answers that bucket's
  // upper bound.
  EXPECT_EQ(single.ValueAtPercentile(0), 7u);
  EXPECT_EQ(single.ValueAtPercentile(50), 7u);
  EXPECT_EQ(single.ValueAtPercentile(100), 7u);

  // 1..100 once each: cumulative bucket counts are 1,3,7,15,31,63,100.
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.ValueAtPercentile(1), 1u);     // rank 1 -> bucket 1
  EXPECT_EQ(h.ValueAtPercentile(25), 31u);   // rank 25 -> bucket 5 [16,31]
  EXPECT_EQ(h.ValueAtPercentile(50), 63u);   // rank 50 -> bucket 6 [32,63]
  EXPECT_EQ(h.ValueAtPercentile(100), 127u);  // rank 100 -> bucket 7 [64,127]
  // The approximation never undershoots the true percentile and stays
  // within one power of two above it.
  for (double p : {10.0, 30.0, 60.0, 90.0, 99.0}) {
    uint64_t truth = static_cast<uint64_t>(p);  // value v has rank v here
    EXPECT_GE(h.ValueAtPercentile(p), truth);
    EXPECT_LT(h.ValueAtPercentile(p), truth * 2 + 2);
  }
}

TEST(MetricsRegistryTest, TimerRecordsIntoHistogram) {
  Histogram* h = MetricsRegistry::Global()->GetHistogram("test.obs.timer");
  { obs::Timer t(h); }
  EXPECT_EQ(h->count(), 1u);
  { obs::Timer t(nullptr); }  // null histogram: no-op, must not crash
  EXPECT_EQ(h->count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotDeltaSemantics) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  Counter* changed = reg->GetCounter("test.obs.delta.changed");
  reg->GetCounter("test.obs.delta.idle");
  Histogram* hist = reg->GetHistogram("test.obs.delta.hist");

  MetricsSnapshot before = reg->Snapshot("test.obs.delta.");
  changed->Add(7);
  hist->Record(100);
  Counter* late = reg->GetCounter("test.obs.delta.late");  // born after
  late->Add(2);
  MetricsSnapshot after = reg->Snapshot("test.obs.delta.");

  MetricsSnapshot delta = obs::SnapshotDelta(before, after);
  EXPECT_EQ(delta.at("test.obs.delta.changed"), 7u);
  EXPECT_EQ(delta.at("test.obs.delta.hist.count"), 1u);
  EXPECT_EQ(delta.at("test.obs.delta.hist.sum"), 100u);
  // Metrics registered after `before` count from zero.
  EXPECT_EQ(delta.at("test.obs.delta.late"), 2u);
  // Unchanged metrics are dropped.
  EXPECT_EQ(delta.count("test.obs.delta.idle"), 0u);
}

TEST(MetricsRegistryTest, PrefixFiltering) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  reg->GetCounter("test.obs.like.alpha")->Add();
  reg->GetCounter("test.obs.like.beta")->Add();
  reg->GetCounter("test.obs.unlike.gamma")->Add();

  MetricsSnapshot snap = reg->Snapshot("test.obs.like.");
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.count("test.obs.like.alpha"), 1u);
  EXPECT_EQ(snap.count("test.obs.unlike.gamma"), 0u);

  std::string text = reg->DumpText("test.obs.like.");
  EXPECT_NE(text.find("test.obs.like.alpha"), std::string::npos);
  EXPECT_EQ(text.find("test.obs.unlike.gamma"), std::string::npos);

  std::string json = reg->DumpJson("test.obs.like.");
  EXPECT_NE(json.find("\"test.obs.like.beta\":"), std::string::npos);
  EXPECT_EQ(json.find("gamma"), std::string::npos);

  auto rows = reg->Rows("test.obs.like.");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "test.obs.like.alpha");
  EXPECT_EQ(rows[0].second, "1");
}

TEST(MetricsRegistryTest, DesignMetricKeyMapping) {
  EXPECT_EQ(UdfRunner::DesignMetricKey("C++"), "cpp");
  EXPECT_EQ(UdfRunner::DesignMetricKey("IC++"), "icpp");
  EXPECT_EQ(UdfRunner::DesignMetricKey("JNI"), "jni");
  EXPECT_EQ(UdfRunner::DesignMetricKey("IJNI"), "ijni");
  EXPECT_EQ(UdfRunner::DesignMetricKey("SFI-C++"), "sfi_cpp");
}

// ---------------------------------------------------------------------------
// End-to-end: SHOW METRICS + QueryResult delta over a real JNI workload
// ---------------------------------------------------------------------------

class MetricsE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_obs_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  QueryResult MustExecute(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  /// Finds a metric row by exact name in a SHOW METRICS result; returns its
  /// value parsed as an integer (-1 if absent).
  static int64_t MetricRow(const QueryResult& result,
                           const std::string& name) {
    for (const Tuple& row : result.rows) {
      if (row.value(0).AsString() == name) {
        return atoll(row.value(1).AsString().c_str());
      }
    }
    return -1;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(MetricsE2eTest, JniWorkloadIsObservableThreeWays) {
  // The acceptance workload: a JNI-design UDF invoked exactly 10,000 times.
  constexpr int kRows = 10000;
  MustExecute("CREATE TABLE r (id INT, b BYTEARRAY)");
  for (int base = 0; base < kRows; base += 500) {
    std::string sql = "INSERT INTO r VALUES ";
    for (int i = 0; i < 500; ++i) {
      if (i > 0) sql += ", ";
      sql += StringPrintf("(%d, randbytes(4, %d))", base + i, base + i);
    }
    MustExecute(sql);
  }

  UdfInfo info;
  info.name = "g_jni";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
  info.impl_name = "GenericUdf.run";
  info.payload = jjc::Compile(GenericUdfJJavaSource()).value().Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());

  obs::MetricsSnapshot before = MetricsRegistry::Global()->Snapshot("udf.jni.");

  QueryResult r = MustExecute("SELECT g_jni(b, 10, 10, 0) FROM r");
  ASSERT_EQ(r.rows.size(), static_cast<size_t>(kRows));

  // Way 1: programmatic per-query snapshot delta in the QueryResult.
  EXPECT_EQ(r.metrics_delta.at("udf.jni.invocations"), 10000u);
  EXPECT_EQ(r.metrics_delta.at("udf.jni.latency_ns.count"), 10000u);
  EXPECT_GT(r.metrics_delta.at("udf.jni.latency_ns.sum"), 0u);
  EXPECT_GT(r.metrics_delta.at("udf.jni.arg_bytes"), 0u);
  EXPECT_GE(r.metrics_delta.at("jvm.jit.compiled_methods"), 1u);
  EXPECT_GT(r.metrics_delta.at("jvm.heap.allocations"), 0u);

  // Way 2: the raw registry (what DumpText/DumpJson serve). `before` may
  // predate the udf.jni.* counters entirely (they are born on first use), so
  // compare via SnapshotDelta, which treats absent-before as zero.
  obs::MetricsSnapshot registry_delta = obs::SnapshotDelta(
      before, MetricsRegistry::Global()->Snapshot("udf.jni."));
  EXPECT_EQ(registry_delta.at("udf.jni.invocations"), 10000u);

  // Way 3: SHOW METRICS through the SQL front door.
  QueryResult shown = MustExecute("SHOW METRICS LIKE 'udf.jni.'");
  ASSERT_EQ(shown.schema.num_columns(), 2u);
  EXPECT_GE(MetricRow(shown, "udf.jni.invocations"), 10000);
  EXPECT_GE(MetricRow(shown, "udf.jni.latency_ns.count"), 10000);
  EXPECT_GT(MetricRow(shown, "udf.jni.latency_ns.p50"), 0);
  // The LIKE filter really filters.
  EXPECT_EQ(MetricRow(shown, "jvm.jit.compiled_methods"), -1);

  QueryResult jit = MustExecute("SHOW METRICS LIKE 'jvm.jit.'");
  EXPECT_GE(MetricRow(jit, "jvm.jit.compiled_methods"), 1);

  QueryResult all = MustExecute("SHOW METRICS");
  EXPECT_GT(all.rows.size(), shown.rows.size());
}

TEST_F(MetricsE2eTest, ShowMetricsParseErrors) {
  EXPECT_FALSE(db_->Execute("SHOW METRICS LIKE udf").ok());  // unquoted
  EXPECT_FALSE(db_->Execute("SHOW TABLES").ok());
  EXPECT_FALSE(db_->Execute("SHOW METRICS 'x'").ok());  // trailing junk
}

TEST_F(MetricsE2eTest, DmlStatementsCarryDeltas) {
  MustExecute("CREATE TABLE t (x INT)");
  QueryResult ins = MustExecute("INSERT INTO t VALUES (1), (2), (3)");
  // Storage-layer activity shows up in the DML delta (page writes hit the
  // buffer pool at minimum).
  bool saw_storage = false;
  for (const auto& [name, value] : ins.metrics_delta) {
    if (name.rfind("storage.bufferpool.", 0) == 0 && value > 0) {
      saw_storage = true;
    }
  }
  EXPECT_TRUE(saw_storage);

  QueryResult sel = MustExecute("SELECT x FROM t");
  EXPECT_EQ(sel.metrics_delta.at("exec.seqscan.tuples"), 3u);
  EXPECT_EQ(sel.metrics_delta.at("exec.project.tuples"), 3u);
}

}  // namespace
}  // namespace jaguar
