// Tests for the extended SQL surface: aggregates (COUNT/SUM/AVG/MIN/MAX,
// COUNT(*)), ORDER BY [ASC|DESC], DELETE FROM ... WHERE, and their
// interaction with UDFs and NULLs. Plus the security audit log (the
// Section 6.1 capability the paper found missing in Java).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/database.h"
#include "jjc/jjc.h"

namespace jaguar {
namespace {

class SqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_sqlf_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
    MustExecute("CREATE TABLE orders (id INT, customer STRING, total DOUBLE, "
                "qty INT)");
    MustExecute("INSERT INTO orders VALUES "
                "(1, 'alice', 10.5, 3), "
                "(2, 'bob', 20.0, 1), "
                "(3, 'alice', 7.25, 2), "
                "(4, 'carol', 99.0, 7), "
                "(5, 'bob', NULL, NULL)");
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  QueryResult MustExecute(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  static uint64_t MetricDelta(const QueryResult& r, const std::string& name) {
    auto it = r.metrics_delta.find(name);
    return it != r.metrics_delta.end() ? it->second : uint64_t{0};
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(SqlFeaturesTest, CountStarAndCountColumn) {
  QueryResult r = MustExecute("SELECT COUNT(*) FROM orders");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 5);
  // COUNT(col) ignores NULLs.
  r = MustExecute("SELECT COUNT(total) FROM orders");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 4);
  // COUNT under a predicate.
  r = MustExecute("SELECT COUNT(*) FROM orders WHERE customer = 'alice'");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 2);
}

TEST_F(SqlFeaturesTest, SumAvgMinMax) {
  QueryResult r = MustExecute(
      "SELECT SUM(total) AS s, AVG(total) AS a, MIN(total) AS lo, "
      "MAX(total) AS hi, SUM(qty) FROM orders");
  EXPECT_DOUBLE_EQ(r.rows[0].value(0).AsDouble(), 10.5 + 20.0 + 7.25 + 99.0);
  EXPECT_DOUBLE_EQ(r.rows[0].value(1).AsDouble(),
                   (10.5 + 20.0 + 7.25 + 99.0) / 4);
  EXPECT_DOUBLE_EQ(r.rows[0].value(2).AsDouble(), 7.25);
  EXPECT_DOUBLE_EQ(r.rows[0].value(3).AsDouble(), 99.0);
  // Integer SUM stays an integer.
  EXPECT_EQ(r.rows[0].value(4).AsInt(), 13);
  EXPECT_EQ(r.schema.column(0).name, "s");
  EXPECT_EQ(r.schema.column(1).name, "a");
}

TEST_F(SqlFeaturesTest, AggregatesOverExpressionsAndEmptyInput) {
  QueryResult r = MustExecute(
      "SELECT SUM(qty * 2) FROM orders WHERE customer = 'alice'");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), (3 + 2) * 2);
  // Empty input: COUNT is 0, the others are NULL.
  r = MustExecute("SELECT COUNT(*), SUM(qty), MIN(total) FROM orders "
                  "WHERE id > 100");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 0);
  EXPECT_TRUE(r.rows[0].value(1).is_null());
  EXPECT_TRUE(r.rows[0].value(2).is_null());
}

TEST_F(SqlFeaturesTest, AggregateErrors) {
  EXPECT_TRUE(db_->Execute("SELECT id, COUNT(*) FROM orders")
                  .status()
                  .IsNotSupported());  // no GROUP BY
  EXPECT_FALSE(db_->Execute("SELECT SUM(customer) FROM orders").ok());
}

TEST_F(SqlFeaturesTest, OrderByAscDescAndExpressions) {
  QueryResult r = MustExecute("SELECT id FROM orders WHERE qty > 0 "
                              "ORDER BY total");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 3);   // 7.25
  EXPECT_EQ(r.rows[3].value(0).AsInt(), 4);   // 99.0

  r = MustExecute("SELECT id FROM orders WHERE qty > 0 "
                  "ORDER BY total DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 4);
  EXPECT_EQ(r.rows[1].value(0).AsInt(), 2);

  // Order by an expression over columns.
  r = MustExecute("SELECT id FROM orders WHERE qty > 0 ORDER BY qty * -1");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 4);  // qty 7 first
}

TEST_F(SqlFeaturesTest, OrderByStringsAndNulls) {
  QueryResult r = MustExecute("SELECT customer FROM orders ORDER BY customer");
  EXPECT_EQ(r.rows[0].value(0).AsString(), "alice");
  EXPECT_EQ(r.rows.back().value(0).AsString(), "carol");
  // NULL keys sort first ascending.
  r = MustExecute("SELECT id FROM orders ORDER BY total");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 5);
}

TEST_F(SqlFeaturesTest, DeleteWithPredicate) {
  QueryResult r = MustExecute("DELETE FROM orders WHERE customer = 'bob'");
  EXPECT_EQ(r.rows_affected, 2u);
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM orders").rows[0].value(0).AsInt(),
            3);
  // Delete everything.
  r = MustExecute("DELETE FROM orders");
  EXPECT_EQ(r.rows_affected, 3u);
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM orders").rows[0].value(0).AsInt(),
            0);
  // Table still usable.
  MustExecute("INSERT INTO orders VALUES (9, 'dave', 1.0, 1)");
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM orders").rows[0].value(0).AsInt(),
            1);
}

TEST_F(SqlFeaturesTest, DeleteErrors) {
  EXPECT_TRUE(db_->Execute("DELETE FROM missing").status().IsNotFound());
  EXPECT_TRUE(db_->Execute("DELETE FROM __lobs").status().IsInvalidArgument());
}

TEST_F(SqlFeaturesTest, UdfsInsideAggregatesOrderByAndDelete) {
  MustExecute("CREATE TABLE blobs (id INT, b BYTEARRAY)");
  MustExecute("INSERT INTO blobs VALUES (1, randbytes(10, 1)), "
              "(2, randbytes(300, 2)), (3, randbytes(90, 3))");
  // Aggregate over a UDF result.
  QueryResult r = MustExecute("SELECT MAX(length(b)) FROM blobs");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 300);
  // ORDER BY a UDF result.
  r = MustExecute("SELECT id FROM blobs ORDER BY length(b) DESC");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 2);
  // DELETE with a UDF predicate.
  r = MustExecute("DELETE FROM blobs WHERE length(b) > 100");
  EXPECT_EQ(r.rows_affected, 1u);
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM blobs").rows[0].value(0).AsInt(),
            2);
}

TEST_F(SqlFeaturesTest, AuditLogTracesViolationsToTheUdf) {
  // A privileged native the UDF is not granted.
  ASSERT_TRUE(db_->vm()
                  ->RegisterNative({"Server.secrets",
                                    jvm::Signature::Parse("()I").value(),
                                    "server.secrets",
                                    [](jvm::NativeCallInfo* info) {
                                      info->result = 42;
                                      return Status::OK();
                                    }})
                  .ok());
  jjc::CompileOptions copts;
  copts.native_decls["Server.secrets"] = "()I";
  UdfInfo info;
  info.name = "snoop";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kInt};
  info.impl_name = "Snoop.run";
  info.payload =
      jjc::Compile("class Snoop { static int run(int x) "
                   "{ return Server.secrets(); } }",
                   copts)
          .value()
          .Serialize();
  ASSERT_TRUE(db_->RegisterUdf(info).ok());

  uint64_t denials_before = db_->vm()->audit_log()->denials();
  Result<QueryResult> r = db_->Execute("SELECT snoop(id) FROM orders LIMIT 2");
  ASSERT_TRUE(r.status().IsSecurityViolation());
  // The violation names the principal...
  EXPECT_NE(r.status().message().find("snoop"), std::string::npos);
  // ...and is recorded in the audit trail, attributable to the UDF.
  EXPECT_GT(db_->vm()->audit_log()->denials(), denials_before);
  auto denials = db_->vm()->audit_log()->DenialsFor("snoop");
  ASSERT_FALSE(denials.empty());
  EXPECT_EQ(denials[0].permission, "server.secrets");

  // Legitimate callbacks are audited as grants.
  MustExecute("CREATE TABLE r2 (b BYTEARRAY)");
  MustExecute("INSERT INTO r2 VALUES (zerobytes(1))");
  UdfInfo ok_udf;
  ok_udf.name = "pinger";
  ok_udf.language = UdfLanguage::kJJava;
  ok_udf.return_type = TypeId::kInt;
  ok_udf.arg_types = {TypeId::kBytes};
  ok_udf.impl_name = "Ping.run";
  ok_udf.payload =
      jjc::Compile("class Ping { static int run(byte[] b) "
                   "{ return Jaguar.callback(0, 7); } }")
          .value()
          .Serialize();
  ASSERT_TRUE(db_->RegisterUdf(ok_udf).ok());
  uint64_t grants_before = db_->vm()->audit_log()->grants();
  MustExecute("SELECT pinger(b) FROM r2");
  EXPECT_GT(db_->vm()->audit_log()->grants(), grants_before);
}

TEST_F(SqlFeaturesTest, GroupByBasics) {
  QueryResult r = MustExecute(
      "SELECT customer, COUNT(*) AS n, SUM(qty) AS q FROM orders "
      "GROUP BY customer");
  ASSERT_EQ(r.rows.size(), 3u);  // alice, bob, carol (map-ordered by key)
  // Find alice's row.
  bool found = false;
  for (const Tuple& row : r.rows) {
    if (row.value(0).AsString() == "alice") {
      EXPECT_EQ(row.value(1).AsInt(), 2);
      EXPECT_EQ(row.value(2).AsInt(), 5);
      found = true;
    }
    if (row.value(0).AsString() == "bob") {
      EXPECT_EQ(row.value(1).AsInt(), 2);   // count(*) counts NULL rows too
      EXPECT_EQ(row.value(2).AsInt(), 1);   // SUM ignores the NULL qty
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(r.schema.column(1).name, "n");
}

TEST_F(SqlFeaturesTest, GroupByExpressionsAndPredicates) {
  // Group by a computed bucket, under a WHERE filter.
  QueryResult r = MustExecute(
      "SELECT id % 2, COUNT(*) FROM orders WHERE id <= 4 GROUP BY id % 2");
  ASSERT_EQ(r.rows.size(), 2u);
  for (const Tuple& row : r.rows) {
    EXPECT_EQ(row.value(1).AsInt(), 2);  // {2,4} and {1,3}
  }
  // Empty input with GROUP BY yields zero rows (unlike the global case).
  EXPECT_EQ(MustExecute("SELECT customer, COUNT(*) FROM orders "
                        "WHERE id > 99 GROUP BY customer")
                .rows.size(),
            0u);
}

TEST_F(SqlFeaturesTest, GroupByErrors) {
  // Select item that is neither aggregate nor group key.
  EXPECT_TRUE(db_->Execute("SELECT qty, COUNT(*) FROM orders "
                           "GROUP BY customer")
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(db_->Execute("SELECT * FROM orders GROUP BY customer")
                  .status()
                  .IsNotSupported());
  // ORDER BY an aggregate that is not one of the select items.
  EXPECT_TRUE(db_->Execute("SELECT customer, COUNT(*) FROM orders "
                           "GROUP BY customer ORDER BY SUM(total)")
                  .status()
                  .IsNotSupported());
}

TEST_F(SqlFeaturesTest, GroupByComposesWithOrderBy) {
  // ORDER BY a group key.
  QueryResult r = MustExecute(
      "SELECT customer, SUM(qty) AS q FROM orders GROUP BY customer "
      "ORDER BY customer DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "carol");
  EXPECT_EQ(r.rows[2].value(0).AsString(), "alice");
  EXPECT_EQ(MetricDelta(r, "exec.agg.queries"), 1u);
  EXPECT_EQ(MetricDelta(r, "exec.sort.queries"), 1u);

  // ORDER BY an aggregate through its alias.
  r = MustExecute("SELECT customer, SUM(qty) AS q FROM orders "
                  "GROUP BY customer ORDER BY q DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "carol");  // q = 7
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 7);
  EXPECT_EQ(r.rows[1].value(0).AsString(), "alice");  // q = 5
  EXPECT_EQ(r.rows[2].value(0).AsString(), "bob");    // q = 1

  // ORDER BY a textual aggregate match, bounded by LIMIT: alice and bob tie
  // at COUNT(*) = 2, and the stable order keeps them in group-key order.
  r = MustExecute("SELECT customer, COUNT(*) FROM orders GROUP BY customer "
                  "ORDER BY COUNT(*) DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "alice");
  EXPECT_EQ(r.rows[1].value(0).AsString(), "bob");
  EXPECT_EQ(MetricDelta(r, "exec.sort.topk_queries"), 1u);
}

TEST_F(SqlFeaturesTest, AggregatesIgnoreNullsPerGroup) {
  MustExecute("CREATE TABLE n (k STRING, v INT)");
  MustExecute("INSERT INTO n VALUES ('a', NULL), ('a', NULL), ('b', 1)");
  QueryResult r = MustExecute(
      "SELECT k, COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM n GROUP BY k");
  ASSERT_EQ(r.rows.size(), 2u);
  // 'a' holds only NULLs: COUNT(v) is 0, every other aggregate is NULL.
  EXPECT_EQ(r.rows[0].value(0).AsString(), "a");
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 0);
  EXPECT_TRUE(r.rows[0].value(2).is_null());
  EXPECT_TRUE(r.rows[0].value(3).is_null());
  EXPECT_TRUE(r.rows[0].value(4).is_null());
  EXPECT_TRUE(r.rows[0].value(5).is_null());
  EXPECT_EQ(r.rows[1].value(0).AsString(), "b");
  EXPECT_EQ(r.rows[1].value(1).AsInt(), 1);
  EXPECT_EQ(r.rows[1].value(5).AsInt(), 1);
  EXPECT_EQ(MetricDelta(r, "exec.agg.groups"), 2u);
  EXPECT_EQ(MetricDelta(r, "exec.agg.rows"), 3u);
}

TEST_F(SqlFeaturesTest, OrderByLimitUsesTopKHeap) {
  // Bounded ORDER BY keeps a top-k heap instead of sorting everything; the
  // kept prefix must equal the full sort's prefix (NULL total sorts first).
  QueryResult bounded =
      MustExecute("SELECT id FROM orders ORDER BY total LIMIT 2");
  ASSERT_EQ(bounded.rows.size(), 2u);
  EXPECT_EQ(MetricDelta(bounded, "exec.sort.queries"), 1u);
  EXPECT_EQ(MetricDelta(bounded, "exec.sort.topk_queries"), 1u);

  QueryResult full = MustExecute("SELECT id FROM orders ORDER BY total");
  ASSERT_EQ(full.rows.size(), 5u);
  EXPECT_EQ(MetricDelta(full, "exec.sort.topk_queries"), 0u);
  EXPECT_EQ(bounded.rows[0].value(0).AsInt(), full.rows[0].value(0).AsInt());
  EXPECT_EQ(bounded.rows[1].value(0).AsInt(), full.rows[1].value(0).AsInt());

  // LIMIT 0 keeps nothing but still goes through the bounded path.
  QueryResult none =
      MustExecute("SELECT id FROM orders ORDER BY total LIMIT 0");
  EXPECT_EQ(none.rows.size(), 0u);
  EXPECT_EQ(MetricDelta(none, "exec.sort.topk_queries"), 1u);
}

TEST_F(SqlFeaturesTest, UpdateBasics) {
  QueryResult r = MustExecute(
      "UPDATE orders SET qty = qty * 10, total = total + 1.0 "
      "WHERE customer = 'alice'");
  EXPECT_EQ(r.rows_affected, 2u);
  QueryResult check = MustExecute(
      "SELECT qty, total FROM orders WHERE customer = 'alice' ORDER BY id");
  ASSERT_EQ(check.rows.size(), 2u);
  EXPECT_EQ(check.rows[0].value(0).AsInt(), 30);
  EXPECT_DOUBLE_EQ(check.rows[0].value(1).AsDouble(), 11.5);
  EXPECT_EQ(check.rows[1].value(0).AsInt(), 20);

  // Assignments see OLD values: swap-like semantics within one row.
  MustExecute("CREATE TABLE p (x INT, y INT)");
  MustExecute("INSERT INTO p VALUES (1, 2)");
  MustExecute("UPDATE p SET x = y, y = x");
  QueryResult swapped = MustExecute("SELECT x, y FROM p");
  EXPECT_EQ(swapped.rows[0].value(0).AsInt(), 2);
  EXPECT_EQ(swapped.rows[0].value(1).AsInt(), 1);

  // UPDATE without WHERE touches all rows; int widens into DOUBLE columns.
  EXPECT_EQ(MustExecute("UPDATE orders SET total = 5").rows_affected, 5u);
  EXPECT_DOUBLE_EQ(MustExecute("SELECT MIN(total) FROM orders")
                       .rows[0].value(0).AsDouble(),
                   5.0);
}

TEST_F(SqlFeaturesTest, UpdateErrors) {
  EXPECT_TRUE(db_->Execute("UPDATE missing SET a = 1").status().IsNotFound());
  EXPECT_TRUE(
      db_->Execute("UPDATE orders SET nope = 1").status().IsNotFound());
  EXPECT_TRUE(db_->Execute("UPDATE orders SET qty = 'text'")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->Execute("UPDATE __lobs SET id = 1")
                  .status()
                  .IsInvalidArgument());
  // Failed updates are all-or-nothing per statement phase 1 (no partial
  // binding), so a bad value expression changes nothing.
  EXPECT_TRUE(db_->Execute("UPDATE orders SET qty = 1 / 0").status()
                  .IsRuntimeError());
  EXPECT_EQ(MustExecute("SELECT SUM(qty) FROM orders").rows[0].value(0)
                .AsInt(),
            13);
}

TEST_F(SqlFeaturesTest, UpdateWithUdfValues) {
  MustExecute("CREATE TABLE blobs2 (id INT, b BYTEARRAY, sz INT)");
  MustExecute("INSERT INTO blobs2 VALUES (1, randbytes(50, 1), 0), "
              "(2, randbytes(200, 2), 0)");
  MustExecute("UPDATE blobs2 SET sz = length(b)");
  QueryResult r = MustExecute("SELECT sz FROM blobs2 ORDER BY id");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 50);
  EXPECT_EQ(r.rows[1].value(0).AsInt(), 200);
}

// ---------------------------------------------------------------------------
// Secondary B+-tree indexes: DDL, maintenance, and the planner rule.
// ---------------------------------------------------------------------------

TEST_F(SqlFeaturesTest, CreateAndDropIndex) {
  QueryResult r = MustExecute("CREATE INDEX idx_cust ON orders (customer)");
  EXPECT_NE(r.message.find("idx_cust"), std::string::npos);

  // An equality query now runs through the index.
  r = MustExecute("SELECT id FROM orders WHERE customer = 'alice'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 1u);
  EXPECT_EQ(MetricDelta(r, "exec.index.lookups"), 2u);
  EXPECT_EQ(MetricDelta(r, "exec.index.range_scans"), 0u);

  // DDL error cases.
  EXPECT_TRUE(db_->Execute("CREATE INDEX idx_cust ON orders (id)")
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(db_->Execute("CREATE INDEX i2 ON nope (x)")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db_->Execute("CREATE INDEX i2 ON orders (nope)")
                  .status()
                  .IsNotFound());
  // Only INT and STRING columns are indexable.
  EXPECT_TRUE(db_->Execute("CREATE INDEX i2 ON orders (total)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->Execute("CREATE INDEX i3 ON __lobs (id)")
                  .status()
                  .IsInvalidArgument());

  MustExecute("DROP INDEX idx_cust");
  EXPECT_TRUE(db_->Execute("DROP INDEX idx_cust").status().IsNotFound());
  // Back to a sequential scan, same rows.
  r = MustExecute("SELECT id FROM orders WHERE customer = 'alice'");
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 0u);
}

TEST_F(SqlFeaturesTest, IndexSurvivesRestartAndDropTableCascades) {
  MustExecute("CREATE INDEX idx_cust ON orders (customer)");
  db_.reset();
  db_ = Database::Open(path_).value();
  QueryResult r = MustExecute("SELECT id FROM orders WHERE customer = 'bob'");
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 1u);
  // Dropping the table drops its indexes with it.
  MustExecute("DROP TABLE orders");
  EXPECT_TRUE(db_->Execute("DROP INDEX idx_cust").status().IsNotFound());
}

/// Runs `where` both through the index and as a forced full scan (index
/// temporarily dropped), asserting identical ordered id lists.
class IndexAbTest : public SqlFeaturesTest {
 protected:
  std::vector<int64_t> IdsVia(const std::string& where, bool want_index) {
    QueryResult r =
        MustExecute("SELECT id FROM nums WHERE " + where + " ORDER BY id");
    EXPECT_EQ(MetricDelta(r, "exec.index.scans"), want_index ? 1u : 0u)
        << where;
    std::vector<int64_t> ids;
    for (const Tuple& t : r.rows) ids.push_back(t.value(0).AsInt());
    return ids;
  }

  void ExpectIndexAgreesWithScan(const std::string& where) {
    std::vector<int64_t> via_index = IdsVia(where, /*want_index=*/true);
    MustExecute("DROP INDEX idx_k");
    std::vector<int64_t> via_scan = IdsVia(where, /*want_index=*/false);
    MustExecute("CREATE INDEX idx_k ON nums (k)");
    EXPECT_EQ(via_index, via_scan) << where;
  }
};

TEST_F(IndexAbTest, IndexAgreesWithScanIncludingNullsAndDuplicates) {
  MustExecute("CREATE TABLE nums (id INT, k INT)");
  // Duplicate keys (k = id % 10) and a sprinkling of NULL keys.
  for (int i = 0; i < 200; ++i) {
    MustExecute(StringPrintf(
        "INSERT INTO nums VALUES (%d, %s)", i,
        i % 17 == 0 ? "NULL" : StringPrintf("%d", i % 10).c_str()));
  }
  MustExecute("CREATE INDEX idx_k ON nums (k)");

  ExpectIndexAgreesWithScan("k = 3");
  ExpectIndexAgreesWithScan("7 = k");  // literal on the left
  ExpectIndexAgreesWithScan("k < 2");
  ExpectIndexAgreesWithScan("k <= 2");
  ExpectIndexAgreesWithScan("k > 7");
  ExpectIndexAgreesWithScan("k >= 7");
  ExpectIndexAgreesWithScan("k = 42");           // no hits
  ExpectIndexAgreesWithScan("k = 3 AND id < 50");  // residual conjunct

  // NULL keys are invisible to both paths (NULL = anything is unknown).
  QueryResult r = MustExecute("SELECT COUNT(*) FROM nums WHERE k >= 0");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 188);  // 200 - 12 NULLs
}

TEST_F(IndexAbTest, MaintenanceKeepsIndexConsistent) {
  MustExecute("CREATE TABLE nums (id INT, k INT)");
  MustExecute("CREATE INDEX idx_k ON nums (k)");  // empty backfill
  for (int i = 0; i < 100; ++i) {
    MustExecute(StringPrintf("INSERT INTO nums VALUES (%d, %d)", i, i % 5));
  }
  // UPDATE moves rows between keys (delete old entry + insert new).
  MustExecute("UPDATE nums SET k = 9 WHERE k = 2");
  // Also flip some keys to NULL (entry removed, nothing inserted) and some
  // NULLs back to values.
  MustExecute("UPDATE nums SET k = NULL WHERE id < 10");
  MustExecute("UPDATE nums SET k = 7 WHERE id = 3");
  // DELETE removes entries.
  MustExecute("DELETE FROM nums WHERE k = 1");

  ExpectIndexAgreesWithScan("k = 9");
  ExpectIndexAgreesWithScan("k = 2");
  ExpectIndexAgreesWithScan("k = 7");
  ExpectIndexAgreesWithScan("k = 1");
  ExpectIndexAgreesWithScan("k >= 0");
}

TEST_F(SqlFeaturesTest, PlannerPicksIndexOnlyWhenSound) {
  MustExecute("CREATE TABLE nums (id INT, k INT, label STRING)");
  for (int i = 0; i < 50; ++i) {
    MustExecute(StringPrintf("INSERT INTO nums VALUES (%d, %d, 'r%d')", i,
                             i % 10, i));
  }
  MustExecute("CREATE INDEX idx_k ON nums (k)");

  // Type-mismatched literal (DOUBLE vs INT column): planner must decline.
  QueryResult r = MustExecute("SELECT id FROM nums WHERE k = 3.0");
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 0u);
  // Non-conjunct position (OR): decline.
  r = MustExecute("SELECT id FROM nums WHERE k = 3 OR id = 1");
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 0u);
  // NULL literal: decline.
  r = MustExecute("SELECT id FROM nums WHERE k = NULL");
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 0u);
  // Unindexed column: decline.
  r = MustExecute("SELECT id FROM nums WHERE id = 3");
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 0u);
  // Range conjunct anywhere in the AND chain: picked, marked as a range.
  r = MustExecute("SELECT id FROM nums WHERE id < 100 AND k >= 8");
  EXPECT_EQ(MetricDelta(r, "exec.index.scans"), 1u);
  EXPECT_EQ(MetricDelta(r, "exec.index.range_scans"), 1u);
  ASSERT_EQ(r.rows.size(), 10u);
}

TEST_F(SqlFeaturesTest, IndexScanSkipsUdfPredicateForNonSurvivors) {
  // The paper-motivated win: an expensive UDF predicate written FIRST in the
  // WHERE clause runs per-tuple under a full scan, but only on index
  // survivors once the indexable conjunct is extracted.
  UdfInfo g;
  g.name = "g";
  g.language = UdfLanguage::kNative;
  g.return_type = TypeId::kInt;
  g.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
  g.impl_name = "generic_udf";
  ASSERT_TRUE(db_->RegisterUdf(g).ok());

  const int rows = 400;
  MustExecute("CREATE TABLE rel (id INT, b BYTEARRAY)");
  for (int i = 0; i < rows; ++i) {
    MustExecute(
        StringPrintf("INSERT INTO rel VALUES (%d, randbytes(16, %d))", i, i));
  }

  const std::string sql =
      "SELECT id FROM rel WHERE g(b, 10, 1, 0) >= 0 AND id < 4";
  QueryResult full = MustExecute(sql);  // no index yet: full scan
  ASSERT_EQ(full.rows.size(), 4u);
  EXPECT_EQ(MetricDelta(full, "udf.cpp.invocations"),
            static_cast<uint64_t>(rows));

  MustExecute("CREATE INDEX idx_id ON rel (id)");
  QueryResult indexed = MustExecute(sql);
  ASSERT_EQ(indexed.rows.size(), 4u);
  EXPECT_EQ(MetricDelta(indexed, "exec.index.scans"), 1u);
  EXPECT_EQ(MetricDelta(indexed, "exec.index.lookups"), 4u);
  // 1% selectivity -> the UDF runs on exactly the 4 survivors.
  EXPECT_EQ(MetricDelta(indexed, "udf.cpp.invocations"), 4u);
}

TEST_F(SqlFeaturesTest, OversizeIndexKeyRejectedBeforeHeapMutation) {
  MustExecute("CREATE TABLE wide (id INT, s STRING)");
  MustExecute("CREATE INDEX idx_s ON wide (s)");
  MustExecute("INSERT INTO wide VALUES (1, 'ok')");
  // A key past kMaxKeyBytes fails the whole INSERT, leaving no heap row.
  std::string big(2000, 'x');
  EXPECT_TRUE(db_->Execute("INSERT INTO wide VALUES (2, '" + big + "')")
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM wide").rows[0].value(0).AsInt(),
            1);
}

TEST_F(SqlFeaturesTest, SumOverflowSurfacesAsError) {
  MustExecute("CREATE TABLE big (v INT)");
  MustExecute(StringPrintf("INSERT INTO big VALUES (%lld), (%lld)",
                           static_cast<long long>(INT64_MAX),
                           static_cast<long long>(2)));
  Result<QueryResult> r = db_->Execute("SELECT SUM(v) FROM big");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange()) << r.status().ToString();
  // AVG shares the accumulator.
  EXPECT_TRUE(
      db_->Execute("SELECT AVG(v) FROM big").status().IsOutOfRange());
  // The symmetric negative boundary.
  MustExecute("CREATE TABLE small (v INT)");
  MustExecute(StringPrintf("INSERT INTO small VALUES (%lld), (%lld)",
                           static_cast<long long>(INT64_MIN + 1),
                           static_cast<long long>(-2)));
  EXPECT_TRUE(
      db_->Execute("SELECT SUM(v) FROM small").status().IsOutOfRange());
}

TEST_F(SqlFeaturesTest, ParserAcceptsNewSyntax) {
  // These exercise the parser via the engine; malformed variants fail.
  EXPECT_TRUE(db_->Execute("SELECT id FROM orders ORDER total").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->Execute("DELETE orders").status().IsInvalidArgument());
  EXPECT_TRUE(db_->Execute("SELECT COUNT(* FROM orders").status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace jaguar
