// Unit tests for src/exec: binding, expression evaluation (three-valued
// logic, coercions), and the pull-based operators — tested directly, below
// the engine facade.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "exec/expression.h"
#include "exec/operators.h"
#include "sql/parser.h"
#include "storage/storage_engine.h"

namespace jaguar {
namespace exec {
namespace {

Schema TestSchema() {
  return Schema({{"a", TypeId::kInt},
                 {"b", TypeId::kDouble},
                 {"s", TypeId::kString},
                 {"blob", TypeId::kBytes}});
}

Tuple TestTuple() {
  return Tuple({Value::Int(7), Value::Double(2.5), Value::String("hi"),
                Value::Bytes({1, 2, 3})});
}

/// Parses, binds against the test schema, evaluates against the test tuple.
Result<Value> EvalText(const std::string& text,
                       UdfResolver* resolver = nullptr) {
  JAGUAR_ASSIGN_OR_RETURN(sql::ExprPtr expr, sql::ParseExpression(text));
  JAGUAR_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          Bind(*expr, TestSchema(), "t", "T", resolver));
  return Eval(*bound, TestTuple(), nullptr);
}

TEST(ExpressionTest, ColumnsAndArithmetic) {
  EXPECT_EQ(EvalText("a + 1").value().AsInt(), 8);
  EXPECT_EQ(EvalText("a * a - 9").value().AsInt(), 40);
  EXPECT_DOUBLE_EQ(EvalText("b * 2").value().AsDouble(), 5.0);
  // Mixed int/double arithmetic widens.
  EXPECT_DOUBLE_EQ(EvalText("a + b").value().AsDouble(), 9.5);
  EXPECT_EQ(EvalText("-a").value().AsInt(), -7);
  EXPECT_EQ(EvalText("a % 4").value().AsInt(), 3);
}

TEST(ExpressionTest, QualifiedColumns) {
  EXPECT_EQ(EvalText("T.a").value().AsInt(), 7);
  EXPECT_EQ(EvalText("t.a").value().AsInt(), 7);  // table name works too
  EXPECT_TRUE(EvalText("X.a").status().IsInvalidArgument());
}

TEST(ExpressionTest, Comparisons) {
  EXPECT_TRUE(EvalText("a = 7").value().AsBool());
  EXPECT_TRUE(EvalText("a <> 8").value().AsBool());
  EXPECT_TRUE(EvalText("b < a").value().AsBool());
  EXPECT_TRUE(EvalText("s = 'hi'").value().AsBool());
  EXPECT_FALSE(EvalText("s < 'aa'").value().AsBool());
  // Cross-family comparisons fail cleanly.
  EXPECT_FALSE(EvalText("s > 5").ok());
}

TEST(ExpressionTest, ThreeValuedLogic) {
  // NULL propagates through arithmetic; comparisons yield NULL.
  EXPECT_TRUE(EvalText("NULL + 1").value().is_null());
  EXPECT_TRUE(EvalText("a = NULL").value().is_null());
  // AND/OR short-circuit around NULL per SQL: NULL AND TRUE is NULL, but
  // FALSE AND NULL is FALSE (false dominates).
  EXPECT_TRUE(EvalText("(a = NULL) AND (a = 7)").value().is_null());
  EXPECT_EQ(EvalText("(a = 8) AND (a = NULL)").value().AsBool(), false);
  EXPECT_EQ(EvalText("(a = 7) OR (a = NULL)").value().AsBool(), true);
  EXPECT_TRUE(EvalText("(a = NULL) OR (a = NULL)").value().is_null());
  EXPECT_TRUE(EvalText("NOT (a = NULL)").value().is_null());
}

TEST(ExpressionTest, BindErrors) {
  EXPECT_TRUE(EvalText("missing_col").status().IsNotFound());
  EXPECT_TRUE(EvalText("s + 1").status().IsInvalidArgument());
  EXPECT_TRUE(EvalText("-s").status().IsInvalidArgument());
  // Function calls need a resolver.
  EXPECT_TRUE(EvalText("f(a)").status().IsNotSupported());
}

TEST(ExpressionTest, EvalPredicateSemantics) {
  auto check = [](const std::string& text) -> Result<bool> {
    auto expr = sql::ParseExpression(text).value();
    JAGUAR_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            Bind(*expr, TestSchema(), "t", "", nullptr));
    return EvalPredicate(*bound, TestTuple(), nullptr);
  };
  EXPECT_TRUE(check("a > 3").value());
  EXPECT_FALSE(check("a > 30").value());
  // NULL predicate counts as false.
  EXPECT_FALSE(check("a = NULL").value());
  // Non-boolean WHERE is an error.
  EXPECT_TRUE(check("a + 1").status().IsInvalidArgument());
}

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_exec_" + std::to_string(::getpid()) + ".db"))
                .string();
    std::remove(path_.c_str());
    engine_ = StorageEngine::Open(path_).value();
    first_page_ = TableHeap::Create(engine_.get()).value();
    TableHeap heap(engine_.get(), first_page_);
    schema_ = Schema({{"id", TypeId::kInt}, {"name", TypeId::kString}});
    for (int i = 0; i < 10; ++i) {
      Tuple t({Value::Int(i), Value::String("row" + std::to_string(i))});
      ASSERT_TRUE(heap.Insert(Slice(t.Serialize())).ok());
    }
  }
  void TearDown() override {
    engine_->Close().ok();
    engine_.reset();
    std::remove(path_.c_str());
  }

  BoundExprPtr BindText(const std::string& text) {
    auto expr = sql::ParseExpression(text).value();
    return Bind(*expr, schema_, "t", "", nullptr).value();
  }

  std::string path_;
  std::unique_ptr<StorageEngine> engine_;
  PageId first_page_;
  Schema schema_;
};

TEST_F(OperatorTest, SeqScanYieldsAllTuples) {
  SeqScanOp scan(engine_.get(), first_page_, schema_);
  int count = 0;
  while (true) {
    auto t = scan.Next().value();
    if (!t.has_value()) break;
    EXPECT_EQ(t->value(0).AsInt(), count);
    ++count;
  }
  EXPECT_EQ(count, 10);
  // Exhausted operators keep returning end-of-stream.
  EXPECT_FALSE(scan.Next().value().has_value());
}

TEST_F(OperatorTest, FilterProjectsLimitPipeline) {
  auto scan = std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
  auto filter = std::make_unique<FilterOp>(std::move(scan),
                                           BindText("id % 2 = 0"), nullptr);
  std::vector<BoundExprPtr> exprs;
  exprs.push_back(BindText("id * 100"));
  Schema out({{"x", TypeId::kInt}});
  auto project = std::make_unique<ProjectOp>(std::move(filter),
                                             std::move(exprs), out, nullptr);
  LimitOp limit(std::move(project), 3);

  std::vector<int64_t> got;
  while (true) {
    auto t = limit.Next().value();
    if (!t.has_value()) break;
    got.push_back(t->value(0).AsInt());
  }
  EXPECT_EQ(got, (std::vector<int64_t>{0, 200, 400}));
}

TEST_F(OperatorTest, LimitZeroAndOverLimit) {
  {
    auto scan =
        std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
    LimitOp limit(std::move(scan), 0);
    EXPECT_FALSE(limit.Next().value().has_value());
  }
  {
    auto scan =
        std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
    LimitOp limit(std::move(scan), 100);
    int count = 0;
    while (limit.Next().value().has_value()) ++count;
    EXPECT_EQ(count, 10);
  }
}

TEST_F(OperatorTest, NextBatchMatchesScalarAcrossBatchSizes) {
  // The batch path must yield exactly the scalar rows, in order, for batch
  // sizes of 1, a non-divisor of both the table and intermediate
  // cardinalities, and far beyond the row count.
  auto build = [&]() -> OperatorPtr {
    auto scan =
        std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
    auto filter = std::make_unique<FilterOp>(std::move(scan),
                                             BindText("id % 2 = 0"), nullptr);
    std::vector<BoundExprPtr> exprs;
    exprs.push_back(BindText("id * 100"));
    exprs.push_back(BindText("name"));
    Schema out({{"x", TypeId::kInt}, {"name", TypeId::kString}});
    return std::make_unique<ProjectOp>(std::move(filter), std::move(exprs),
                                       out, nullptr);
  };

  std::vector<std::string> scalar_rows;
  {
    OperatorPtr op = build();
    while (true) {
      auto t = op->Next().value();
      if (!t.has_value()) break;
      scalar_rows.push_back(Slice(t->Serialize()).ToString());
    }
  }
  ASSERT_EQ(scalar_rows.size(), 5u);

  for (size_t batch_size : {size_t{1}, size_t{3}, size_t{256}}) {
    OperatorPtr op = build();
    std::vector<std::string> batch_rows;
    TupleBatch batch(batch_size);
    while (true) {
      ASSERT_TRUE(op->NextBatch(&batch).ok());
      if (batch.empty()) break;
      EXPECT_LE(batch.size(), batch_size);
      for (const Tuple& t : batch.tuples()) {
        batch_rows.push_back(Slice(t.Serialize()).ToString());
      }
    }
    EXPECT_EQ(batch_rows, scalar_rows) << "batch size " << batch_size;
    // Exhausted operators keep returning empty batches.
    ASSERT_TRUE(op->NextBatch(&batch).ok());
    EXPECT_TRUE(batch.empty());
  }
}

TEST_F(OperatorTest, NextBatchRespectsLimitAndTail) {
  // LIMIT 7 over 10 rows with batch size 4: batches of 4, 3 (clamped at the
  // limit), then end of stream — the non-divisor tail case.
  auto scan = std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
  LimitOp limit(std::move(scan), 7);
  TupleBatch batch(4);
  std::vector<size_t> sizes;
  int64_t next_id = 0;
  while (true) {
    ASSERT_TRUE(limit.NextBatch(&batch).ok());
    if (batch.empty()) break;
    sizes.push_back(batch.size());
    for (const Tuple& t : batch.tuples()) {
      EXPECT_EQ(t.value(0).AsInt(), next_id++);
    }
  }
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 3}));
  EXPECT_EQ(next_id, 7);
}

TEST_F(OperatorTest, NextBatchErrorPropagates) {
  auto scan = std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), BindText("1 / (id - 5) > 0"), nullptr);
  TupleBatch batch(4);
  Status error;
  while (true) {
    Status s = filter->NextBatch(&batch);
    if (!s.ok()) {
      error = s;
      break;
    }
    if (batch.empty()) break;
  }
  EXPECT_TRUE(error.IsRuntimeError());
}

TEST_F(OperatorTest, FilterErrorPropagates) {
  auto scan = std::make_unique<SeqScanOp>(engine_.get(), first_page_, schema_);
  // 1 / (id - 5): division by zero on row 5 surfaces as RuntimeError.
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), BindText("1 / (id - 5) > 0"), nullptr);
  Status error;
  while (true) {
    Result<std::optional<Tuple>> t = filter->Next();
    if (!t.ok()) {
      error = t.status();
      break;
    }
    if (!t->has_value()) break;
  }
  EXPECT_TRUE(error.IsRuntimeError());
}

}  // namespace
}  // namespace exec
}  // namespace jaguar
