// Tests for src/types: Value semantics, ADT stream round trips, Schema,
// Tuple serialization.

#include <gtest/gtest.h>

#include "common/random.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace jaguar {
namespace {

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_EQ(Value::Bytes({1, 2, 3}).AsBytes(),
            (std::vector<uint8_t>{1, 2, 3}));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(TypeIdToString(TypeId::kBytes), "BYTEARRAY");
  EXPECT_EQ(TypeIdFromString("bytearray").value(), TypeId::kBytes);
  EXPECT_EQ(TypeIdFromString("VARCHAR").value(), TypeId::kString);
  EXPECT_EQ(TypeIdFromString("bigint").value(), TypeId::kInt);
  EXPECT_TRUE(TypeIdFromString("POINT").status().IsInvalidArgument());
}

TEST(ValueTest, Coercion) {
  EXPECT_EQ(Value::Int(3).CoerceDouble().value(), 3.0);
  EXPECT_EQ(Value::Bool(true).CoerceInt().value(), 1);
  EXPECT_TRUE(Value::String("x").CoerceDouble().status().IsInvalidArgument());
  EXPECT_TRUE(Value::Bytes({}).CoerceInt().status().IsInvalidArgument());
}

TEST(ValueTest, EqualsAcrossNumericTypes) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Int(3).Equals(Value::String("3")));
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)).value(), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")).value(), 0);
  EXPECT_LT(Value::Bytes({1}).Compare(Value::Bytes({1, 0})).value(), 0);
  EXPECT_TRUE(Value::Null().Compare(Value::Int(1)).status().IsInvalidArgument());
  EXPECT_TRUE(
      Value::String("a").Compare(Value::Int(1)).status().IsInvalidArgument());
}

void RoundTrip(const Value& v) {
  BufferWriter w;
  v.WriteTo(&w);
  EXPECT_EQ(w.size(), v.SerializedSize());
  BufferReader r(w.AsSlice());
  Result<Value> back = Value::ReadFrom(&r);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back->type(), v.type());
  EXPECT_TRUE(back->Equals(v)) << v.ToString();
}

TEST(ValueTest, StreamRoundTripEveryType) {
  RoundTrip(Value::Null());
  RoundTrip(Value::Bool(false));
  RoundTrip(Value::Bool(true));
  RoundTrip(Value::Int(0));
  RoundTrip(Value::Int(INT64_MIN));
  RoundTrip(Value::Int(INT64_MAX));
  RoundTrip(Value::Double(-0.0));
  RoundTrip(Value::Double(1e300));
  RoundTrip(Value::String(""));
  RoundTrip(Value::String(std::string(100000, 'x')));
  RoundTrip(Value::Bytes({}));
  RoundTrip(Value::Bytes(Random(5).Bytes(10000)));
}

TEST(ValueTest, ReadRejectsBadTag) {
  BufferWriter w;
  w.PutU8(99);
  BufferReader r(w.AsSlice());
  EXPECT_TRUE(Value::ReadFrom(&r).status().IsCorruption());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Bytes({1, 2}).ToString(), "<2 bytes>");
}

Schema StocksSchema() {
  return Schema({{"symbol", TypeId::kString},
                 {"type", TypeId::kString},
                 {"history", TypeId::kBytes},
                 {"price", TypeId::kDouble}});
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema s = StocksSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.IndexOf("HISTORY").value(), 2u);
  EXPECT_EQ(s.IndexOf("symbol").value(), 0u);
  EXPECT_TRUE(s.IndexOf("nope").status().IsNotFound());
  EXPECT_TRUE(s.Contains("Price"));
}

TEST(SchemaTest, SerializationRoundTrip) {
  Schema s = StocksSchema();
  BufferWriter w;
  s.WriteTo(&w);
  BufferReader r(w.AsSlice());
  Result<Schema> back = Schema::ReadFrom(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(Schema({{"a", TypeId::kInt}}).ToString(), "(a INT)");
}

TEST(TupleTest, SerializationRoundTrip) {
  Tuple t({Value::String("IBM"), Value::String("tech"),
           Value::Bytes(Random(1).Bytes(5000)), Value::Double(101.5)});
  auto bytes = t.Serialize();
  Result<Tuple> back = Tuple::Deserialize(Slice(bytes));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_values(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(back->value(i).Equals(t.value(i)));
  }
}

TEST(TupleTest, DeserializeRejectsTrailingBytes) {
  Tuple t({Value::Int(1)});
  auto bytes = t.Serialize();
  bytes.push_back(0);
  EXPECT_TRUE(Tuple::Deserialize(Slice(bytes)).status().IsCorruption());
}

TEST(TupleTest, CheckSchema) {
  Schema s = StocksSchema();
  Tuple good({Value::String("IBM"), Value::String("tech"),
              Value::Bytes({1}), Value::Double(1.0)});
  EXPECT_TRUE(good.CheckSchema(s).ok());

  // Int widens to double.
  Tuple widened({Value::String("IBM"), Value::String("tech"),
                 Value::Bytes({1}), Value::Int(1)});
  EXPECT_TRUE(widened.CheckSchema(s).ok());

  // NULL matches any column.
  Tuple with_null({Value::Null(), Value::Null(), Value::Null(), Value::Null()});
  EXPECT_TRUE(with_null.CheckSchema(s).ok());

  Tuple wrong_arity({Value::Int(1)});
  EXPECT_TRUE(wrong_arity.CheckSchema(s).IsInvalidArgument());

  Tuple wrong_type({Value::Int(5), Value::String("tech"), Value::Bytes({1}),
                    Value::Double(1.0)});
  EXPECT_TRUE(wrong_type.CheckSchema(s).IsInvalidArgument());
}

// Property sweep: random tuples of every shape survive the stream protocol.
class TupleRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(TupleRoundTripTest, RandomTupleRoundTrips) {
  Random rng(GetParam());
  std::vector<Value> values;
  const int n = static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < n; ++i) {
    switch (rng.Uniform(6)) {
      case 0: values.push_back(Value::Null()); break;
      case 1: values.push_back(Value::Bool(rng.Bernoulli(0.5))); break;
      case 2:
        values.push_back(Value::Int(static_cast<int64_t>(rng.Next())));
        break;
      case 3: values.push_back(Value::Double(rng.NextDouble() * 1e9)); break;
      case 4:
        values.push_back(Value::String(rng.AlphaString(rng.Uniform(200))));
        break;
      case 5: values.push_back(Value::Bytes(rng.Bytes(rng.Uniform(2000))));
        break;
    }
  }
  Tuple t(values);
  Result<Tuple> back = Tuple::Deserialize(Slice(t.Serialize()));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_values(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(back->value(i).Equals(values[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleRoundTripTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace jaguar
