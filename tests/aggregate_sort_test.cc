// Unit tests for the vectorized aggregation (exec/aggregate) and sort
// (exec/sort) building blocks, below the engine facade: partial-aggregator
// merges must equal a single-pass build, the operator must agree across
// batch sizes (including the scalar pipeline), the bounded top-k heap must
// equal the full sort's prefix, run merging must equal a single-run sort,
// and expired deadlines must cut the merge/finalize loops off.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "exec/aggregate.h"
#include "exec/sort.h"
#include "sql/parser.h"

namespace jaguar {
namespace exec {
namespace {

Schema RowSchema() {
  return Schema(
      {{"k", TypeId::kInt}, {"v", TypeId::kInt}, {"d", TypeId::kDouble}});
}

/// `n` rows cycling over 4 groups, with NULLs sprinkled into both aggregate
/// inputs so every test also covers NULL-skipping.
std::vector<Tuple> MakeRows(int n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    Value v = (i % 7 == 0) ? Value::Null() : Value::Int(i * 3 % 17);
    Value d = (i % 5 == 0) ? Value::Null() : Value::Double(i * 0.5);
    rows.push_back(Tuple({Value::Int(i % 4), std::move(v), std::move(d)}));
  }
  return rows;
}

AggregatePlan MustPlan(const std::string& sql) {
  sql::Statement stmt = sql::Parse(sql).value();
  return PlanAggregate(stmt.select, RowSchema(), "t", "", nullptr).value();
}

std::vector<std::vector<uint8_t>> Serialized(const std::vector<Tuple>& rows) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.Serialize());
  return out;
}

constexpr const char* kGroupedSql =
    "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(d), MIN(v), MAX(d) "
    "FROM t GROUP BY k";

TEST(AggregateUnitTest, PartialMergeMatchesSinglePass) {
  AggregatePlan plan = MustPlan(kGroupedSql);
  std::vector<Tuple> rows = MakeRows(100);

  HashAggregator single(&plan);
  for (const Tuple& t : rows) {
    ASSERT_TRUE(single.ConsumeTuple(t, nullptr).ok());
  }
  std::vector<std::vector<uint8_t>> expect =
      Serialized(single.Finalize(nullptr).value());
  ASSERT_EQ(expect.size(), 4u);

  // Split the same rows into contiguous chunks — the morsel shape — build a
  // partial aggregator per chunk, and merge them in chunk order.
  for (size_t parts : {size_t{2}, size_t{3}, size_t{7}}) {
    std::vector<HashAggregator> partials;
    for (size_t p = 0; p < parts; ++p) partials.emplace_back(&plan);
    for (size_t i = 0; i < rows.size(); ++i) {
      size_t p = i * parts / rows.size();
      ASSERT_TRUE(
          partials[p].ConsumeBatch({rows[i]}, nullptr).ok());
    }
    for (size_t p = 1; p < parts; ++p) {
      ASSERT_TRUE(partials[0].MergeFrom(&partials[p], nullptr).ok());
      EXPECT_EQ(partials[p].num_groups(), 0u);  // drained
    }
    EXPECT_EQ(Serialized(partials[0].Finalize(nullptr).value()), expect)
        << parts << " partials";
  }
}

/// Serves a fixed vector of tuples — a storage-free operator child.
class VectorOp : public Operator {
 public:
  VectorOp(std::vector<Tuple> rows, Schema schema)
      : rows_(std::move(rows)), schema_(std::move(schema)) {}

  Result<std::optional<Tuple>> Next() override {
    if (pos_ >= rows_.size()) return std::optional<Tuple>();
    return std::optional<Tuple>(rows_[pos_++]);
  }
  const Schema& schema() const override { return schema_; }

 private:
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
  Schema schema_;
};

TEST(AggregateUnitTest, OpAgreesAcrossBatchSizesAndScalarPath) {
  AggregatePlan plan = MustPlan(kGroupedSql);
  std::vector<Tuple> rows = MakeRows(50);

  // batch_size 0 = the scalar per-tuple pipeline; the rest vectorized.
  std::vector<std::vector<uint8_t>> expect;
  for (size_t batch_size : {size_t{0}, size_t{1}, size_t{3}, size_t{256}}) {
    HashAggregateOp op(std::make_unique<VectorOp>(rows, RowSchema()), &plan,
                       nullptr, batch_size, nullptr);
    std::vector<Tuple> got;
    TupleBatch batch(16);
    while (true) {
      ASSERT_TRUE(op.NextBatch(&batch).ok());
      if (batch.empty()) break;
      for (Tuple& t : batch.tuples()) got.push_back(std::move(t));
    }
    if (expect.empty()) {
      expect = Serialized(got);
      ASSERT_EQ(expect.size(), 4u);
    } else {
      EXPECT_EQ(Serialized(got), expect) << "batch size " << batch_size;
    }
  }
}

TEST(AggregateUnitTest, ImplicitSingleGroupOnEmptyInput) {
  AggregatePlan plan =
      MustPlan("SELECT COUNT(*), SUM(v), MIN(v), AVG(d) FROM t");
  ASSERT_TRUE(plan.implicit_single_group());
  HashAggregator agg(&plan);
  std::vector<Tuple> out = agg.Finalize(nullptr).value();
  ASSERT_EQ(out.size(), 1u);  // one row even with zero input
  EXPECT_EQ(out[0].value(0).AsInt(), 0);
  EXPECT_TRUE(out[0].value(1).is_null());
  EXPECT_TRUE(out[0].value(2).is_null());
  EXPECT_TRUE(out[0].value(3).is_null());

  // With GROUP BY, empty input means zero groups.
  AggregatePlan grouped = MustPlan(kGroupedSql);
  HashAggregator gagg(&grouped);
  EXPECT_EQ(gagg.Finalize(nullptr).value().size(), 0u);
}

TEST(AggregateUnitTest, MergeAndFinalizeHonorExpiredDeadline) {
  // > 1024 distinct groups so the merge/finalize loops reach their
  // deadline-poll stride.
  AggregatePlan plan = MustPlan("SELECT v, COUNT(*) FROM t GROUP BY v");
  HashAggregator a(&plan);
  HashAggregator b(&plan);
  for (int i = 0; i < 3000; ++i) {
    Tuple row({Value::Int(0), Value::Int(i), Value::Null()});
    ASSERT_TRUE(a.ConsumeTuple(row, nullptr).ok());
    ASSERT_TRUE(b.ConsumeTuple(row, nullptr).ok());
  }
  QueryDeadline expired = QueryDeadline::After(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(expired.Expired());
  EXPECT_TRUE(a.MergeFrom(&b, &expired).IsDeadlineExceeded());
  EXPECT_TRUE(a.Finalize(&expired).status().IsDeadlineExceeded());
}

// ---------------------------------------------------------------------------
// Sorter
// ---------------------------------------------------------------------------

/// Keys cycle over {NULL, 0, 1, 2} so every order has ties and NULLs; the
/// payload row carries the original position to make order checks exact.
std::vector<std::pair<Value, Tuple>> MakeSortInput(int n) {
  std::vector<std::pair<Value, Tuple>> input;
  input.reserve(n);
  for (int i = 0; i < n; ++i) {
    Value key = (i % 4 == 0) ? Value::Null() : Value::Int(i % 4);
    input.emplace_back(std::move(key), Tuple({Value::Int(i)}));
  }
  return input;
}

std::vector<Tuple> FullSort(const std::vector<std::pair<Value, Tuple>>& input,
                            bool descending) {
  Sorter sorter(descending, /*limit=*/-1);
  for (const auto& [key, row] : input) sorter.Add(key, row);
  EXPECT_TRUE(sorter.Finish().ok());
  return sorter.TakeRows();
}

TEST(SortUnitTest, TopKMatchesFullSortPrefix) {
  const int n = 40;
  std::vector<std::pair<Value, Tuple>> input = MakeSortInput(n);
  for (bool descending : {false, true}) {
    std::vector<std::vector<uint8_t>> full =
        Serialized(FullSort(input, descending));
    ASSERT_EQ(full.size(), static_cast<size_t>(n));
    for (int64_t limit : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{n},
                          int64_t{n + 5}}) {
      Sorter sorter(descending, limit);
      EXPECT_TRUE(sorter.bounded());
      for (const auto& [key, row] : input) sorter.Add(key, row);
      ASSERT_TRUE(sorter.Finish().ok());
      std::vector<std::vector<uint8_t>> got = Serialized(sorter.TakeRows());
      size_t want = std::min<size_t>(limit, n);
      ASSERT_EQ(got.size(), want) << "desc=" << descending << " k=" << limit;
      for (size_t i = 0; i < want; ++i) {
        EXPECT_EQ(got[i], full[i])
            << "desc=" << descending << " k=" << limit << " row " << i;
      }
    }
  }
}

TEST(SortUnitTest, MergeRunsMatchesSingleRunSort) {
  const int n = 60;
  std::vector<std::pair<Value, Tuple>> input = MakeSortInput(n);
  for (bool descending : {false, true}) {
    for (int64_t limit : {int64_t{-1}, int64_t{0}, int64_t{5}, int64_t{n}}) {
      // Serial reference: one run over all rows in scan order.
      Sorter reference(descending, limit);
      for (const auto& [key, row] : input) reference.Add(key, row);
      ASSERT_TRUE(reference.Finish().ok());
      std::vector<std::vector<uint8_t>> expect =
          Serialized(reference.TakeRows());

      // Parallel shape: 3 contiguous runs with run ids in morsel order.
      std::vector<std::vector<Sorter::Entry>> runs;
      for (uint64_t m = 0; m < 3; ++m) {
        Sorter run_sorter(descending, limit, /*run_id=*/m);
        for (size_t i = m * n / 3; i < (m + 1) * n / 3; ++i) {
          run_sorter.Add(input[i].first, input[i].second);
        }
        ASSERT_TRUE(run_sorter.Finish().ok());
        runs.push_back(run_sorter.TakeEntries());
      }
      std::vector<Tuple> merged =
          Sorter::MergeRuns(std::move(runs), descending, limit, nullptr)
              .value();
      EXPECT_EQ(Serialized(merged), expect)
          << "desc=" << descending << " k=" << limit;
    }
  }
}

TEST(SortUnitTest, SortRowsAgreesAcrossBatchSizesAndLimits) {
  sql::ExprPtr expr = sql::ParseExpression("v").value();
  BoundExprPtr key = Bind(*expr, RowSchema(), "t", "", nullptr).value();
  std::vector<Tuple> rows = MakeRows(30);

  for (bool descending : {false, true}) {
    for (int64_t limit : {int64_t{-1}, int64_t{4}}) {
      std::vector<std::vector<uint8_t>> expect;
      // batch_size 0 = scalar per-row key eval; the rest one EvalBatch.
      for (size_t batch_size : {size_t{0}, size_t{8}, size_t{256}}) {
        std::vector<Tuple> got =
            SortRows(rows, *key, descending, limit, nullptr, batch_size,
                     nullptr)
                .value();
        if (expect.empty()) {
          expect = Serialized(got);
          EXPECT_EQ(expect.size(),
                    limit < 0 ? rows.size() : static_cast<size_t>(limit));
        } else {
          EXPECT_EQ(Serialized(got), expect)
              << "desc=" << descending << " k=" << limit << " batch "
              << batch_size;
        }
      }
    }
  }
}

TEST(SortUnitTest, IncomparableKeysFailCleanly) {
  Sorter sorter(/*descending=*/false, /*limit=*/-1);
  sorter.Add(Value::Int(1), Tuple({Value::Int(0)}));
  sorter.Add(Value::String("x"), Tuple({Value::Int(1)}));
  EXPECT_FALSE(sorter.Finish().ok());
}

TEST(AggregateUnitTest, SumOverflowIsAnErrorNotWraparound) {
  AggregatePlan plan = MustPlan("SELECT SUM(v) FROM t");
  const AggSpec& spec = plan.specs[0];

  // Single-pass accumulation: INT64_MAX alone is fine; one more positive
  // value overflows and must error instead of wrapping negative.
  AggAccum accum;
  ASSERT_TRUE(accum.Accumulate(spec, Value::Int(INT64_MAX)).ok());
  EXPECT_EQ(accum.Finalize(spec).AsInt(), INT64_MAX);
  Status overflowed = accum.Accumulate(spec, Value::Int(1));
  EXPECT_TRUE(overflowed.IsOutOfRange()) << overflowed.ToString();

  // The negative boundary overflows symmetrically.
  AggAccum negative;
  ASSERT_TRUE(negative.Accumulate(spec, Value::Int(INT64_MIN)).ok());
  EXPECT_TRUE(negative.Accumulate(spec, Value::Int(-1)).IsOutOfRange());

  // Partial-merge path (the parallel plan): two individually-fine partials
  // whose combination overflows must fail in Merge.
  AggAccum left;
  AggAccum right;
  ASSERT_TRUE(left.Accumulate(spec, Value::Int(INT64_MAX)).ok());
  ASSERT_TRUE(right.Accumulate(spec, Value::Int(1)).ok());
  EXPECT_TRUE(left.Merge(spec, right).IsOutOfRange());

  // Merging values that cancel stays exact.
  AggAccum a;
  AggAccum b;
  ASSERT_TRUE(a.Accumulate(spec, Value::Int(INT64_MAX)).ok());
  ASSERT_TRUE(b.Accumulate(spec, Value::Int(-1)).ok());
  ASSERT_TRUE(a.Merge(spec, b).ok());
  EXPECT_EQ(a.Finalize(spec).AsInt(), INT64_MAX - 1);

  // AVG shares the int accumulator, so it reports overflow the same way.
  AggregatePlan avg_plan = MustPlan("SELECT AVG(v) FROM t");
  AggAccum avg;
  ASSERT_TRUE(avg.Accumulate(avg_plan.specs[0], Value::Int(INT64_MAX)).ok());
  EXPECT_TRUE(
      avg.Accumulate(avg_plan.specs[0], Value::Int(2)).IsOutOfRange());
}

TEST(SortUnitTest, MergeRunsHonorsExpiredDeadline) {
  // > 1024 merged rows so the merge loop reaches its deadline-poll stride.
  std::vector<std::vector<Sorter::Entry>> runs;
  for (uint64_t m = 0; m < 2; ++m) {
    Sorter sorter(/*descending=*/false, /*limit=*/-1, m);
    for (int i = 0; i < 1500; ++i) {
      sorter.Add(Value::Int(i), Tuple({Value::Int(i)}));
    }
    ASSERT_TRUE(sorter.Finish().ok());
    runs.push_back(sorter.TakeEntries());
  }
  QueryDeadline expired = QueryDeadline::After(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(expired.Expired());
  EXPECT_TRUE(Sorter::MergeRuns(std::move(runs), false, -1, &expired)
                  .status()
                  .IsDeadlineExceeded());
}

}  // namespace
}  // namespace exec
}  // namespace jaguar
