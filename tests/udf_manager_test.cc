// Tests for UdfManager runner caching and resolution: the "one runner per
// UDF per query plan, reused across invocations" policy (the paper's
// executor-per-query economy), observed through the udf.runner_cache_hits /
// udf.runner_cache_misses counters, plus cache invalidation on
// re-registration and the unknown-UDF error paths.

#include "udf/udf_manager.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "engine/database.h"
#include "jjc/jjc.h"
#include "obs/metrics.h"
#include "udf/builtins.h"
#include "udf/generic_udf.h"

namespace jaguar {
namespace {

obs::MetricsSnapshot CacheCounters() {
  return obs::MetricsRegistry::Global()->Snapshot("udf.runner_cache");
}

uint64_t DeltaOf(const obs::MetricsSnapshot& before, const char* name) {
  obs::MetricsSnapshot delta = obs::SnapshotDelta(before, CacheCounters());
  auto it = delta.find(name);
  return it == delta.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Direct manager tests (catalog-free: native-registry fallback only)
// ---------------------------------------------------------------------------

TEST(UdfManagerTest, ResolveCachesAndReusesRunner) {
  RegisterBuiltinUdfs();
  UdfManager manager(nullptr);
  TypeId return_type;
  std::vector<TypeId> arg_types;

  obs::MetricsSnapshot t0 = CacheCounters();
  UdfRunner* first = manager.Resolve("length", &return_type, &arg_types).value();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(DeltaOf(t0, "udf.runner_cache_misses"), 1u);
  EXPECT_EQ(DeltaOf(t0, "udf.runner_cache_hits"), 0u);

  obs::MetricsSnapshot t1 = CacheCounters();
  UdfRunner* second =
      manager.Resolve("length", &return_type, &arg_types).value();
  EXPECT_EQ(second, first);  // the CachedRunner is reused, not rebuilt
  EXPECT_EQ(DeltaOf(t1, "udf.runner_cache_hits"), 1u);
  EXPECT_EQ(DeltaOf(t1, "udf.runner_cache_misses"), 0u);

  // Resolution is case-insensitive and shares one cache slot.
  EXPECT_EQ(manager.Resolve("LENGTH", nullptr, nullptr).value(), first);
}

TEST(UdfManagerTest, InvalidateCacheForcesRebuild) {
  RegisterBuiltinUdfs();
  UdfManager manager(nullptr);
  UdfRunner* before = manager.Resolve("length", nullptr, nullptr).value();
  manager.InvalidateCache();
  obs::MetricsSnapshot t0 = CacheCounters();
  UdfRunner* after = manager.Resolve("length", nullptr, nullptr).value();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(DeltaOf(t0, "udf.runner_cache_misses"), 1u);
  (void)before;  // may or may not alias `after` (allocator's choice)
}

TEST(UdfManagerTest, UnknownUdfIsNotFoundAndNotCached) {
  RegisterBuiltinUdfs();
  UdfManager manager(nullptr);
  EXPECT_TRUE(
      manager.Resolve("no_such_function", nullptr, nullptr).status()
          .IsNotFound());
  // Failures must not poison the cache with a dead entry: asking again still
  // reports NotFound (a later registration would make it resolvable).
  obs::MetricsSnapshot t0 = CacheCounters();
  EXPECT_TRUE(
      manager.Resolve("no_such_function", nullptr, nullptr).status()
          .IsNotFound());
  EXPECT_EQ(DeltaOf(t0, "udf.runner_cache_hits"), 0u);
}

// ---------------------------------------------------------------------------
// Result memoization (the Section 2.5 deterministic-UDF cache)
// ---------------------------------------------------------------------------

obs::MetricsSnapshot MemoCounters() {
  return obs::MetricsRegistry::Global()->Snapshot("udf.");
}

uint64_t MemoDeltaOf(const obs::MetricsSnapshot& before, const char* name) {
  obs::MetricsSnapshot delta = obs::SnapshotDelta(before, MemoCounters());
  auto it = delta.find(name);
  return it == delta.end() ? 0 : it->second;
}

TEST(UdfMemoCacheTest, LruEvictionAndKeying) {
  UdfMemoCache memo(2);
  const std::string k1 = UdfMemoCache::KeyFor({Value::Int(1)});
  const std::string k2 = UdfMemoCache::KeyFor({Value::Int(2)});
  const std::string k3 = UdfMemoCache::KeyFor({Value::Int(3)});
  ASSERT_NE(k1, k2);

  memo.Insert(k1, Value::Int(10));
  memo.Insert(k2, Value::Int(20));
  ASSERT_TRUE(memo.Lookup(k1).has_value());  // refreshes k1: k2 is now LRU
  memo.Insert(k3, Value::Int(30));           // evicts k2
  EXPECT_FALSE(memo.Lookup(k2).has_value());
  ASSERT_TRUE(memo.Lookup(k1).has_value());
  EXPECT_EQ(memo.Lookup(k1)->AsInt(), 10);
  ASSERT_TRUE(memo.Lookup(k3).has_value());
  EXPECT_EQ(memo.size(), 2u);
}

TEST(UdfManagerTest, MemoHitSkipsReinvocation) {
  RegisterBuiltinUdfs();
  UdfManager manager(nullptr);
  manager.set_memo_capacity(8);
  UdfRunner* runner = manager.Resolve("length", nullptr, nullptr).value();

  const std::vector<Value> args = {Value::Bytes({1, 2, 3, 4})};
  obs::MetricsSnapshot t0 = MemoCounters();
  EXPECT_EQ(runner->Invoke(args, nullptr).value().AsInt(), 4);
  EXPECT_EQ(MemoDeltaOf(t0, "udf.memo.misses"), 1u);
  EXPECT_EQ(MemoDeltaOf(t0, "udf.memo.hits"), 0u);
  EXPECT_EQ(MemoDeltaOf(t0, "udf.cpp.invocations"), 1u);

  // Same arguments: served from the memo, the design's invocation counter
  // must not move (no boundary is crossed).
  obs::MetricsSnapshot t1 = MemoCounters();
  EXPECT_EQ(runner->Invoke(args, nullptr).value().AsInt(), 4);
  EXPECT_EQ(MemoDeltaOf(t1, "udf.memo.hits"), 1u);
  EXPECT_EQ(MemoDeltaOf(t1, "udf.cpp.invocations"), 0u);

  // Different arguments miss.
  obs::MetricsSnapshot t2 = MemoCounters();
  EXPECT_EQ(runner->Invoke({Value::Bytes({9})}, nullptr).value().AsInt(), 1);
  EXPECT_EQ(MemoDeltaOf(t2, "udf.memo.misses"), 1u);

  // Batch over a mix of cached and fresh rows: hits bypass, misses cross.
  obs::MetricsSnapshot t3 = MemoCounters();
  std::vector<std::vector<Value>> batch = {
      {Value::Bytes({1, 2, 3, 4})}, {Value::Bytes({9})}, {Value::Bytes({5, 6})}};
  std::vector<Value> results = runner->InvokeBatch(batch, nullptr).value();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].AsInt(), 4);
  EXPECT_EQ(results[1].AsInt(), 1);
  EXPECT_EQ(results[2].AsInt(), 2);
  EXPECT_EQ(MemoDeltaOf(t3, "udf.memo.hits"), 2u);
  EXPECT_EQ(MemoDeltaOf(t3, "udf.memo.misses"), 1u);
  EXPECT_EQ(MemoDeltaOf(t3, "udf.cpp.invocations"), 1u);
}

// ---------------------------------------------------------------------------
// Through the engine: cache behavior across queries and re-registration
// ---------------------------------------------------------------------------

class UdfManagerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_udfmgr_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
    MustExecute("CREATE TABLE r (b BYTEARRAY)");
    MustExecute("INSERT INTO r VALUES (randbytes(16, 1)), (randbytes(16, 2))");
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  QueryResult MustExecute(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  void RegisterGeneric(UdfLanguage lang) {
    UdfInfo info;
    info.name = "g";
    info.language = lang;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                      TypeId::kInt};
    if (lang == UdfLanguage::kJJava || lang == UdfLanguage::kJJavaIsolated) {
      info.impl_name = "GenericUdf.run";
      info.payload = jjc::Compile(GenericUdfJJavaSource()).value().Serialize();
    } else {
      info.impl_name = "generic_udf";
    }
    ASSERT_TRUE(db_->RegisterUdf(info).ok());
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(UdfManagerE2eTest, SecondQueryHitsTheRunnerCache) {
  RegisterGeneric(UdfLanguage::kJJava);
  QueryResult first = MustExecute("SELECT g(b, 3, 3, 0) FROM r");
  QueryResult second = MustExecute("SELECT g(b, 3, 3, 0) FROM r");
  // The first query had to build the runner; the second reuses every cached
  // runner in the plan — zero misses.
  EXPECT_GE(first.metrics_delta.count("udf.runner_cache_misses"), 1u);
  EXPECT_GE(second.metrics_delta.at("udf.runner_cache_hits"), 1u);
  EXPECT_EQ(second.metrics_delta.count("udf.runner_cache_misses"), 0u);
}

TEST_F(UdfManagerE2eTest, ReRegistrationInvalidatesCachedRunner) {
  RegisterGeneric(UdfLanguage::kJJava);
  QueryResult jni = MustExecute("SELECT g(b, 4, 4, 0) FROM r");
  EXPECT_EQ(jni.metrics_delta.at("udf.jni.invocations"), 2u);

  // Re-register `g` under Design 1. The cached JagVM runner must be dropped:
  // the next query's invocations land on the native design's counters and
  // the rebuild shows up as a cache miss.
  ASSERT_TRUE(db_->DropUdf("g").ok());
  RegisterGeneric(UdfLanguage::kNative);
  QueryResult cpp = MustExecute("SELECT g(b, 4, 4, 0) FROM r");
  EXPECT_GE(cpp.metrics_delta.at("udf.runner_cache_misses"), 1u);
  EXPECT_EQ(cpp.metrics_delta.at("udf.cpp.invocations"), 2u);
  EXPECT_EQ(cpp.metrics_delta.count("udf.jni.invocations"), 0u);

  // Both designs computed the same answer (Table 1's designs agree).
  ASSERT_EQ(jni.rows.size(), cpp.rows.size());
  for (size_t i = 0; i < jni.rows.size(); ++i) {
    EXPECT_EQ(jni.rows[i].value(0).AsInt(), cpp.rows[i].value(0).AsInt());
  }
}

TEST_F(UdfManagerE2eTest, DroppedUdfBecomesUnresolvable) {
  RegisterGeneric(UdfLanguage::kNative);
  MustExecute("SELECT g(b, 1, 1, 0) FROM r");
  ASSERT_TRUE(db_->DropUdf("g").ok());
  Result<QueryResult> r = db_->Execute("SELECT g(b, 1, 1, 0) FROM r");
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
  EXPECT_TRUE(db_->DropUdf("g").IsNotFound());  // double drop
}

TEST_F(UdfManagerE2eTest, MemoNeverServesStaleResultsAcrossReRegistration) {
  // A separate database with the result memo enabled.
  const std::string path = path_ + ".memo";
  std::remove(path.c_str());
  DatabaseOptions options;
  options.udf_memo_entries = 64;
  auto db = Database::Open(path, options).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE r (b BYTEARRAY)").ok());
  ASSERT_TRUE(
      db->Execute("INSERT INTO r VALUES (randbytes(16, 1)), (randbytes(16, 2))")
          .ok());

  auto register_g = [&](const std::string& impl) {
    UdfInfo info;
    info.name = "g";
    info.language = UdfLanguage::kNative;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
    info.impl_name = impl;
    ASSERT_TRUE(db->RegisterUdf(info).ok());
  };
  register_g("generic_udf");

  QueryResult first = db->Execute("SELECT g(b, 3, 3, 0) FROM r").value();
  ASSERT_EQ(first.rows.size(), 2u);
  EXPECT_NE(first.rows[0].value(0).AsInt(), 0);
  EXPECT_GE(first.metrics_delta.at("udf.memo.misses"), 2u);

  // Identical query: both rows now come out of the memo; Design 1's
  // invocation counter stays flat.
  QueryResult second = db->Execute("SELECT g(b, 3, 3, 0) FROM r").value();
  EXPECT_GE(second.metrics_delta.at("udf.memo.hits"), 2u);
  EXPECT_EQ(second.metrics_delta.count("udf.cpp.invocations"), 0u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(second.rows[i].value(0).AsInt(), first.rows[i].value(0).AsInt());
  }

  // Re-register `g` with different semantics (noop_udf returns 0 for every
  // input). If the memo outlived the re-registration, the old checksums
  // would come back; invalidation must force fresh invocations instead.
  ASSERT_TRUE(db->DropUdf("g").ok());
  register_g("noop_udf");
  QueryResult third = db->Execute("SELECT g(b, 3, 3, 0) FROM r").value();
  EXPECT_EQ(third.metrics_delta.at("udf.cpp.invocations"), 2u);
  EXPECT_EQ(third.metrics_delta.count("udf.memo.hits"), 0u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(third.rows[i].value(0).AsInt(), 0);
  }

  db.reset();
  std::remove(path.c_str());
}

TEST_F(UdfManagerE2eTest, UnknownUdfInQueryIsCleanError) {
  Result<QueryResult> r = db_->Execute("SELECT nosuch(b, 1, 1, 0) FROM r");
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
  // The engine survives; a follow-up query still works.
  MustExecute("SELECT length(b) FROM r");
}

}  // namespace
}  // namespace jaguar
