// Unit tests for src/catalog: table and UDF registrations, persistence
// across reopen, rename-free drop/recreate cycles, and corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "catalog/catalog.h"
#include "common/random.h"

namespace jaguar {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_catalog_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    Open();
  }
  void TearDown() override {
    catalog_.reset();
    engine_->Close().ok();
    engine_.reset();
    std::remove(path_.c_str());
  }

  void Open() {
    engine_ = StorageEngine::Open(path_).value();
    catalog_ = Catalog::Open(engine_.get()).value();
  }
  void Reopen() {
    catalog_.reset();
    ASSERT_TRUE(engine_->Close().ok());
    Open();
  }

  std::string path_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CatalogTest, CreateGetDropTable) {
  Schema schema({{"a", TypeId::kInt}, {"b", TypeId::kBytes}});
  ASSERT_TRUE(catalog_->CreateTable("T", schema).ok());
  const TableInfo* info = catalog_->GetTable("t").value();  // case-insensitive
  EXPECT_EQ(info->name, "T");
  EXPECT_EQ(info->schema, schema);
  EXPECT_NE(info->first_page, kInvalidPageId);

  EXPECT_TRUE(catalog_->CreateTable("t", schema).IsAlreadyExists());
  EXPECT_TRUE(catalog_->CreateTable("empty", Schema()).IsInvalidArgument());

  ASSERT_TRUE(catalog_->DropTable("T").ok());
  EXPECT_TRUE(catalog_->GetTable("T").status().IsNotFound());
  EXPECT_TRUE(catalog_->DropTable("T").IsNotFound());
  // Name reusable with a different schema.
  ASSERT_TRUE(catalog_->CreateTable("T", Schema({{"x", TypeId::kString}})).ok());
  EXPECT_EQ(catalog_->GetTable("T").value()->schema.num_columns(), 1u);
}

TEST_F(CatalogTest, ListTablesSorted) {
  Schema s({{"a", TypeId::kInt}});
  for (const char* name : {"zeta", "alpha", "Mid"}) {
    ASSERT_TRUE(catalog_->CreateTable(name, s).ok());
  }
  // Keys are lower-cased, so listing is case-insensitively sorted.
  EXPECT_EQ(catalog_->ListTables(),
            (std::vector<std::string>{"alpha", "Mid", "zeta"}));
}

TEST_F(CatalogTest, EverythingPersistsAcrossReopen) {
  Schema s({{"a", TypeId::kInt}, {"blob", TypeId::kBytes}});
  ASSERT_TRUE(catalog_->CreateTable("data", s).ok());
  PageId first = catalog_->GetTable("data").value()->first_page;

  UdfInfo udf;
  udf.name = "Score";
  udf.language = UdfLanguage::kJJavaIsolated;
  udf.return_type = TypeId::kInt;
  udf.arg_types = {TypeId::kBytes, TypeId::kInt};
  udf.impl_name = "Score.run";
  udf.payload = Random(7).Bytes(3000);
  ASSERT_TRUE(catalog_->RegisterUdf(udf).ok());

  Reopen();

  const TableInfo* table = catalog_->GetTable("data").value();
  EXPECT_EQ(table->schema, s);
  EXPECT_EQ(table->first_page, first);

  const UdfInfo* loaded = catalog_->GetUdf("score").value();
  EXPECT_EQ(loaded->name, "Score");
  EXPECT_EQ(loaded->language, UdfLanguage::kJJavaIsolated);
  EXPECT_EQ(loaded->arg_types, udf.arg_types);
  EXPECT_EQ(loaded->impl_name, "Score.run");
  EXPECT_EQ(loaded->payload, udf.payload);
}

TEST_F(CatalogTest, ManyEntriesAndLargePayloadsSurviveRewrites) {
  // The catalog rewrites its heap on every mutation; hammer that path with
  // entries big enough to need overflow pages.
  Schema s({{"a", TypeId::kInt}});
  Random rng(3);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(catalog_->CreateTable("t" + std::to_string(i), s).ok());
    UdfInfo udf;
    udf.name = "udf" + std::to_string(i);
    udf.language = UdfLanguage::kJJava;
    udf.return_type = TypeId::kInt;
    udf.arg_types = {TypeId::kBytes};
    udf.impl_name = "C.m";
    udf.payload = rng.Bytes(static_cast<size_t>(1000 * (i % 20)));
    ASSERT_TRUE(catalog_->RegisterUdf(udf).ok());
  }
  // Interleave drops.
  for (int i = 0; i < 30; i += 3) {
    ASSERT_TRUE(catalog_->DropTable("t" + std::to_string(i)).ok());
    ASSERT_TRUE(catalog_->DropUdf("udf" + std::to_string(i)).ok());
  }
  Reopen();
  EXPECT_EQ(catalog_->ListTables().size(), 20u);
  EXPECT_EQ(catalog_->ListUdfs().size(), 20u);
  EXPECT_EQ(catalog_->GetUdf("udf19").value()->payload.size(), 19000u);
  EXPECT_TRUE(catalog_->GetTable("t1").ok());   // survivor
  EXPECT_TRUE(catalog_->GetTable("t0").status().IsNotFound());  // dropped
  EXPECT_TRUE(catalog_->GetTable("t27").status().IsNotFound());
}

TEST_F(CatalogTest, UdfDuplicateAndDropSemantics) {
  UdfInfo udf;
  udf.name = "F";
  udf.impl_name = "x";
  ASSERT_TRUE(catalog_->RegisterUdf(udf).ok());
  EXPECT_TRUE(catalog_->RegisterUdf(udf).IsAlreadyExists());
  // Case-insensitive identity.
  udf.name = "f";
  EXPECT_TRUE(catalog_->RegisterUdf(udf).IsAlreadyExists());
  ASSERT_TRUE(catalog_->DropUdf("F").ok());
  EXPECT_TRUE(catalog_->DropUdf("F").IsNotFound());
}

TEST_F(CatalogTest, TableAndUdfNamespacesAreSeparate) {
  Schema s({{"a", TypeId::kInt}});
  ASSERT_TRUE(catalog_->CreateTable("same_name", s).ok());
  UdfInfo udf;
  udf.name = "same_name";
  udf.impl_name = "x";
  EXPECT_TRUE(catalog_->RegisterUdf(udf).ok());
  Reopen();
  EXPECT_TRUE(catalog_->GetTable("same_name").ok());
  EXPECT_TRUE(catalog_->GetUdf("same_name").ok());
}

}  // namespace
}  // namespace jaguar
