/// Unit + property tests for the SPSC shared-memory ring buffer behind the
/// "ring" IPC transport: frame round-trips, zero-copy reserve/commit,
/// wraparound at every buffer offset, corrupted-frame rejection (seeded bit
/// flips), flow control, out-of-order release safety, and a two-thread FIFO
/// stress that doubles as the TSan race test (test names carry "Ring" so the
/// CI TSan job's regex picks them up).

#include "common/ring_buffer.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace jaguar {
namespace {

/// One ring over process-private memory (SPSC across threads is the same
/// protocol as across processes; the fork-based paths are covered by
/// ipc_test.cc and robustness_test.cc).
class RingHarness {
 public:
  explicit RingHarness(uint64_t capacity, uint64_t max_payload,
                       RingStats stats = {}) {
    mem_.resize(SpscRingBuffer::LayoutBytes(capacity));
    status_ = ring_.Init(mem_.data(), capacity, max_payload, stats);
  }
  ~RingHarness() { ring_.Destroy(); }

  SpscRingBuffer* ring() { return &ring_; }
  const Status& init_status() const { return status_; }

  /// Raw access to the data area (for the corruption tests).
  uint8_t* data() { return mem_.data() + sizeof(SpscRingBuffer::Control); }

 private:
  std::vector<uint8_t> mem_;
  SpscRingBuffer ring_;
  Status status_ = Status::OK();
};

std::vector<uint8_t> PatternPayload(size_t len, uint32_t seed) {
  std::vector<uint8_t> p(len);
  for (size_t i = 0; i < len; ++i) {
    p[i] = static_cast<uint8_t>((seed * 31 + i * 7) & 0xFF);
  }
  return p;
}

SpscRingBuffer::WaitOptions QuickWait() {
  SpscRingBuffer::WaitOptions w;
  w.budget_ns = 5ll * 1000000000;
  return w;
}

TEST(RingBufferTest, InitRejectsBadGeometry) {
  std::vector<uint8_t> mem(SpscRingBuffer::LayoutBytes(8192));
  SpscRingBuffer ring;
  EXPECT_FALSE(ring.Init(mem.data(), 5000, 64).ok());  // not a power of two
  EXPECT_FALSE(ring.Init(mem.data(), 1024, 64).ok());  // below the minimum
  // A maximal padded frame must fit in half the capacity (pipelining room).
  EXPECT_FALSE(ring.Init(mem.data(), 4096, 4000).ok());
  EXPECT_TRUE(ring.Init(mem.data(), 4096, 1024).ok());
  ring.Destroy();
}

TEST(RingBufferTest, RoundTripsFramesOfEverySize) {
  RingHarness h(8192, 2048);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  for (size_t len : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(13),
                     size_t(64), size_t(2048)}) {
    std::vector<uint8_t> payload = PatternPayload(len, 42);
    ASSERT_TRUE(h.ring()->Write(17, Slice(payload), w).ok()) << len;
    auto frame = h.ring()->Read(w);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, 17u);
    ASSERT_EQ(frame->payload.size(), len);
    EXPECT_EQ(0, std::memcmp(frame->payload.data(), payload.data(), len));
    h.ring()->Release(frame->end_pos);
  }
}

TEST(RingBufferTest, ZeroCopyPrepareCommitSkipsTheStagingBuffer) {
  RingHarness h(4096, 512);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  auto buf = h.ring()->Prepare(256, w);
  ASSERT_TRUE(buf.ok());
  // The reservation points into the ring's data area, not a private buffer.
  EXPECT_GE(*buf, h.data());
  EXPECT_LT(*buf, h.data() + 4096);
  std::vector<uint8_t> payload = PatternPayload(100, 7);
  std::memcpy(*buf, payload.data(), payload.size());
  ASSERT_TRUE(h.ring()->Commit(3, 100).ok());  // actual < reserved is fine

  auto frame = h.ring()->Read(w);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, 3u);
  ASSERT_EQ(frame->payload.size(), 100u);
  // The view reads the same shared bytes the producer serialized into.
  EXPECT_EQ(frame->payload.data(), *buf);
  EXPECT_EQ(0, std::memcmp(frame->payload.data(), payload.data(), 100));
  h.ring()->Release(frame->end_pos);
}

TEST(RingBufferTest, AbortedReservationLeavesRingClean) {
  RingHarness h(4096, 512);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  ASSERT_TRUE(h.ring()->Prepare(512, w).ok());
  h.ring()->Abort();
  std::vector<uint8_t> payload = PatternPayload(32, 9);
  ASSERT_TRUE(h.ring()->Write(1, Slice(payload), w).ok());
  auto frame = h.ring()->Read(w);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(0, std::memcmp(frame->payload.data(), payload.data(), 32));
  h.ring()->Release(frame->end_pos);
}

TEST(RingBufferTest, RejectsPayloadBeyondMaxAndCommitBeyondReservation) {
  RingHarness h(4096, 128);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  std::vector<uint8_t> big(129, 0xAB);
  EXPECT_TRUE(h.ring()->Write(1, Slice(big), w).IsInvalidArgument());
  auto buf = h.ring()->Prepare(64, w);
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(h.ring()->Commit(1, 65).ok());
}

TEST(RingBufferTest, ReadTimesOutOnAnEmptyRing) {
  RingHarness h(4096, 128);
  ASSERT_TRUE(h.init_status().ok());
  SpscRingBuffer::WaitOptions w;
  w.budget_ns = 50 * 1000000;  // 50 ms
  w.spin_limit = 16;
  auto frame = h.ring()->Read(w);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsIoError());
}

/// Frames with a stride whose gcd with the capacity is the alignment (8)
/// visit every 8-aligned offset of the buffer, exercising the wrap marker
/// and the implicit end-of-buffer skip at each one.
TEST(RingBufferTest, WraparoundSweepVisitsEveryOffset) {
  auto* wraps =
      obs::MetricsRegistry::Global()->GetCounter("test.ring.sweep.wraps");
  RingStats stats;
  stats.wraps = wraps;
  const uint64_t wraps_before = wraps->value();

  RingHarness h(4096, 1024, stats);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  // Pad(12 + 28) = 40; gcd(40, 4096) = 8, so 512 frames cycle the start
  // offset through all 512 aligned positions. Run two full cycles.
  const size_t kFrames = 1024;
  for (size_t i = 0; i < kFrames; ++i) {
    std::vector<uint8_t> payload = PatternPayload(28, static_cast<uint32_t>(i));
    ASSERT_TRUE(h.ring()->Write(static_cast<uint32_t>(i), Slice(payload), w)
                    .ok())
        << i;
    auto frame = h.ring()->Read(w);
    ASSERT_TRUE(frame.ok()) << i << ": " << frame.status().ToString();
    EXPECT_EQ(frame->type, static_cast<uint32_t>(i));
    ASSERT_EQ(frame->payload.size(), 28u);
    EXPECT_EQ(0, std::memcmp(frame->payload.data(), payload.data(), 28)) << i;
    h.ring()->Release(frame->end_pos);
  }
  // 1024 frames of stride 40 cover ~40 KB through a 4 KB ring: ≥9 wraps.
  EXPECT_GT(wraps->value() - wraps_before, 8u);
}

/// Property test in the codec_property_test mold: any single bit flipped
/// inside a committed frame's header or payload must surface as Corruption,
/// never as a decoded frame with wrong content. (Padding bytes are excluded:
/// they are outside the CRC and never read.)
TEST(RingBufferTest, SeededBitFlipsInFramesAreRejected) {
  std::mt19937 rng(0xBADC0DE);
  const SpscRingBuffer::WaitOptions w = QuickWait();
  for (int iter = 0; iter < 300; ++iter) {
    RingHarness h(4096, 512, {});
    ASSERT_TRUE(h.init_status().ok());
    const size_t len = 1 + (rng() % 256);
    std::vector<uint8_t> payload = PatternPayload(len, rng());
    ASSERT_TRUE(h.ring()->Write(4, Slice(payload), w).ok());

    // The frame sits at offset 0: u32 len | u32 type | u32 crc | payload.
    // Every byte of these frames lies inside the CRC coverage window
    // (len < kCrcWindow), so any single-bit flip must be detected.
    static_assert(256 + SpscRingBuffer::kHeaderBytes <
                      SpscRingBuffer::kCrcWindow,
                  "bit-flip sweep must stay within CRC coverage");
    const size_t frame_bytes = SpscRingBuffer::kHeaderBytes + len;
    const size_t bit = rng() % (frame_bytes * 8);
    h.data()[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));

    auto frame = h.ring()->Read(w);
    ASSERT_FALSE(frame.ok())
        << "iter " << iter << ": flipped bit " << bit << " of " << frame_bytes
        << "-byte frame decoded anyway";
    EXPECT_TRUE(frame.status().IsCorruption()) << frame.status().ToString();
  }
}

TEST(RingBufferTest, ProducerBlocksOnFullRingUntilRelease) {
  RingHarness h(4096, 1024);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  std::vector<uint8_t> payload = PatternPayload(1024, 5);
  // Three maximal frames occupy 3 * 1040 = 3120 bytes; a fourth (1040) does
  // not fit in the remaining 976, so the producer must wait for a release.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(h.ring()->Write(static_cast<uint32_t>(i), Slice(payload), w)
                    .ok());
  }
  std::atomic<bool> fourth_done{false};
  std::thread producer([&] {
    ASSERT_TRUE(h.ring()->Write(3, Slice(payload), w).ok());
    fourth_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Space genuinely does not exist yet, so the write cannot have finished.
  EXPECT_FALSE(fourth_done.load());

  auto frame = h.ring()->Read(w);
  ASSERT_TRUE(frame.ok());
  h.ring()->Release(frame->end_pos);
  producer.join();
  EXPECT_TRUE(fourth_done.load());
  for (uint32_t expect = 1; expect <= 3; ++expect) {
    auto f = h.ring()->Read(w);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->type, expect);
    h.ring()->Release(f->end_pos);
  }
}

TEST(RingBufferTest, OutOfOrderReleaseNeverRecyclesAnEarlierLiveView) {
  RingHarness h(4096, 1024);
  ASSERT_TRUE(h.init_status().ok());
  const SpscRingBuffer::WaitOptions w = QuickWait();
  std::vector<uint8_t> first = PatternPayload(1024, 1);
  std::vector<uint8_t> second = PatternPayload(1024, 2);
  std::vector<uint8_t> third = PatternPayload(1024, 3);
  ASSERT_TRUE(h.ring()->Write(1, Slice(first), w).ok());
  ASSERT_TRUE(h.ring()->Write(2, Slice(second), w).ok());
  ASSERT_TRUE(h.ring()->Write(3, Slice(third), w).ok());

  auto f1 = h.ring()->Read(w);
  auto f2 = h.ring()->Read(w);
  auto f3 = h.ring()->Read(w);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f3.ok());

  // Releasing the later frames first must not advance the shared head:
  // frame 1's bytes are still on loan, so a fourth maximal write (which
  // needs the prefix recycled) must still block.
  h.ring()->Release(f3->end_pos);
  h.ring()->Release(f2->end_pos);
  SpscRingBuffer::WaitOptions quick;
  quick.budget_ns = 50 * 1000000;
  quick.spin_limit = 16;
  std::vector<uint8_t> fourth = PatternPayload(1024, 4);
  EXPECT_TRUE(h.ring()->Write(4, Slice(fourth), quick).IsIoError());
  // Frame 1's view is bitwise intact.
  EXPECT_EQ(0, std::memcmp(f1->payload.data(), first.data(), first.size()));

  // Releasing frame 1 frees the whole released prefix at once.
  h.ring()->Release(f1->end_pos);
  EXPECT_TRUE(h.ring()->Write(4, Slice(fourth), w).ok());
}

/// Two-thread FIFO stress: 20k variable-size frames must arrive in order
/// and bitwise intact. This is the designated TSan target for the ring's
/// lock-free handshake (spin/park/wake under real contention).
TEST(RingBufferStressTest, TwoThreadFifoOrderAndContent) {
  RingHarness h(16384, 2048);
  ASSERT_TRUE(h.init_status().ok());
  constexpr uint32_t kFrames = 20000;
  SpscRingBuffer::WaitOptions w;
  w.budget_ns = 60ll * 1000000000;

  std::thread producer([&] {
    for (uint32_t i = 0; i < kFrames; ++i) {
      const size_t len = (i * 17) % 1500;
      std::vector<uint8_t> payload = PatternPayload(len, i);
      ASSERT_TRUE(h.ring()->Write(i, Slice(payload), w).ok()) << i;
    }
  });

  for (uint32_t i = 0; i < kFrames; ++i) {
    auto frame = h.ring()->Read(w);
    ASSERT_TRUE(frame.ok()) << i << ": " << frame.status().ToString();
    EXPECT_EQ(frame->type, i);  // strict FIFO
    const size_t len = (i * 17) % 1500;
    ASSERT_EQ(frame->payload.size(), len) << i;
    std::vector<uint8_t> expect = PatternPayload(len, i);
    ASSERT_EQ(0, std::memcmp(frame->payload.data(), expect.data(), len)) << i;
    h.ring()->Release(frame->end_pos);
  }
  producer.join();
}

}  // namespace
}  // namespace jaguar
