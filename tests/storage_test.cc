// Tests for src/storage: disk manager, slotted pages, buffer pool,
// storage engine free list, table heap (including overflow chains).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "storage/storage_engine.h"
#include "storage/table_heap.h"

namespace jaguar {
namespace {

/// Creates a unique temp db path and removes it on destruction.
class TempDb {
 public:
  explicit TempDb(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_test_" + tag + "_" + std::to_string(::getpid()) + ".db"))
                .string();
    std::remove(path_.c_str());
  }
  ~TempDb() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(DiskManagerTest, AllocateReadWrite) {
  TempDb db("disk");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  EXPECT_EQ(dm.num_pages(), 0u);

  ASSERT_TRUE(dm.AllocatePage().ok());
  ASSERT_EQ(dm.AllocatePage().value(), 1u);
  EXPECT_EQ(dm.num_pages(), 2u);

  std::vector<uint8_t> buf(kPageSize, 0x5A);
  ASSERT_TRUE(dm.WritePage(1, buf.data()).ok());
  std::vector<uint8_t> out(kPageSize, 0);
  ASSERT_TRUE(dm.ReadPage(1, out.data()).ok());
  EXPECT_EQ(out, buf);

  // Unallocated access is rejected.
  EXPECT_TRUE(dm.ReadPage(9, out.data()).IsInvalidArgument());
  EXPECT_TRUE(dm.WritePage(9, buf.data()).IsInvalidArgument());
  ASSERT_TRUE(dm.Close().ok());
}

TEST(DiskManagerTest, ReopenSeesPersistedPages) {
  TempDb db("disk_reopen");
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(db.path()).ok());
    ASSERT_TRUE(dm.AllocatePage().ok());
    std::vector<uint8_t> buf(kPageSize, 7);
    ASSERT_TRUE(dm.WritePage(0, buf.data()).ok());
    ASSERT_TRUE(dm.Close().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  EXPECT_EQ(dm.num_pages(), 1u);
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(dm.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[kPageSize - 1], 7);
}

TEST(SlottedPageTest, InsertGetDelete) {
  std::vector<uint8_t> buf(kPageSize);
  SlottedPage sp(buf.data());
  sp.Init();
  EXPECT_EQ(sp.num_slots(), 0u);
  EXPECT_TRUE(sp.CheckInvariants().ok());

  uint16_t s0 = sp.Insert(Slice("hello")).value();
  uint16_t s1 = sp.Insert(Slice("world!")).value();
  EXPECT_EQ(sp.Get(s0).value().ToString(), "hello");
  EXPECT_EQ(sp.Get(s1).value().ToString(), "world!");
  EXPECT_TRUE(sp.CheckInvariants().ok());

  ASSERT_TRUE(sp.Delete(s0).ok());
  EXPECT_TRUE(sp.Get(s0).status().IsNotFound());
  EXPECT_TRUE(sp.Delete(s0).IsNotFound());  // double delete
  EXPECT_EQ(sp.Get(s1).value().ToString(), "world!");

  // Tombstone slot is reused.
  uint16_t s2 = sp.Insert(Slice("again")).value();
  EXPECT_EQ(s2, s0);
  EXPECT_TRUE(sp.CheckInvariants().ok());
}

TEST(SlottedPageTest, ZeroLengthRecords) {
  std::vector<uint8_t> buf(kPageSize);
  SlottedPage sp(buf.data());
  sp.Init();
  uint16_t s = sp.Insert(Slice()).value();
  EXPECT_EQ(sp.Get(s).value().size(), 0u);
  EXPECT_TRUE(sp.CheckInvariants().ok());
  ASSERT_TRUE(sp.Delete(s).ok());
  EXPECT_TRUE(sp.Get(s).status().IsNotFound());
}

TEST(SlottedPageTest, FillsUpThenRejects) {
  std::vector<uint8_t> buf(kPageSize);
  SlottedPage sp(buf.data());
  sp.Init();
  std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    Result<uint16_t> s = sp.Insert(Slice(rec));
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // 8192 / 104 ≈ 78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_TRUE(sp.CheckInvariants().ok());
}

TEST(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  std::vector<uint8_t> buf(kPageSize);
  SlottedPage sp(buf.data());
  sp.Init();
  std::string rec(1000, 'x');
  std::vector<uint16_t> slots;
  while (true) {
    Result<uint16_t> s = sp.Insert(Slice(rec));
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  ASSERT_GE(slots.size(), 4u);
  // Delete every other record, then a big insert must succeed via Compact.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp.Delete(slots[i]).ok());
  }
  std::string big(1800, 'y');
  Result<uint16_t> s = sp.Insert(Slice(big));
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(sp.Get(*s).value().ToString(), big);
  // Survivors are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(sp.Get(slots[i]).value().ToString(), rec);
  }
  EXPECT_TRUE(sp.CheckInvariants().ok());
}

TEST(SlottedPageTest, RejectsOversizeRecord) {
  std::vector<uint8_t> buf(kPageSize);
  SlottedPage sp(buf.data());
  sp.Init();
  std::string huge(kPageSize, 'z');
  EXPECT_TRUE(sp.Insert(Slice(huge)).status().IsInvalidArgument());
}

// Property sweep: random insert/delete sequences keep invariants and a shadow
// map in sync.
class SlottedPageFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SlottedPageFuzzTest, MatchesShadowModel) {
  Random rng(GetParam() * 7919 + 13);
  std::vector<uint8_t> buf(kPageSize);
  SlottedPage sp(buf.data());
  sp.Init();
  std::map<uint16_t, std::string> shadow;
  for (int step = 0; step < 500; ++step) {
    if (shadow.empty() || rng.Bernoulli(0.6)) {
      std::string rec = rng.AlphaString(rng.Uniform(300));
      Result<uint16_t> s = sp.Insert(Slice(rec));
      if (s.ok()) {
        shadow[*s] = rec;
      } else {
        ASSERT_TRUE(s.status().IsResourceExhausted());
      }
    } else {
      auto it = shadow.begin();
      std::advance(it, rng.Uniform(shadow.size()));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      shadow.erase(it);
    }
    ASSERT_TRUE(sp.CheckInvariants().ok());
  }
  for (const auto& [slot, rec] : shadow) {
    EXPECT_EQ(sp.Get(slot).value().ToString(), rec);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPageFuzzTest, ::testing::Range(0, 10));

TEST(BufferPoolTest, FetchCachesPages) {
  TempDb db("pool");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPool pool(&dm, 4);
  PageId id;
  {
    PageGuard p = pool.NewPage().value();
    id = p.id();
    p.data()[0] = 42;
    p.MarkDirty();
  }
  {
    PageGuard p = pool.FetchPage(id).value();
    EXPECT_EQ(p.data()[0], 42);
  }
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  TempDb db("pool_evict");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPool pool(&dm, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    PageGuard p = pool.NewPage().value();
    p.data()[0] = static_cast<uint8_t>(i + 1);
    p.MarkDirty();
    ids.push_back(p.id());
  }
  // All 8 pages round-trip through a 2-frame pool.
  for (int i = 0; i < 8; ++i) {
    PageGuard p = pool.FetchPage(ids[i]).value();
    EXPECT_EQ(p.data()[0], i + 1);
  }
  EXPECT_GT(pool.misses(), 0u);
}

TEST(BufferPoolTest, AllPinnedFails) {
  TempDb db("pool_pinned");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPool pool(&dm, 2);
  PageGuard a = pool.NewPage().value();
  PageGuard b = pool.NewPage().value();
  EXPECT_TRUE(pool.NewPage().status().IsResourceExhausted());
  b.Release();
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(BufferPoolTest, GuardMoveKeepsSinglePin) {
  TempDb db("pool_move");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPool pool(&dm, 2);
  PageGuard a = pool.NewPage().value();
  EXPECT_EQ(pool.pinned_frames(), 1u);
  PageGuard b = std::move(a);
  EXPECT_EQ(pool.pinned_frames(), 1u);
  b.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, ShardCountScalesWithWorkersAndClampsToCapacity) {
  TempDb db("pool_shards");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  {
    BufferPool pool(&dm, 64);  // default workers_hint = 1
    EXPECT_EQ(pool.num_shards(), 2u);
  }
  BufferPoolConfig config;
  config.workers_hint = 4;
  {
    BufferPool pool(&dm, 64, nullptr, config);
    EXPECT_EQ(pool.num_shards(), 8u);
  }
  config.workers_hint = 32;  // auto shard count caps at 16
  {
    BufferPool pool(&dm, 64, nullptr, config);
    EXPECT_EQ(pool.num_shards(), 16u);
  }
  config.shards = 5;  // explicit counts round up to a power of two
  {
    BufferPool pool(&dm, 64, nullptr, config);
    EXPECT_EQ(pool.num_shards(), 8u);
  }
  config.shards = 16;  // ... and clamp to the capacity
  {
    BufferPool pool(&dm, 2, nullptr, config);
    EXPECT_EQ(pool.num_shards(), 2u);
  }
}

// DiskManager that counts reads and makes each one slow enough that
// concurrent misses of the same page overlap deterministically.
class SlowCountingDisk : public DiskManager {
 public:
  Status ReadPage(PageId id, uint8_t* out) override {
    reads_started.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return DiskManager::ReadPage(id, out);
  }
  std::atomic<int> reads_started{0};
};

TEST(BufferPoolTest, ConcurrentMissesOfOnePageIssueOneRead) {
  TempDb db("pool_dupread");
  SlowCountingDisk dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  PageId id = dm.AllocatePage().value();
  std::vector<uint8_t> buf(kPageSize, 0xAB);
  ASSERT_TRUE(dm.WritePage(id, buf.data()).ok());

  BufferPoolConfig config;
  config.workers_hint = 4;
  config.readahead_pages = 0;
  BufferPool pool(&dm, 8, nullptr, config);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto page = pool.FetchPage(id);
      if (!page.ok() || page->data()[0] != 0xAB) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dm.reads_started.load(), 1);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), static_cast<uint64_t>(kThreads - 1));
  EXPECT_GE(pool.io_waits(), 1u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

// DiskManager whose page writes can be made to fail on demand.
class FailingWriteDisk : public DiskManager {
 public:
  Status WritePage(PageId id, const uint8_t* data) override {
    if (fail_writes.load()) return IoError("injected write failure");
    return DiskManager::WritePage(id, data);
  }
  std::atomic<bool> fail_writes{false};
};

TEST(BufferPoolTest, FailedWriteBackKeepsVictimReachable) {
  TempDb db("pool_wbfail");
  FailingWriteDisk dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPool pool(&dm, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 2; ++i) {
    PageGuard p = pool.NewPage().value();
    p.data()[0] = static_cast<uint8_t>(0x10 + i);
    p.MarkDirty();
    ids.push_back(p.id());
  }
  // Both frames hold dirty pages; a third page needs an eviction, whose
  // write-back fails. The error must surface AND the dirty victim must stay
  // fetchable (the old pool leaked the frame on this path).
  dm.fail_writes.store(true);
  EXPECT_TRUE(pool.NewPage().status().IsIoError());
  dm.fail_writes.store(false);
  for (int i = 0; i < 2; ++i) {
    PageGuard p = pool.FetchPage(ids[i]).value();
    EXPECT_EQ(p.data()[0], 0x10 + i);
  }
  EXPECT_TRUE(pool.NewPage().ok());  // eviction works again
}

TEST(BufferPoolTest, PrefetchLoadsPagesColdInBackground) {
  TempDb db("pool_prefetch");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  PageId id = dm.AllocatePage().value();
  std::vector<uint8_t> buf(kPageSize, 0xCD);
  ASSERT_TRUE(dm.WritePage(id, buf.data()).ok());

  BufferPoolConfig config;
  config.readahead_pages = 4;
  BufferPool pool(&dm, 4, nullptr, config);
  pool.Prefetch(id);
  for (int i = 0; i < 1000 && pool.readahead_issued() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(pool.readahead_issued(), 1u);
  // The prefetched page is resident and unpinned; fetching it is a hit.
  EXPECT_EQ(pool.pinned_frames(), 0u);
  PageGuard p = pool.FetchPage(id).value();
  EXPECT_EQ(p.data()[0], 0xCD);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_EQ(pool.readahead_hits(), 1u);
}

TEST(BufferPoolTest, HitOnlyWorkloadKeepsClockRingBounded) {
  TempDb db("pool_ringbound");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPool pool(&dm, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    PageGuard p = pool.NewPage().value();
    ids.push_back(p.id());
  }
  // A working set that fits in the pool never evicts, so nothing but
  // ClockPush's own compaction reclaims the stale ring entry each pin/unpin
  // cycle leaves behind. Before the compaction this grew by one entry per
  // fetch, without bound, for the life of the process.
  for (int i = 0; i < 20000; ++i) {
    PageGuard p = pool.FetchPage(ids[i % ids.size()]).value();
  }
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_LE(pool.clock_entries(),
            2 * pool.capacity() + 17 * pool.num_shards());
}

TEST(BufferPoolTest, DiscardPurgesQueuedReadahead) {
  TempDb db("pool_discard_ra");
  SlowCountingDisk dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  PageId busy = dm.AllocatePage().value();
  PageId target = dm.AllocatePage().value();
  std::vector<uint8_t> buf(kPageSize, 0x11);
  ASSERT_TRUE(dm.WritePage(busy, buf.data()).ok());
  ASSERT_TRUE(dm.WritePage(target, buf.data()).ok());

  BufferPoolConfig config;
  config.readahead_pages = 4;
  BufferPool pool(&dm, 4, nullptr, config);
  // The slow read of `busy` keeps the worker occupied, so the hint for
  // `target` is still queued when Discard runs. Discard must purge it (or
  // drain it, if the worker got there first): a prefetch completing after
  // the discard would resurrect the freed page from its stale disk image.
  pool.Prefetch(busy);
  pool.Prefetch(target);
  ASSERT_TRUE(pool.Discard(target).ok());
  for (int i = 0; i < 1000 && pool.readahead_issued() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(pool.readahead_issued(), 1u);
  // Give a resurrected prefetch (the bug) time to land before checking.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const uint64_t misses_before = pool.misses();
  PageGuard p = pool.FetchPage(target).value();
  EXPECT_EQ(pool.misses(), misses_before + 1);  // target was not resident
}

// DiskManager whose page writes park until released, to observe what the
// pool keeps available while a write-back is in flight.
class GatedWriteDisk : public DiskManager {
 public:
  Status WritePage(PageId id, const uint8_t* data) override {
    {
      std::unique_lock<std::mutex> lk(m_);
      if (gated_) {
        started_ = true;
        cv_.notify_all();
        cv_.wait(lk, [this] { return !gated_; });
      }
    }
    return DiskManager::WritePage(id, data);
  }
  void Gate() {
    std::lock_guard<std::mutex> lk(m_);
    gated_ = true;
    started_ = false;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lk(m_);
      gated_ = false;
    }
    cv_.notify_all();
  }
  void AwaitWriteStarted() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [this] { return started_; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool gated_ = false;
  bool started_ = false;
};

TEST(BufferPoolTest, FlushAllDoesNotBlockFetchesDuringWriteBack) {
  TempDb db("pool_flush_offlatch");
  GatedWriteDisk dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());
  BufferPoolConfig config;
  config.shards = 1;  // both pages behind the one shard latch
  config.readahead_pages = 0;
  BufferPool pool(&dm, 4, nullptr, config);
  PageId dirty_id, clean_id;
  {
    PageGuard a = pool.NewPage().value();
    dirty_id = a.id();
    PageGuard b = pool.NewPage().value();
    clean_id = b.id();
  }
  ASSERT_TRUE(pool.FlushAll().ok());  // both resident and clean
  {
    PageGuard a = pool.FetchPage(dirty_id).value();
    a.data()[0] = 7;
    a.MarkDirty();
  }
  dm.Gate();
  std::thread flusher([&] { EXPECT_TRUE(pool.FlushAll().ok()); });
  dm.AwaitWriteStarted();
  // FlushAll is parked inside the dirty page's write. The shard latch must
  // be free: a hit on the clean resident page completes immediately (the
  // old pool held the latch across the whole per-page fsync+write scan and
  // would hang here until the write finished).
  {
    Result<PageGuard> p = pool.FetchPage(clean_id);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->id(), clean_id);
  }
  dm.Release();
  flusher.join();
  // The flushed mutation landed despite the gate.
  std::vector<uint8_t> check(kPageSize);
  ASSERT_TRUE(dm.ReadPage(dirty_id, check.data()).ok());
  EXPECT_EQ(check[0], 7);
}

// Multi-threaded fetch/evict/discard stress with the readahead worker and
// background writer running; meant for the TSan CI job. Each thread owns
// the pages whose id is congruent to its index (only owners mutate or
// discard), everyone reads everything.
TEST(BufferPoolConcurrencyTest, ParallelFetchEvictDiscardStress) {
  TempDb db("pool_stress");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(db.path()).ok());

  constexpr int kThreads = 4;
  constexpr int kPages = 64;
  constexpr int kIters = 300;

  BufferPoolConfig config;
  config.workers_hint = kThreads;
  config.readahead_pages = 4;
  config.bg_writer = true;
  config.bg_writer_interval_ms = 1;
  // Small batches: frames under background write-back are briefly
  // unavailable, and a 16-frame pool can't spare eight at once.
  config.bg_writer_batch = 2;
  // Capacity is deliberately far below kPages so fetches constantly evict,
  // but above kThreads * 2 so concurrent transfers can't exhaust the pool.
  BufferPool pool(&dm, 16, nullptr, config);

  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    PageGuard p = pool.NewPage().value();
    p.data()[0] = static_cast<uint8_t>(p.id() & 0xFF);
    p.MarkDirty();
    ids.push_back(p.id());
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(42 + t);
      for (int i = 0; i < kIters; ++i) {
        const int k = static_cast<int>(rng.Next() % kPages);
        const PageId id = ids[k];
        const bool owned = k % kThreads == t;
        if (owned && rng.Next() % 8 == 0) {
          // Discard is only legal while nobody has the page pinned; owners
          // are the only ones who discard, but a reader may hold a pin, so
          // an Internal "pinned" rejection is expected, not a failure.
          Status s = pool.Discard(id);
          if (!s.ok() && !s.IsInternal()) failures.fetch_add(1);
          continue;
        }
        auto page = pool.FetchPage(id);
        if (!page.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (page->data()[0] != static_cast<uint8_t>(id & 0xFF)) {
          failures.fetch_add(1);
        }
        if (owned) {
          page->data()[1]++;  // only the owner mutates
          page->MarkDirty();
        }
        if (rng.Next() % 4 == 0) {
          pool.Prefetch(ids[(k + 1) % kPages]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_GT(pool.evictions(), 0u);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Every surviving page still carries its stamp after the dust settles.
  for (int k = 0; k < kPages; ++k) {
    PageGuard p = pool.FetchPage(ids[k]).value();
    EXPECT_EQ(p.data()[0], static_cast<uint8_t>(ids[k] & 0xFF));
  }
}

TEST(BufferPoolTest, ReadaheadScanMatchesNoReadaheadScan) {
  TempDb db("pool_ra_scan");
  PageId root = kInvalidPageId;
  {
    auto engine = StorageEngine::Open(db.path(), /*pool_pages=*/64).value();
    root = TableHeap::Create(engine.get()).value();
    TableHeap heap(engine.get(), root);
    Random rng(7);
    for (int i = 0; i < 300; ++i) {
      // Mix of small inline records and page-spanning overflow records.
      const size_t len = i % 17 == 0 ? 9000 : 24 + rng.Next() % 64;
      std::vector<uint8_t> rec(len);
      for (size_t j = 0; j < len; ++j) {
        rec[j] = static_cast<uint8_t>((i * 131 + j) & 0xFF);
      }
      ASSERT_TRUE(heap.Insert(Slice(rec.data(), rec.size())).ok());
    }
    ASSERT_TRUE(engine->Close().ok());
  }

  auto scan_all = [&](size_t readahead) {
    BufferPoolConfig config;
    config.readahead_pages = readahead;
    // A pool much smaller than the heap, so readahead actually evicts and
    // reloads pages instead of everything staying resident.
    auto engine = StorageEngine::Open(db.path(), /*pool_pages=*/8,
                                      wal::WalOptions(), config)
                      .value();
    TableHeap heap(engine.get(), root);
    std::vector<std::vector<uint8_t>> rows;
    TableHeap::Iterator it = heap.Scan();
    while (true) {
      auto rec = it.Next().value();
      if (!rec.has_value()) break;
      rows.push_back(std::move(rec->second));
    }
    EXPECT_EQ(engine->buffer_pool()->pinned_frames(), 0u);
    return rows;
  };
  std::vector<std::vector<uint8_t>> plain = scan_all(0);
  std::vector<std::vector<uint8_t>> ahead = scan_all(8);
  ASSERT_EQ(plain.size(), 300u);
  EXPECT_EQ(plain, ahead);  // byte-identical results with readahead on
}

TEST(StorageEngineTest, HeaderPersistsAcrossReopen) {
  TempDb db("engine");
  {
    auto engine = StorageEngine::Open(db.path()).value();
    ASSERT_TRUE(engine->SetCatalogRoot(17).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = StorageEngine::Open(db.path()).value();
  EXPECT_EQ(engine->GetCatalogRoot().value(), 17u);
}

TEST(StorageEngineTest, RejectsForeignFile) {
  TempDb db("engine_bad");
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(db.path()).ok());
    ASSERT_TRUE(dm.AllocatePage().ok());  // zeroed page: wrong magic
    ASSERT_TRUE(dm.Close().ok());
  }
  EXPECT_TRUE(StorageEngine::Open(db.path()).status().IsCorruption());
}

TEST(StorageEngineTest, FreeListReusesPages) {
  TempDb db("engine_free");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId a = engine->AllocatePage().value();
  PageId b = engine->AllocatePage().value();
  EXPECT_EQ(engine->CountFreePages().value(), 0u);
  ASSERT_TRUE(engine->FreePage(a).ok());
  ASSERT_TRUE(engine->FreePage(b).ok());
  EXPECT_EQ(engine->CountFreePages().value(), 2u);
  // LIFO reuse: b then a, with no file growth.
  uint32_t pages_before = engine->disk()->num_pages();
  EXPECT_EQ(engine->AllocatePage().value(), b);
  EXPECT_EQ(engine->AllocatePage().value(), a);
  EXPECT_EQ(engine->disk()->num_pages(), pages_before);
  EXPECT_EQ(engine->CountFreePages().value(), 0u);
}

TEST(StorageEngineTest, CannotFreeHeaderOrInvalidPages) {
  TempDb db("engine_guard");
  auto engine = StorageEngine::Open(db.path()).value();
  EXPECT_TRUE(engine->FreePage(0).IsInvalidArgument());
  EXPECT_TRUE(engine->FreePage(kInvalidPageId).IsInvalidArgument());
  EXPECT_TRUE(engine->FreePage(999).IsInvalidArgument());
}

TEST(TableHeapTest, InsertGetDeleteSmallRecords) {
  TempDb db("heap");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId first = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), first);

  RecordId r0 = heap.Insert(Slice("alpha")).value();
  RecordId r1 = heap.Insert(Slice("beta")).value();
  EXPECT_EQ(Slice(heap.Get(r0).value()).ToString(), "alpha");
  EXPECT_EQ(Slice(heap.Get(r1).value()).ToString(), "beta");

  ASSERT_TRUE(heap.Delete(r0).ok());
  EXPECT_TRUE(heap.Get(r0).status().IsNotFound());
  EXPECT_EQ(heap.CountRecords().value(), 1u);
}

TEST(TableHeapTest, SpansManyPages) {
  TempDb db("heap_many");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId first = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), first);
  std::vector<RecordId> rids;
  for (int i = 0; i < 2000; ++i) {
    std::string rec = "record-" + std::to_string(i) + std::string(50, '.');
    rids.push_back(heap.Insert(Slice(rec)).value());
  }
  EXPECT_GT(engine->disk()->num_pages(), 10u);
  for (int i = 0; i < 2000; i += 97) {
    std::string want = "record-" + std::to_string(i) + std::string(50, '.');
    EXPECT_EQ(Slice(heap.Get(rids[i]).value()).ToString(), want);
  }
  EXPECT_EQ(heap.CountRecords().value(), 2000u);
}

TEST(TableHeapTest, OverflowRecordsRoundTrip) {
  TempDb db("heap_overflow");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId first = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), first);

  // The paper's Rel10000 case: ~10 KB records on 8 KB pages.
  Random rng(3);
  auto big = rng.Bytes(10000);
  auto bigger = rng.Bytes(100000);
  RecordId r_small = heap.Insert(Slice("tiny")).value();
  RecordId r_big = heap.Insert(Slice(big)).value();
  RecordId r_bigger = heap.Insert(Slice(bigger)).value();

  EXPECT_EQ(heap.Get(r_big).value(), big);
  EXPECT_EQ(heap.Get(r_bigger).value(), bigger);
  EXPECT_EQ(Slice(heap.Get(r_small).value()).ToString(), "tiny");

  // Deleting an overflow record frees its chain pages.
  uint32_t free_before = engine->CountFreePages().value();
  ASSERT_TRUE(heap.Delete(r_bigger).ok());
  EXPECT_GT(engine->CountFreePages().value(), free_before + 10);
  EXPECT_TRUE(heap.Get(r_bigger).status().IsNotFound());
  EXPECT_EQ(heap.Get(r_big).value(), big);
}

TEST(TableHeapTest, ScanVisitsExactlyLiveRecords) {
  TempDb db("heap_scan");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId first = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), first);
  std::set<std::string> want;
  std::vector<RecordId> rids;
  for (int i = 0; i < 300; ++i) {
    std::string rec = "r" + std::to_string(i);
    rids.push_back(heap.Insert(Slice(rec)).value());
    want.insert(rec);
  }
  for (int i = 0; i < 300; i += 3) {
    ASSERT_TRUE(heap.Delete(rids[i]).ok());
    want.erase("r" + std::to_string(i));
  }
  std::set<std::string> got;
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    auto rec = it.Next().value();
    if (!rec.has_value()) break;
    got.insert(Slice(rec->second).ToString());
  }
  EXPECT_EQ(got, want);
}

TEST(TableHeapTest, DropAllReturnsPagesToFreeList) {
  TempDb db("heap_drop");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId first = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), first);
  Random rng(9);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap.Insert(Slice(rng.Bytes(3000))).ok());
  }
  ASSERT_TRUE(heap.Insert(Slice(rng.Bytes(50000))).ok());  // overflow chain
  uint32_t total_pages = engine->disk()->num_pages();
  ASSERT_TRUE(heap.DropAll().ok());
  // Everything except the header page is now free.
  EXPECT_EQ(engine->CountFreePages().value(), total_pages - 1);
}

TEST(TableHeapTest, PersistsAcrossReopen) {
  TempDb db("heap_reopen");
  PageId first;
  {
    auto engine = StorageEngine::Open(db.path()).value();
    first = TableHeap::Create(engine.get()).value();
    TableHeap heap(engine.get(), first);
    ASSERT_TRUE(heap.Insert(Slice("persistent")).ok());
    ASSERT_TRUE(heap.Insert(Slice(Random(2).Bytes(20000))).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = StorageEngine::Open(db.path()).value();
  TableHeap heap(engine.get(), first);
  EXPECT_EQ(heap.CountRecords().value(), 2u);
  auto rec = heap.Scan().Next().value();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(Slice(rec->second).ToString(), "persistent");
}

TEST(TableHeapTest, NoPinsLeakAfterOperations) {
  TempDb db("heap_pins");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId first = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), first);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Insert(Slice(Random(i).Bytes(i * 200))).ok());
  }
  ASSERT_TRUE(heap.CountRecords().ok());
  EXPECT_EQ(engine->buffer_pool()->pinned_frames(), 0u);
}

}  // namespace
}  // namespace jaguar
