// Unit tests for the page-based secondary B+-tree (src/index/btree.h):
// ordering, duplicate handling, splits across several levels, lazy deletes,
// range-scan bound semantics, WAL-backed persistence across reopen, and the
// structural invariant checker the recovery matrix leans on.

#include "index/btree.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"
#include "storage/storage_engine.h"

namespace jaguar {
namespace {

class TempDb {
 public:
  explicit TempDb(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_idx_" + tag + "_" + std::to_string(::getpid()) + ".db"))
                .string();
    Remove();
  }
  ~TempDb() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  void Remove() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".wal.tmp").c_str());
  }
  std::string path_;
};

RecordId Rid(uint32_t page, uint16_t slot) {
  RecordId rid;
  rid.page_id = page;
  rid.slot = slot;
  return rid;
}

/// ~200-byte deterministic string key: ~38 entries per leaf, so a few
/// thousand keys build a three-level tree.
std::string WideKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08d", i);
  return std::string(buf) + std::string(192, 'k');
}

TEST(BTreeTest, EmptyTreeScansAndSearchesEmpty) {
  TempDb db("empty");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  EXPECT_EQ(tree.root(), root);
  EXPECT_TRUE(tree.SearchEqual(Value::Int(7)).value().empty());
  EXPECT_TRUE(tree.Scan(std::nullopt, std::nullopt).value().empty());
  EXPECT_EQ(tree.CountEntries().value(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, InsertAndSearchEqualIntKeys) {
  TempDb db("int");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i * 3), Rid(1, i)).ok()) << i;
  }
  for (int i = 0; i < 100; ++i) {
    auto rids = tree.SearchEqual(Value::Int(i * 3)).value();
    ASSERT_EQ(rids.size(), 1u) << "key " << i * 3;
    EXPECT_EQ(rids[0], Rid(1, i));
  }
  EXPECT_TRUE(tree.SearchEqual(Value::Int(1)).value().empty());
  EXPECT_TRUE(tree.SearchEqual(Value::Int(-5)).value().empty());
  EXPECT_EQ(tree.CountEntries().value(), 100u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, DuplicateKeysReturnAllRidsInRidOrder) {
  TempDb db("dups");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  // Insert rids out of order; SearchEqual must return them rid-sorted.
  ASSERT_TRUE(tree.Insert(Value::String("x"), Rid(9, 2)).ok());
  ASSERT_TRUE(tree.Insert(Value::String("x"), Rid(3, 7)).ok());
  ASSERT_TRUE(tree.Insert(Value::String("x"), Rid(3, 1)).ok());
  ASSERT_TRUE(tree.Insert(Value::String("w"), Rid(1, 1)).ok());
  ASSERT_TRUE(tree.Insert(Value::String("y"), Rid(2, 2)).ok());
  auto rids = tree.SearchEqual(Value::String("x")).value();
  ASSERT_EQ(rids.size(), 3u);
  EXPECT_EQ(rids[0], Rid(3, 1));
  EXPECT_EQ(rids[1], Rid(3, 7));
  EXPECT_EQ(rids[2], Rid(9, 2));
  // An exact (key, rid) duplicate is rejected.
  EXPECT_TRUE(tree.Insert(Value::String("x"), Rid(3, 7)).IsAlreadyExists());
  EXPECT_EQ(tree.CountEntries().value(), 5u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, RejectsNullAndOversizeKeys) {
  TempDb db("badkeys");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  EXPECT_TRUE(tree.Insert(Value::Null(), Rid(1, 0)).IsInvalidArgument());
  EXPECT_TRUE(tree.Insert(Value::String(std::string(BTree::kMaxKeyBytes + 1,
                                                    'z')),
                          Rid(1, 0))
                  .IsInvalidArgument());
  EXPECT_EQ(tree.CountEntries().value(), 0u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, RangeScanHonorsBoundInclusivity) {
  TempDb db("range");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i), Rid(1, i)).ok());
  }
  auto rids_of = [&](std::optional<BTree::Bound> lo,
                     std::optional<BTree::Bound> hi) {
    const std::vector<RecordId> rids = tree.Scan(lo, hi).value();
    std::vector<int> slots;
    for (const RecordId& r : rids) slots.push_back(r.slot);
    return slots;
  };
  using B = BTree::Bound;
  EXPECT_EQ(rids_of(B{Value::Int(3), true}, B{Value::Int(6), true}),
            (std::vector<int>{3, 4, 5, 6}));
  EXPECT_EQ(rids_of(B{Value::Int(3), false}, B{Value::Int(6), false}),
            (std::vector<int>{4, 5}));
  EXPECT_EQ(rids_of(std::nullopt, B{Value::Int(2), true}),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rids_of(B{Value::Int(7), false}, std::nullopt),
            (std::vector<int>{8, 9}));
  EXPECT_TRUE(rids_of(B{Value::Int(6), true}, B{Value::Int(3), true}).empty());
  // A NULL bound compares unknown against everything: empty result.
  EXPECT_TRUE(rids_of(B{Value::Null(), true}, std::nullopt).empty());
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, DeepSplitsKeepOrderRootAndInvariants) {
  TempDb db("deep");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  // Shuffled insert order of wide keys forces splits at every level,
  // including repeated root splits — through all of which the root page id
  // must not move.
  std::vector<int> order(3000);
  for (int i = 0; i < 3000; ++i) order[i] = i;
  Random rng(42);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(static_cast<uint32_t>(i))]);
  }
  for (int i : order) {
    ASSERT_TRUE(tree.Insert(Value::String(WideKey(i)), Rid(7, i % 1000)).ok())
        << i;
  }
  EXPECT_EQ(tree.root(), root);
  EXPECT_EQ(tree.CountEntries().value(), 3000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Full scan returns every entry in key order.
  auto all = tree.Scan(std::nullopt, std::nullopt).value();
  ASSERT_EQ(all.size(), 3000u);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(all[i].slot, static_cast<uint16_t>(i % 1000)) << i;
  }
  // Point lookups hit after all that splitting.
  for (int i = 0; i < 3000; i += 97) {
    auto rids = tree.SearchEqual(Value::String(WideKey(i))).value();
    ASSERT_EQ(rids.size(), 1u) << i;
  }
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, DeleteIsExactAndLazy) {
  TempDb db("del");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(Value::String(WideKey(i)), Rid(2, i % 100)).ok());
  }
  // Delete the even keys.
  for (int i = 0; i < 500; i += 2) {
    ASSERT_TRUE(tree.Delete(Value::String(WideKey(i)), Rid(2, i % 100)).ok())
        << i;
  }
  // Deleting again, or with the wrong rid, is NotFound.
  EXPECT_TRUE(tree.Delete(Value::String(WideKey(0)), Rid(2, 0)).IsNotFound());
  EXPECT_TRUE(
      tree.Delete(Value::String(WideKey(1)), Rid(99, 99)).IsNotFound());
  EXPECT_EQ(tree.CountEntries().value(), 250u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(tree.SearchEqual(Value::String(WideKey(i))).value().size(),
              i % 2 == 0 ? 0u : 1u)
        << i;
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, ClearEmptiesAndTreeRemainsUsable) {
  TempDb db("clear");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(tree.Insert(Value::String(WideKey(i)), Rid(1, i % 100)).ok());
  }
  const uint64_t free_before = engine->CountFreePages().value();
  ASSERT_TRUE(tree.Clear().ok());
  // The freed interior/leaf pages land on the free list; the root survives.
  EXPECT_GT(engine->CountFreePages().value(), free_before);
  EXPECT_EQ(tree.root(), root);
  EXPECT_EQ(tree.CountEntries().value(), 0u);
  ASSERT_TRUE(tree.Insert(Value::String(WideKey(3)), Rid(4, 5)).ok());
  EXPECT_EQ(tree.CountEntries().value(), 1u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, EntriesSurviveReopen) {
  TempDb db("reopen");
  PageId root = kInvalidPageId;
  {
    auto engine = StorageEngine::Open(db.path()).value();
    root = BTree::Create(engine.get()).value();
    BTree tree(engine.get(), root);
    for (int i = 0; i < 1200; ++i) {
      ASSERT_TRUE(
          tree.Insert(Value::String(WideKey(i)), Rid(3, i % 100)).ok());
    }
    ASSERT_TRUE(engine->WalCommit().ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = StorageEngine::Open(db.path()).value();
  BTree tree(engine.get(), root);
  EXPECT_EQ(tree.CountEntries().value(), 1200u);
  for (int i = 0; i < 1200; i += 131) {
    EXPECT_EQ(tree.SearchEqual(Value::String(WideKey(i))).value().size(), 1u)
        << i;
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, MaintenanceCountersAdvance) {
  TempDb db("counters");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = BTree::Create(engine.get()).value();
  BTree tree(engine.get(), root);
  auto before = obs::MetricsRegistry::Global()->Snapshot("exec.index.");
  ASSERT_TRUE(tree.Insert(Value::Int(1), Rid(1, 0)).ok());
  ASSERT_TRUE(tree.Insert(Value::Int(2), Rid(1, 1)).ok());
  ASSERT_TRUE(tree.Delete(Value::Int(1), Rid(1, 0)).ok());
  auto delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot("exec.index."));
  EXPECT_EQ(delta["exec.index.inserts"], 2u);
  EXPECT_EQ(delta["exec.index.deletes"], 1u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(BTreeTest, CrashPointNamesAreRegistered) {
  const auto& names = BTree::CrashPointNames();
  EXPECT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    EXPECT_EQ(name.rfind("index.", 0), 0u) << name;
  }
}

}  // namespace
}  // namespace jaguar
