// Tests for UDF placement (the paper's Section 7 future work): the cost
// model's crossovers, and client-side UDF execution through the client
// library against a live server.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "udf/placement.h"

namespace jaguar {
namespace {

PlacementCosts BaseCosts() {
  PlacementCosts c;
  c.tuples = 10000;
  c.selectivity = 0.01;
  c.bytes_per_tuple = 10000;            // Rel10000
  c.network_bytes_per_second = 10e6;    // 10 MB/s WAN-ish link
  c.network_round_trip_seconds = 1e-3;
  c.server_seconds_per_invocation = 2e-7;  // JNI-ish (Figure 5)
  c.client_seconds_per_invocation = 1e-7;  // trusted native at the client
  return c;
}

TEST(PlacementModelTest, SelectiveUdfOnBigBlobsStaysAtTheServer) {
  // The paper's REDNESS argument (Section 3.1): shipping all the images to
  // the client "is known to be a poor choice" — the server-side predicate
  // avoids moving 100 MB over the wire.
  PlacementCosts c = BaseCosts();
  PlacementDecision d = ChoosePlacement(c);
  EXPECT_EQ(d.placement, Placement::kServer) << d.ToString();
  // Client cost is dominated by shipping ~100 MB at 10 MB/s.
  EXPECT_GT(d.client_seconds, 9.0);
  EXPECT_LT(d.server_seconds, 1.0);
}

TEST(PlacementModelTest, NonSelectiveUdfOnTinyRowsCanGoEitherWay) {
  // When the predicate keeps everything, shipping costs are identical and
  // the cheaper UDF venue (no sandbox at the client) wins.
  PlacementCosts c = BaseCosts();
  c.selectivity = 1.0;
  c.bytes_per_tuple = 8;
  c.server_seconds_per_invocation = 5e-6;  // an expensive isolated design
  c.client_seconds_per_invocation = 1e-7;
  PlacementDecision d = ChoosePlacement(c);
  EXPECT_EQ(d.placement, Placement::kClient) << d.ToString();
}

TEST(PlacementModelTest, CallbackHeavyUdfsStayAtTheServer) {
  // Callbacks at the client become network round trips (Section 3.1: "the
  // latency of many such calls"); even a cheap client UDF loses.
  PlacementCosts c = BaseCosts();
  c.selectivity = 1.0;
  c.bytes_per_tuple = 8;
  c.server_seconds_per_invocation = 5e-6;
  c.client_seconds_per_invocation = 1e-7;
  c.callbacks_per_invocation = 2;
  PlacementDecision d = ChoosePlacement(c);
  EXPECT_EQ(d.placement, Placement::kServer) << d.ToString();
  // The client's modeled cost includes 20,000 round trips.
  EXPECT_GT(d.client_seconds, 10.0);
}

TEST(PlacementModelTest, BandwidthSweepHasACrossover) {
  // Fix the workload; sweep bandwidth: slow links favor the server-side
  // filter, fast links make data shipping competitive.
  PlacementCosts c = BaseCosts();
  c.selectivity = 0.5;
  c.server_seconds_per_invocation = 1e-5;  // expensive server design
  c.client_seconds_per_invocation = 1e-7;
  bool saw_server = false, saw_client = false;
  for (double bw = 1e6; bw <= 1e12; bw *= 10) {
    c.network_bytes_per_second = bw;
    PlacementDecision d = ChoosePlacement(c);
    (d.placement == Placement::kServer ? saw_server : saw_client) = true;
  }
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_client);
}

TEST(PlacementModelTest, DecisionExplainsItself) {
  std::string text = ChoosePlacement(BaseCosts()).ToString();
  EXPECT_NE(text.find("SERVER"), std::string::npos);
  EXPECT_NE(text.find("server"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Client-side execution end to end
// ---------------------------------------------------------------------------

class ClientFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_placement_" + std::to_string(::getpid()) + ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
    server_ = std::make_unique<net::Server>(db_.get());
    ASSERT_TRUE(server_->Start(0).ok());
    client_ = net::Client::Connect("127.0.0.1", server_->port()).value();
  }
  void TearDown() override {
    client_.reset();
    server_->Stop();
    server_.reset();
    db_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<net::Client> client_;
};

TEST_F(ClientFilterTest, SecretFormulaNeverLeavesTheClient) {
  ASSERT_TRUE(client_->Execute("CREATE TABLE stocks (sym STRING, "
                               "history BYTEARRAY)")
                  .ok());
  ASSERT_TRUE(client_->Execute("INSERT INTO stocks VALUES "
                               "('A', randbytes(100, 1)), "
                               "('B', randbytes(100, 2)), "
                               "('C', zerobytes(100))")
                  .ok());

  // The investor's proprietary formula runs only in the client's VM.
  const char* secret = R"(
class Secret {
  static int score(byte[] h) {
    int acc = 0;
    for (int i = 0; i < h.length; i = i + 1) { acc = acc + h[i]; }
    return acc / h.length;
  }
})";
  QueryResult filtered =
      client_
          ->ExecuteWithClientFilter("SELECT sym, history FROM stocks",
                                    secret, "Secret.score", "history", 50)
          .value();
  // Rows A and B have random bytes (mean ~127 > 50); C is all zeros.
  ASSERT_EQ(filtered.rows.size(), 2u);
  EXPECT_EQ(filtered.rows[0].value(0).AsString(), "A");
  EXPECT_EQ(filtered.rows[1].value(0).AsString(), "B");
  // The server-side catalog never saw a UDF.
  EXPECT_TRUE(db_->catalog()->ListUdfs().empty());

  // Same predicate server-side (migrated) gives the same rows — the
  // placement choice is semantics-preserving.
  ASSERT_TRUE(client_
                  ->RegisterJJavaUdf("Secret", secret, "Secret.score",
                                     TypeId::kInt, {TypeId::kBytes})
                  .ok());
  QueryResult server_side =
      client_->Execute("SELECT sym, history FROM stocks "
                       "WHERE Secret(history) > 50")
          .value();
  ASSERT_EQ(server_side.rows.size(), filtered.rows.size());
  for (size_t i = 0; i < server_side.rows.size(); ++i) {
    EXPECT_TRUE(server_side.rows[i].value(0).Equals(
        filtered.rows[i].value(0)));
  }
}

TEST_F(ClientFilterTest, FilterErrorsSurfaceCleanly) {
  ASSERT_TRUE(client_->Execute("CREATE TABLE t (a INT, b BYTEARRAY)").ok());
  ASSERT_TRUE(client_->Execute("INSERT INTO t VALUES (1, zerobytes(4))").ok());
  const char* udf =
      "class F { static int f(byte[] b) { return b[100]; } }";  // will trap
  Result<QueryResult> r = client_->ExecuteWithClientFilter(
      "SELECT a, b FROM t", udf, "F.f", "b", 0);
  EXPECT_TRUE(r.status().IsRuntimeError());
  // Unknown column.
  EXPECT_TRUE(client_
                  ->ExecuteWithClientFilter("SELECT a FROM t",
                                            "class F { static int f(int x) "
                                            "{ return x; } }",
                                            "F.f", "nope", 0)
                  .status()
                  .IsNotFound());
  // Broken UDF source fails at compile time, before any shipping... (the
  // query runs first in this implementation; the compile error still wins).
  EXPECT_TRUE(client_
                  ->ExecuteWithClientFilter("SELECT a FROM t", "not jjava",
                                            "F.f", "a", 0)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace jaguar
