#ifndef JAGUAR_TESTS_TEST_REQUIREMENTS_H_
#define JAGUAR_TESTS_TEST_REQUIREMENTS_H_

/// \file test_requirements.h
/// GTEST_SKIP-based environment guards shared by the test binaries. Some
/// tests need capabilities a CI runner may lack: enough hardware threads for
/// real parallelism, or the ability to fork()/kill child processes (denied
/// in some sandboxes). Skipping with a reason keeps the suite green and
/// honest everywhere instead of flaking on small or restricted runners.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <thread>

namespace jaguar::test {

/// Probes (once per process) whether fork() + waitpid() actually work here.
inline bool CanFork() {
  static const bool ok = [] {
    pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) ::_exit(0);
    int wstatus = 0;
    return ::waitpid(pid, &wstatus, 0) == pid && WIFEXITED(wstatus) &&
           WEXITSTATUS(wstatus) == 0;
  }();
  return ok;
}

inline unsigned HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace jaguar::test

/// Skips the current test when child processes can't be spawned/reaped.
#define JAGUAR_REQUIRE_FORK()                                      \
  do {                                                             \
    if (!::jaguar::test::CanFork()) {                              \
      GTEST_SKIP() << "fork()/waitpid() unavailable on this host"; \
    }                                                              \
  } while (0)

/// Skips the current test on machines with fewer than `n` hardware threads.
#define JAGUAR_REQUIRE_THREADS(n)                                          \
  do {                                                                     \
    if (::jaguar::test::HardwareThreads() < (n)) {                         \
      GTEST_SKIP() << "needs >= " << (n) << " hardware threads, have "     \
                   << ::jaguar::test::HardwareThreads();                   \
    }                                                                      \
  } while (0)

#endif  // JAGUAR_TESTS_TEST_REQUIREMENTS_H_
