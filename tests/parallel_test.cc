// Tests for morsel-driven parallel query execution (exec/parallel) and the
// executor pool backing the isolated UDF designs under it: parallel scans
// must be bit-identical to serial across all four designs, concurrent
// InvokeBatch on one shared runner must agree with the pure model, and a
// pooled executor child dying must fail only its leaseholder's batch (with
// the pool respawning a replacement).

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "ipc/remote_executor.h"
#include "jjc/jjc.h"
#include "obs/metrics.h"
#include "udf/executor_pool.h"
#include "udf/generic_udf.h"
#include "udf/isolated_udf_runner.h"
#include "udf/jvm_udf_runner.h"

#include "test_requirements.h"

namespace jaguar {
namespace {

// ---------------------------------------------------------------------------
// Parallel SQL execution == serial SQL execution, across every design
// ---------------------------------------------------------------------------

// 1000-byte rows at ~8 per page: kRows rows span ~15 heap pages, i.e. ~4
// morsels at the default 4 pages/morsel — enough to keep 4 workers busy.
constexpr int kRows = 120;

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("jaguar_parallel_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    serial_path_ = stem + "_serial.db";
    parallel_path_ = stem + "_parallel.db";
    std::remove(serial_path_.c_str());
    std::remove(parallel_path_.c_str());

    DatabaseOptions serial_options;
    serial_options.vectorized_execution = true;
    serial_options.batch_size = 16;
    serial_options.num_workers = 1;
    DatabaseOptions parallel_options = serial_options;
    parallel_options.num_workers = 4;

    serial_db_ = Database::Open(serial_path_, serial_options).value();
    parallel_db_ = Database::Open(parallel_path_, parallel_options).value();
    for (Database* db : {serial_db_.get(), parallel_db_.get()}) {
      MustExecute(db, "CREATE TABLE r (b BYTEARRAY)");
      for (int i = 0; i < kRows; ++i) {
        MustExecute(db, StringPrintf("INSERT INTO r VALUES (randbytes(%d, %d))",
                                     1000, 100 + i));
      }
    }
  }

  void TearDown() override {
    // Every query path — serial and morsel-parallel — must balance its page
    // pins; a nonzero count here means some operator leaked a PageGuard.
    if (serial_db_) {
      EXPECT_EQ(serial_db_->storage()->buffer_pool()->pinned_frames(), 0u);
    }
    if (parallel_db_) {
      EXPECT_EQ(parallel_db_->storage()->buffer_pool()->pinned_frames(), 0u);
    }
    serial_db_.reset();
    parallel_db_.reset();
    std::remove(serial_path_.c_str());
    std::remove(parallel_path_.c_str());
  }

  QueryResult MustExecute(Database* db, const std::string& sql) {
    Result<QueryResult> r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  void RegisterGenericOnBoth(const std::string& name, UdfLanguage lang) {
    for (Database* db : {serial_db_.get(), parallel_db_.get()}) {
      UdfInfo info;
      info.name = name;
      info.language = lang;
      info.return_type = TypeId::kInt;
      info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                        TypeId::kInt};
      if (lang == UdfLanguage::kJJava || lang == UdfLanguage::kJJavaIsolated) {
        info.impl_name = "GenericUdf.run";
        info.payload = jjc::Compile(GenericUdfJJavaSource()).value().Serialize();
      } else {
        info.impl_name = "generic_udf";
      }
      ASSERT_TRUE(db->RegisterUdf(info).ok()) << name;
    }
  }

  /// Runs `sql` on both databases and requires identical serialized rows.
  /// \return The parallel database's result (for metrics assertions).
  QueryResult ExpectSameRows(const std::string& sql) {
    QueryResult serial = MustExecute(serial_db_.get(), sql);
    QueryResult parallel = MustExecute(parallel_db_.get(), sql);
    EXPECT_EQ(parallel.rows.size(), serial.rows.size()) << sql;
    for (size_t i = 0;
         i < std::min(parallel.rows.size(), serial.rows.size()); ++i) {
      EXPECT_EQ(Slice(parallel.rows[i].Serialize()).ToString(),
                Slice(serial.rows[i].Serialize()).ToString())
          << sql << " row " << i;
    }
    return parallel;
  }

  static uint64_t MetricDelta(const QueryResult& r, const std::string& name) {
    auto it = r.metrics_delta.find(name);
    return it != r.metrics_delta.end() ? it->second : uint64_t{0};
  }

  static uint64_t ParallelQueries(const QueryResult& r) {
    return MetricDelta(r, "exec.parallel.queries");
  }

  std::string serial_path_, parallel_path_;
  std::unique_ptr<Database> serial_db_, parallel_db_;
};

TEST_F(ParallelTest, AllDesignsMatchSerialUnderParallelScan) {
  JAGUAR_REQUIRE_THREADS(4);
  JAGUAR_REQUIRE_FORK();  // isolated designs spawn executor children
  RegisterGenericOnBoth("g_ic", UdfLanguage::kNativeIsolated);
  RegisterGenericOnBoth("g_jni", UdfLanguage::kJJava);
  RegisterGenericOnBoth("g_sfi", UdfLanguage::kNativeSfi);
  RegisterGenericOnBoth("g_ijni", UdfLanguage::kJJavaIsolated);

  // Every design's UDF runs on 4 worker threads (IC++/IJNI through a 4-deep
  // executor pool, JNI through the shared JagVM, SFI serialized on its
  // region) — results must be bit-identical to serial, including the 2
  // server callbacks per row arriving concurrently.
  for (const char* name :
       {"generic_udf", "g_ic", "g_jni", "g_sfi", "g_ijni"}) {
    uint64_t serial_cb = serial_db_->callbacks_served();
    uint64_t parallel_cb = parallel_db_->callbacks_served();
    QueryResult r =
        ExpectSameRows(StringPrintf("SELECT %s(b, 20, 3, 2) FROM r", name));
    EXPECT_GE(ParallelQueries(r), 1u) << name;
    EXPECT_EQ(serial_db_->callbacks_served() - serial_cb, uint64_t{2 * kRows})
        << name;
    EXPECT_EQ(parallel_db_->callbacks_served() - parallel_cb,
              uint64_t{2 * kRows})
        << name;
  }
  // Cross-check row 0 against the pure model.
  QueryResult r = MustExecute(parallel_db_.get(),
                              "SELECT generic_udf(b, 20, 3, 2) FROM r");
  EXPECT_EQ(r.rows[0].value(0).AsInt(),
            GenericUdfExpected(Random(100).Bytes(1000), 20, 3, 2));
}

TEST_F(ParallelTest, FilteredParallelScanMatchesSerial) {
  JAGUAR_REQUIRE_THREADS(4);
  JAGUAR_REQUIRE_FORK();
  RegisterGenericOnBoth("g_ic", UdfLanguage::kNativeIsolated);
  // Threshold = row 0's UDF value, so the predicate is satisfiable but not
  // trivially all-pass; workers evaluate it batch-at-a-time in parallel.
  const int64_t threshold =
      GenericUdfExpected(Random(100).Bytes(1000), 0, 1, 0);
  QueryResult r = ExpectSameRows(StringPrintf(
      "SELECT length(b) FROM r WHERE g_ic(b, 0, 1, 0) >= %lld",
      static_cast<long long>(threshold)));
  EXPECT_GE(r.rows.size(), 1u);
  EXPECT_LE(r.rows.size(), static_cast<size_t>(kRows));
  EXPECT_GE(ParallelQueries(r), 1u);
}

TEST_F(ParallelTest, OrderByLimitAndAggregatesRunParallel) {
  // Order-, limit- and aggregate-shaped plans ride the morsel path too, and
  // must stay byte-identical to the serial database. ORDER BY length(b) is
  // all ties (every row is 1000 bytes), so the run merge must reproduce the
  // serial scan-position tie-break exactly — DESC means reversed scan order.
  QueryResult ordered =
      ExpectSameRows("SELECT length(b) FROM r ORDER BY length(b) DESC");
  EXPECT_GE(ParallelQueries(ordered), 1u);
  EXPECT_GE(MetricDelta(ordered, "exec.sort.parallel_queries"), 1u);

  // LIMIT no longer disables parallelism: truncation happens after the
  // morsel-order merge, so the kept prefix is the serial scan's first 7.
  QueryResult limited = ExpectSameRows("SELECT length(b) FROM r LIMIT 7");
  EXPECT_GE(ParallelQueries(limited), 1u);
  EXPECT_EQ(limited.rows.size(), 7u);

  // Aggregates build per-morsel partial hash tables merged in morsel order.
  QueryResult agg = ExpectSameRows("SELECT COUNT(*) FROM r");
  EXPECT_GE(ParallelQueries(agg), 1u);
  EXPECT_GE(MetricDelta(agg, "exec.agg.parallel_queries"), 1u);
  EXPECT_GE(MetricDelta(agg, "exec.agg.partial_merges"), 1u);
}

TEST_F(ParallelTest, AggregationMatchesSerialAcrossDesigns) {
  JAGUAR_REQUIRE_THREADS(4);
  JAGUAR_REQUIRE_FORK();  // isolated designs spawn executor children
  RegisterGenericOnBoth("g_ic", UdfLanguage::kNativeIsolated);
  RegisterGenericOnBoth("g_jni", UdfLanguage::kJJava);
  RegisterGenericOnBoth("g_sfi", UdfLanguage::kNativeSfi);
  RegisterGenericOnBoth("g_ijni", UdfLanguage::kJJavaIsolated);

  // UDFs in both the group key and an aggregate argument: each design's
  // calls cross once per batch inside every worker, partial hash tables
  // merge in morsel order, and output must be byte-identical to serial
  // (integer sums, so even float-free of the merge-order caveat).
  for (const char* name :
       {"generic_udf", "g_ic", "g_jni", "g_sfi", "g_ijni"}) {
    QueryResult r = ExpectSameRows(StringPrintf(
        "SELECT %s(b, 8, 2, 0) %% 5, COUNT(*), SUM(%s(b, 12, 1, 0)), "
        "MIN(length(b)) FROM r GROUP BY %s(b, 8, 2, 0) %% 5",
        name, name, name));
    EXPECT_GE(ParallelQueries(r), 1u) << name;
    EXPECT_GE(MetricDelta(r, "exec.agg.parallel_queries"), 1u) << name;
  }

  // Aggregation composes with ORDER BY + LIMIT on the parallel path: the
  // aggregate output is sorted by the aliased count column, top-k bounded.
  QueryResult composed = ExpectSameRows(
      "SELECT generic_udf(b, 8, 2, 0) % 5 AS k, COUNT(*) AS n FROM r "
      "GROUP BY generic_udf(b, 8, 2, 0) % 5 ORDER BY n DESC LIMIT 3");
  EXPECT_LE(composed.rows.size(), 3u);
  EXPECT_GE(MetricDelta(composed, "exec.sort.topk_queries"), 1u);
}

TEST_F(ParallelTest, SortMatchesSerialAcrossDesigns) {
  JAGUAR_REQUIRE_THREADS(4);
  JAGUAR_REQUIRE_FORK();
  RegisterGenericOnBoth("g_ic", UdfLanguage::kNativeIsolated);
  RegisterGenericOnBoth("g_jni", UdfLanguage::kJJava);
  RegisterGenericOnBoth("g_sfi", UdfLanguage::kNativeSfi);
  RegisterGenericOnBoth("g_ijni", UdfLanguage::kJJavaIsolated);

  for (const char* name :
       {"generic_udf", "g_ic", "g_jni", "g_sfi", "g_ijni"}) {
    // Full sort on a UDF key (distinct values), morsel runs k-way merged.
    QueryResult full = ExpectSameRows(StringPrintf(
        "SELECT length(b), %s(b, 6, 1, 0) FROM r ORDER BY %s(b, 9, 2, 0) "
        "DESC",
        name, name));
    EXPECT_GE(MetricDelta(full, "exec.sort.parallel_queries"), 1u) << name;
    EXPECT_GE(MetricDelta(full, "exec.sort.runs_merged"), 1u) << name;

    // Bounded top-k on an all-ties key: the kept 13 must be the serial
    // scan's first 13, across per-morsel bounded heaps + merge.
    QueryResult topk = ExpectSameRows(StringPrintf(
        "SELECT %s(b, 5, 1, 0) FROM r ORDER BY length(b) LIMIT 13", name));
    EXPECT_EQ(topk.rows.size(), 13u) << name;
    EXPECT_GE(MetricDelta(topk, "exec.sort.topk_queries"), 1u) << name;
  }
}

TEST(ParallelTransportABTest, RingAndMessageTransportsAreByteIdentical) {
  JAGUAR_REQUIRE_FORK();
  // The zero-copy ring is a pure transport swap: a parallel isolated-UDF
  // query must produce byte-for-byte the rows the copying message channel
  // produces, under the same 4-worker morsel schedule. No hardware-thread
  // guard: oversubscribing one core still exercises the interleavings (and
  // parks the ring more often, not less).
  RegisterGenericUdfs();
  const std::string stem =
      (std::filesystem::temp_directory_path() /
       ("jaguar_transport_ab_" + std::to_string(::getpid())))
          .string();
  std::map<std::string, QueryResult> results;
  for (const std::string transport : {"ring", "message"}) {
    const std::string path = stem + "_" + transport + ".db";
    std::remove(path.c_str());
    DatabaseOptions options;
    options.vectorized_execution = true;
    options.batch_size = 16;
    options.num_workers = 4;
    options.ipc_transport = transport;
    auto db = Database::Open(path, options).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE r (b BYTEARRAY)").ok());
    for (int i = 0; i < 48; ++i) {
      ASSERT_TRUE(db->Execute(StringPrintf(
                                  "INSERT INTO r VALUES (randbytes(600, %d))",
                                  500 + i))
                      .ok());
    }
    UdfInfo info;
    info.name = "g_ab";
    info.language = UdfLanguage::kNativeIsolated;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                      TypeId::kInt};
    info.impl_name = "generic_udf";
    ASSERT_TRUE(db->RegisterUdf(info).ok());
    // 1 callback per row: the transports also agree through the
    // suspend-resume interleaving.
    Result<QueryResult> r = db->Execute("SELECT g_ab(b, 15, 2, 1) FROM r");
    ASSERT_TRUE(r.ok()) << transport << ": " << r.status();
    results[transport] = std::move(*r);
    db.reset();
    std::remove(path.c_str());
  }
  const QueryResult& ring = results.at("ring");
  const QueryResult& message = results.at("message");
  ASSERT_EQ(ring.rows.size(), message.rows.size());
  ASSERT_EQ(ring.rows.size(), 48u);
  for (size_t i = 0; i < ring.rows.size(); ++i) {
    EXPECT_EQ(Slice(ring.rows[i].Serialize()).ToString(),
              Slice(message.rows[i].Serialize()).ToString())
        << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Concurrent InvokeBatch on one shared runner
// ---------------------------------------------------------------------------

std::vector<std::vector<Value>> MakeGenericBatch(int rows, int seed_base) {
  std::vector<std::vector<Value>> batch;
  for (int i = 0; i < rows; ++i) {
    batch.push_back({Value::Bytes(Random(seed_base + i).Bytes(200)),
                     Value::Int(30), Value::Int(2), Value::Int(0)});
  }
  return batch;
}

void ExpectGenericBatchResults(const std::vector<Value>& results,
                               int seed_base) {
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].AsInt(),
              GenericUdfExpected(
                  Random(seed_base + static_cast<int>(i)).Bytes(200), 30, 2,
                  0))
        << "row " << i;
  }
}

TEST(ConcurrentRunnerTest, PooledIsolatedRunnerServesParallelBatches) {
  JAGUAR_REQUIRE_THREADS(4);
  JAGUAR_REQUIRE_FORK();
  RegisterGenericUdfs();
  auto runner =
      IsolatedNativeRunner::Spawn(
          "generic_udf", TypeId::kInt,
          {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt},
          1 << 20, /*pool_size=*/4)
          .value();
  ASSERT_TRUE(runner->Prewarm(4).ok());
  ASSERT_EQ(runner->executor_pids().size(), 4u);

  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      UdfContext ctx(nullptr);
      for (int round = 0; round < 3; ++round) {
        const int seed_base = 1000 * (t + 1) + 10 * round;
        auto batch = MakeGenericBatch(8, seed_base);
        Result<std::vector<Value>> r = runner->InvokeBatch(batch, &ctx);
        if (!r.ok() || r->size() != batch.size()) {
          ++failures;
          continue;
        }
        ExpectGenericBatchResults(*r, seed_base);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(runner->executor_pids().size(), 4u);
}

TEST(ConcurrentRunnerTest, SharedJvmRunnerServesParallelInvocations) {
  JAGUAR_REQUIRE_THREADS(4);
  // One JagVM, one runner, four threads: exercises the VM's JIT cache,
  // method-resolution caches and stats under concurrency.
  DatabaseOptions options;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("jaguar_parallel_vm_" + std::to_string(::getpid()) + ".db"))
          .string();
  std::remove(path.c_str());
  auto db = Database::Open(path, options).value();

  UdfInfo info;
  info.name = "g";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
  info.impl_name = "GenericUdf.run";
  info.payload = jjc::Compile(GenericUdfJJavaSource()).value().Serialize();
  auto runner = JvmUdfRunner::Create(db->vm(), info, {}).value();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      UdfContext ctx(nullptr);
      const int seed_base = 2000 * (t + 1);
      auto batch = MakeGenericBatch(6, seed_base);
      Result<std::vector<Value>> r = runner->InvokeBatch(batch, &ctx);
      if (!r.ok() || r->size() != batch.size()) {
        ++failures;
        return;
      }
      ExpectGenericBatchResults(*r, seed_base);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  db.reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ExecutorPool: leasing, death isolation, respawn
// ---------------------------------------------------------------------------

Result<std::vector<uint8_t>> EchoHandler(Slice request, ipc::Channel*) {
  return std::vector<uint8_t>(request.data(), request.data() + request.size());
}

Result<std::vector<uint8_t>> NoCallbacks(Slice) {
  return Internal("no callbacks expected");
}

TEST(ExecutorPoolTest, DeadLeaseFailsAloneAndPoolRespawns) {
  JAGUAR_REQUIRE_FORK();
  ExecutorPool pool(
      [] { return ipc::RemoteExecutor::Spawn(4096, &EchoHandler); }, 2);
  pool.set_timeout_seconds(1);
  ASSERT_TRUE(pool.Prewarm(2).ok());
  EXPECT_EQ(pool.live_count(), 2u);

  auto l1 = pool.Acquire().value();
  auto l2 = pool.Acquire().value();
  ASSERT_NE(l1->child_pid(), l2->child_pid());
  const pid_t dead_pid = l2->child_pid();
  kill(dead_pid, SIGKILL);

  // The healthy lease keeps working while its sibling is dead.
  auto ok = l1->Execute(Slice("ping"), &NoCallbacks);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(Slice(*ok).ToString(), "ping");

  // The dead lease fails with IoError — only this leaseholder is affected.
  EXPECT_TRUE(l2->Execute(Slice("ping"), &NoCallbacks).status().IsIoError());
  l2.Discard();
  EXPECT_EQ(pool.live_count(), 1u);

  // The freed slot respawns a fresh child on demand.
  auto l3 = pool.Acquire().value();
  EXPECT_GT(l3->child_pid(), 0);
  EXPECT_NE(l3->child_pid(), dead_pid);
  auto ok3 = l3->Execute(Slice("pong"), &NoCallbacks);
  ASSERT_TRUE(ok3.ok()) << ok3.status();
  EXPECT_EQ(Slice(*ok3).ToString(), "pong");
  EXPECT_EQ(pool.live_count(), 2u);
}

TEST(ExecutorPoolTest, AcquireBlocksAtCapUntilALeaseReturns) {
  JAGUAR_REQUIRE_FORK();
  obs::Counter* waits =
      obs::MetricsRegistry::Global()->GetCounter("udf.pool.waits");
  const uint64_t waits_before = waits->value();

  ExecutorPool pool(
      [] { return ipc::RemoteExecutor::Spawn(4096, &EchoHandler); }, 1);
  auto held = pool.Acquire().value();
  const pid_t only_pid = held->child_pid();

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto lease = pool.Acquire().value();
    acquired.store(true);
    EXPECT_EQ(lease->child_pid(), only_pid);  // same executor, recycled
  });
  // The waiter cannot get a lease while we hold the only executor.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  { ExecutorPool::Lease release = std::move(held); }  // hand it back
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(waits->value(), waits_before + 1);
}

// ---------------------------------------------------------------------------
// Runner-level death handling through the pool
// ---------------------------------------------------------------------------

TEST(ConcurrentRunnerTest, KilledPooledExecutorsFailBatchesThenRespawn) {
  JAGUAR_REQUIRE_FORK();
  RegisterGenericUdfs();
  auto runner =
      IsolatedNativeRunner::Spawn(
          "generic_udf", TypeId::kInt,
          {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt},
          1 << 20, /*pool_size=*/2)
          .value();
  ASSERT_TRUE(runner->Prewarm(2).ok());
  runner->set_ipc_timeout_seconds(1);
  std::vector<pid_t> pids = runner->executor_pids();
  ASSERT_EQ(pids.size(), 2u);
  for (pid_t p : pids) kill(p, SIGKILL);

  // Each dead executor fails exactly the batch that leased it, then is
  // discarded from the pool.
  UdfContext ctx(nullptr);
  auto batch = MakeGenericBatch(4, 4000);
  EXPECT_TRUE(runner->InvokeBatch(batch, &ctx).status().IsIoError());
  EXPECT_TRUE(runner->InvokeBatch(batch, &ctx).status().IsIoError());
  EXPECT_EQ(runner->child_pid(), -1);  // pool fully drained

  // The next batch respawns a fresh executor and succeeds.
  Result<std::vector<Value>> r = runner->InvokeBatch(batch, &ctx);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectGenericBatchResults(*r, 4000);
  const pid_t fresh = runner->child_pid();
  EXPECT_GT(fresh, 0);
  for (pid_t p : pids) EXPECT_NE(fresh, p);
}

// ---------------------------------------------------------------------------
// Metrics registry under concurrent writers (parallel workers share it)
// ---------------------------------------------------------------------------

TEST(MetricsConcurrencyTest, SnapshotsAreSafeUnderConcurrentWriters) {
  JAGUAR_REQUIRE_THREADS(4);
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
  const obs::MetricsSnapshot before = reg->Snapshot("test.parallel.");

  constexpr int kWriters = 4;
  constexpr int kAddsPerWriter = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Mix registration (name lookup under the registry mutex) with hot
      // relaxed-atomic updates, like parallel scan workers do.
      obs::Counter* c =
          reg->GetCounter("test.parallel.c" + std::to_string(w % 2));
      obs::Histogram* h = reg->GetHistogram("test.parallel.h");
      for (int i = 0; i < kAddsPerWriter; ++i) {
        c->Add();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  std::thread reader([&] {
    // Snapshots taken mid-write must never tear; values are monotone.
    uint64_t last = 0;
    while (!done.load()) {
      obs::MetricsSnapshot now = reg->Snapshot("test.parallel.");
      obs::MetricsSnapshot delta = obs::SnapshotDelta(before, now);
      uint64_t total = 0;
      for (const auto& [name, value] : delta) {
        if (name == "test.parallel.c0" || name == "test.parallel.c1") {
          total += value;
        }
      }
      EXPECT_GE(total, last);
      last = total;
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true);
  reader.join();

  obs::MetricsSnapshot delta =
      obs::SnapshotDelta(before, reg->Snapshot("test.parallel."));
  EXPECT_EQ(delta["test.parallel.c0"] + delta["test.parallel.c1"],
            uint64_t{kWriters} * kAddsPerWriter);
  EXPECT_EQ(delta["test.parallel.h.count"],
            uint64_t{kWriters} * kAddsPerWriter);
}

}  // namespace
}  // namespace jaguar
