// End-to-end tests for the engine: SQL over the storage stack, expression
// semantics, builtins, catalog persistence, UDF invocation (Design 1), the
// LOB store and server callbacks.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "engine/database.h"
#include "udf/generic_udf.h"

namespace jaguar {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_engine_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  QueryResult MustExecute(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(EngineTest, CreateInsertSelect) {
  MustExecute("CREATE TABLE t (a INT, b STRING)");
  QueryResult ins = MustExecute("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  EXPECT_EQ(ins.rows_affected, 2u);
  QueryResult sel = MustExecute("SELECT * FROM t");
  ASSERT_EQ(sel.rows.size(), 2u);
  EXPECT_EQ(sel.rows[0].value(0).AsInt(), 1);
  EXPECT_EQ(sel.rows[1].value(1).AsString(), "y");
  EXPECT_EQ(sel.schema.column(0).name, "a");
}

TEST_F(EngineTest, WherePredicatesAndProjection) {
  MustExecute("CREATE TABLE t (a INT, b STRING)");
  MustExecute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'z')");
  QueryResult r =
      MustExecute("SELECT a * 10 AS a10 FROM t WHERE b = 'x' OR a >= 4");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.schema.column(0).name, "a10");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 10);
  EXPECT_EQ(r.rows[1].value(0).AsInt(), 30);
  EXPECT_EQ(r.rows[2].value(0).AsInt(), 40);
}

TEST_F(EngineTest, TableAliasQualifiers) {
  MustExecute("CREATE TABLE Stocks (symbol STRING, type STRING, price DOUBLE)");
  MustExecute("INSERT INTO Stocks VALUES ('IBM','tech',100.0), "
              "('XOM','oil',80.0), ('MSFT','tech',200.0)");
  QueryResult r = MustExecute(
      "SELECT S.symbol FROM Stocks S WHERE S.type = 'tech' AND S.price > 150");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "MSFT");
  // The bare table name also works as a qualifier.
  EXPECT_EQ(MustExecute("SELECT Stocks.symbol FROM Stocks").rows.size(), 3u);
  // A wrong qualifier does not.
  EXPECT_FALSE(db_->Execute("SELECT X.symbol FROM Stocks S").ok());
}

TEST_F(EngineTest, LimitAndArithmetic) {
  MustExecute("CREATE TABLE n (v INT)");
  for (int i = 0; i < 10; ++i) {
    MustExecute("INSERT INTO n VALUES (" + std::to_string(i) + ")");
  }
  EXPECT_EQ(MustExecute("SELECT v FROM n LIMIT 3").rows.size(), 3u);
  QueryResult r = MustExecute("SELECT v % 3 FROM n WHERE v / 2 = 2 LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 1);  // v=4 -> 4%3
}

TEST_F(EngineTest, NullSemantics) {
  MustExecute("CREATE TABLE t (a INT, b INT)");
  MustExecute("INSERT INTO t VALUES (1, NULL), (2, 5)");
  // NULL comparisons are unknown -> filtered out.
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE b > 0").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE NOT (b > 0)").rows.size(), 0u);
  // NULL propagates through arithmetic.
  QueryResult r = MustExecute("SELECT b + 1 FROM t");
  EXPECT_TRUE(r.rows[0].value(0).is_null());
  EXPECT_EQ(r.rows[1].value(0).AsInt(), 6);
  // Three-valued OR: true OR NULL = true.
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a = 1 OR b > 99").rows.size(),
            1u);
}

TEST_F(EngineTest, DivisionByZeroFailsCleanly) {
  MustExecute("CREATE TABLE t (a INT)");
  MustExecute("INSERT INTO t VALUES (0)");
  EXPECT_TRUE(db_->Execute("SELECT 1 / a FROM t").status().IsRuntimeError());
  EXPECT_TRUE(db_->Execute("SELECT 1 % a FROM t").status().IsRuntimeError());
}

TEST_F(EngineTest, ErrorsForUnknownEntities) {
  EXPECT_TRUE(db_->Execute("SELECT * FROM missing").status().IsNotFound());
  MustExecute("CREATE TABLE t (a INT)");
  EXPECT_TRUE(db_->Execute("SELECT zz FROM t").status().IsNotFound());
  EXPECT_TRUE(db_->Execute("SELECT nofunc(a) FROM t").status().IsNotFound());
  EXPECT_TRUE(
      db_->Execute("CREATE TABLE t (a INT)").status().IsAlreadyExists());
}

TEST_F(EngineTest, InsertSchemaValidation) {
  MustExecute("CREATE TABLE t (a INT, b STRING)");
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES ('x', 'y')").ok());
  // NULLs are accepted for any column.
  EXPECT_TRUE(db_->Execute("INSERT INTO t VALUES (NULL, NULL)").ok());
  // INT literal widens into DOUBLE column.
  MustExecute("CREATE TABLE d (x DOUBLE)");
  MustExecute("INSERT INTO d VALUES (3)");
  EXPECT_EQ(MustExecute("SELECT x FROM d").rows[0].value(0).AsDouble(), 3.0);
}

TEST_F(EngineTest, BuiltinsWork) {
  MustExecute("CREATE TABLE r (data BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (randbytes(100, 7)), (zerobytes(5))");
  QueryResult r = MustExecute("SELECT length(data) FROM r");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 100);
  EXPECT_EQ(r.rows[1].value(0).AsInt(), 5);
  // byte_at is bounds checked.
  EXPECT_TRUE(MustExecute("SELECT byte_at(data, 0) FROM r LIMIT 1")
                  .rows[0]
                  .value(0)
                  .type() == TypeId::kInt);
  EXPECT_TRUE(db_->Execute("SELECT byte_at(data, 1000) FROM r")
                  .status()
                  .IsRuntimeError());
  // randbytes is deterministic per seed.
  QueryResult again = MustExecute("SELECT byte_at(randbytes(10, 3), 4) AS v "
                                  "FROM r LIMIT 1");
  QueryResult again2 = MustExecute("SELECT byte_at(randbytes(10, 3), 4) AS v "
                                   "FROM r LIMIT 1");
  EXPECT_TRUE(again.rows[0].value(0).Equals(again2.rows[0].value(0)));
}

TEST_F(EngineTest, PersistenceAcrossReopen) {
  MustExecute("CREATE TABLE t (a INT, blob BYTEARRAY)");
  MustExecute("INSERT INTO t VALUES (1, randbytes(20000, 1))");
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  db_ = Database::Open(path_).value();
  QueryResult r = MustExecute("SELECT a, length(blob) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 1);
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 20000);
}

TEST_F(EngineTest, DropTableFreesAndForgets) {
  MustExecute("CREATE TABLE t (a INT)");
  MustExecute("INSERT INTO t VALUES (1)");
  MustExecute("DROP TABLE t");
  EXPECT_TRUE(db_->Execute("SELECT * FROM t").status().IsNotFound());
  // Name is reusable.
  MustExecute("CREATE TABLE t (b STRING)");
  EXPECT_EQ(MustExecute("SELECT * FROM t").rows.size(), 0u);
  // The hidden LOB table is protected.
  EXPECT_FALSE(db_->Execute("DROP TABLE __lobs").ok());
}

TEST_F(EngineTest, GenericUdfDesign1EndToEnd) {
  // The paper's experiment query shape (Section 5.1), Design 1.
  MustExecute("CREATE TABLE Rel100 (ByteArray BYTEARRAY)");
  MustExecute("INSERT INTO Rel100 VALUES (randbytes(100, 11)), "
              "(randbytes(100, 12))");
  QueryResult r = MustExecute(
      "SELECT generic_udf(R.ByteArray, 10, 2, 3) FROM Rel100 R");
  ASSERT_EQ(r.rows.size(), 2u);
  // Differential check against the pure reference model.
  Random rng1(11), rng2(12);
  EXPECT_EQ(r.rows[0].value(0).AsInt(),
            GenericUdfExpected(rng1.Bytes(100), 10, 2, 3));
  EXPECT_EQ(r.rows[1].value(0).AsInt(),
            GenericUdfExpected(rng2.Bytes(100), 10, 2, 3));
  // The three callbacks per invocation hit the server handler.
  EXPECT_EQ(db_->callbacks_served(), 6u);
}

TEST_F(EngineTest, GenericUdfCheckedMatchesUnchecked) {
  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (randbytes(500, 5))");
  QueryResult a =
      MustExecute("SELECT generic_udf(b, 100, 3, 0) FROM r");
  QueryResult b =
      MustExecute("SELECT generic_udf_checked(b, 100, 3, 0) FROM r");
  EXPECT_EQ(a.rows[0].value(0).AsInt(), b.rows[0].value(0).AsInt());
}

TEST_F(EngineTest, UdfCallbackQuotaEnforced) {
  DatabaseOptions opts;
  opts.udf_callback_quota = 2;
  db_.reset();
  std::remove(path_.c_str());
  db_ = Database::Open(path_, opts).value();
  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (zerobytes(1))");
  EXPECT_TRUE(db_->Execute("SELECT generic_udf(b, 0, 0, 2) FROM r").ok());
  EXPECT_TRUE(db_->Execute("SELECT generic_udf(b, 0, 0, 3) FROM r")
                  .status()
                  .IsResourceExhausted());
}

TEST_F(EngineTest, RegisteredUdfDesignSelection) {
  // Register the generic UDF under a new name, with the checked design.
  UdfInfo info;
  info.name = "MyUdf";
  info.language = UdfLanguage::kNativeChecked;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
  info.impl_name = "generic_udf_checked";
  ASSERT_TRUE(db_->RegisterUdf(info).ok());

  MustExecute("CREATE TABLE r (b BYTEARRAY)");
  MustExecute("INSERT INTO r VALUES (randbytes(64, 3))");
  QueryResult r = MustExecute("SELECT MyUdf(b, 5, 1, 0) FROM r");
  EXPECT_EQ(r.rows[0].value(0).AsInt(),
            GenericUdfExpected(Random(3).Bytes(64), 5, 1, 0));

  // Registration persists across reopen.
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  db_ = Database::Open(path_).value();
  EXPECT_TRUE(db_->Execute("SELECT MyUdf(b, 5, 1, 0) FROM r").ok());
  // Duplicate registration fails; drop works.
  EXPECT_TRUE(db_->RegisterUdf(info).IsAlreadyExists());
  EXPECT_TRUE(db_->DropUdf("myudf").ok());
  EXPECT_TRUE(db_->Execute("SELECT MyUdf(b, 5, 1, 0) FROM r")
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, UdfArgumentTypeChecking) {
  MustExecute("CREATE TABLE r (b BYTEARRAY, s STRING)");
  MustExecute("INSERT INTO r VALUES (zerobytes(1), 'x')");
  EXPECT_TRUE(db_->Execute("SELECT generic_udf(s, 1, 1, 1) FROM r")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->Execute("SELECT generic_udf(b, 1) FROM r")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EngineTest, LobStoreAndCallbacks) {
  Random rng(77);
  auto img = rng.Bytes(5000);
  int64_t handle = db_->StoreLob(img).value();
  // Ranged fetch.
  auto clip = db_->FetchLob(handle, 1000, 100).value();
  EXPECT_EQ(clip, std::vector<uint8_t>(img.begin() + 1000,
                                       img.begin() + 1100));
  // Clamped at end.
  EXPECT_EQ(db_->FetchLob(handle, 4990, 100).value().size(), 10u);
  EXPECT_EQ(db_->FetchLob(handle, 9999, 10).value().size(), 0u);
  // Size callback (kind 1).
  EXPECT_EQ(db_->Callback(1, handle).value(), 5000);
  EXPECT_TRUE(db_->FetchLob(999, 0, 1).status().IsNotFound());
  // LOBs persist.
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  db_ = Database::Open(path_).value();
  EXPECT_EQ(db_->FetchLob(handle, 0, 5000).value(), img);
  // New handles don't collide after reopen.
  int64_t h2 = db_->StoreLob({1, 2, 3}).value();
  EXPECT_NE(h2, handle);
}

TEST_F(EngineTest, PrettyPrint) {
  MustExecute("CREATE TABLE t (a INT, b STRING)");
  MustExecute("INSERT INTO t VALUES (1, 'hello')");
  std::string pretty = MustExecute("SELECT * FROM t").ToPrettyString();
  EXPECT_NE(pretty.find("a"), std::string::npos);
  EXPECT_NE(pretty.find("'hello'"), std::string::npos);
  EXPECT_NE(pretty.find("1 row(s)"), std::string::npos);
}

TEST_F(EngineTest, TenThousandTupleScan) {
  // The paper's workload scale: 10,000 tuples.
  MustExecute("CREATE TABLE Rel1 (ByteArray BYTEARRAY)");
  for (int batch = 0; batch < 10; ++batch) {
    std::string sql = "INSERT INTO Rel1 VALUES ";
    for (int i = 0; i < 1000; ++i) {
      if (i > 0) sql += ", ";
      sql += "(randbytes(1, " + std::to_string(batch * 1000 + i) + "))";
    }
    MustExecute(sql);
  }
  QueryResult r = MustExecute(
      "SELECT generic_udf(ByteArray, 0, 0, 0) FROM Rel1");
  EXPECT_EQ(r.rows.size(), 10000u);
}

}  // namespace
}  // namespace jaguar
