// Robustness suite: hostile input at every trust boundary.
//
// The paper's premise is that UDF authors are "unknown or untrusted
// clients"; these tests throw malformed bytes at each surface an attacker
// can reach — the network protocol, uploaded class files, the assembler, and
// the IPC channel — and require clean errors, never crashes or hangs.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/deadline.h"
#include "common/random.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "ipc/remote_executor.h"
#include "jjc/jjc.h"
#include "jvm/assembler.h"
#include "jvm/class_loader.h"
#include "jvm/verifier.h"
#include "jvm/vm.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "udf/executor_pool.h"
#include "udf/generic_udf.h"
#include "udf/isolated_udf_runner.h"
#include "udf/udf.h"

#include "test_requirements.h"

namespace jaguar {
namespace {

// ---------------------------------------------------------------------------
// Network: raw garbage against a live server
// ---------------------------------------------------------------------------

class NetRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_robust_" + std::to_string(::getpid()) + ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
    server_ = std::make_unique<net::Server>(db_.get());
    ASSERT_TRUE(server_->Start(0).ok());
  }
  void TearDown() override {
    server_->Stop();
    server_.reset();
    db_.reset();
    std::remove(path_.c_str());
  }

  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_->port());
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetRobustnessTest, GarbageBytesDoNotKillTheServer) {
  Random rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    int fd = RawConnect();
    auto junk = rng.Bytes(1 + rng.Uniform(300));
    ::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
  // The server still serves a well-behaved client.
  auto client = net::Client::Connect("127.0.0.1", server_->port()).value();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Execute("CREATE TABLE t (a INT)").ok());
}

TEST_F(NetRobustnessTest, OversizedFrameLengthIsRejected) {
  int fd = RawConnect();
  // Claim a 1 GB payload: the server must refuse, not allocate.
  uint8_t header[5] = {0x00, 0x00, 0x00, 0x40, 1};  // len = 0x40000000
  ::send(fd, header, sizeof(header), MSG_NOSIGNAL);
  // Connection gets dropped; new clients still work.
  char buf[8];
  ::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
  auto client = net::Client::Connect("127.0.0.1", server_->port()).value();
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetRobustnessTest, TruncatedRegisterUdfFrames) {
  // Valid frame envelope, malformed UdfInfo payloads of every length.
  UdfInfo info;
  info.name = "x";
  info.impl_name = "C.m";
  info.language = UdfLanguage::kJJava;
  BufferWriter w;
  net::EncodeUdfInfo(info, &w);
  auto full = w.Release();
  auto client = net::Client::Connect("127.0.0.1", server_->port()).value();
  for (size_t len = 0; len < full.size(); len += 3) {
    int fd = RawConnect();
    BufferWriter frame;
    frame.PutU32(static_cast<uint32_t>(len));
    frame.PutU8(static_cast<uint8_t>(net::FrameType::kRegisterUdf));
    frame.PutBytes(Slice(full.data(), len));
    ::send(fd, frame.buffer().data(), frame.size(), MSG_NOSIGNAL);
    auto reply = net::ReadFrame(fd);
    if (reply.ok()) {
      EXPECT_EQ(reply->first, net::FrameType::kError);
    }
    ::close(fd);
  }
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(NetRobustnessTest, DisconnectMidRequestIsHarmless) {
  for (int i = 0; i < 10; ++i) {
    int fd = RawConnect();
    uint8_t header[5] = {100, 0, 0, 0,
                         static_cast<uint8_t>(net::FrameType::kExecuteSql)};
    ::send(fd, header, sizeof(header), MSG_NOSIGNAL);  // promise 100 bytes...
    ::close(fd);                                       // ...send none
  }
  auto client = net::Client::Connect("127.0.0.1", server_->port()).value();
  EXPECT_TRUE(client->Ping().ok());
}

// ---------------------------------------------------------------------------
// Verifier: adversarial hand-built bytecode beyond what jjc can emit
// ---------------------------------------------------------------------------

jvm::ClassFile OneMethod(const std::string& sig,
                         std::vector<uint8_t> code_bytes,
                         uint16_t max_locals = 4) {
  jvm::ClassFile cf;
  cf.class_name = "Adv";
  jvm::MethodDef m;
  m.name_idx = cf.InternUtf8("f");
  m.sig_idx = cf.InternUtf8(sig);
  m.max_locals = max_locals;
  m.code = std::move(code_bytes);
  cf.methods.push_back(std::move(m));
  return cf;
}

TEST(VerifierAdversarialTest, StackDepthBombRejected) {
  // Push without bound: verifier must cap the tracked stack depth.
  jvm::CodeWriter w;
  for (int i = 0; i < 3000; ++i) w.EmitImm(jvm::Op::kIConst, i);
  w.Emit(jvm::Op::kIReturn);
  auto cf = OneMethod("()I", w.Release());
  EXPECT_TRUE(jvm::Verify(cf).status().IsVerificationError());
}

TEST(VerifierAdversarialTest, BranchLoopWithGrowingStackRejected) {
  // Loop that nets +1 stack per iteration: depths conflict at the merge.
  jvm::CodeWriter w;
  uint32_t top = w.size();
  w.EmitImm(jvm::Op::kIConst, 1);
  w.EmitA(jvm::Op::kGoto, top);
  auto cf = OneMethod("()I", w.Release());
  EXPECT_TRUE(jvm::Verify(cf).status().IsVerificationError());
}

TEST(VerifierAdversarialTest, SelfReferentialConstantPoolIndices) {
  // callnative whose constant-pool index points at a Utf8, not a NativeRef.
  jvm::ClassFile cf;
  cf.class_name = "Adv";
  uint16_t utf8 = cf.InternUtf8("not-a-ref");
  jvm::MethodDef m;
  m.name_idx = cf.InternUtf8("f");
  m.sig_idx = cf.InternUtf8("()I");
  m.max_locals = 0;
  jvm::CodeWriter w;
  w.EmitA(jvm::Op::kCallNative, utf8);
  w.Emit(jvm::Op::kIReturn);
  m.code = w.Release();
  cf.methods.push_back(std::move(m));
  EXPECT_TRUE(jvm::Verify(cf).status().IsVerificationError());
}

TEST(VerifierAdversarialTest, LocalsIndexOutOfRange) {
  jvm::CodeWriter w;
  w.EmitA(jvm::Op::kILoad, 1000);
  w.Emit(jvm::Op::kIReturn);
  auto cf = OneMethod("()I", w.Release(), /*max_locals=*/2);
  EXPECT_TRUE(jvm::Verify(cf).status().IsVerificationError());
}

TEST(VerifierAdversarialTest, RandomCodeBytesNeverCrashTheVerifier) {
  Random rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    auto cf = OneMethod("(BI)I", rng.Bytes(1 + rng.Uniform(60)));
    jvm::Verify(cf).ok();  // may pass or fail; must not crash
  }
}

TEST(VerifierAdversarialTest, GeneratedProgramsVerifyExecuteAndEnginesAgree) {
  // Structured fuzz: generate stack-valid integer programs (including div,
  // rem, dup/pop/swap), require them to verify, then execute under quotas on
  // BOTH engines and require identical outcomes — runtime traps included.
  Random rng(123);
  int executed = 0;
  for (int trial = 0; trial < 300; ++trial) {
    jvm::CodeWriter w;
    int depth = 0;
    bool local1_init = false;
    int steps = 2 + static_cast<int>(rng.Uniform(40));
    for (int s = 0; s < steps; ++s) {
      switch (rng.Uniform(12)) {
        case 0:
          w.EmitImm(jvm::Op::kIConst, rng.UniformRange(-50, 50));
          ++depth;
          break;
        case 1:
          w.EmitA(jvm::Op::kILoad, 0);
          ++depth;
          break;
        case 2:
          if (local1_init) {
            w.EmitA(jvm::Op::kILoad, 1);
            ++depth;
          }
          break;
        case 3:
          if (depth >= 1) {
            w.EmitA(jvm::Op::kIStore, 1);
            --depth;
            local1_init = true;
          }
          break;
        case 4: case 5: case 6: {
          if (depth >= 2) {
            static const jvm::Op kAlu[] = {
                jvm::Op::kIAdd, jvm::Op::kISub, jvm::Op::kIMul,
                jvm::Op::kIAnd, jvm::Op::kIOr,  jvm::Op::kIXor,
                jvm::Op::kIShl, jvm::Op::kIShr, jvm::Op::kIUShr,
                jvm::Op::kIDiv, jvm::Op::kIRem};
            w.Emit(kAlu[rng.Uniform(11)]);
            --depth;
          }
          break;
        }
        case 7:
          if (depth >= 1) w.Emit(jvm::Op::kINeg);
          break;
        case 8:
          if (depth >= 1) {
            w.Emit(jvm::Op::kDup);
            ++depth;
          }
          break;
        case 9:
          if (depth >= 1) {
            w.Emit(jvm::Op::kPop);
            --depth;
          }
          break;
        case 10:
          if (depth >= 2) w.Emit(jvm::Op::kSwap);
          break;
        case 11:
          w.EmitImm(jvm::Op::kIConst, static_cast<int64_t>(rng.Next()));
          ++depth;
          break;
      }
    }
    while (depth > 1) {
      w.Emit(jvm::Op::kPop);
      --depth;
    }
    if (depth == 0) w.EmitImm(jvm::Op::kIConst, 7);
    w.Emit(jvm::Op::kIReturn);

    auto cf = OneMethod("(I)I", w.Release(), 2);
    Result<jvm::VerifiedClass> verified = jvm::Verify(cf);
    ASSERT_TRUE(verified.ok()) << verified.status();

    int64_t arg = rng.UniformRange(-100, 100);
    Result<int64_t> outcomes[2] = {Internal("unset"), Internal("unset")};
    int idx = 0;
    for (bool jit : {false, true}) {
      jvm::JvmOptions opts;
      opts.enable_jit = jit;
      jvm::Jvm vm(opts);
      jvm::ClassLoader loader(vm.system_loader());
      ASSERT_TRUE(
          loader.DefineClass(jvm::Verify(cf).value()).ok());
      jvm::SecurityManager deny;
      jvm::ResourceLimits limits;
      limits.instruction_budget = 100000;
      limits.heap_quota_bytes = 1 << 20;
      jvm::ExecContext ctx(&vm, &loader, &deny, limits);
      outcomes[idx++] = ctx.CallStatic("Adv", "f", {arg});
    }
    ASSERT_EQ(outcomes[0].ok(), outcomes[1].ok())
        << "engines disagree on success at trial " << trial;
    if (outcomes[0].ok()) {
      ASSERT_EQ(*outcomes[0], *outcomes[1])
          << "engines disagree on value at trial " << trial;
    }
    ++executed;
  }
  EXPECT_EQ(executed, 300);
}

// ---------------------------------------------------------------------------
// Assembler: round-trips and pathological inputs
// ---------------------------------------------------------------------------

TEST(AssemblerRobustnessTest, AssembleVerifyDisassembleRoundTrip) {
  const char* src = R"(
class R
method f (BI)I locals=4
  iconst 0
  istore 2
loop:
  iload 2
  iload 1
  if_icmpge done
  iload 2
  aload 0
  iload 2
  aload 0
  arraylen
  irem
  baload
  iadd
  istore 2
  goto loop
done:
  iload 2
  ireturn
end
)";
  auto cf = jvm::Assemble(src).value();
  auto verified = jvm::Verify(cf).value();
  std::string dis = jvm::Disassemble(verified.methods[0].code);
  for (const char* mnemonic : {"baload", "irem", "if_icmpge", "goto"}) {
    EXPECT_NE(dis.find(mnemonic), std::string::npos) << mnemonic;
  }
  // Serialized class file parses back identically.
  auto reparsed = jvm::ClassFile::Parse(Slice(cf.Serialize())).value();
  EXPECT_EQ(reparsed.Serialize(), cf.Serialize());
}

TEST(AssemblerRobustnessTest, RandomTextNeverCrashes) {
  Random rng(5);
  const char* words[] = {"class",  "method", "end",   "iconst", "iload",
                         "goto",   "L1:",    "call",  "A.b",    "(I)I",
                         "99999",  "-3",     "x",     "baload", "swap"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string src;
    int lines = 1 + static_cast<int>(rng.Uniform(20));
    for (int l = 0; l < lines; ++l) {
      int tokens = static_cast<int>(rng.Uniform(4));
      for (int t = 0; t <= tokens; ++t) {
        src += words[rng.Uniform(sizeof(words) / sizeof(words[0]))];
        src += " ";
      }
      src += "\n";
    }
    jvm::Assemble(src).ok();  // must not crash
  }
}

// ---------------------------------------------------------------------------
// JagVM embedding edge cases
// ---------------------------------------------------------------------------

TEST(VmEdgeCaseTest, HugeBranchMethodCompiles) {
  // A method big enough to stress rel32 fixups and block bookkeeping.
  jvm::CodeWriter w;
  std::vector<uint32_t> gotos;
  for (int i = 0; i < 2000; ++i) {
    w.EmitImm(jvm::Op::kIConst, i);
    w.Emit(jvm::Op::kPop);
    gotos.push_back(w.EmitA(jvm::Op::kGoto, 0));
  }
  uint32_t end = w.size();
  w.EmitImm(jvm::Op::kIConst, 42);
  w.Emit(jvm::Op::kIReturn);
  // Chain each goto to the next block; the last jumps to the return.
  for (size_t i = 0; i < gotos.size(); ++i) {
    uint32_t target = i + 1 < gotos.size() ? gotos[i] + 5 + 9 : end;
    (void)target;
  }
  // Simpler: all gotos jump forward to the return.
  for (uint32_t off : gotos) w.PatchA(off, end);
  auto cf = OneMethod("()I", w.Release(), 0);
  auto verified = jvm::Verify(cf);
  ASSERT_TRUE(verified.ok()) << verified.status();

  jvm::Jvm vm;
  jvm::ClassLoader loader(vm.system_loader());
  ASSERT_TRUE(loader.DefineClass(std::move(*verified)).ok());
  jvm::SecurityManager allow = jvm::SecurityManager::AllowAll();
  jvm::ExecContext ctx(&vm, &loader, &allow, {});
  EXPECT_EQ(ctx.CallStatic("Adv", "f", {}).value(), 42);
}

// ---------------------------------------------------------------------------
// Fault injection: a hostile/crashing isolated executor (Design 2)
// ---------------------------------------------------------------------------

TEST(IsolatedRunnerFaultTest, KilledChildFailsCleanlyAndIsObservable) {
  JAGUAR_REQUIRE_FORK();
  // Section 3.2's protection argument: an isolated UDF process dying must
  // cost the server one failed invocation, nothing more — and the failure
  // must be visible in the udf.icpp metrics.
  RegisterGenericUdfs();  // the executor child resolves this by name
  auto runner = IsolatedNativeRunner::Spawn(
                    "generic_udf", TypeId::kInt,
                    {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt})
                    .value();
  const std::vector<Value> args = {Value::Bytes(std::vector<uint8_t>(8, 1)),
                                   Value::Int(2), Value::Int(2),
                                   Value::Int(0)};
  UdfContext ctx(nullptr);
  ASSERT_TRUE(runner->Invoke(args, &ctx).ok());  // healthy first

  obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global()->Snapshot("udf.icpp.");
  runner->set_ipc_timeout_seconds(1);  // don't wait 30 s for the corpse
  ASSERT_EQ(kill(runner->child_pid(), SIGKILL), 0);
  Result<Value> dead = runner->Invoke(args, &ctx);
  EXPECT_FALSE(dead.ok());
  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot("udf.icpp."));
  EXPECT_GE(delta.at("udf.icpp.failures"), 1u);
  EXPECT_GE(delta.at("udf.icpp.invocations"), 1u);

  // The server recovers by spawning a fresh executor; work proceeds.
  auto fresh = IsolatedNativeRunner::Spawn(
                   "generic_udf", TypeId::kInt,
                   {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt})
                   .value();
  Result<Value> ok = fresh->Invoke(args, &ctx);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->type(), TypeId::kInt);
}

/// Parent-side callback handler that SIGKILLs the executor child from
/// *inside* a batched crossing — the worst possible moment.
class ChildKillingHandler : public UdfCallbackHandler {
 public:
  explicit ChildKillingHandler(pid_t victim) : victim_(victim) {}
  Result<int64_t> Callback(int64_t, int64_t arg) override {
    kill(victim_, SIGKILL);
    return arg;
  }
  Result<std::vector<uint8_t>> FetchBytes(int64_t, uint64_t,
                                          uint64_t) override {
    return Internal("unexpected fetch");
  }

 private:
  pid_t victim_;
};

TEST(IsolatedRunnerFaultTest, KilledMidBatchFailsWholeBatchAndRespawns) {
  JAGUAR_REQUIRE_FORK();
  // SIGKILL the executor while it is halfway through a batch (triggered by
  // the first row's callback). The whole batch must fail with one clean
  // error — no hang, no partial results — and the *same* runner must
  // transparently respawn a fresh executor on the next batch.
  RegisterGenericUdfs();
  auto runner = IsolatedNativeRunner::Spawn(
                    "generic_udf", TypeId::kInt,
                    {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt})
                    .value();
  runner->set_ipc_timeout_seconds(1);
  const pid_t doomed = runner->child_pid();
  ASSERT_GT(doomed, 0);

  // Row 0 makes one callback (which kills the child); rows 1-3 never run.
  auto row = [](int64_t callbacks) {
    return std::vector<Value>{Value::Bytes(std::vector<uint8_t>(8, 1)),
                              Value::Int(2), Value::Int(2),
                              Value::Int(callbacks)};
  };
  std::vector<std::vector<Value>> batch = {row(1), row(0), row(0), row(0)};

  ChildKillingHandler killer(doomed);
  UdfContext ctx(&killer);
  Result<std::vector<Value>> dead = runner->InvokeBatch(batch, &ctx);
  EXPECT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsIoError()) << dead.status();
  // The corpse was reaped; the runner knows its executor is gone.
  EXPECT_EQ(runner->child_pid(), -1);

  // Next batch: a fresh executor is forked automatically and the full batch
  // completes.
  std::vector<std::vector<Value>> clean = {row(0), row(0), row(0), row(0)};
  UdfContext ctx2(nullptr);
  Result<std::vector<Value>> revived = runner->InvokeBatch(clean, &ctx2);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ(revived->size(), clean.size());
  EXPECT_GT(runner->child_pid(), 0);
  EXPECT_NE(runner->child_pid(), doomed);
}

TEST(IsolatedRunnerFaultTest, KilledChildRecoversOnMessageTransportToo) {
  JAGUAR_REQUIRE_FORK();
  // The fallback transport must fail and recover exactly like the ring:
  // SIGKILL the executor mid-conversation, expect one clean IoError-class
  // failure, then transparent respawn.
  RegisterGenericUdfs();
  auto runner = IsolatedNativeRunner::Spawn(
                    "generic_udf", TypeId::kInt,
                    {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt},
                    1 << 20, 1, ipc::Transport::kMessage)
                    .value();
  runner->set_ipc_timeout_seconds(1);
  const std::vector<Value> args = {Value::Bytes(std::vector<uint8_t>(8, 1)),
                                   Value::Int(2), Value::Int(2),
                                   Value::Int(0)};
  UdfContext ctx(nullptr);
  ASSERT_TRUE(runner->Invoke(args, &ctx).ok());

  const pid_t doomed = runner->child_pid();
  ASSERT_GT(doomed, 0);
  ASSERT_EQ(kill(doomed, SIGKILL), 0);
  Result<Value> dead = runner->Invoke(args, &ctx);
  EXPECT_FALSE(dead.ok());

  Result<Value> revived = runner->Invoke(args, &ctx);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_NE(runner->child_pid(), doomed);
}

TEST(ExecutorPoolTeardownTest, DtorReapsLeasedOrphanChildren) {
  JAGUAR_REQUIRE_FORK();
  // A pool destroyed while a lease is still outstanding (a worker thread
  // wedged, a runner torn down out of order) must not leave the leased
  // child running as a zombie-in-waiting: the dtor SIGKILLs and reaps every
  // registered-but-not-idle executor and counts it.
  auto spawn = []() {
    return ipc::RemoteExecutor::Spawn(
        1024,
        [](Slice request, ipc::Channel*) -> Result<std::vector<uint8_t>> {
          return std::vector<uint8_t>(request.data(),
                                      request.data() + request.size());
        });
  };
  obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global()->Snapshot("udf.pool.");

  pid_t leased_pid = -1;
  {
    ExecutorPool::Lease orphan;
    {
      ExecutorPool pool(spawn, 2);
      auto lease = pool.Acquire();
      ASSERT_TRUE(lease.ok());
      leased_pid = (*lease)->child_pid();
      ASSERT_GT(leased_pid, 0);
      orphan = std::move(*lease);
    }  // pool dies with the lease outstanding
    // The child was SIGKILLed *and reaped* by the pool dtor: not a zombie,
    // not a live orphan — the pid is simply gone.
    EXPECT_EQ(kill(leased_pid, 0), -1);
    EXPECT_EQ(errno, ESRCH);
  }  // the orphaned lease settles after the pool: must be a harmless no-op

  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot("udf.pool."));
  ASSERT_TRUE(delta.count("udf.pool.orphans"));
  EXPECT_GE(delta.at("udf.pool.orphans"), 1u);
}

// ---------------------------------------------------------------------------
// Query deadlines: runaway-UDF termination and quarantine
// ---------------------------------------------------------------------------

/// A hostile native UDF that never returns — the exact scenario Table 1's
/// security column is about. Under the integrated C++ design this would wedge
/// the server forever (documented, by design); under IC++/IJNI the parent's
/// watchdog SIGKILLs the executor child when the deadline passes.
Status SpinForeverUdf(const std::vector<Value>& args, UdfContext* ctx,
                      Value* out) {
  volatile uint64_t sink = 0;
  for (;;) sink = sink + 1;
}

void RegisterSpinUdf() {
  static const bool registered = [] {
    NativeUdfRegistry::Global()
        ->Register({"spin_forever_udf", TypeId::kInt, {TypeId::kInt},
                    &SpinForeverUdf})
        .ok();
    return true;
  }();
  (void)registered;
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// SnapshotDelta drops unchanged entries, so a missing key means "zero".
uint64_t DeltaOf(const obs::MetricsSnapshot& delta, const std::string& name) {
  auto it = delta.find(name);
  return it == delta.end() ? 0 : it->second;
}

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterSpinUdf();
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_deadline_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  void Open() {
    db_ = Database::Open(path_, options_).value();
    ASSERT_TRUE(db_->Execute("CREATE TABLE t (a INT)").ok());
    ASSERT_TRUE(db_->Execute("INSERT INTO t VALUES (1)").ok());
  }

  /// Registers the spinning native UDF as `name` under `lang` (kNative or
  /// kNativeIsolated).
  void RegisterSpin(const std::string& name, UdfLanguage lang) {
    UdfInfo info;
    info.name = name;
    info.language = lang;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kInt};
    info.impl_name = "spin_forever_udf";
    ASSERT_TRUE(db_->RegisterUdf(info).ok());
  }

  /// Registers an infinite-loop JJava UDF as `name` under kJJava or
  /// kJJavaIsolated.
  void RegisterJJavaSpin(const std::string& name, UdfLanguage lang) {
    const char* spin_src = R"(
class DSpin {
  static int run(int a) {
    int x = 0;
    while (0 == 0) { x = x + 1; }
    return x;
  }
})";
    UdfInfo info;
    info.name = name;
    info.language = lang;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kInt};
    info.impl_name = "DSpin.run";
    info.payload = jjc::Compile(spin_src).value().Serialize();
    ASSERT_TRUE(db_->RegisterUdf(info).ok());
  }

  DatabaseOptions options_;
  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(DeadlineTest, WatchdogKillsRunawayIsolatedNativeUdf) {
  JAGUAR_REQUIRE_FORK();
  // The tentpole scenario: an IC++ UDF that loops forever is SIGKILLed by
  // the watchdog within query_timeout_ms + one 100 ms watchdog tick, the
  // query fails with DeadlineExceeded (NOT IoError — the child did not die
  // on its own), and the pool respawns for the next query.
  options_.query_timeout_ms = 300;
  Open();
  RegisterSpin("spin", UdfLanguage::kNativeIsolated);
  RegisterGenericUdfs();
  UdfInfo healthy;
  healthy.name = "g_ic";
  healthy.language = UdfLanguage::kNativeIsolated;
  healthy.return_type = TypeId::kInt;
  healthy.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                       TypeId::kInt};
  healthy.impl_name = "generic_udf";
  ASSERT_TRUE(db_->RegisterUdf(healthy).ok());

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> dead = db_->Execute("SELECT spin(a) FROM t");
  const int64_t elapsed = ElapsedMs(start);
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();
  // 300 ms deadline + 100 ms watchdog tick + generous scheduling slack.
  EXPECT_LT(elapsed, 3000) << "watchdog took too long";
  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot());
  EXPECT_GE(DeltaOf(delta, "udf.watchdog.kills"), 1u);
  EXPECT_GE(DeltaOf(delta, "exec.deadline.exceeded"), 1u);
  EXPECT_GE(DeltaOf(delta, "exec.deadline.queries"), 1u);

  // The pool respawned a fresh child: the same query times out cleanly again
  // (a dead, never-respawned executor would surface as IoError instead).
  Result<QueryResult> again = db_->Execute("SELECT spin(a) FROM t");
  EXPECT_TRUE(again.status().IsDeadlineExceeded()) << again.status();

  // Other isolated executors were never touched by the kills: a healthy
  // IC++ UDF still runs to completion on its own pool.
  Result<QueryResult> ok =
      db_->Execute("SELECT g_ic(zerobytes(8), 2, 1, 0) FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->rows.size(), 1u);
}

TEST_F(DeadlineTest, WatchdogKillsRunawayUdfInsideAggregate) {
  JAGUAR_REQUIRE_FORK();
  // A runaway UDF inside an aggregate argument, on the parallel aggregation
  // path: morsel workers each lease a pooled executor, the watchdog SIGKILLs
  // the wedged children at the deadline, and the whole aggregate fails with
  // DeadlineExceeded — without leaking pool executors or poisoning the pool
  // for later queries.
  options_.query_timeout_ms = 300;
  options_.vectorized_execution = true;
  options_.batch_size = 8;
  options_.num_workers = 2;
  Open();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        db_->Execute(StringPrintf("INSERT INTO t VALUES (%d)", i)).ok());
  }
  RegisterSpin("spin", UdfLanguage::kNativeIsolated);

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> dead = db_->Execute("SELECT SUM(spin(a)) FROM t");
  const int64_t elapsed = ElapsedMs(start);
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();
  EXPECT_LT(elapsed, 3000) << "watchdog took too long";
  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot());
  EXPECT_GE(DeltaOf(delta, "udf.watchdog.kills"), 1u);
  EXPECT_GE(DeltaOf(delta, "exec.deadline.exceeded"), 1u);

  // GROUP BY with the runaway in the key fails too — DeadlineExceeded, or
  // SecurityViolation if the strikes from the parallel workers' kills have
  // already tripped the quarantine.
  Result<QueryResult> grouped =
      db_->Execute("SELECT spin(a), COUNT(*) FROM t GROUP BY spin(a)");
  EXPECT_FALSE(grouped.ok());
  EXPECT_TRUE(grouped.status().IsDeadlineExceeded() ||
              grouped.status().IsSecurityViolation())
      << grouped.status();

  // The pool is intact: a UDF-free aggregate and a healthy isolated UDF
  // both complete (leaked leases would wedge Acquire, dead never-respawned
  // children would surface as IoError).
  Result<QueryResult> count = db_->Execute("SELECT COUNT(*), SUM(a) FROM t");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->rows[0].value(0).AsInt(), 17);
  RegisterGenericUdfs();
  UdfInfo healthy;
  healthy.name = "g_ic";
  healthy.language = UdfLanguage::kNativeIsolated;
  healthy.return_type = TypeId::kInt;
  healthy.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                       TypeId::kInt};
  healthy.impl_name = "generic_udf";
  ASSERT_TRUE(db_->RegisterUdf(healthy).ok());
  Result<QueryResult> ok =
      db_->Execute("SELECT SUM(g_ic(zerobytes(8), 2, 1, 0)) FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->rows.size(), 1u);
}

TEST_F(DeadlineTest, WatchdogAlsoKillsOnMessageTransport) {
  JAGUAR_REQUIRE_FORK();
  // The copy-based fallback transport keeps the identical watchdog
  // semantics: runaway isolated UDF -> SIGKILL within the deadline plus one
  // 100 ms tick, clean DeadlineExceeded, pool respawns for the next query.
  options_.query_timeout_ms = 300;
  options_.ipc_transport = "message";
  Open();
  RegisterSpin("spin_m", UdfLanguage::kNativeIsolated);

  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> dead = db_->Execute("SELECT spin_m(a) FROM t");
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();
  EXPECT_LT(ElapsedMs(start), 3000) << "watchdog took too long";

  Result<QueryResult> again = db_->Execute("SELECT spin_m(a) FROM t");
  EXPECT_TRUE(again.status().IsDeadlineExceeded()) << again.status();
}

TEST_F(DeadlineTest, MessageTransportRunsIsolatedUdfsEndToEnd) {
  JAGUAR_REQUIRE_FORK();
  options_.ipc_transport = "message";
  Open();
  RegisterGenericUdfs();
  UdfInfo info;
  info.name = "g_msg";
  info.language = UdfLanguage::kNativeIsolated;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
  info.impl_name = "generic_udf";
  ASSERT_TRUE(db_->RegisterUdf(info).ok());
  Result<QueryResult> ok =
      db_->Execute("SELECT g_msg(zerobytes(8), 2, 1, 0) FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->rows.size(), 1u);
}

TEST_F(DeadlineTest, UnknownTransportNameFailsOpen) {
  options_.ipc_transport = "carrier-pigeon";
  Result<std::unique_ptr<Database>> db = Database::Open(path_, options_);
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status();
}

TEST_F(DeadlineTest, WatchdogKillsRunawayIsolatedJvmUdf) {
  JAGUAR_REQUIRE_FORK();
  // Design 4 (IJNI): the child's JagVM executes an unbounded JJava loop
  // (no instruction budget configured); only the parent-side watchdog can
  // stop it, by killing the whole executor process.
  options_.query_timeout_ms = 300;
  Open();
  RegisterJJavaSpin("spin4", UdfLanguage::kJJavaIsolated);

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> dead = db_->Execute("SELECT spin4(a) FROM t");
  const int64_t elapsed = ElapsedMs(start);
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();
  EXPECT_LT(elapsed, 3000);
  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot());
  EXPECT_GE(DeltaOf(delta, "udf.watchdog.kills"), 1u);
  EXPECT_GE(DeltaOf(delta, "exec.deadline.exceeded"), 1u);

  // Server (and a fresh executor) keep working.
  Result<QueryResult> ok = db_->Execute("SELECT a FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status();
}

TEST_F(DeadlineTest, InterpreterStopsInProcessJJavaAtDeadline) {
  // Design 3 (JNI): the in-process JagVM is cooperative — the interpreter
  // polls the wall clock every 64Ki bytecodes, so a busy loop stops within
  // a millisecond of expiry with DeadlineExceeded even though no instruction
  // budget is configured.
  options_.query_timeout_ms = 200;
  options_.udf_jit = false;
  Open();
  RegisterJJavaSpin("spin3", UdfLanguage::kJJava);

  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> dead = db_->Execute("SELECT spin3(a) FROM t");
  const int64_t elapsed = ElapsedMs(start);
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();
  EXPECT_LT(elapsed, 2000);
  EXPECT_TRUE(db_->Execute("SELECT a FROM t").ok());
}

TEST_F(DeadlineTest, JitBudgetProbeStopsInProcessJJavaAtDeadline) {
  // JIT-compiled code cannot poll a clock mid-loop; with no configured
  // budget, the deadline caps the budget to a deliberately generous
  // instructions-per-ms probe, so the loop traps on the budget check and the
  // trap is attributed to the (by then expired) deadline.
  options_.query_timeout_ms = 100;
  options_.udf_jit = true;
  Open();
  RegisterJJavaSpin("spinjit", UdfLanguage::kJJava);

  Result<QueryResult> dead = db_->Execute("SELECT spinjit(a) FROM t");
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();
  EXPECT_TRUE(db_->Execute("SELECT a FROM t").ok());
}

TEST_F(DeadlineTest, SetTimeoutOverridesAndClears) {
  Open();  // no open-time timeout
  RegisterSpin("spin", UdfLanguage::kNativeIsolated);

  QueryResult set = db_->Execute("SET TIMEOUT 250").value();
  EXPECT_NE(set.message.find("250"), std::string::npos);
  Result<QueryResult> dead = db_->Execute("SELECT spin(a) FROM t");
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();

  QueryResult cleared = db_->Execute("SET TIMEOUT 0").value();
  EXPECT_NE(cleared.message.find("cleared"), std::string::npos);
  // Back to unbounded: ordinary statements run with no deadline armed.
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  EXPECT_TRUE(db_->Execute("SELECT a FROM t").ok());
  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot());
  EXPECT_EQ(DeltaOf(delta, "exec.deadline.queries"), 0u);
}

TEST_F(DeadlineTest, QuarantineDisablesRepeatOffenderUntilReRegistered) {
  // Three consecutive watchdog kills trip the quarantine: the fourth query
  // is refused outright (SecurityViolation, no child is even spawned), and
  // re-registering the UDF clears the verdict.
  options_.query_timeout_ms = 250;
  Open();
  RegisterSpin("spin", UdfLanguage::kNativeIsolated);

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  for (int i = 0; i < 3; ++i) {
    Result<QueryResult> dead = db_->Execute("SELECT spin(a) FROM t");
    EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << i << dead.status();
  }
  obs::MetricsSnapshot delta = obs::SnapshotDelta(
      before, obs::MetricsRegistry::Global()->Snapshot());
  EXPECT_EQ(DeltaOf(delta, "udf.quarantine.trips"), 1u);
  EXPECT_GE(DeltaOf(delta, "udf.quarantine.strikes"), 3u);

  Result<QueryResult> refused = db_->Execute("SELECT spin(a) FROM t");
  EXPECT_TRUE(refused.status().IsSecurityViolation()) << refused.status();
  EXPECT_NE(refused.status().message().find("quarantined"), std::string::npos);

  // Re-registration is the explicit re-enable gesture.
  ASSERT_TRUE(db_->DropUdf("spin").ok());
  RegisterSpin("spin", UdfLanguage::kNativeIsolated);
  Result<QueryResult> back = db_->Execute("SELECT spin(a) FROM t");
  EXPECT_TRUE(back.status().IsDeadlineExceeded()) << back.status();
}

TEST(QueryDeadlineTest, TokenSemantics) {
  QueryDeadline inactive;
  EXPECT_FALSE(inactive.active());
  EXPECT_FALSE(inactive.Expired());
  EXPECT_TRUE(inactive.Check().ok());
  EXPECT_TRUE(QueryDeadline::After(0).Check().ok());
  EXPECT_FALSE(QueryDeadline::After(0).active());
  EXPECT_TRUE(CheckDeadline(nullptr).ok());

  QueryDeadline soon = QueryDeadline::After(30);
  EXPECT_TRUE(soon.active());
  EXPECT_EQ(soon.timeout_ms(), 30);
  EXPECT_TRUE(soon.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(soon.Expired());
  EXPECT_TRUE(soon.Check().IsDeadlineExceeded());
  EXPECT_LE(soon.RemainingNanos(), 0);
}

TEST(VmEdgeCaseTest, ZeroLengthArraysEverywhere) {
  jvm::Jvm vm;
  auto cf = jvm::Assemble(R"(
class Z
method len (B)I
  aload 0
  arraylen
  ireturn
end
method sum (B)I locals=3
  iconst 0
  istore 1
  iconst 0
  istore 2
loop:
  iload 2
  aload 0
  arraylen
  if_icmpge done
  iload 1
  aload 0
  iload 2
  baload
  iadd
  istore 1
  iload 2
  iconst 1
  iadd
  istore 2
  goto loop
done:
  iload 1
  ireturn
end
)").value();
  ASSERT_TRUE(vm.system_loader()->LoadClass(Slice(cf.Serialize())).ok());
  jvm::SecurityManager allow = jvm::SecurityManager::AllowAll();
  jvm::ExecContext ctx(&vm, vm.system_loader(), &allow, {});
  auto empty = ctx.NewByteArray(Slice()).value();
  int64_t ref = reinterpret_cast<int64_t>(empty);
  EXPECT_EQ(ctx.CallStatic("Z", "len", {ref}).value(), 0);
  EXPECT_EQ(ctx.CallStatic("Z", "sum", {ref}).value(), 0);
}

}  // namespace
}  // namespace jaguar
