// Tests for the two-tier network layer: wire protocol encodings, the server
// loop, the client library, and the full client→server UDF migration flow of
// Section 6.4.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/random.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "udf/generic_udf.h"
#include "udf/udf.h"

namespace jaguar {
namespace net {
namespace {

TEST(ProtocolTest, UdfInfoRoundTrip) {
  UdfInfo info;
  info.name = "MyUdf";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes, TypeId::kInt};
  info.impl_name = "My.run";
  info.payload = Random(3).Bytes(500);

  BufferWriter w;
  EncodeUdfInfo(info, &w);
  BufferReader r(w.AsSlice());
  UdfInfo back = DecodeUdfInfo(&r).value();
  EXPECT_EQ(back.name, info.name);
  EXPECT_EQ(back.language, info.language);
  EXPECT_EQ(back.return_type, info.return_type);
  EXPECT_EQ(back.arg_types, info.arg_types);
  EXPECT_EQ(back.impl_name, info.impl_name);
  EXPECT_EQ(back.payload, info.payload);
}

TEST(ProtocolTest, QueryResultRoundTrip) {
  QueryResult result;
  result.schema = Schema({{"a", TypeId::kInt}, {"b", TypeId::kBytes}});
  result.rows.push_back(Tuple({Value::Int(1), Value::Bytes({1, 2, 3})}));
  result.rows.push_back(Tuple({Value::Int(2), Value::Null()}));
  result.rows_affected = 2;
  result.message = "ok";

  BufferWriter w;
  EncodeQueryResult(result, &w);
  BufferReader r(w.AsSlice());
  QueryResult back = DecodeQueryResult(&r).value();
  EXPECT_EQ(back.schema, result.schema);
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_TRUE(back.rows[0].value(1).Equals(Value::Bytes({1, 2, 3})));
  EXPECT_TRUE(back.rows[1].value(1).is_null());
  EXPECT_EQ(back.rows_affected, 2u);
  EXPECT_EQ(back.message, "ok");
}

TEST(ProtocolTest, TruncatedUdfInfoFailsCleanly) {
  UdfInfo info;
  info.name = "x";
  info.impl_name = "y";
  BufferWriter w;
  EncodeUdfInfo(info, &w);
  for (size_t len = 0; len < w.size(); ++len) {
    BufferReader r(Slice(w.buffer().data(), len));
    EXPECT_FALSE(DecodeUdfInfo(&r).ok());
  }
}

TEST(ProtocolTest, LargeFrameSurvivesTinySocketBuffers) {
  // A 1 MiB frame through a socketpair whose buffers hold a few KB: every
  // send() is partial, so WriteFrame's WriteAll loop (and ReadFrame's
  // ReadAll) must stitch the frame back together without dropping or
  // reordering a byte — the regression this guards is a short-write of the
  // header followed by a desynchronized stream.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  ASSERT_EQ(::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);

  const std::vector<uint8_t> payload = Random(7).Bytes(1 << 20);
  std::pair<FrameType, std::vector<uint8_t>> got;
  Status read_status = Status::OK();
  std::thread reader([&] {
    auto r = ReadFrame(fds[1]);
    if (r.ok()) {
      got = std::move(*r);
    } else {
      read_status = r.status();
    }
  });
  Status write_status = WriteFrame(fds[0], FrameType::kStoreLob,
                                   Slice(payload));
  reader.join();
  ASSERT_TRUE(write_status.ok()) << write_status;
  ASSERT_TRUE(read_status.ok()) << read_status;
  EXPECT_EQ(got.first, FrameType::kStoreLob);
  EXPECT_EQ(got.second, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, FramesSurviveASignalStormMidTransfer) {
  // Non-SA_RESTART signals land on the writer thread while it is blocked in
  // send(); each one makes the syscall fail with EINTR, which WriteAll must
  // absorb by retrying from the interrupted offset. The reader reassembles
  // a byte-identical frame on the other end.
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately no SA_RESTART: force EINTR
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  const std::vector<uint8_t> payload = Random(11).Bytes(1 << 20);
  std::pair<FrameType, std::vector<uint8_t>> got;
  Status read_status = Status::OK();
  std::thread reader([&] {
    auto r = ReadFrame(fds[1]);
    if (r.ok()) {
      got = std::move(*r);
    } else {
      read_status = r.status();
    }
  });

  std::atomic<bool> writing{true};
  Status write_status = Status::OK();
  std::thread writer([&] {
    write_status = WriteFrame(fds[0], FrameType::kLobData, Slice(payload));
    writing = false;
  });
  // Pepper the writer with signals for as long as the transfer is running.
  while (writing.load()) {
    ::pthread_kill(writer.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  writer.join();
  reader.join();
  ASSERT_TRUE(write_status.ok()) << write_status;
  ASSERT_TRUE(read_status.ok()) << read_status;
  EXPECT_EQ(got.first, FrameType::kLobData);
  EXPECT_EQ(got.second, payload);
  ::close(fds[0]);
  ::close(fds[1]);
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_net_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".db"))
                .string();
    std::remove(path_.c_str());
    db_ = Database::Open(path_).value();
    server_ = std::make_unique<Server>(db_.get());
    ASSERT_TRUE(server_->Start(0).ok());
    client_ = Client::Connect("127.0.0.1", server_->port()).value();
  }
  void TearDown() override {
    client_.reset();
    server_->Stop();
    server_.reset();
    db_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

TEST_F(NetTest, PingAndSql) {
  ASSERT_TRUE(client_->Ping().ok());
  ASSERT_TRUE(client_->Execute("CREATE TABLE t (a INT, s STRING)").ok());
  ASSERT_TRUE(client_->Execute("INSERT INTO t VALUES (1,'x'), (2,'y')").ok());
  QueryResult r = client_->Execute("SELECT a FROM t WHERE s = 'y'").value();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 2);
  EXPECT_GE(server_->requests_served(), 4u);
}

TEST_F(NetTest, SqlErrorsCrossTheWire) {
  Result<QueryResult> r = client_->Execute("SELECT * FROM missing");
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_NE(r.status().message().find("missing"), std::string::npos);
  EXPECT_TRUE(client_->Execute("NOT SQL AT ALL").status().IsInvalidArgument());
}

TEST_F(NetTest, MultipleClientsShareTheServer) {
  auto client2 = Client::Connect("127.0.0.1", server_->port()).value();
  ASSERT_TRUE(client_->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client2->Execute("INSERT INTO t VALUES (7)").ok());
  QueryResult r = client_->Execute("SELECT a FROM t").value();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 7);
}

TEST_F(NetTest, UdfMigrationFlow) {
  // The full Section 6.4 story: develop locally, test locally, migrate,
  // use from SQL.
  const char* source = R"(
class InvestVal {
  static int run(byte[] history) {
    int score = 0;
    int i = 1;
    while (i < history.length) {
      if (history[i] > history[i - 1]) { score = score + 1; }
      i = i + 1;
    }
    return (score * 100) / history.length;
  }
})";
  // 1. Local test in a client-side VM (no server round trip).
  std::vector<uint8_t> up = {1, 2, 3, 4, 5};  // strictly rising: score 4/5
  Value local = Client::TestUdfLocally(source, "InvestVal.run",
                                       {Value::Bytes(up)}, TypeId::kInt)
                    .value();
  EXPECT_EQ(local.AsInt(), 4 * 100 / 5);

  // 2. Migrate to the server.
  ASSERT_TRUE(client_
                  ->RegisterJJavaUdf("InvestVal", source, "InvestVal.run",
                                     TypeId::kInt, {TypeId::kBytes})
                  .ok());

  // 3. Use it in a server-side query; same bytecode, same answer.
  ASSERT_TRUE(client_->Execute("CREATE TABLE Stocks (sym STRING, "
                               "history BYTEARRAY)")
                  .ok());
  ASSERT_TRUE(client_->Execute("INSERT INTO Stocks VALUES "
                               "('UP', randbytes(100, 1)), "
                               "('DOWN', randbytes(100, 2))")
                  .ok());
  QueryResult r =
      client_->Execute("SELECT sym, InvestVal(history) FROM Stocks").value();
  ASSERT_EQ(r.rows.size(), 2u);
  // Cross-check row 0 against a local run on the same deterministic bytes.
  Value local_check =
      Client::TestUdfLocally(source, "InvestVal.run",
                             {Value::Bytes(Random(1).Bytes(100))},
                             TypeId::kInt)
          .value();
  EXPECT_EQ(r.rows[0].value(1).AsInt(), local_check.AsInt());

  // 4. Re-registration clashes; drop works; bad uploads are rejected.
  EXPECT_TRUE(client_
                  ->RegisterJJavaUdf("InvestVal", source, "InvestVal.run",
                                     TypeId::kInt, {TypeId::kBytes})
                  .IsAlreadyExists());
  ASSERT_TRUE(client_->DropUdf("InvestVal").ok());
  UdfInfo garbage;
  garbage.name = "bad";
  garbage.language = UdfLanguage::kJJava;
  garbage.return_type = TypeId::kInt;
  garbage.arg_types = {TypeId::kBytes};
  garbage.impl_name = "X.run";
  garbage.payload = {0xde, 0xad};
  Status upload = client_->RegisterUdf(garbage);
  EXPECT_TRUE(upload.IsVerificationError() || upload.IsCorruption())
      << upload;
}

TEST_F(NetTest, LobsOverTheWire) {
  Random rng(11);
  auto img = rng.Bytes(10000);
  int64_t handle = client_->StoreLob(img).value();
  auto clip = client_->FetchLob(handle, 5000, 100).value();
  EXPECT_EQ(clip, std::vector<uint8_t>(img.begin() + 5000,
                                       img.begin() + 5100));
  EXPECT_TRUE(client_->FetchLob(9999, 0, 1).status().IsNotFound());
}

TEST_F(NetTest, ConcurrentClientsAreSerializedSafely) {
  // PREDATOR is "a single multi-threaded process, with at least one thread
  // per connected client"; our server serializes engine access. Hammer it
  // from several threads and check nothing is lost or corrupted.
  ASSERT_TRUE(client_->Execute("CREATE TABLE log (worker INT, seq INT)").ok());
  constexpr int kWorkers = 4;
  constexpr int kOps = 25;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Result<std::unique_ptr<Client>> c =
          Client::Connect("127.0.0.1", server_->port());
      if (!c.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOps; ++i) {
        if (!(*c)->Execute(StringPrintf("INSERT INTO log VALUES (%d, %d)", w,
                                        i))
                 .ok()) {
          ++failures;
        }
        Result<QueryResult> r = (*c)->Execute(
            StringPrintf("SELECT COUNT(*) FROM log WHERE worker = %d", w));
        if (!r.ok() || r->rows[0].value(0).AsInt() != i + 1) ++failures;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  QueryResult total = client_->Execute("SELECT COUNT(*) FROM log").value();
  EXPECT_EQ(total.rows[0].value(0).AsInt(), kWorkers * kOps);
  // Every (worker, seq) pair is present exactly once.
  QueryResult pairs = client_->Execute(
      "SELECT worker, COUNT(*) FROM log GROUP BY worker").value();
  ASSERT_EQ(pairs.rows.size(), static_cast<size_t>(kWorkers));
  for (const Tuple& row : pairs.rows) {
    EXPECT_EQ(row.value(1).AsInt(), kOps);
  }
}

// ---------------------------------------------------------------------------
// Server lifecycle: Stop() vs idle and mid-query clients, ping liveness
// ---------------------------------------------------------------------------

/// Sleeps for args[0] milliseconds — a stand-in for any slow server-side
/// query, so lifecycle tests can hold the database mutex for a known time.
Status SleepMsUdf(const std::vector<Value>& args, UdfContext* ctx,
                  Value* out) {
  std::this_thread::sleep_for(std::chrono::milliseconds(args[0].AsInt()));
  *out = Value::Int(0);
  return Status::OK();
}

int64_t MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

class NetLifecycleTest : public NetTest {
 protected:
  void SetUp() override {
    NetTest::SetUp();
    static const bool registered = [] {
      NativeUdfRegistry::Global()
          ->Register({"sleep_ms_udf", TypeId::kInt, {TypeId::kInt},
                      &SleepMsUdf})
          .ok();
      return true;
    }();
    (void)registered;
    UdfInfo info;
    info.name = "sleep_ms";
    info.language = UdfLanguage::kNative;
    info.return_type = TypeId::kInt;
    info.arg_types = {TypeId::kInt};
    info.impl_name = "sleep_ms_udf";
    ASSERT_TRUE(db_->RegisterUdf(info).ok());
    ASSERT_TRUE(client_->Execute("CREATE TABLE t (a INT)").ok());
    ASSERT_TRUE(client_->Execute("INSERT INTO t VALUES (1)").ok());
  }
};

TEST_F(NetLifecycleTest, StopReturnsWithIdleAndMidQueryClients) {
  // The regression this guards: an idle client (the fixture's `client_`,
  // connected but sending nothing) used to leave its serving thread blocked
  // in ReadFrame forever, so Stop() hung on the join. Stop must wake it via
  // shutdown() and return even while a second client is mid-query.
  std::thread slow([&] {
    auto c = Client::Connect("127.0.0.1", server_->port());
    if (c.ok()) {
      // Outcome irrelevant — the connection is torn down under the query.
      (*c)->Execute("SELECT sleep_ms(400) FROM t").ok();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto start = std::chrono::steady_clock::now();
  server_->Stop();
  // Bounded by the in-flight query (~300 ms left) plus slack — crucially not
  // by the idle client, which would block forever.
  EXPECT_LT(MsSince(start), 5000);
  slow.join();
}

TEST_F(NetLifecycleTest, PingAnswersDuringSlowQuery) {
  // kPing is answered before taking the database mutex, so liveness probes
  // work even while another client's query holds the engine.
  std::thread slow([&] {
    auto c = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(c.ok());
    EXPECT_TRUE((*c)->Execute("SELECT sleep_ms(1500) FROM t").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client_->Ping().ok());
  // Well under the ~1300 ms the slow query still holds the db mutex.
  EXPECT_LT(MsSince(start), 800);
  slow.join();
}

TEST_F(NetTest, GenericUdfOverTheWire) {
  ASSERT_TRUE(client_->Execute("CREATE TABLE r (b BYTEARRAY)").ok());
  ASSERT_TRUE(
      client_->Execute("INSERT INTO r VALUES (randbytes(100, 4))").ok());
  QueryResult r =
      client_->Execute("SELECT generic_udf(b, 10, 1, 2) FROM r").value();
  EXPECT_EQ(r.rows[0].value(0).AsInt(),
            GenericUdfExpected(Random(4).Bytes(100), 10, 1, 2));
}

}  // namespace
}  // namespace net
}  // namespace jaguar
