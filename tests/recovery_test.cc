// Crash-recovery tests for the write-ahead log (src/wal).
//
// The heart of the file is the fork-based crash matrix: for every named
// crash point in CrashPoints::AllNames(), a child process runs a scripted
// workload (DDL + inserts + UDF registration + checkpoint) and dies at that
// exact instrumented instant via _exit — no destructors, no flushes. The
// parent reopens the database, which replays the log, and asserts the
// recovered state is a *committed* state: the pre-crash baseline plus a
// contiguous prefix of the crash-phase statements, with every surviving row
// byte-identical to a regenerated oracle — never a third state. One of the
// points (storage.mid_page_write) persists only the first half of an 8 KiB
// page write, which is the torn-page case.
//
// Around the matrix sit deterministic non-fork tests that build a crash
// image by copying the db + log files while dirty pages are still only in
// the buffer pool, then reopen the copy.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "index/btree.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/storage_engine.h"
#include "storage/table_heap.h"
#include "test_requirements.h"
#include "wal/crash_point.h"
#include "wal/log_manager.h"

namespace jaguar {
namespace {

/// Temp db path that also cleans up the WAL and its checkpoint temp file.
class TempDb {
 public:
  explicit TempDb(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("jaguar_rec_" + tag + "_" + std::to_string(::getpid()) + ".db"))
                .string();
    Remove();
  }
  ~TempDb() { Remove(); }
  const std::string& path() const { return path_; }
  std::string wal_path() const { return path_ + ".wal"; }

 private:
  void Remove() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".wal.tmp").c_str());
  }
  std::string path_;
};

// ---------------------------------------------------------------------------
// The crash matrix.
// ---------------------------------------------------------------------------

constexpr int kPhaseARows = 8;   // committed + checkpointed baseline
constexpr int kPhaseBRows = 5;   // crash territory, one statement each

/// Deterministic row payload; every third row is large enough to overflow
/// the slotted page so the workload also exercises overflow-chain logging.
std::string RowValue(int k) {
  Random rng(1000 + static_cast<uint64_t>(k));
  return rng.AlphaString(k % 3 == 0 ? 9000 : 40);
}

UdfInfo CrashUdfInfo() {
  UdfInfo info;
  info.name = "g";
  info.language = UdfLanguage::kNative;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt};
  info.impl_name = "generic_udf";
  return info;
}

bool InsertRow(Database* db, int k) {
  return db
      ->Execute("INSERT INTO t VALUES (" + std::to_string(k) + ", '" +
                RowValue(k) + "')")
      .ok();
}

/// Child side of the matrix. Exits with CrashPoints::kExitCode when the
/// armed point fires; any other exit code means the workload went wrong.
[[noreturn]] void RunCrashWorkload(const std::string& path,
                                   const std::string& point) {
  auto opened = Database::Open(path);
  if (!opened.ok()) ::_exit(3);
  std::unique_ptr<Database> db = std::move(opened).value();

  // Phase A: the committed, checkpointed baseline the crash must never lose.
  if (!db->Execute("CREATE TABLE t (k INT, v STRING)").ok()) ::_exit(4);
  for (int k = 0; k < kPhaseARows; ++k) {
    if (!InsertRow(db.get(), k)) ::_exit(5);
  }
  if (!db->Flush().ok()) ::_exit(6);

  // Phase B: every statement below may be cut short by the armed point.
  wal::CrashPoints::Arm(point);
  for (int k = kPhaseARows; k < kPhaseARows + kPhaseBRows; ++k) {
    if (!InsertRow(db.get(), k)) ::_exit(7);
  }
  // Catalog rewrite; its Persist() drops the old catalog heap, driving
  // FreePage (where storage.after_page_write_before_header lives).
  if (!db->RegisterUdf(CrashUdfInfo()).ok()) ::_exit(8);
  // Create/fill/drop a scratch table: more allocation + free traffic.
  if (!db->Execute("CREATE TABLE tmp (x INT)").ok()) ::_exit(9);
  if (!db->Execute("INSERT INTO tmp VALUES (7)").ok()) ::_exit(10);
  if (!db->Execute("DROP TABLE tmp").ok()) ::_exit(11);
  // Checkpoint: FlushAll is the first WritePage traffic of phase B (the
  // pool is large enough that nothing evicts earlier), so the storage.*
  // points and wal.mid_checkpoint all fire here at the latest.
  if (!db->Flush().ok()) ::_exit(12);
  ::_exit(1);  // the armed point never fired
}

struct RecoveredState {
  int rows = 0;            // contiguous row count, verified 0..rows-1
  bool udf_registered = false;
  bool tmp_exists = false;
};

/// Reopens the crashed database and checks the committed-state envelope:
/// rows are exactly {0..n-1} for some n in [kPhaseARows, A+B], each value
/// byte-identical to the oracle; catalog objects are all-or-nothing; the
/// free list is walkable. Returns what it found for per-point assertions.
RecoveredState VerifyRecovered(Database* db) {
  RecoveredState state;
  auto r = db->Execute("SELECT k, v FROM t");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return state;

  std::vector<std::pair<int64_t, std::string>> rows;
  for (const Tuple& t : r->rows) {
    rows.emplace_back(t.value(0).AsInt(), t.value(1).AsString());
  }
  std::sort(rows.begin(), rows.end());
  state.rows = static_cast<int>(rows.size());
  EXPECT_GE(state.rows, kPhaseARows);
  EXPECT_LE(state.rows, kPhaseARows + kPhaseBRows);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, static_cast<int64_t>(i));
    // Byte-identical to the committed-state oracle.
    EXPECT_EQ(rows[i].second, RowValue(static_cast<int>(i)))
        << "row " << i << " content diverged";
  }

  // The UDF is registered in full or not at all.
  auto udf = db->catalog()->GetUdf("g");
  state.udf_registered = udf.ok();
  if (udf.ok()) {
    EXPECT_EQ((*udf)->impl_name, "generic_udf");
    EXPECT_EQ((*udf)->arg_types.size(), 4u);
  }

  // The scratch table exists (possibly empty) or doesn't; a recovered
  // database must never have a table the catalog can't scan.
  auto tmp = db->Execute("SELECT x FROM tmp");
  state.tmp_exists = tmp.ok();
  if (tmp.ok()) {
    EXPECT_LE(tmp->rows.size(), 1u);
  }

  // Free-list integrity: the chain terminates and every link is readable.
  EXPECT_TRUE(db->storage()->CountFreePages().ok());
  return state;
}

class CrashMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashMatrixTest, RecoversToACommittedState) {
  JAGUAR_REQUIRE_FORK();
  const std::string point = GetParam();
  TempDb db("matrix_" + point);

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) RunCrashWorkload(db.path(), point);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus))
      << "child killed by signal " << WTERMSIG(wstatus);
  ASSERT_EQ(WEXITSTATUS(wstatus), wal::CrashPoints::kExitCode)
      << "crash point '" << point << "' did not fire (child exit "
      << WEXITSTATUS(wstatus) << ")";

  auto opened = Database::Open(db.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> recovered = std::move(opened).value();
  RecoveredState state = VerifyRecovered(recovered.get());
  const wal::RecoveryStats& stats = recovered->storage()->recovery_stats();

  // Each point crashes at a known instant, so beyond the envelope the
  // recovered state is exactly predictable.
  if (point == "wal.after_log_append") {
    // First phase-B append was buffered, never durable: baseline only.
    EXPECT_EQ(state.rows, kPhaseARows);
    EXPECT_FALSE(state.udf_registered);
  } else if (point == "storage.before_page_write" ||
             point == "storage.mid_page_write") {
    // Crash during the final checkpoint's FlushAll: every phase-B statement
    // had committed its log records, so redo reconstructs all of phase B —
    // including healing the torn half-page the mid_page_write point left.
    EXPECT_EQ(state.rows, kPhaseARows + kPhaseBRows);
    EXPECT_TRUE(state.udf_registered);
    EXPECT_GE(stats.pages_replayed, 1u);
  } else if (point == "storage.after_page_write_before_header") {
    // Fires inside FreePage during RegisterUdf's catalog rewrite: the five
    // inserts had committed, the registration had not.
    EXPECT_EQ(state.rows, kPhaseARows + kPhaseBRows);
    EXPECT_FALSE(state.udf_registered);
  } else if (point == "wal.mid_checkpoint") {
    // All pages flushed, log not yet truncated: replay finds every page
    // already current and skips it.
    EXPECT_EQ(state.rows, kPhaseARows + kPhaseBRows);
    EXPECT_TRUE(state.udf_registered);
    EXPECT_GE(stats.pages_skipped, 1u);
    EXPECT_EQ(stats.pages_replayed, 0u);
  } else {
    ADD_FAILURE() << "crash point '" << point
                  << "' has no expected-state entry; add one";
  }
  EXPECT_FALSE(state.tmp_exists)
      << "tmp table survived although no committed state contains it";
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, CrashMatrixTest,
    ::testing::ValuesIn(wal::CrashPoints::AllNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Eviction / background-writer crash matrix: the same storage.* crash points,
// but fired from the buffer pool's *off-latch* write-back paths instead of a
// checkpoint's FlushAll. A four-page pool forces dirty evictions on nearly
// every phase-B insert, and the background writer races them, so the process
// dies inside WritePage called from an eviction or a background flush — after
// the WAL-rule fsync, before (or halfway through) the page image landing.
// Recovery must still produce a committed state: the fsync-before-write
// ordering is what makes that true off-latch.
// ---------------------------------------------------------------------------

[[noreturn]] void RunEvictionCrashWorkload(const std::string& path,
                                           const std::string& point) {
  DatabaseOptions options;
  options.buffer_pool_pages = 4;  // evictions on nearly every statement
  options.bg_writer = true;
  auto opened = Database::Open(path, options);
  if (!opened.ok()) ::_exit(3);
  std::unique_ptr<Database> db = std::move(opened).value();

  if (!db->Execute("CREATE TABLE t (k INT, v STRING)").ok()) ::_exit(4);
  for (int k = 0; k < kPhaseARows; ++k) {
    if (!InsertRow(db.get(), k)) ::_exit(5);
  }
  if (!db->Flush().ok()) ::_exit(6);

  // Phase B: the overflow-sized rows (RowValue makes every third ~9 KB)
  // churn far more pages than the pool holds, so the armed point fires from
  // a mid-statement eviction or a background write-back, never a Flush.
  wal::CrashPoints::Arm(point);
  for (int k = kPhaseARows; k < kPhaseARows + kPhaseBRows; ++k) {
    if (!InsertRow(db.get(), k)) ::_exit(7);
  }
  ::_exit(1);  // the armed point never fired
}

class EvictionCrashMatrixTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(EvictionCrashMatrixTest, WalRuleHoldsForOffLatchWriteBack) {
  JAGUAR_REQUIRE_FORK();
  const std::string point = GetParam();
  TempDb db("evict_" + point);

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) RunEvictionCrashWorkload(db.path(), point);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus))
      << "child killed by signal " << WTERMSIG(wstatus);
  ASSERT_EQ(WEXITSTATUS(wstatus), wal::CrashPoints::kExitCode)
      << "crash point '" << point << "' did not fire (child exit "
      << WEXITSTATUS(wstatus) << ")";

  auto opened = Database::Open(db.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> recovered = std::move(opened).value();
  RecoveredState state = VerifyRecovered(recovered.get());
  // The committed-state envelope (contiguous prefix, byte-identical rows)
  // was asserted inside VerifyRecovered. The crash happened after the
  // WAL-rule fsync but before the page image was (fully) durable, so redo
  // must have repaired at least that page.
  EXPECT_GE(state.rows, kPhaseARows);
  EXPECT_GE(recovered->storage()->recovery_stats().pages_replayed, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    OffLatchWriteBackPoints, EvictionCrashMatrixTest,
    ::testing::Values("storage.before_page_write", "storage.mid_page_write"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// The index crash matrix: crash inside B+-tree structure modifications.
//
// The WAL is redo-only, so a crash mid-split can leave the durable image
// with a statement's index pages half-written relative to its heap pages.
// Database::Open detects the crash and rebuilds every index from its heap;
// these tests pin that contract: after recovery, the index answers every
// key query byte-identically to a full-scan recheck and passes the tree's
// own structural invariants.
// ---------------------------------------------------------------------------

constexpr int kIdxPhaseARows = 45;  // enough ~210-byte keys to split the root
constexpr int kIdxPhaseBRows = 40;  // sequential keys refill the right leaf

/// Wide, ordered string key: sequential inserts pile into the rightmost
/// leaf (~38 entries fit), so phase B is guaranteed to split at least once.
std::string WideVal(int k) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08d", k);
  return std::string(buf) + std::string(180, 'v');
}

[[noreturn]] void RunIndexCrashWorkload(const std::string& path,
                                        const std::string& point) {
  auto opened = Database::Open(path);
  if (!opened.ok()) ::_exit(3);
  std::unique_ptr<Database> db = std::move(opened).value();

  // Phase A: indexed baseline, checkpointed.
  if (!db->Execute("CREATE TABLE t2 (k INT, v STRING)").ok()) ::_exit(4);
  if (!db->Execute("CREATE INDEX idx_v ON t2 (v)").ok()) ::_exit(5);
  for (int k = 0; k < kIdxPhaseARows; ++k) {
    auto r = db->Execute("INSERT INTO t2 VALUES (" + std::to_string(k) +
                         ", '" + WideVal(k) + "')");
    if (!r.ok()) ::_exit(6);
  }
  if (!db->Flush().ok()) ::_exit(7);

  // Phase B: inserts (leaf writes + splits), then an UPDATE and a DELETE
  // (index delete paths). The armed point fires somewhere in here.
  wal::CrashPoints::Arm(point);
  for (int k = kIdxPhaseARows; k < kIdxPhaseARows + kIdxPhaseBRows; ++k) {
    auto r = db->Execute("INSERT INTO t2 VALUES (" + std::to_string(k) +
                         ", '" + WideVal(k) + "')");
    if (!r.ok()) ::_exit(8);
  }
  if (!db->Execute("UPDATE t2 SET v = '" + WideVal(1000) +
                   "' WHERE k = 10").ok()) {
    ::_exit(9);
  }
  if (!db->Execute("DELETE FROM t2 WHERE k = 11").ok()) ::_exit(10);
  ::_exit(1);  // the armed point never fired
}

class IndexCrashMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IndexCrashMatrixTest, IndexMatchesHeapAfterRecovery) {
  JAGUAR_REQUIRE_FORK();
  const std::string point = GetParam();
  TempDb db("idxmatrix_" + point);

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) RunIndexCrashWorkload(db.path(), point);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus))
      << "child killed by signal " << WTERMSIG(wstatus);
  ASSERT_EQ(WEXITSTATUS(wstatus), wal::CrashPoints::kExitCode)
      << "crash point '" << point << "' did not fire (child exit "
      << WEXITSTATUS(wstatus) << ")";

  auto opened = Database::Open(db.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> recovered = std::move(opened).value();

  // Oracle: the heap via a full scan (no WHERE, so no index involvement).
  auto all = recovered->Execute("SELECT k, v FROM t2");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  std::vector<std::pair<std::string, int64_t>> heap_rows;
  for (const Tuple& t : all->rows) {
    heap_rows.emplace_back(t.value(1).AsString(), t.value(0).AsInt());
  }
  // Committed-state envelope: baseline survived, nothing invented.
  EXPECT_GE(heap_rows.size(), static_cast<size_t>(kIdxPhaseARows));
  EXPECT_LE(heap_rows.size(),
            static_cast<size_t>(kIdxPhaseARows + kIdxPhaseBRows));

  // Every key the heap holds must come back through the index, and a key
  // the heap lost must not.
  for (const auto& [v, k] : heap_rows) {
    auto r = recovered->Execute("SELECT k FROM t2 WHERE v = '" + v + "'");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u) << "key for row " << k;
    EXPECT_EQ(r->rows[0].value(0).AsInt(), k);
    EXPECT_EQ(r->metrics_delta.count("exec.index.scans"), 1u)
        << "query did not run through the index";
  }
  auto miss = recovered->Execute("SELECT k FROM t2 WHERE v = '" +
                                 WideVal(kIdxPhaseARows + kIdxPhaseBRows) +
                                 "'");
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->rows.empty());

  // Structural invariants and exact cardinality, straight from the tree.
  auto idx = recovered->catalog()->GetIndex("idx_v");
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  BTree tree(recovered->storage(), (*idx)->root);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.CountEntries().value(), heap_rows.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexCrashPoints, IndexCrashMatrixTest,
    ::testing::ValuesIn(BTree::CrashPointNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Deterministic, non-fork recovery tests (crash image built by file copy).
// ---------------------------------------------------------------------------

std::vector<uint8_t> RecordBytes(int i) {
  Random rng(5000 + static_cast<uint64_t>(i));
  return rng.Bytes(100);
}

void CopyCrashImage(const TempDb& src, const TempDb& dst) {
  std::filesystem::copy_file(src.path(), dst.path(),
                             std::filesystem::copy_options::overwrite_existing);
  std::filesystem::copy_file(src.wal_path(), dst.wal_path(),
                             std::filesystem::copy_options::overwrite_existing);
}

TEST(RecoveryTest, RedoReplaysCommittedButUnflushedWrites) {
  TempDb src("redo_src");
  TempDb dst("redo_dst");
  PageId root = kInvalidPageId;
  {
    auto engine = StorageEngine::Open(src.path()).value();
    root = TableHeap::Create(engine.get()).value();
    TableHeap heap(engine.get(), root);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(heap.Insert(Slice(RecordBytes(i))).ok());
    }
    // Log durable; the pages themselves are dirty only in the buffer pool,
    // so the copied db file is the pre-insert on-disk image.
    ASSERT_TRUE(engine->WalCommit().ok());
    CopyCrashImage(src, dst);
    ASSERT_TRUE(engine->Close().ok());
  }

  auto engine = StorageEngine::Open(dst.path()).value();
  EXPECT_GE(engine->recovery_stats().pages_replayed, 1u);
  TableHeap heap(engine.get(), root);
  ASSERT_EQ(heap.CountRecords().value(), 40u);
  auto it = heap.Scan();
  for (int i = 0; i < 40; ++i) {
    auto rec = it.Next().value();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->second, RecordBytes(i)) << "record " << i;
  }
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, TornPageHealedByRedo) {
  TempDb src("torn_src");
  TempDb dst("torn_dst");
  PageId root = kInvalidPageId;
  std::vector<uint8_t> old_image(kPageSize);
  {
    auto engine = StorageEngine::Open(src.path()).value();
    root = TableHeap::Create(engine.get()).value();
    TableHeap heap(engine.get(), root);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(heap.Insert(Slice(RecordBytes(i))).ok());
    }
    ASSERT_TRUE(engine->Checkpoint().ok());
    // The on-disk root page is now the checkpointed image; remember it.
    {
      std::ifstream in(src.path(), std::ios::binary);
      in.seekg(static_cast<std::streamoff>(root) * kPageSize);
      in.read(reinterpret_cast<char*>(old_image.data()), kPageSize);
      ASSERT_TRUE(in.good());
    }
    for (int i = 5; i < 10; ++i) {
      ASSERT_TRUE(heap.Insert(Slice(RecordBytes(i))).ok());
    }
    ASSERT_TRUE(engine->WalCommit().ok());
    ASSERT_TRUE(engine->buffer_pool()->FlushAll().ok());
    CopyCrashImage(src, dst);
    ASSERT_TRUE(engine->Close().ok());
  }

  // Tear the flushed root page in the copy: keep the new first half, revert
  // the second half (which holds the cell area and the LSN footer) to the
  // checkpoint image — exactly what a power cut mid-pwrite leaves behind.
  {
    std::fstream f(dst.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(root) * kPageSize + kPageSize / 2);
    f.write(reinterpret_cast<const char*>(old_image.data() + kPageSize / 2),
            kPageSize / 2);
    ASSERT_TRUE(f.good());
  }

  auto engine = StorageEngine::Open(dst.path()).value();
  EXPECT_GE(engine->recovery_stats().pages_replayed, 1u);
  TableHeap heap(engine.get(), root);
  ASSERT_EQ(heap.CountRecords().value(), 10u);
  auto it = heap.Scan();
  for (int i = 0; i < 10; ++i) {
    auto rec = it.Next().value();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->second, RecordBytes(i)) << "record " << i;
  }
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, CheckpointTruncatesTheLog) {
  TempDb db("ckpt");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), root);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(heap.Insert(Slice(RecordBytes(i))).ok());
  }
  ASSERT_TRUE(engine->WalCommit().ok());
  const uint64_t before = engine->wal()->LogBytes();
  ASSERT_TRUE(engine->Checkpoint().ok());
  const uint64_t after = engine->wal()->LogBytes();
  EXPECT_LT(after, before);
  // Header plus a single checkpoint marker frame.
  EXPECT_LE(after, 128u);
  // LogBytes counts record bytes only; the file adds the fixed header.
  EXPECT_EQ(std::filesystem::file_size(db.wal_path()),
            after + wal::LogManager::kHeaderSize);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, GroupCommitSkipsRedundantFsyncs) {
  TempDb db("group");
  auto engine = StorageEngine::Open(db.path()).value();
  PageId root = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), root);
  ASSERT_TRUE(heap.Insert(Slice(RecordBytes(0))).ok());
  ASSERT_TRUE(engine->WalCommit().ok());

  auto before = obs::MetricsRegistry::Global()->Snapshot("wal.");
  ASSERT_TRUE(engine->WalCommit().ok());  // nothing new: group commit
  auto delta = obs::SnapshotDelta(before,
                                  obs::MetricsRegistry::Global()->Snapshot("wal."));
  EXPECT_GE(delta["wal.group_commits"], 1u);
  EXPECT_EQ(delta.count("wal.fsyncs"), 0u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, WalRuleMakesLogDurableBeforeEviction) {
  TempDb db("walrule");
  // Tiny pool so inserts force dirty-page eviction long before any commit.
  auto engine = StorageEngine::Open(db.path(), /*pool_pages=*/4).value();
  PageId root = TableHeap::Create(engine.get()).value();
  TableHeap heap(engine.get(), root);
  auto before = obs::MetricsRegistry::Global()->Snapshot("wal.");
  Random rng(99);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint8_t> rec = rng.Bytes(3000);
    ASSERT_TRUE(heap.Insert(Slice(rec)).ok());
  }
  auto delta = obs::SnapshotDelta(before,
                                  obs::MetricsRegistry::Global()->Snapshot("wal."));
  // No WalCommit was issued, so any fsync here is the WAL rule firing on
  // write-back of a page whose tail of the log wasn't durable yet.
  EXPECT_GE(delta["wal.fsyncs"], 1u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, StaleWalBesideAFreshDbIsDiscarded) {
  TempDb src("stale_src");
  TempDb dst("stale_dst");
  {
    auto engine = StorageEngine::Open(src.path()).value();
    PageId root = TableHeap::Create(engine.get()).value();
    TableHeap heap(engine.get(), root);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(heap.Insert(Slice(RecordBytes(i))).ok());
    }
    ASSERT_TRUE(engine->WalCommit().ok());
    // Copy only the log: dst has a populated WAL but no database file, as if
    // someone deleted the .db and left the .wal behind.
    std::filesystem::copy_file(src.wal_path(), dst.wal_path());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = StorageEngine::Open(dst.path()).value();
  // The stale records must not be replayed into the fresh file.
  EXPECT_EQ(engine->recovery_stats().pages_replayed, 0u);
  EXPECT_EQ(engine->GetCatalogRoot().value(), kInvalidPageId);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, WalDisabledRunsWithoutALogFile) {
  TempDb db("nowal");
  wal::WalOptions options;
  options.enabled = false;
  PageId root = kInvalidPageId;
  {
    auto engine = StorageEngine::Open(db.path(), 256, options).value();
    EXPECT_EQ(engine->wal(), nullptr);
    root = TableHeap::Create(engine.get()).value();
    TableHeap heap(engine.get(), root);
    ASSERT_TRUE(heap.Insert(Slice(RecordBytes(0))).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(db.wal_path()));
  // Cleanly closed: everything is on disk even without a log.
  auto engine = StorageEngine::Open(db.path(), 256, options).value();
  TableHeap heap(engine.get(), root);
  EXPECT_EQ(heap.CountRecords().value(), 1u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(RecoveryTest, CountersVisibleThroughShowMetrics) {
  TempDb db("metrics");
  auto opened = Database::Open(db.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto database = std::move(opened).value();
  ASSERT_TRUE(database->Execute("CREATE TABLE m (x INT)").ok());
  ASSERT_TRUE(database->Execute("INSERT INTO m VALUES (1)").ok());
  auto r = database->Execute("SHOW METRICS LIKE 'wal.'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool saw_appends = false;
  bool saw_fsyncs = false;
  for (const Tuple& t : r->rows) {
    if (t.value(0).AsString() == "wal.appends") saw_appends = true;
    if (t.value(0).AsString() == "wal.fsyncs") saw_fsyncs = true;
  }
  EXPECT_TRUE(saw_appends);
  EXPECT_TRUE(saw_fsyncs);
}

// ---------------------------------------------------------------------------
// Crash-point registry.
// ---------------------------------------------------------------------------

TEST(CrashPointsTest, RegistryListsTheCanonicalPoints) {
  const auto& names = wal::CrashPoints::AllNames();
  EXPECT_EQ(names.size(), 5u);
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate crash point name";
}

TEST(CrashPointsTest, ArmDisarmToggleIsExact) {
  wal::CrashPoints::Disarm();
  EXPECT_FALSE(wal::CrashPoints::IsArmed("wal.after_log_append"));
  wal::CrashPoints::Arm("wal.after_log_append");
  EXPECT_TRUE(wal::CrashPoints::IsArmed("wal.after_log_append"));
  EXPECT_FALSE(wal::CrashPoints::IsArmed("wal.mid_checkpoint"));
  // Last arm wins.
  wal::CrashPoints::Arm("wal.mid_checkpoint");
  EXPECT_FALSE(wal::CrashPoints::IsArmed("wal.after_log_append"));
  EXPECT_TRUE(wal::CrashPoints::IsArmed("wal.mid_checkpoint"));
  wal::CrashPoints::Disarm();
  EXPECT_FALSE(wal::CrashPoints::IsArmed("wal.mid_checkpoint"));
}

}  // namespace
}  // namespace jaguar
