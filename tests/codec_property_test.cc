// Property-based round-trip tests for every codec that crosses a trust
// boundary: WAL record frames (disk), the ADT stream value/tuple encodings
// and BatchCodec framing (disk + IPC), and the net/protocol payloads and
// socket frames (wire).
//
// Three properties, each checked over thousands of seeded-random inputs:
//   1. encode -> decode -> re-encode is byte-identical (no lossy fields,
//      no nondeterministic encoding);
//   2. every strict prefix of an encoding fails to decode with a clean
//      Status (truncation can't be mistaken for a shorter valid input);
//   3. corrupted and random garbage inputs return a Status or a decoded
//      value — they never crash, hang, or trip a sanitizer.
// Fixed seeds keep failures reproducible: a seed in an assertion message
// is enough to replay the exact failing input.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "net/protocol.h"
#include "storage/page.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"
#include "wal/wal_record.h"

namespace jaguar {
namespace {

constexpr int kRounds = 10000;

// ---------------------------------------------------------------------------
// WAL record frames.
// ---------------------------------------------------------------------------

wal::WalRecord RandomWalRecord(Random* rng) {
  wal::WalRecord rec;
  rec.type = static_cast<wal::WalRecordType>(1 + rng->Uniform(5));
  rec.lsn = rng->Next();
  rec.page_id = static_cast<uint32_t>(rng->Next());
  rec.aux = static_cast<uint32_t>(rng->Next());
  if (rec.type == wal::WalRecordType::kPageWrite) {
    rec.offset = static_cast<uint32_t>(rng->Uniform(kPageSize + 1));
    rec.data = rng->Bytes(rng->Uniform(kPageSize - rec.offset + 1));
  } else {
    rec.offset = static_cast<uint32_t>(rng->Next());
    rec.data = rng->Bytes(rng->Uniform(64));
  }
  return rec;
}

TEST(WalRecordCodecTest, RoundTripIsByteIdentical) {
  Random rng(0xA11CE);
  for (int i = 0; i < kRounds; ++i) {
    wal::WalRecord rec = RandomWalRecord(&rng);
    std::vector<uint8_t> frame;
    size_t n = wal::AppendWalFrame(rec, &frame);
    ASSERT_EQ(n, frame.size());

    auto decoded = wal::ReadWalFrame(Slice(frame));
    ASSERT_TRUE(decoded.ok()) << "round " << i << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->second, frame.size());
    EXPECT_TRUE(decoded->first == rec) << "round " << i;

    std::vector<uint8_t> again;
    wal::AppendWalFrame(decoded->first, &again);
    EXPECT_EQ(again, frame) << "round " << i << ": re-encode diverged";
  }
}

TEST(WalRecordCodecTest, EveryTruncationFailsCleanly) {
  Random rng(0xBEEF);
  for (int i = 0; i < 2000; ++i) {
    wal::WalRecord rec = RandomWalRecord(&rng);
    std::vector<uint8_t> frame;
    wal::AppendWalFrame(rec, &frame);
    size_t cut = rng.Uniform(frame.size());
    auto decoded = wal::ReadWalFrame(Slice(frame.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "round " << i << ": accepted a frame cut "
                               << "to " << cut << "/" << frame.size();
  }
}

TEST(WalRecordCodecTest, SingleBitFlipsAreRejected) {
  Random rng(0xC0FFEE);
  for (int i = 0; i < 2000; ++i) {
    wal::WalRecord rec = RandomWalRecord(&rng);
    std::vector<uint8_t> frame;
    wal::AppendWalFrame(rec, &frame);
    size_t pos = rng.Uniform(frame.size());
    frame[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    // Either the length becomes implausible or the CRC catches it.
    auto decoded = wal::ReadWalFrame(Slice(frame));
    EXPECT_FALSE(decoded.ok())
        << "round " << i << ": flip at byte " << pos << " went unnoticed";
  }
}

TEST(WalRecordCodecTest, RandomGarbageNeverCrashes) {
  Random rng(0xD00D);
  for (int i = 0; i < kRounds; ++i) {
    std::vector<uint8_t> junk = rng.Bytes(rng.Uniform(256));
    wal::ReadWalFrame(Slice(junk)).ok();       // status either way, no crash
    wal::DecodeWalRecord(Slice(junk)).ok();
  }
}

// ---------------------------------------------------------------------------
// ADT stream values, tuples, and batch framing.
// ---------------------------------------------------------------------------

Value RandomValue(Random* rng) {
  switch (rng->Uniform(6)) {
    case 0: return Value::Null();
    case 1: return Value::Bool(rng->Uniform(2) == 1);
    case 2: return Value::Int(static_cast<int64_t>(rng->Next()));
    case 3: return Value::Double(rng->NextDouble() * 1e9);
    case 4: return Value::String(rng->AlphaString(rng->Uniform(48)));
    default: return Value::Bytes(rng->Bytes(rng->Uniform(48)));
  }
}

TEST(ValueCodecTest, RoundTripIsByteIdentical) {
  Random rng(0x5EED);
  for (int i = 0; i < kRounds; ++i) {
    Value v = RandomValue(&rng);
    BufferWriter w;
    v.WriteTo(&w);

    BufferReader r(w.AsSlice());
    auto decoded = Value::ReadFrom(&r);
    ASSERT_TRUE(decoded.ok()) << "round " << i;
    ASSERT_TRUE(r.AtEnd());

    BufferWriter again;
    decoded->WriteTo(&again);
    EXPECT_EQ(again.buffer(), w.buffer()) << "round " << i;
  }
}

TEST(TupleCodecTest, RoundTripIsByteIdentical) {
  Random rng(0x7EA);
  for (int i = 0; i < 2000; ++i) {
    std::vector<Value> values;
    size_t n = rng.Uniform(8);
    for (size_t j = 0; j < n; ++j) values.push_back(RandomValue(&rng));
    Tuple t(std::move(values));

    std::vector<uint8_t> bytes = t.Serialize();
    auto decoded = Tuple::Deserialize(Slice(bytes));
    ASSERT_TRUE(decoded.ok()) << "round " << i;
    EXPECT_EQ(decoded->Serialize(), bytes) << "round " << i;

    if (!bytes.empty()) {
      size_t cut = rng.Uniform(bytes.size());
      EXPECT_FALSE(Tuple::Deserialize(Slice(bytes.data(), cut)).ok())
          << "round " << i << ": accepted a tuple cut to " << cut;
    }
  }
}

TEST(BatchCodecTest, CountsRoundTripAndImplausibleCountsAreRejected) {
  Random rng(0xFACE);
  for (int i = 0; i < kRounds; ++i) {
    uint32_t count = static_cast<uint32_t>(
        rng.Uniform(BatchCodec::kMaxCount + 1));
    BufferWriter w;
    BatchCodec::WriteCount(&w, count);
    BufferReader r(w.AsSlice());
    auto decoded = BatchCodec::ReadCount(&r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, count);
  }
  // Beyond the framing limit: corruption, not a loop bound.
  BufferWriter w;
  w.PutU32(BatchCodec::kMaxCount + 1);
  BufferReader r(w.AsSlice());
  EXPECT_FALSE(BatchCodec::ReadCount(&r).ok());
  // Truncated.
  BufferReader empty{Slice()};
  EXPECT_FALSE(BatchCodec::ReadCount(&empty).ok());
}

// ---------------------------------------------------------------------------
// net/protocol payloads.
// ---------------------------------------------------------------------------

UdfInfo RandomUdfInfo(Random* rng) {
  UdfInfo info;
  info.name = rng->AlphaString(1 + rng->Uniform(16));
  info.language = static_cast<UdfLanguage>(rng->Uniform(6));
  info.return_type = static_cast<TypeId>(rng->Uniform(6));
  size_t nargs = rng->Uniform(8);
  for (size_t i = 0; i < nargs; ++i) {
    info.arg_types.push_back(static_cast<TypeId>(rng->Uniform(6)));
  }
  info.impl_name = rng->AlphaString(rng->Uniform(24));
  info.payload = rng->Bytes(rng->Uniform(200));
  return info;
}

TEST(ProtocolCodecTest, UdfInfoRoundTripIsByteIdentical) {
  Random rng(0xAB1E);
  for (int i = 0; i < kRounds; ++i) {
    UdfInfo info = RandomUdfInfo(&rng);
    BufferWriter w;
    net::EncodeUdfInfo(info, &w);

    BufferReader r(w.AsSlice());
    auto decoded = net::DecodeUdfInfo(&r);
    ASSERT_TRUE(decoded.ok()) << "round " << i;
    ASSERT_TRUE(r.AtEnd());

    BufferWriter again;
    net::EncodeUdfInfo(*decoded, &again);
    EXPECT_EQ(again.buffer(), w.buffer()) << "round " << i;

    size_t cut = rng.Uniform(w.buffer().size());
    BufferReader short_r(Slice(w.buffer().data(), cut));
    EXPECT_FALSE(net::DecodeUdfInfo(&short_r).ok())
        << "round " << i << ": accepted a UdfInfo cut to " << cut;
  }
}

TEST(ProtocolCodecTest, QueryResultRoundTripIsByteIdentical) {
  Random rng(0xCAFE);
  for (int i = 0; i < 2000; ++i) {
    QueryResult result;
    std::vector<Column> cols;
    size_t ncols = rng.Uniform(5);
    for (size_t c = 0; c < ncols; ++c) {
      cols.push_back(Column{rng.AlphaString(1 + rng.Uniform(8)),
                            static_cast<TypeId>(1 + rng.Uniform(5))});
    }
    result.schema = Schema(std::move(cols));
    result.rows_affected = rng.Next();
    result.message = rng.AlphaString(rng.Uniform(32));
    size_t nrows = rng.Uniform(6);
    for (size_t j = 0; j < nrows; ++j) {
      std::vector<Value> values;
      size_t nvals = rng.Uniform(4);
      for (size_t v = 0; v < nvals; ++v) values.push_back(RandomValue(&rng));
      result.rows.emplace_back(std::move(values));
    }
    size_t nmetrics = rng.Uniform(4);
    for (size_t m = 0; m < nmetrics; ++m) {
      result.metrics_delta[rng.AlphaString(1 + rng.Uniform(12))] = rng.Next();
    }

    BufferWriter w;
    net::EncodeQueryResult(result, &w);
    BufferReader r(w.AsSlice());
    auto decoded = net::DecodeQueryResult(&r);
    ASSERT_TRUE(decoded.ok()) << "round " << i;
    ASSERT_TRUE(r.AtEnd());

    BufferWriter again;
    net::EncodeQueryResult(*decoded, &again);
    EXPECT_EQ(again.buffer(), w.buffer()) << "round " << i;

    if (!w.buffer().empty()) {
      size_t cut = rng.Uniform(w.buffer().size());
      BufferReader short_r(Slice(w.buffer().data(), cut));
      EXPECT_FALSE(net::DecodeQueryResult(&short_r).ok())
          << "round " << i << ": accepted a QueryResult cut to " << cut;
    }
  }
}

TEST(ProtocolCodecTest, StatusPayloadRoundTrips) {
  Random rng(0xFEED);
  for (int i = 0; i < 2000; ++i) {
    // Codes 1..12: a kOk Status carries no message, so only error payloads
    // make the round trip interesting.
    Status original(static_cast<StatusCode>(1 + rng.Uniform(12)),
                    rng.AlphaString(rng.Uniform(64)));
    BufferWriter w;
    net::EncodeStatusPayload(original, &w);
    BufferReader r(w.AsSlice());
    Status decoded = net::DecodeStatusPayload(&r);
    EXPECT_EQ(decoded.code(), original.code()) << "round " << i;
    EXPECT_EQ(decoded.message(), original.message()) << "round " << i;
  }
  BufferReader empty{Slice()};
  EXPECT_TRUE(net::DecodeStatusPayload(&empty).IsCorruption());
}

TEST(ProtocolCodecTest, CorruptedPayloadsNeverCrash) {
  Random rng(0xBAD);
  for (int i = 0; i < kRounds; ++i) {
    std::vector<uint8_t> junk = rng.Bytes(rng.Uniform(256));
    BufferReader r1{Slice(junk)};
    net::DecodeUdfInfo(&r1).ok();       // any Status is fine; crashing isn't
    BufferReader r2{Slice(junk)};
    net::DecodeQueryResult(&r2).ok();
    BufferReader r3{Slice(junk)};
    net::DecodeStatusPayload(&r3).ok();
    Tuple::Deserialize(Slice(junk)).ok();
  }
}

TEST(ProtocolCodecTest, SocketFramesRoundTrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Random rng(0xF00D);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> payload = rng.Bytes(rng.Uniform(4096));
    auto type = static_cast<net::FrameType>(1 + rng.Uniform(6));
    ASSERT_TRUE(net::WriteFrame(fds[0], type, Slice(payload)).ok());
    auto frame = net::ReadFrame(fds[1]);
    ASSERT_TRUE(frame.ok()) << "round " << i;
    EXPECT_EQ(frame->first, type);
    EXPECT_EQ(frame->second, payload);
  }
  // A frame cut off by a closed peer is an IoError, not a crash or a hang.
  std::vector<uint8_t> partial = {0x10, 0x00, 0x00, 0x00};  // length only
  ASSERT_EQ(::write(fds[0], partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  ::close(fds[0]);
  EXPECT_FALSE(net::ReadFrame(fds[1]).ok());
  ::close(fds[1]);
}

}  // namespace
}  // namespace jaguar
