# Empty compiler generated dependencies file for udf_migration.
# This may be replaced when dependencies are built.
