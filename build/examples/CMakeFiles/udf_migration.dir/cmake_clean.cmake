file(REMOVE_RECURSE
  "CMakeFiles/udf_migration.dir/udf_migration.cpp.o"
  "CMakeFiles/udf_migration.dir/udf_migration.cpp.o.d"
  "udf_migration"
  "udf_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
