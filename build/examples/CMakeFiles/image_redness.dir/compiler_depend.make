# Empty compiler generated dependencies file for image_redness.
# This may be replaced when dependencies are built.
