file(REMOVE_RECURSE
  "CMakeFiles/image_redness.dir/image_redness.cpp.o"
  "CMakeFiles/image_redness.dir/image_redness.cpp.o.d"
  "image_redness"
  "image_redness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_redness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
