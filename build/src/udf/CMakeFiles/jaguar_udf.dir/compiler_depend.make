# Empty compiler generated dependencies file for jaguar_udf.
# This may be replaced when dependencies are built.
