file(REMOVE_RECURSE
  "libjaguar_udf.a"
)
