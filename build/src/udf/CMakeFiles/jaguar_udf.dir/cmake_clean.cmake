file(REMOVE_RECURSE
  "CMakeFiles/jaguar_udf.dir/builtins.cc.o"
  "CMakeFiles/jaguar_udf.dir/builtins.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/generic_udf.cc.o"
  "CMakeFiles/jaguar_udf.dir/generic_udf.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/isolated_udf_runner.cc.o"
  "CMakeFiles/jaguar_udf.dir/isolated_udf_runner.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/jvm_udf_runner.cc.o"
  "CMakeFiles/jaguar_udf.dir/jvm_udf_runner.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/placement.cc.o"
  "CMakeFiles/jaguar_udf.dir/placement.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/sfi_udf_runner.cc.o"
  "CMakeFiles/jaguar_udf.dir/sfi_udf_runner.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/udf.cc.o"
  "CMakeFiles/jaguar_udf.dir/udf.cc.o.d"
  "CMakeFiles/jaguar_udf.dir/udf_manager.cc.o"
  "CMakeFiles/jaguar_udf.dir/udf_manager.cc.o.d"
  "libjaguar_udf.a"
  "libjaguar_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
