
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udf/builtins.cc" "src/udf/CMakeFiles/jaguar_udf.dir/builtins.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/builtins.cc.o.d"
  "/root/repo/src/udf/generic_udf.cc" "src/udf/CMakeFiles/jaguar_udf.dir/generic_udf.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/generic_udf.cc.o.d"
  "/root/repo/src/udf/isolated_udf_runner.cc" "src/udf/CMakeFiles/jaguar_udf.dir/isolated_udf_runner.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/isolated_udf_runner.cc.o.d"
  "/root/repo/src/udf/jvm_udf_runner.cc" "src/udf/CMakeFiles/jaguar_udf.dir/jvm_udf_runner.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/jvm_udf_runner.cc.o.d"
  "/root/repo/src/udf/placement.cc" "src/udf/CMakeFiles/jaguar_udf.dir/placement.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/placement.cc.o.d"
  "/root/repo/src/udf/sfi_udf_runner.cc" "src/udf/CMakeFiles/jaguar_udf.dir/sfi_udf_runner.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/sfi_udf_runner.cc.o.d"
  "/root/repo/src/udf/udf.cc" "src/udf/CMakeFiles/jaguar_udf.dir/udf.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/udf.cc.o.d"
  "/root/repo/src/udf/udf_manager.cc" "src/udf/CMakeFiles/jaguar_udf.dir/udf_manager.cc.o" "gcc" "src/udf/CMakeFiles/jaguar_udf.dir/udf_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/jaguar_types.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/jaguar_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/jaguar_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/jaguar_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/sfi/CMakeFiles/jaguar_sfi.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jaguar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jaguar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
