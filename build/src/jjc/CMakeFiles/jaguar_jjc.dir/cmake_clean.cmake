file(REMOVE_RECURSE
  "CMakeFiles/jaguar_jjc.dir/compiler.cc.o"
  "CMakeFiles/jaguar_jjc.dir/compiler.cc.o.d"
  "CMakeFiles/jaguar_jjc.dir/lexer.cc.o"
  "CMakeFiles/jaguar_jjc.dir/lexer.cc.o.d"
  "CMakeFiles/jaguar_jjc.dir/parser.cc.o"
  "CMakeFiles/jaguar_jjc.dir/parser.cc.o.d"
  "libjaguar_jjc.a"
  "libjaguar_jjc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_jjc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
