
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jjc/compiler.cc" "src/jjc/CMakeFiles/jaguar_jjc.dir/compiler.cc.o" "gcc" "src/jjc/CMakeFiles/jaguar_jjc.dir/compiler.cc.o.d"
  "/root/repo/src/jjc/lexer.cc" "src/jjc/CMakeFiles/jaguar_jjc.dir/lexer.cc.o" "gcc" "src/jjc/CMakeFiles/jaguar_jjc.dir/lexer.cc.o.d"
  "/root/repo/src/jjc/parser.cc" "src/jjc/CMakeFiles/jaguar_jjc.dir/parser.cc.o" "gcc" "src/jjc/CMakeFiles/jaguar_jjc.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jvm/CMakeFiles/jaguar_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jaguar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
