file(REMOVE_RECURSE
  "libjaguar_jjc.a"
)
