# Empty dependencies file for jaguar_jjc.
# This may be replaced when dependencies are built.
