file(REMOVE_RECURSE
  "libjaguar_catalog.a"
)
