# Empty compiler generated dependencies file for jaguar_catalog.
# This may be replaced when dependencies are built.
