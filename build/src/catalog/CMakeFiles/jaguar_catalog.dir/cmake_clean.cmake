file(REMOVE_RECURSE
  "CMakeFiles/jaguar_catalog.dir/catalog.cc.o"
  "CMakeFiles/jaguar_catalog.dir/catalog.cc.o.d"
  "libjaguar_catalog.a"
  "libjaguar_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
