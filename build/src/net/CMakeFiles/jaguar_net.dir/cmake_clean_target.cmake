file(REMOVE_RECURSE
  "libjaguar_net.a"
)
