file(REMOVE_RECURSE
  "CMakeFiles/jaguar_net.dir/client.cc.o"
  "CMakeFiles/jaguar_net.dir/client.cc.o.d"
  "CMakeFiles/jaguar_net.dir/protocol.cc.o"
  "CMakeFiles/jaguar_net.dir/protocol.cc.o.d"
  "CMakeFiles/jaguar_net.dir/server.cc.o"
  "CMakeFiles/jaguar_net.dir/server.cc.o.d"
  "libjaguar_net.a"
  "libjaguar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
