# Empty compiler generated dependencies file for jaguar_net.
# This may be replaced when dependencies are built.
