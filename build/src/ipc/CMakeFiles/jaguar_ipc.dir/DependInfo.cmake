
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/remote_executor.cc" "src/ipc/CMakeFiles/jaguar_ipc.dir/remote_executor.cc.o" "gcc" "src/ipc/CMakeFiles/jaguar_ipc.dir/remote_executor.cc.o.d"
  "/root/repo/src/ipc/shm_channel.cc" "src/ipc/CMakeFiles/jaguar_ipc.dir/shm_channel.cc.o" "gcc" "src/ipc/CMakeFiles/jaguar_ipc.dir/shm_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jaguar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
