# Empty dependencies file for jaguar_ipc.
# This may be replaced when dependencies are built.
