file(REMOVE_RECURSE
  "libjaguar_ipc.a"
)
