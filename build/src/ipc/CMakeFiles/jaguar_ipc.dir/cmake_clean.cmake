file(REMOVE_RECURSE
  "CMakeFiles/jaguar_ipc.dir/remote_executor.cc.o"
  "CMakeFiles/jaguar_ipc.dir/remote_executor.cc.o.d"
  "CMakeFiles/jaguar_ipc.dir/shm_channel.cc.o"
  "CMakeFiles/jaguar_ipc.dir/shm_channel.cc.o.d"
  "libjaguar_ipc.a"
  "libjaguar_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
