
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/assembler.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/assembler.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/assembler.cc.o.d"
  "/root/repo/src/jvm/bytecode.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/bytecode.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/bytecode.cc.o.d"
  "/root/repo/src/jvm/class_file.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/class_file.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/class_file.cc.o.d"
  "/root/repo/src/jvm/class_loader.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/class_loader.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/class_loader.cc.o.d"
  "/root/repo/src/jvm/heap.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/heap.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/heap.cc.o.d"
  "/root/repo/src/jvm/interpreter.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/interpreter.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/interpreter.cc.o.d"
  "/root/repo/src/jvm/jit.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/jit.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/jit.cc.o.d"
  "/root/repo/src/jvm/verifier.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/verifier.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/verifier.cc.o.d"
  "/root/repo/src/jvm/vm.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/vm.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/vm.cc.o.d"
  "/root/repo/src/jvm/x64_assembler.cc" "src/jvm/CMakeFiles/jaguar_jvm.dir/x64_assembler.cc.o" "gcc" "src/jvm/CMakeFiles/jaguar_jvm.dir/x64_assembler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jaguar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
