# Empty dependencies file for jaguar_jvm.
# This may be replaced when dependencies are built.
