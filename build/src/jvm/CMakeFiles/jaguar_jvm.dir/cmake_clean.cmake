file(REMOVE_RECURSE
  "CMakeFiles/jaguar_jvm.dir/assembler.cc.o"
  "CMakeFiles/jaguar_jvm.dir/assembler.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/bytecode.cc.o"
  "CMakeFiles/jaguar_jvm.dir/bytecode.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/class_file.cc.o"
  "CMakeFiles/jaguar_jvm.dir/class_file.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/class_loader.cc.o"
  "CMakeFiles/jaguar_jvm.dir/class_loader.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/heap.cc.o"
  "CMakeFiles/jaguar_jvm.dir/heap.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/interpreter.cc.o"
  "CMakeFiles/jaguar_jvm.dir/interpreter.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/jit.cc.o"
  "CMakeFiles/jaguar_jvm.dir/jit.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/verifier.cc.o"
  "CMakeFiles/jaguar_jvm.dir/verifier.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/vm.cc.o"
  "CMakeFiles/jaguar_jvm.dir/vm.cc.o.d"
  "CMakeFiles/jaguar_jvm.dir/x64_assembler.cc.o"
  "CMakeFiles/jaguar_jvm.dir/x64_assembler.cc.o.d"
  "libjaguar_jvm.a"
  "libjaguar_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
