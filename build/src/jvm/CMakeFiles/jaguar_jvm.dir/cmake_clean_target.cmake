file(REMOVE_RECURSE
  "libjaguar_jvm.a"
)
