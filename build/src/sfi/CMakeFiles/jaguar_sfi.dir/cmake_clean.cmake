file(REMOVE_RECURSE
  "CMakeFiles/jaguar_sfi.dir/sfi.cc.o"
  "CMakeFiles/jaguar_sfi.dir/sfi.cc.o.d"
  "libjaguar_sfi.a"
  "libjaguar_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
