# Empty dependencies file for jaguar_sfi.
# This may be replaced when dependencies are built.
