file(REMOVE_RECURSE
  "libjaguar_sfi.a"
)
