# Empty dependencies file for jaguar_storage.
# This may be replaced when dependencies are built.
