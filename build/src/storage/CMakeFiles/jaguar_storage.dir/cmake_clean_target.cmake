file(REMOVE_RECURSE
  "libjaguar_storage.a"
)
