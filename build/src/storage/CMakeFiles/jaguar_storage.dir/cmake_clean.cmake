file(REMOVE_RECURSE
  "CMakeFiles/jaguar_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/jaguar_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/jaguar_storage.dir/disk_manager.cc.o"
  "CMakeFiles/jaguar_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/jaguar_storage.dir/slotted_page.cc.o"
  "CMakeFiles/jaguar_storage.dir/slotted_page.cc.o.d"
  "CMakeFiles/jaguar_storage.dir/storage_engine.cc.o"
  "CMakeFiles/jaguar_storage.dir/storage_engine.cc.o.d"
  "CMakeFiles/jaguar_storage.dir/table_heap.cc.o"
  "CMakeFiles/jaguar_storage.dir/table_heap.cc.o.d"
  "libjaguar_storage.a"
  "libjaguar_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
