# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("storage")
subdirs("catalog")
subdirs("sql")
subdirs("jvm")
subdirs("jjc")
subdirs("sfi")
subdirs("ipc")
subdirs("udf")
subdirs("exec")
subdirs("engine")
subdirs("net")
