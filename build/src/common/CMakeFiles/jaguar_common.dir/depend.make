# Empty dependencies file for jaguar_common.
# This may be replaced when dependencies are built.
