file(REMOVE_RECURSE
  "CMakeFiles/jaguar_common.dir/logging.cc.o"
  "CMakeFiles/jaguar_common.dir/logging.cc.o.d"
  "CMakeFiles/jaguar_common.dir/status.cc.o"
  "CMakeFiles/jaguar_common.dir/status.cc.o.d"
  "CMakeFiles/jaguar_common.dir/string_util.cc.o"
  "CMakeFiles/jaguar_common.dir/string_util.cc.o.d"
  "libjaguar_common.a"
  "libjaguar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
