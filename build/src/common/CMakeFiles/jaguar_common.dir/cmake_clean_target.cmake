file(REMOVE_RECURSE
  "libjaguar_common.a"
)
