file(REMOVE_RECURSE
  "libjaguar_engine.a"
)
