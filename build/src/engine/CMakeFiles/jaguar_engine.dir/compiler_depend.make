# Empty compiler generated dependencies file for jaguar_engine.
# This may be replaced when dependencies are built.
