file(REMOVE_RECURSE
  "CMakeFiles/jaguar_engine.dir/database.cc.o"
  "CMakeFiles/jaguar_engine.dir/database.cc.o.d"
  "CMakeFiles/jaguar_engine.dir/query_result.cc.o"
  "CMakeFiles/jaguar_engine.dir/query_result.cc.o.d"
  "libjaguar_engine.a"
  "libjaguar_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
