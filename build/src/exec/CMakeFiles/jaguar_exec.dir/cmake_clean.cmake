file(REMOVE_RECURSE
  "CMakeFiles/jaguar_exec.dir/expression.cc.o"
  "CMakeFiles/jaguar_exec.dir/expression.cc.o.d"
  "CMakeFiles/jaguar_exec.dir/operators.cc.o"
  "CMakeFiles/jaguar_exec.dir/operators.cc.o.d"
  "libjaguar_exec.a"
  "libjaguar_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
