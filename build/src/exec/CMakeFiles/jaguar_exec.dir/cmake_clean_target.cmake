file(REMOVE_RECURSE
  "libjaguar_exec.a"
)
