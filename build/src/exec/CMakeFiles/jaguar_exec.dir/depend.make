# Empty dependencies file for jaguar_exec.
# This may be replaced when dependencies are built.
