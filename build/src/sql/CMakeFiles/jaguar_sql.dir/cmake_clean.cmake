file(REMOVE_RECURSE
  "CMakeFiles/jaguar_sql.dir/ast.cc.o"
  "CMakeFiles/jaguar_sql.dir/ast.cc.o.d"
  "CMakeFiles/jaguar_sql.dir/lexer.cc.o"
  "CMakeFiles/jaguar_sql.dir/lexer.cc.o.d"
  "CMakeFiles/jaguar_sql.dir/parser.cc.o"
  "CMakeFiles/jaguar_sql.dir/parser.cc.o.d"
  "libjaguar_sql.a"
  "libjaguar_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
