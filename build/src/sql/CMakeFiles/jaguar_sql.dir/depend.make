# Empty dependencies file for jaguar_sql.
# This may be replaced when dependencies are built.
