file(REMOVE_RECURSE
  "libjaguar_sql.a"
)
