# Empty compiler generated dependencies file for jaguar_types.
# This may be replaced when dependencies are built.
