file(REMOVE_RECURSE
  "CMakeFiles/jaguar_types.dir/schema.cc.o"
  "CMakeFiles/jaguar_types.dir/schema.cc.o.d"
  "CMakeFiles/jaguar_types.dir/tuple.cc.o"
  "CMakeFiles/jaguar_types.dir/tuple.cc.o.d"
  "CMakeFiles/jaguar_types.dir/value.cc.o"
  "CMakeFiles/jaguar_types.dir/value.cc.o.d"
  "libjaguar_types.a"
  "libjaguar_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
