file(REMOVE_RECURSE
  "libjaguar_types.a"
)
