file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_data_access.dir/bench_fig7_data_access.cc.o"
  "CMakeFiles/bench_fig7_data_access.dir/bench_fig7_data_access.cc.o.d"
  "bench_fig7_data_access"
  "bench_fig7_data_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_data_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
