# Empty compiler generated dependencies file for bench_fig7_data_access.
# This may be replaced when dependencies are built.
