file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_calibration.dir/bench_fig4_calibration.cc.o"
  "CMakeFiles/bench_fig4_calibration.dir/bench_fig4_calibration.cc.o.d"
  "bench_fig4_calibration"
  "bench_fig4_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
