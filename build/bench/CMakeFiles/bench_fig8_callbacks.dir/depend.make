# Empty dependencies file for bench_fig8_callbacks.
# This may be replaced when dependencies are built.
