file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_callbacks.dir/bench_fig8_callbacks.cc.o"
  "CMakeFiles/bench_fig8_callbacks.dir/bench_fig8_callbacks.cc.o.d"
  "bench_fig8_callbacks"
  "bench_fig8_callbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_callbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
