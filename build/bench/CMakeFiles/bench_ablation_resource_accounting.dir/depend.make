# Empty dependencies file for bench_ablation_resource_accounting.
# This may be replaced when dependencies are built.
