file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resource_accounting.dir/bench_ablation_resource_accounting.cc.o"
  "CMakeFiles/bench_ablation_resource_accounting.dir/bench_ablation_resource_accounting.cc.o.d"
  "bench_ablation_resource_accounting"
  "bench_ablation_resource_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resource_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
