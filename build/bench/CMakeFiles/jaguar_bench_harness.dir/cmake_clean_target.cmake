file(REMOVE_RECURSE
  "libjaguar_bench_harness.a"
)
