file(REMOVE_RECURSE
  "CMakeFiles/jaguar_bench_harness.dir/harness.cc.o"
  "CMakeFiles/jaguar_bench_harness.dir/harness.cc.o.d"
  "libjaguar_bench_harness.a"
  "libjaguar_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
