# Empty dependencies file for jaguar_bench_harness.
# This may be replaced when dependencies are built.
