# Empty dependencies file for bench_ablation_sfi.
# This may be replaced when dependencies are built.
