file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sfi.dir/bench_ablation_sfi.cc.o"
  "CMakeFiles/bench_ablation_sfi.dir/bench_ablation_sfi.cc.o.d"
  "bench_ablation_sfi"
  "bench_ablation_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
