# Empty dependencies file for bench_ablation_handle_vs_object.
# This may be replaced when dependencies are built.
