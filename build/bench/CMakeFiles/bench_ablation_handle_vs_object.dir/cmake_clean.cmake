file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_handle_vs_object.dir/bench_ablation_handle_vs_object.cc.o"
  "CMakeFiles/bench_ablation_handle_vs_object.dir/bench_ablation_handle_vs_object.cc.o.d"
  "bench_ablation_handle_vs_object"
  "bench_ablation_handle_vs_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_handle_vs_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
