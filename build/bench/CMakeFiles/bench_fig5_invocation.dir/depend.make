# Empty dependencies file for bench_fig5_invocation.
# This may be replaced when dependencies are built.
