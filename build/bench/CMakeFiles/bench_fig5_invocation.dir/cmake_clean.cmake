file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_invocation.dir/bench_fig5_invocation.cc.o"
  "CMakeFiles/bench_fig5_invocation.dir/bench_fig5_invocation.cc.o.d"
  "bench_fig5_invocation"
  "bench_fig5_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
