# Empty dependencies file for bench_fig6_computation.
# This may be replaced when dependencies are built.
