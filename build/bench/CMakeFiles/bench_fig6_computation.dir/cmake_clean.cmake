file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_computation.dir/bench_fig6_computation.cc.o"
  "CMakeFiles/bench_fig6_computation.dir/bench_fig6_computation.cc.o.d"
  "bench_fig6_computation"
  "bench_fig6_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
