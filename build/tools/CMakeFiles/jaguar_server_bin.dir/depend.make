# Empty dependencies file for jaguar_server_bin.
# This may be replaced when dependencies are built.
