
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/jaguar_server.cpp" "tools/CMakeFiles/jaguar_server_bin.dir/jaguar_server.cpp.o" "gcc" "tools/CMakeFiles/jaguar_server_bin.dir/jaguar_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/jaguar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jaguar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/jaguar_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/jaguar_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/jaguar_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/sfi/CMakeFiles/jaguar_sfi.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/jaguar_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jaguar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/jaguar_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/jaguar_types.dir/DependInfo.cmake"
  "/root/repo/build/src/jjc/CMakeFiles/jaguar_jjc.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/jaguar_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jaguar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
