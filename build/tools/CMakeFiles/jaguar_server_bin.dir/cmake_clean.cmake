file(REMOVE_RECURSE
  "CMakeFiles/jaguar_server_bin.dir/jaguar_server.cpp.o"
  "CMakeFiles/jaguar_server_bin.dir/jaguar_server.cpp.o.d"
  "jaguar_server"
  "jaguar_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_server_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
