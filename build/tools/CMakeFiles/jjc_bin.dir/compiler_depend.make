# Empty compiler generated dependencies file for jjc_bin.
# This may be replaced when dependencies are built.
