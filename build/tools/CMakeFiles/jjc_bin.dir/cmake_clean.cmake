file(REMOVE_RECURSE
  "CMakeFiles/jjc_bin.dir/jjc_main.cpp.o"
  "CMakeFiles/jjc_bin.dir/jjc_main.cpp.o.d"
  "jjc"
  "jjc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jjc_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
