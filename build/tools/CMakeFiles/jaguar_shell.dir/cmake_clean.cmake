file(REMOVE_RECURSE
  "CMakeFiles/jaguar_shell.dir/jaguar_shell.cpp.o"
  "CMakeFiles/jaguar_shell.dir/jaguar_shell.cpp.o.d"
  "jaguar_shell"
  "jaguar_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaguar_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
