# Empty compiler generated dependencies file for jaguar_shell.
# This may be replaced when dependencies are built.
