file(REMOVE_RECURSE
  "CMakeFiles/jjc_test.dir/jjc_test.cc.o"
  "CMakeFiles/jjc_test.dir/jjc_test.cc.o.d"
  "jjc_test"
  "jjc_test.pdb"
  "jjc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jjc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
