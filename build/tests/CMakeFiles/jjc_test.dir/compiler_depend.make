# Empty compiler generated dependencies file for jjc_test.
# This may be replaced when dependencies are built.
