# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_test[1]_include.cmake")
include("/root/repo/build/tests/jjc_test[1]_include.cmake")
include("/root/repo/build/tests/designs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sql_features_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
