// The portability story of Section 6.4, end to end over the network:
//
//   1. A client writes a JJava UDF and compiles it locally with jjc.
//   2. The client tests the *same bytecode* in a client-side JagVM —
//      "develop, test and debug their UDFs on their local machines".
//   3. The client migrates the UDF to the server (upload + server-side
//      verification) and uses it in server-side SQL.
//   4. A hostile upload is rejected by the server's verifier.
//
// This example starts a real jaguar server on a loopback socket and talks to
// it through the client library (the two-tier architecture of Section 2.1).
//
// Build & run:  ./build/examples/udf_migration

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "engine/database.h"
#include "jvm/bytecode.h"
#include "jvm/class_file.h"
#include "net/client.h"
#include "net/server.h"

using namespace jaguar;

namespace {

QueryResult MustExecute(net::Client* client, const std::string& sql) {
  Result<QueryResult> r = client->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "jaguar_migration.db")
          .string();
  std::remove(path.c_str());

  // -- Server side -------------------------------------------------------------
  auto db = Database::Open(path).value();
  net::Server server(db.get());
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  std::printf("jaguar server listening on 127.0.0.1:%u\n\n", server.port());

  // -- Client side -------------------------------------------------------------
  auto client = net::Client::Connect("127.0.0.1", server.port()).value();
  client->Ping().ok();

  // 1+2. Write the UDF, compile locally, test locally — no server involved.
  const char* source = R"(
class Volatility {
  static int score(byte[] history) {
    int swings = 0;
    for (int i = 1; i < history.length; i = i + 1) {
      int delta = history[i] - history[i - 1];
      if (delta < 0) { delta = -delta; }
      if (delta > 10) { swings = swings + 1; }
    }
    return (swings * 100) / history.length;
  }
})";
  Random rng(42);
  std::vector<uint8_t> sample = rng.Bytes(100);
  Value local = net::Client::TestUdfLocally(source, "Volatility.score",
                                            {Value::Bytes(sample)},
                                            TypeId::kInt)
                    .value();
  std::printf("[client] local test on sample history -> %lld\n",
              static_cast<long long>(local.AsInt()));

  // 3. Migrate: the same compiled bytecode is uploaded; the server verifies
  //    it before it touches the catalog.
  Status migrated = client->RegisterJJavaUdf(
      "Volatility", source, "Volatility.score", TypeId::kInt,
      {TypeId::kBytes});
  std::printf("[client] migration to server: %s\n",
              migrated.ToString().c_str());

  MustExecute(client.get(),
              "CREATE TABLE Stocks (symbol STRING, history BYTEARRAY)");
  MustExecute(client.get(),
              "INSERT INTO Stocks VALUES "
              "('ACME', randbytes(100, 42)), "
              "('CALM', zerobytes(100))");

  QueryResult r = MustExecute(
      client.get(), "SELECT symbol, Volatility(history) AS vol FROM Stocks");
  std::printf("\n[server] SELECT symbol, Volatility(history) FROM Stocks:\n%s\n",
              r.ToPrettyString().c_str());
  std::printf("[check] server result for ACME (%lld) == client-local result "
              "(%lld): %s\n\n",
              static_cast<long long>(r.rows[0].value(1).AsInt()),
              static_cast<long long>(local.AsInt()),
              r.rows[0].value(1).AsInt() == local.AsInt() ? "YES" : "NO");

  // 4. A hostile upload: hand-crafted bytecode that forges a pointer from an
  //    integer. jjc would never emit this; the server's verifier rejects it
  //    at migration time.
  jvm::ClassFile evil;
  evil.class_name = "Evil";
  jvm::MethodDef m;
  m.name_idx = evil.InternUtf8("run");
  m.sig_idx = evil.InternUtf8("(B)I");
  m.max_locals = 1;
  jvm::CodeWriter code;
  code.EmitImm(jvm::Op::kIConst, 0xDEADBEEF);  // an integer...
  code.EmitImm(jvm::Op::kIConst, 0);
  code.Emit(jvm::Op::kBALoad);                 // ...dereferenced as an array
  code.Emit(jvm::Op::kIReturn);
  m.code = code.Release();
  evil.methods.push_back(std::move(m));

  UdfInfo info;
  info.name = "evil";
  info.language = UdfLanguage::kJJava;
  info.return_type = TypeId::kInt;
  info.arg_types = {TypeId::kBytes};
  info.impl_name = "Evil.run";
  info.payload = evil.Serialize();
  Status rejected = client->RegisterUdf(info);
  std::printf("[server] hostile upload (int forged into a pointer):\n  %s\n",
              rejected.ToString().c_str());

  client.reset();
  server.Stop();
  db.reset();
  std::remove(path.c_str());
  return 0;
}
