// The paper's second motivating UDF (Section 3.1): REDNESS(I) computes the
// fraction of red pixels in an image, supporting
//
//     SELECT * FROM Sunsets S
//     WHERE REDNESS(S.picture) > 0.7 AND S.location = 'fingerlakes'
//
// This example also demonstrates the handle-vs-whole-object tradeoff of
// Section 5.5/5.6: images live in the server's LOB store; one UDF receives
// whole images, another receives only a handle and uses Jaguar.fetch
// callbacks to sample a band of the image (a Clip()-style function).
//
// Build & run:  ./build/examples/image_redness

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "jjc/jjc.h"

using namespace jaguar;

namespace {

QueryResult MustExecute(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

/// Synthesizes a 64x64 RGB image; `red_bias` raises the red channel.
std::vector<uint8_t> MakeImage(int seed, double red_bias) {
  Random rng(seed);
  const int w = 64, h = 64;
  std::vector<uint8_t> rgb(w * h * 3);
  for (int i = 0; i < w * h; ++i) {
    double r = rng.NextDouble() * 0.5 + red_bias;
    rgb[i * 3 + 0] = static_cast<uint8_t>(std::min(1.0, r) * 255);
    rgb[i * 3 + 1] = static_cast<uint8_t>(rng.NextDouble() * 128);
    rgb[i * 3 + 2] = static_cast<uint8_t>(rng.NextDouble() * 128);
  }
  return rgb;
}

void RegisterUdf(Database* db, const std::string& name,
                 const std::string& source, const std::string& entry,
                 std::vector<TypeId> args) {
  UdfInfo udf;
  udf.name = name;
  udf.language = UdfLanguage::kJJava;
  udf.return_type = TypeId::kInt;
  udf.arg_types = std::move(args);
  udf.impl_name = entry;
  udf.payload = jjc::Compile(source).value().Serialize();
  Status s = db->RegisterUdf(udf);
  if (!s.ok()) {
    std::fprintf(stderr, "register %s failed: %s\n", name.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "jaguar_sunsets.db").string();
  std::remove(path.c_str());
  auto db = Database::Open(path).value();

  // Images in the LOB store; tuples carry (location, picture blob, handle).
  MustExecute(db.get(),
              "CREATE TABLE Sunsets (location STRING, picture BYTEARRAY, "
              "pic_handle INT)");
  struct Shot {
    const char* location;
    int seed;
    double red;
  };
  const Shot shots[] = {{"fingerlakes", 1, 0.8}, {"fingerlakes", 2, 0.3},
                        {"adirondacks", 3, 0.9}, {"fingerlakes", 4, 0.75},
                        {"catskills", 5, 0.2}};
  for (const Shot& shot : shots) {
    std::vector<uint8_t> img = MakeImage(shot.seed, shot.red);
    int64_t handle = db->StoreLob(img).value();
    Tuple row({Value::String(shot.location), Value::Bytes(img),
               Value::Int(handle)});
    const TableInfo* info = db->catalog()->GetTable("Sunsets").value();
    TableHeap heap(db->storage(), info->first_page);
    heap.Insert(Slice(row.Serialize())).value();
  }

  // REDNESS over the whole image (values scaled x100: 0..100).
  const char* redness = R"(
class Redness {
  static int pct(byte[] rgb) {
    int red = 0;
    int pixels = rgb.length / 3;
    for (int i = 0; i < pixels; i = i + 1) {
      int r = rgb[i * 3];
      int g = rgb[i * 3 + 1];
      int b = rgb[i * 3 + 2];
      if (r > 180 && r > g + 60 && r > b + 60) { red = red + 1; }
    }
    return (red * 100) / pixels;
  }
})";
  RegisterUdf(db.get(), "REDNESS", redness, "Redness.pct", {TypeId::kBytes});

  // Clip()-style variant: receives a handle, fetches only the middle band of
  // the image through server callbacks (Section 5.5's Clip/Lookup pattern).
  const char* band_redness = R"(
class BandRedness {
  static int pct(int handle) {
    // 64x64x3 image: fetch rows 24..40 only (16 rows x 64 px x 3 bytes).
    byte[] band = Jaguar.fetch(handle, 24 * 64 * 3, 16 * 64 * 3);
    int red = 0;
    int pixels = band.length / 3;
    for (int i = 0; i < pixels; i = i + 1) {
      int r = band[i * 3];
      if (r > 180 && r > band[i * 3 + 1] + 60 && r > band[i * 3 + 2] + 60) {
        red = red + 1;
      }
    }
    return (red * 100) / pixels;
  }
})";
  RegisterUdf(db.get(), "BAND_REDNESS", band_redness, "BandRedness.pct",
              {TypeId::kInt});

  std::printf("All shots, whole-image vs band (handle+callback) scoring:\n%s\n",
              MustExecute(db.get(),
                          "SELECT location, REDNESS(picture) AS whole, "
                          "BAND_REDNESS(pic_handle) AS band FROM Sunsets")
                  .ToPrettyString()
                  .c_str());

  // The paper's query (REDNESS > 0.7 -> scaled: > 70).
  std::printf(
      "Bright sunsets from the Finger Lakes (the paper's query):\n%s\n",
      MustExecute(db.get(),
                  "SELECT location, REDNESS(picture) AS redness "
                  "FROM Sunsets S WHERE REDNESS(S.picture) > 70 "
                  "AND S.location = 'fingerlakes'")
          .ToPrettyString()
          .c_str());

  std::printf("Server callbacks served (the band UDF's fetches): %llu\n",
              static_cast<unsigned long long>(db->callbacks_served()));

  std::remove(path.c_str());
  return 0;
}
