// Quickstart: the embedded jaguar engine in ~60 lines.
//
//   * open a database
//   * create a table, insert rows (byte arrays via randbytes)
//   * run queries with builtins
//   * register a JJava UDF and call it from SQL
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "engine/database.h"
#include "jjc/jjc.h"

using namespace jaguar;

namespace {

QueryResult MustExecute(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "jaguar_quickstart.db")
          .string();
  std::remove(path.c_str());

  auto db = Database::Open(path).value();

  std::printf("-- DDL + DML ---------------------------------------------\n");
  MustExecute(db.get(),
              "CREATE TABLE sensors (name STRING, reading DOUBLE, "
              "trace BYTEARRAY)");
  MustExecute(db.get(),
              "INSERT INTO sensors VALUES "
              "('alpha', 20.5, randbytes(64, 1)), "
              "('beta', 31.0, randbytes(64, 2)), "
              "('gamma', 18.25, randbytes(256, 3))");

  std::printf("%s\n",
              MustExecute(db.get(),
                          "SELECT name, reading, length(trace) AS bytes "
                          "FROM sensors WHERE reading > 19")
                  .ToPrettyString()
                  .c_str());

  std::printf("-- A JJava UDF -------------------------------------------\n");
  // Count trace bytes above a threshold — sandboxed, verified, JIT-compiled.
  const char* source = R"(
class Spikes {
  static int count(byte[] trace, int threshold) {
    int n = 0;
    for (int i = 0; i < trace.length; i = i + 1) {
      if (trace[i] > threshold) { n = n + 1; }
    }
    return n;
  }
})";
  UdfInfo udf;
  udf.name = "spikes";
  udf.language = UdfLanguage::kJJava;
  udf.return_type = TypeId::kInt;
  udf.arg_types = {TypeId::kBytes, TypeId::kInt};
  udf.impl_name = "Spikes.count";
  udf.payload = jjc::Compile(source).value().Serialize();
  Status s = db->RegisterUdf(udf);
  if (!s.ok()) {
    std::fprintf(stderr, "registration failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("%s\n",
              MustExecute(db.get(),
                          "SELECT name, spikes(trace, 200) AS hot "
                          "FROM sensors")
                  .ToPrettyString()
                  .c_str());

  std::printf("-- Safety ------------------------------------------------\n");
  // A buggy UDF cannot hurt the server: out-of-bounds access fails the
  // query, not the process.
  const char* buggy = R"(
class Bad {
  static int run(byte[] t) { return t[t.length + 10]; }
})";
  UdfInfo bad;
  bad.name = "bad";
  bad.language = UdfLanguage::kJJava;
  bad.return_type = TypeId::kInt;
  bad.arg_types = {TypeId::kBytes};
  bad.impl_name = "Bad.run";
  bad.payload = jjc::Compile(buggy).value().Serialize();
  db->RegisterUdf(bad).ok();
  Result<QueryResult> r = db->Execute("SELECT bad(trace) FROM sensors");
  std::printf("buggy UDF query -> %s\n", r.status().ToString().c_str());
  std::printf("server still fine: %zu rows\n",
              MustExecute(db.get(), "SELECT * FROM sensors").rows.size());

  std::remove(path.c_str());
  return 0;
}
