// The paper's motivating scenario (Section 1): a stock-market database on
// the web, where "a valid user is any amateur investor with a web browser, a
// credit card, and an investment formula InvestVal":
//
//     SELECT * FROM Stocks S
//     WHERE S.type = 'tech' AND InvestVal(S.history) > 5
//
// The investment formula arrives as an untrusted JJava UDF, runs sandboxed
// in the server's JagVM (Design 3), and competes against alternative
// formulas registered by other "users". A malicious formula that tries to
// spin forever is stopped by the CPU budget.
//
// Build & run:  ./build/examples/stock_screener

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "engine/database.h"
#include "jjc/jjc.h"

using namespace jaguar;

namespace {

QueryResult MustExecute(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n  %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void RegisterFormula(Database* db, const std::string& name,
                     const std::string& source, const std::string& entry) {
  UdfInfo udf;
  udf.name = name;
  udf.language = UdfLanguage::kJJava;
  udf.return_type = TypeId::kInt;
  udf.arg_types = {TypeId::kBytes};
  udf.impl_name = entry;
  Result<jvm::ClassFile> cf = jjc::Compile(source);
  if (!cf.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", cf.status().ToString().c_str());
    std::exit(1);
  }
  udf.payload = cf->Serialize();
  Status s = db->RegisterUdf(udf);
  if (!s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "jaguar_stocks.db").string();
  std::remove(path.c_str());

  DatabaseOptions options;
  options.udf_instruction_budget = 10'000'000;  // per-invocation CPU cap
  auto db = Database::Open(path, options).value();

  // -- Load a synthetic market ------------------------------------------------
  // Each stock's `history` is 256 daily closing prices packed as bytes
  // (0..255 around a base line) — the ADT blob of the paper's example.
  MustExecute(db.get(),
              "CREATE TABLE Stocks (symbol STRING, type STRING, "
              "history BYTEARRAY)");
  struct StockSpec {
    const char* symbol;
    const char* type;
    int seed;
    double drift;  // upward tendency
  };
  const StockSpec market[] = {
      {"ACME", "tech", 11, +0.30}, {"BYTE", "tech", 12, +0.55},
      {"CHIP", "tech", 13, -0.25}, {"DATA", "tech", 14, +0.05},
      {"EAST", "oil", 15, +0.40},  {"FUEL", "oil", 16, -0.10},
      {"GRID", "utility", 17, 0.0}};
  for (const StockSpec& stock : market) {
    Random rng(stock.seed);
    std::vector<uint8_t> history(256);
    double price = 100.0;
    for (size_t day = 0; day < history.size(); ++day) {
      price += stock.drift + (rng.NextDouble() - 0.5) * 6.0;
      price = std::max(5.0, std::min(250.0, price));
      history[day] = static_cast<uint8_t>(price);
    }
    // No blob literals in SQL: stage the history as a LOB, then materialize
    // it into the row via a small helper query... simplest: direct API.
    Tuple row({Value::String(stock.symbol), Value::String(stock.type),
               Value::Bytes(history)});
    const TableInfo* info = db->catalog()->GetTable("Stocks").value();
    TableHeap heap(db->storage(), info->first_page);
    heap.Insert(Slice(row.Serialize())).value();
  }

  // -- An amateur investor's formula ------------------------------------------
  // InvestVal: percentage of up-days plus momentum over the last 30 days.
  const char* invest_val = R"(
class InvestVal {
  static int score(byte[] h) {
    int ups = 0;
    for (int i = 1; i < h.length; i = i + 1) {
      if (h[i] > h[i - 1]) { ups = ups + 1; }
    }
    int upPct = (ups * 10) / h.length;           // 0..10
    int momentum = h[h.length - 1] - h[h.length - 30];
    int m = momentum / 8;
    if (m > 5) { m = 5; }
    if (m < -5) { m = -5; }
    return upPct + m;
  }
})";
  RegisterFormula(db.get(), "InvestVal", invest_val, "InvestVal.score");

  std::printf("All stocks, scored by the user's formula:\n%s\n",
              MustExecute(db.get(),
                          "SELECT symbol, type, InvestVal(history) AS score "
                          "FROM Stocks")
                  .ToPrettyString()
                  .c_str());

  std::printf("The paper's query - tech stocks the formula likes:\n%s\n",
              MustExecute(db.get(),
                          "SELECT * FROM Stocks S WHERE S.type = 'tech' "
                          "AND InvestVal(S.history) > 5")
                  .ToPrettyString()
                  .c_str());

  // -- A rival user's formula (they can't collide or interfere) ---------------
  const char* contrarian = R"(
class Contrarian {
  static int score(byte[] h) {
    int last = h[h.length - 1];
    int first = h[0];
    return (first - last) / 10;   // likes whatever fell
  }
})";
  RegisterFormula(db.get(), "ContraVal", contrarian, "Contrarian.score");
  std::printf("A second user's formula coexists (own namespace):\n%s\n",
              MustExecute(db.get(),
                          "SELECT symbol, InvestVal(history) AS momentum, "
                          "ContraVal(history) AS contra FROM Stocks "
                          "WHERE type = 'tech'")
                  .ToPrettyString()
                  .c_str());

  // -- Portfolio analytics with aggregates --------------------------------------
  std::printf("Sector summary (GROUP BY + aggregates):\n%s\n",
              MustExecute(db.get(),
                          "SELECT type, COUNT(*) AS stocks, "
                          "AVG(InvestVal(history)) AS avg_score, "
                          "MAX(InvestVal(history)) AS best "
                          "FROM Stocks GROUP BY type")
                  .ToPrettyString()
                  .c_str());

  // -- A hostile user ----------------------------------------------------------
  const char* hostile = R"(
class Greedy {
  static int score(byte[] h) {
    int x = 0;
    while (0 == 0) { x = x + 1; }   // denial-of-service attempt
    return x;
  }
})";
  RegisterFormula(db.get(), "GreedyVal", hostile, "Greedy.score");
  Result<QueryResult> dos =
      db->Execute("SELECT GreedyVal(history) FROM Stocks");
  std::printf("Hostile formula stopped by the CPU budget:\n  %s\n",
              dos.status().ToString().c_str());
  std::printf("Server unaffected: %zu stocks still served.\n",
              MustExecute(db.get(), "SELECT symbol FROM Stocks").rows.size());

  std::remove(path.c_str());
  return 0;
}
