// jaguar_server — serve a jaguar database over TCP (loopback).
//
// Usage: jaguar_server <db-path> [port] [--budget N] [--heap-quota BYTES]
//                      [--metrics-json]
//
// Runs until SIGINT/SIGTERM. Clients connect with the client library or
// `jaguar_shell --connect 127.0.0.1 <port>`. On shutdown the server dumps
// the process metrics registry (text by default, one JSON object with
// --metrics-json) so every run leaves its boundary-crossing counts behind.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/database.h"
#include "net/server.h"
#include "obs/metrics.h"

using namespace jaguar;

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <db-path> [port] [--budget N] [--heap-quota B] "
                 "[--metrics-json]\n",
                 argv[0]);
    return 2;
  }
  uint16_t port = 0;
  bool metrics_json = false;
  DatabaseOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      options.udf_instruction_budget = atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--heap-quota") == 0 && i + 1 < argc) {
      options.udf_heap_quota_bytes = static_cast<size_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_json = true;
    } else if (argv[i][0] != '-') {
      port = static_cast<uint16_t>(atoi(argv[i]));
    }
  }

  Result<std::unique_ptr<Database>> db = Database::Open(argv[1], options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  net::Server server(db->get());
  Status s = server.Start(port);
  if (!s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("jaguar server: db=%s port=%u budget=%lld\n", argv[1],
              server.port(),
              static_cast<long long>(options.udf_instruction_budget));
  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  obs::MetricsRegistry* metrics = obs::MetricsRegistry::Global();
  std::printf("%s\n", metrics_json ? metrics->DumpJson().c_str()
                                   : metrics->DumpText().c_str());
  return 0;
}
