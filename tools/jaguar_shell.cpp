// jaguar_shell — interactive SQL shell / script runner for a jaguar database.
//
// Usage:
//   jaguar_shell <db-path>                 interactive REPL on an embedded db
//   jaguar_shell <db-path> -c "<sql>"      run one statement and exit
//   jaguar_shell --connect <host> <port>   REPL against a running server
//
// Meta-commands: \tables  \udfs  \quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "engine/database.h"
#include "net/client.h"

using namespace jaguar;

namespace {

int RunStatement(const std::function<Result<QueryResult>(const std::string&)>&
                     execute,
                 Database* db, const std::string& line) {
  if (line == "\\quit" || line == "\\q") return 1;
  if (line == "\\tables") {
    if (db != nullptr) {
      for (const std::string& name : db->catalog()->ListTables()) {
        std::printf("%s\n", name.c_str());
      }
    } else {
      std::printf("\\tables requires an embedded database\n");
    }
    return 0;
  }
  if (line == "\\udfs") {
    if (db != nullptr) {
      for (const std::string& name : db->catalog()->ListUdfs()) {
        const UdfInfo* info = db->catalog()->GetUdf(name).value();
        std::printf("%-24s %s\n", name.c_str(),
                    UdfLanguageToString(info->language));
      }
    } else {
      std::printf("\\udfs requires an embedded database\n");
    }
    return 0;
  }
  Result<QueryResult> r = execute(line);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return 0;
  }
  std::printf("%s", r->ToPrettyString().c_str());
  if (r->schema.num_columns() == 0) std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <db-path> [-c \"sql\"] | --connect <host> <port>\n",
                 argv[0]);
    return 2;
  }

  std::unique_ptr<Database> db;
  std::unique_ptr<net::Client> client;
  std::function<Result<QueryResult>(const std::string&)> execute;

  if (std::strcmp(argv[1], "--connect") == 0) {
    if (argc < 4) {
      std::fprintf(stderr, "usage: %s --connect <host> <port>\n", argv[0]);
      return 2;
    }
    Result<std::unique_ptr<net::Client>> c =
        net::Client::Connect(argv[2], static_cast<uint16_t>(atoi(argv[3])));
    if (!c.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   c.status().ToString().c_str());
      return 1;
    }
    client = std::move(c).value();
    execute = [&](const std::string& sql) { return client->Execute(sql); };
  } else {
    Result<std::unique_ptr<Database>> d = Database::Open(argv[1]);
    if (!d.ok()) {
      std::fprintf(stderr, "open failed: %s\n", d.status().ToString().c_str());
      return 1;
    }
    db = std::move(d).value();
    execute = [&](const std::string& sql) { return db->Execute(sql); };
  }

  if (argc >= 4 && std::strcmp(argv[2], "-c") == 0) {
    return RunStatement(execute, db.get(), argv[3]) == 1 ? 0 : 0;
  }

  std::printf("jaguar shell — \\tables, \\udfs, \\quit\n");
  std::string line;
  while (true) {
    std::printf("jaguar> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    line = Trim(line);
    if (line.empty()) continue;
    if (RunStatement(execute, db.get(), line) == 1) break;
  }
  return 0;
}
