// jjc — the JJava compiler driver.
//
// Usage:
//   jjc <source.jj> [-o out.jclass]     compile to a class file
//   jjc <source.jj> --dis               compile, verify, print disassembly
//   jjc <source.jj> --run Class.method [int args...]
//                                       compile + run in a local JagVM

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "jjc/jjc.h"
#include "jvm/class_loader.h"
#include "jvm/verifier.h"
#include "jvm/vm.h"

using namespace jaguar;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <source.jj> [-o out.jclass | --dis | "
                 "--run Class.method [args...]]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  Result<jvm::ClassFile> cf = jjc::Compile(buffer.str());
  if (!cf.ok()) {
    std::fprintf(stderr, "%s\n", cf.status().ToString().c_str());
    return 1;
  }
  Result<jvm::VerifiedClass> verified = jvm::Verify(*cf);
  if (!verified.ok()) {
    std::fprintf(stderr, "verification: %s\n",
                 verified.status().ToString().c_str());
    return 1;
  }

  if (argc >= 3 && std::strcmp(argv[2], "--dis") == 0) {
    for (const jvm::VerifiedMethod& m : verified->methods) {
      std::printf("method %s %s  locals=%u stack=%u\n", m.name.c_str(),
                  m.sig.ToString().c_str(), m.max_locals, m.max_stack);
      std::printf("%s\n", jvm::Disassemble(m.code).c_str());
    }
    return 0;
  }

  if (argc >= 4 && std::strcmp(argv[2], "--run") == 0) {
    std::string entry = argv[3];
    size_t dot = entry.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr, "--run needs Class.method\n");
      return 2;
    }
    jvm::Jvm vm;
    auto bytes = cf->Serialize();
    if (!vm.system_loader()->LoadClass(Slice(bytes)).ok()) return 1;
    jvm::SecurityManager security;  // default-deny; no natives locally
    jvm::ExecContext ctx(&vm, vm.system_loader(), &security, {});
    std::vector<int64_t> args;
    for (int i = 4; i < argc; ++i) args.push_back(atoll(argv[i]));
    Result<int64_t> r =
        ctx.CallStatic(entry.substr(0, dot), entry.substr(dot + 1), args);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%lld\n", static_cast<long long>(*r));
    return 0;
  }

  std::string out_path = std::string(argv[1]) + "class";
  if (argc >= 4 && std::strcmp(argv[2], "-o") == 0) out_path = argv[3];
  auto bytes = cf->Serialize();
  std::ofstream out(out_path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s (%zu bytes, class %s, %zu methods)\n",
              out_path.c_str(), bytes.size(), cf->class_name.c_str(),
              cf->methods.size());
  return 0;
}
