// Table 1 — The design space for server-side UDFs, with measured one-line
// summaries for each implemented cell plus the qualitative security /
// portability assessment the paper develops in Sections 3 and 6.

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table 1 - Design space for server-side UDFs",
              "Rows: language; columns: process placement (paper, Section 3.2)");

  std::printf(
      "\n"
      "                     | Same process              | Different process\n"
      " --------------------+---------------------------+--------------------------\n"
      " Native (C++)        | Design 1 (C++ integrated) | Design 2 (C++ isolated)\n"
      " Non-native (JJava)  | Design 3 (JagVM, \"JNI\")   | Design 4 (JagVM in an\n"
      "                     |                           |  isolated process, \"IJNI\")\n\n"
      " The paper only extrapolates Design 4; jaguar implements it.\n");

  const int card = 10000;
  auto env = BenchEnv::Create({{"Rel100", 100}}, card);

  struct DesignRow {
    const char* label;
    const char* fn;
    const char* security;
    const char* portability;
  };
  const DesignRow rows[] = {
      {"C++   (Design 1)", "g_cpp",
       "none: can crash/corrupt the server", "server platform only"},
      {"BC++  (D1+checks)", "g_bcpp",
       "bounds only; no isolation", "server platform only"},
      {"SFI   (D1+masking)", "g_sfi",
       "memory confined to sandbox", "server platform only"},
      {"IC++  (Design 2)", "g_icpp",
       "OS isolation; can still abuse syscalls", "server platform only"},
      {"JNI   (Design 3)", "g_jni",
       "verified + security mgr + quotas", "portable bytecode"},
      {"IJNI  (Design 4)", "g_ijni",
       "VM sandbox + OS isolation (both)", "portable bytecode"},
  };

  // Measured per-invocation overhead (10,000 no-op calls minus base) and
  // data-access cost (10 passes over 100 bytes x 10,000 invocations).
  double base = env->TimeGeneric("noop_udf", "Rel100", card, 0, 0, 0, 3);
  std::printf(" %-19s %14s %14s   %-38s %s\n", "design", "invoke-us",
              "dataaccess-s", "security", "portability");
  bool measured_ok = true;
  double invoke_cost[6];
  for (int i = 0; i < 6; ++i) {
    double inv =
        std::max(0.0, env->TimeGeneric(rows[i].fn, "Rel100", card, 0, 0, 0,
                                       3) - base);
    double data = env->TimeGeneric(rows[i].fn, "Rel100", card, 0, 10, 0, 2);
    invoke_cost[i] = inv;
    std::printf(" %-19s %14.3f %14.6f   %-38s %s\n", rows[i].label,
                inv / card * 1e6, data, rows[i].security, rows[i].portability);
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = measured_ok;
  ok &= ShapeCheck(invoke_cost[0] <= invoke_cost[3],
                   "Design 1 has the lowest invocation overhead "
                   "(\"essentially hard-coding the UDF into the server\")");
  ok &= ShapeCheck(invoke_cost[4] < invoke_cost[3],
                   "crossing into the VM is cheaper than crossing processes");
  ok &= ShapeCheck(invoke_cost[5] >= invoke_cost[4],
                   "Design 4 pays at least Design 3's boundary (it adds the "
                   "process crossing on top)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
