// Morsel-parallel vectorized aggregation: grouped UDF-sum queries shaped
//
//   SELECT R.id % C, SUM(g(R.ByteArray, 40, 1, 0)) FROM Rel100 R
//   GROUP BY R.id % C
//
// swept over group cardinalities C in {1, 100, 100000} (one global group,
// a few groups, ~one group per row — the partial-merge cost extremes), run
// serially and with 4 workers; plus a UDF-in-aggregate design A/B (C++ /
// IC++ / JNI / IJNI) at C = 100, measuring how each protection boundary
// behaves when its crossings happen inside parallel aggregate workers.
//
// Emits BENCH_agg.json (machine-readable speedups for CI artifacts).
// Shape checks require the morsel-parallel aggregate path to actually run,
// and >= 2x speedup at C = 100 with 4 workers; the speedup check is skipped
// on hosts with fewer than 4 cores.

#include <thread>

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

std::string GroupedSumQuery(const std::string& fn, int64_t groups) {
  // The group key is written identically in the select item and the GROUP
  // BY clause — the engine's textual-match rule.
  return StringPrintf(
      "SELECT R.id %% %lld, SUM(%s(R.ByteArray, 40, 1, 0)) FROM Rel100 R "
      "GROUP BY R.id %% %lld",
      static_cast<long long>(groups), fn.c_str(),
      static_cast<long long>(groups));
}

int Run() {
  const int rows = FullScale() ? 100000 : 20000;
  const size_t workers = 4;
  const unsigned cores = std::thread::hardware_concurrency();
  const int repeats = 3;
  PrintHeader(
      "Parallel aggregation - grouped UDF sums",
      StringPrintf("SUM over %d generic-UDF values (indep=40) on Rel100, "
                   "grouped; 1 worker vs %zu workers (host has %u cores)",
                   rows, workers, cores));

  DatabaseOptions serial_options;
  serial_options.vectorized_execution = true;
  serial_options.batch_size = 256;
  serial_options.num_workers = 1;
  DatabaseOptions parallel_options = serial_options;
  parallel_options.num_workers = workers;

  auto serial_env = BenchEnv::Create({{"Rel100", 100}}, rows, serial_options);
  auto parallel_env =
      BenchEnv::Create({{"Rel100", 100}}, rows, parallel_options);

  // Sweep 1: group-count extremes with the in-process C++ UDF.
  const std::vector<int64_t> group_counts = {1, 100, 100000};
  std::vector<double> sweep_serial, sweep_parallel, sweep_speedup;
  PrintSeriesHeader("groups", {"serial s", "parallel s", "speedup"});
  for (int64_t groups : group_counts) {
    const std::string sql = GroupedSumQuery("g_cpp", groups);
    double s = serial_env->TimeQueryMin(sql, repeats);
    double p = parallel_env->TimeQueryMin(sql, repeats);
    sweep_serial.push_back(s);
    sweep_parallel.push_back(p);
    sweep_speedup.push_back(p > 0 ? s / p : 0);
    std::printf("%12lld %12.6f %12.6f %11.2fx\n",
                static_cast<long long>(groups), s, p, sweep_speedup.back());
  }
  // Shape evidence while the parallel delta is fresh: the last sweep query
  // must have taken the morsel-parallel aggregate path.
  const obs::MetricsSnapshot sweep_delta = parallel_env->last_metrics_delta();

  // Sweep 2: the same grouped sum at C = 100 across UDF designs — each
  // design's boundary is crossed once per batch inside every worker.
  const std::vector<std::string> designs = {"C++", "IC++", "JNI", "IJNI"};
  const std::vector<std::string> fns = {"g_cpp", "g_icpp", "g_jni", "g_ijni"};
  std::vector<double> design_serial, design_parallel, design_speedup;
  std::printf("\n");
  PrintSeriesHeader("design", {"serial s", "parallel s", "speedup"});
  for (size_t f = 0; f < fns.size(); ++f) {
    const std::string sql = GroupedSumQuery(fns[f], 100);
    double s = serial_env->TimeQueryMin(sql, repeats);
    double p = parallel_env->TimeQueryMin(sql, repeats);
    design_serial.push_back(s);
    design_parallel.push_back(p);
    design_speedup.push_back(p > 0 ? s / p : 0);
    std::printf("%12s %12.6f %12.6f %11.2fx\n", designs[f].c_str(), s, p,
                design_speedup.back());
  }

  // Machine-readable artifact for CI trend tracking.
  std::FILE* json = std::fopen("BENCH_agg.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"rows\": %d,\n  \"workers\": %zu,\n"
                 "  \"host_cores\": %u,\n  \"group_sweep\": {\n",
                 rows, workers, cores);
    for (size_t g = 0; g < group_counts.size(); ++g) {
      std::fprintf(json,
                   "    \"%lld\": {\"serial_seconds\": %.6f, "
                   "\"parallel_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   static_cast<long long>(group_counts[g]), sweep_serial[g],
                   sweep_parallel[g], sweep_speedup[g],
                   g + 1 < group_counts.size() ? "," : "");
    }
    std::fprintf(json, "  },\n  \"udf_designs\": {\n");
    for (size_t f = 0; f < fns.size(); ++f) {
      std::fprintf(json,
                   "    \"%s\": {\"serial_seconds\": %.6f, "
                   "\"parallel_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   designs[f].c_str(), design_serial[f], design_parallel[f],
                   design_speedup[f], f + 1 < fns.size() ? "," : "");
    }
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_agg.json\n");
  }

  std::printf("\nShape checks:\n");
  bool ok = true;
  auto agg_parallel = sweep_delta.find("exec.agg.parallel_queries");
  ok &= ShapeCheck(agg_parallel != sweep_delta.end() &&
                       agg_parallel->second > 0,
                   "aggregation took the morsel-driven parallel path");
  auto merges = sweep_delta.find("exec.agg.partial_merges");
  ok &= ShapeCheck(merges != sweep_delta.end() && merges->second > 0,
                   "per-morsel partial aggregators were merged");
  if (cores < workers) {
    std::printf("  [SKIP] speedup checks need >= %zu cores (host has %u)\n",
                workers, cores);
    return ok ? 0 : 1;
  }
  ok &= ShapeCheck(
      sweep_speedup[1] >= 2.0,
      StringPrintf("grouped sum (C=100) 4-worker speedup >= 2x (got %.2fx)",
                   sweep_speedup[1]));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
