// Ablation: software fault isolation overhead (Sections 2.3 and 4).
//
// The paper, citing Wahbe et al., "expects such a mechanism to add an
// overhead of approximately 25%" to native UDFs. This bench measures our
// source-level SFI (address masking into an aligned sandbox) on the generic
// UDF's data-access loop, against plain native access and explicitly
// bounds-checked access.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "sfi/sfi.h"

namespace jaguar {
namespace {

constexpr size_t kDataLen = 1 << 16;

inline void Opaque(int64_t& v) { asm volatile("" : "+r"(v)); }
inline void Opaque(uint64_t& v) { asm volatile("" : "+r"(v)); }

void BM_NativeByteLoop(benchmark::State& state) {
  Random rng(1);
  auto data = rng.Bytes(kDataLen);
  const uint8_t* p = data.data();
  for (auto _ : state) {
    int64_t acc = 0;
    for (uint64_t j = 0; j < kDataLen; ++j) {
      acc += p[j];
      Opaque(acc);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * kDataLen);
}
BENCHMARK(BM_NativeByteLoop);

void BM_BoundsCheckedByteLoop(benchmark::State& state) {
  Random rng(1);
  auto data = rng.Bytes(kDataLen);
  const uint8_t* p = data.data();
  const uint64_t n = kDataLen;
  for (auto _ : state) {
    int64_t acc = 0;
    for (uint64_t j = 0; j < n; ++j) {
      uint64_t jj = j;
      Opaque(jj);
      if (jj >= n) break;
      acc += p[jj];
      Opaque(acc);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * kDataLen);
}
BENCHMARK(BM_BoundsCheckedByteLoop);

void BM_SfiMaskedByteLoop(benchmark::State& state) {
  auto region_or = sfi::SfiRegion::Create(17);  // 128 KB
  JAGUAR_CHECK(region_or.ok());
  sfi::SfiRegion region = std::move(region_or).value();
  Random rng(1);
  auto data = rng.Bytes(kDataLen);
  JAGUAR_CHECK(region.CopyIn(0, data.data(), data.size()).ok());
  for (auto _ : state) {
    int64_t acc = 0;
    for (uint64_t j = 0; j < kDataLen; ++j) {
      uint64_t jj = j;
      Opaque(jj);  // opaque address, as rewritten untrusted code would have
      acc += region.LoadByte(jj);
      Opaque(acc);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * kDataLen);
}
BENCHMARK(BM_SfiMaskedByteLoop);

void BM_SfiMaskedStoreLoop(benchmark::State& state) {
  auto region_or = sfi::SfiRegion::Create(17);
  JAGUAR_CHECK(region_or.ok());
  sfi::SfiRegion region = std::move(region_or).value();
  for (auto _ : state) {
    for (uint64_t j = 0; j < kDataLen; ++j) {
      uint64_t jj = j;
      Opaque(jj);
      region.StoreByte(jj, static_cast<uint8_t>(jj));
    }
    benchmark::DoNotOptimize(region.base());
  }
  state.SetBytesProcessed(state.iterations() * kDataLen);
}
BENCHMARK(BM_SfiMaskedStoreLoop);

}  // namespace
}  // namespace jaguar

BENCHMARK_MAIN();
