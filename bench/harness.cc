#include "bench/harness.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/logging.h"

namespace jaguar {
namespace bench {

std::unique_ptr<BenchEnv> BenchEnv::Create(
    const std::vector<RelationSpec>& relations, int cardinality,
    DatabaseOptions base_options) {
  static int counter = 0;
  auto env = std::unique_ptr<BenchEnv>(new BenchEnv());
  env->cardinality_ = cardinality;
  env->path_ = (std::filesystem::temp_directory_path() /
                ("jaguar_bench_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++) + ".db"))
                   .string();
  std::remove(env->path_.c_str());
  DatabaseOptions options = base_options;
  options.buffer_pool_pages = 32768;  // 256 MB: the paper's tables fit in RAM
  // Keep the WAL rule (write ordering) but skip per-statement fsyncs: the
  // figures measure UDF boundary-crossing costs, not disk sync latency.
  options.wal_fsync = false;
  Result<std::unique_ptr<Database>> db = Database::Open(env->path_, options);
  JAGUAR_CHECK(db.ok()) << db.status();
  env->db_ = std::move(db).value();
  env->Load(relations);
  env->RegisterDesigns();
  return env;
}

BenchEnv::~BenchEnv() {
  db_.reset();
  std::remove(path_.c_str());
  std::remove((path_ + ".wal").c_str());
}

void BenchEnv::Load(const std::vector<RelationSpec>& relations) {
  for (const RelationSpec& rel : relations) {
    Result<QueryResult> r = db_->Execute(
        "CREATE TABLE " + rel.name + " (id INT, ByteArray BYTEARRAY)");
    JAGUAR_CHECK(r.ok()) << r.status();
    const int batch = 250;
    for (int base = 0; base < cardinality_; base += batch) {
      std::string sql = "INSERT INTO " + rel.name + " VALUES ";
      int n = std::min(batch, cardinality_ - base);
      for (int i = 0; i < n; ++i) {
        if (i > 0) sql += ", ";
        sql += StringPrintf("(%d, randbytes(%zu, %d))", base + i,
                            rel.bytearray_size, base + i);
      }
      Result<QueryResult> ins = db_->Execute(sql);
      JAGUAR_CHECK(ins.ok()) << ins.status();
    }
  }
}

void BenchEnv::RegisterDesigns() {
  const std::vector<TypeId> sig = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                                   TypeId::kInt};
  auto must_register = [&](UdfInfo info) {
    Status s = db_->RegisterUdf(std::move(info));
    JAGUAR_CHECK(s.ok() || s.IsAlreadyExists()) << s;
  };
  // g_cpp / g_bcpp resolve straight to the native registry via the
  // catalog-free fallback, but register them anyway so EXPLAIN-style
  // inspection of the catalog shows the full design space.
  must_register({"g_cpp", UdfLanguage::kNative, TypeId::kInt, sig,
                 "generic_udf", {}});
  must_register({"g_bcpp", UdfLanguage::kNativeChecked, TypeId::kInt, sig,
                 "generic_udf_checked", {}});
  must_register({"g_icpp", UdfLanguage::kNativeIsolated, TypeId::kInt, sig,
                 "generic_udf", {}});
  must_register({"g_sfi", UdfLanguage::kNativeSfi, TypeId::kInt, sig,
                 "generic_udf", {}});
  Result<jvm::ClassFile> cf = jjc::Compile(GenericUdfJJavaSource());
  JAGUAR_CHECK(cf.ok()) << cf.status();
  must_register({"g_jni", UdfLanguage::kJJava, TypeId::kInt, sig,
                 "GenericUdf.run", cf->Serialize()});
  must_register({"g_ijni", UdfLanguage::kJJavaIsolated, TypeId::kInt, sig,
                 "GenericUdf.run", cf->Serialize()});
}

double BenchEnv::TimeQuery(const std::string& sql) {
  Stopwatch timer;
  Result<QueryResult> r = db_->Execute(sql);
  double elapsed = timer.ElapsedSeconds();
  JAGUAR_CHECK(r.ok()) << sql << " -> " << r.status();
  last_metrics_delta_ = std::move(r->metrics_delta);
  return elapsed;
}

void BenchEnv::PrintBoundaryCounts(const std::string& label) const {
  for (const auto& [name, value] : last_metrics_delta_) {
    // Only the boundary-crossing families; bufferpool/exec noise would
    // drown the figures' quantities.
    if (name.rfind("udf.", 0) == 0 || name.rfind("ipc.", 0) == 0 ||
        name.rfind("jvm.", 0) == 0) {
      std::printf("  %s %s %llu\n", label.c_str(), name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
}

double BenchEnv::TimeQueryMin(const std::string& sql, int repeats) {
  double best = 1e100;
  for (int i = 0; i < repeats; ++i) {
    best = std::min(best, TimeQuery(sql));
  }
  return best;
}

std::string BenchEnv::GenericQuery(const std::string& fn,
                                   const std::string& rel,
                                   int64_t invocations, int64_t indep,
                                   int64_t dep, int64_t callbacks) const {
  return StringPrintf(
      "SELECT %s(R.ByteArray, %lld, %lld, %lld) FROM %s R WHERE R.id < %lld",
      fn.c_str(), static_cast<long long>(indep), static_cast<long long>(dep),
      static_cast<long long>(callbacks), rel.c_str(),
      static_cast<long long>(invocations));
}

double BenchEnv::TimeGeneric(const std::string& fn, const std::string& rel,
                             int64_t invocations, int64_t indep, int64_t dep,
                             int64_t callbacks, int repeats) {
  return TimeQueryMin(
      GenericQuery(fn, rel, invocations, indep, dep, callbacks), repeats);
}

void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

void PrintSeriesHeader(const std::string& x_label,
                       const std::vector<std::string>& series) {
  std::printf("%12s", x_label.c_str());
  for (const std::string& s : series) std::printf(" %12s", s.c_str());
  std::printf("\n");
}

void PrintSeriesRow(int64_t x, const std::vector<double>& seconds) {
  std::printf("%12lld", static_cast<long long>(x));
  for (double s : seconds) std::printf(" %12.6f", s);
  std::printf("\n");
}

void PrintRelativeRow(int64_t x, const std::vector<double>& ratios) {
  std::printf("%12lld", static_cast<long long>(x));
  for (double r : ratios) std::printf(" %11.2fx", r);
  std::printf("\n");
}

bool ShapeCheck(bool ok, const std::string& description) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", description.c_str());
  return ok;
}

}  // namespace bench
}  // namespace jaguar
