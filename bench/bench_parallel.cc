// Morsel-driven parallel scaling (beyond the paper's single-threaded 1998
// setup): the Figure-6-style computation query — 10,000 invocations of the
// generic UDF with 2,000 data-independent computations each over Rel10000 —
// run serially and with 4 worker threads, for the designs where worker
// concurrency exercises a real boundary:
//
//   C++   in-process function pointers (baseline; embarrassingly parallel)
//   IC++  isolated processes — each worker leases its own pooled executor
//   JNI   in-process JagVM shared by all workers
//   IJNI  isolated JagVM processes, pooled like IC++
//
// Emits BENCH_parallel.json (machine-readable speedups for CI artifacts).
// Shape checks require >= 2x on IC++ and JNI at 4 workers; they are skipped
// on hosts with fewer than 4 cores, where the speedup is not achievable.

#include <thread>

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const int card = 10000;
  const int64_t indep = 2000;
  const size_t workers = 4;
  const unsigned cores = std::thread::hardware_concurrency();
  PrintHeader(
      "Parallel scaling - morsel-driven execution",
      StringPrintf("10,000 generic-UDF invocations (indep=%lld) on Rel10000; "
                   "1 worker vs %zu workers (host has %u cores)",
                   static_cast<long long>(indep), workers, cores));

  DatabaseOptions serial_options;
  serial_options.vectorized_execution = true;
  serial_options.batch_size = 256;
  serial_options.num_workers = 1;
  DatabaseOptions parallel_options = serial_options;
  parallel_options.num_workers = workers;

  auto serial_env =
      BenchEnv::Create({{"Rel10000", 10000}}, card, serial_options);
  auto parallel_env =
      BenchEnv::Create({{"Rel10000", 10000}}, card, parallel_options);

  const std::vector<std::string> designs = {"C++", "IC++", "JNI", "IJNI"};
  const std::vector<std::string> fns = {"g_cpp", "g_icpp", "g_jni", "g_ijni"};
  const int repeats = 3;

  std::vector<double> serial_t, parallel_t, speedup;
  PrintSeriesHeader("design", {"serial s", "parallel s", "speedup"});
  for (size_t f = 0; f < fns.size(); ++f) {
    double s =
        serial_env->TimeGeneric(fns[f], "Rel10000", card, indep, 0, 0, repeats);
    double p = parallel_env->TimeGeneric(fns[f], "Rel10000", card, indep, 0, 0,
                                         repeats);
    serial_t.push_back(s);
    parallel_t.push_back(p);
    speedup.push_back(p > 0 ? s / p : 0);
    std::printf("%12s %12.6f %12.6f %11.2fx\n", designs[f].c_str(), s, p,
                speedup.back());
  }

  // Machine-readable artifact for CI trend tracking.
  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"cardinality\": %d,\n  \"indep_comps\": %lld,\n"
                 "  \"workers\": %zu,\n  \"host_cores\": %u,\n"
                 "  \"designs\": {\n",
                 card, static_cast<long long>(indep), workers, cores);
    for (size_t f = 0; f < fns.size(); ++f) {
      std::fprintf(json,
                   "    \"%s\": {\"serial_seconds\": %.6f, "
                   "\"parallel_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   designs[f].c_str(), serial_t[f], parallel_t[f], speedup[f],
                   f + 1 < fns.size() ? "," : "");
    }
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_parallel.json\n");
  }

  std::printf("\nShape checks:\n");
  bool ok = true;
  // The parallel path must actually have run (not fallen back to serial).
  auto it = parallel_env->last_metrics_delta().find("exec.parallel.queries");
  ok &= ShapeCheck(
      it != parallel_env->last_metrics_delta().end() && it->second > 0,
      "queries took the morsel-driven parallel path");
  if (cores < workers) {
    std::printf("  [SKIP] speedup checks need >= %zu cores (host has %u)\n",
                workers, cores);
    return ok ? 0 : 1;
  }
  ok &= ShapeCheck(speedup[1] >= 2.0,
                   StringPrintf("IC++ 4-worker speedup >= 2x (got %.2fx): "
                                "pooled executors cross concurrently",
                                speedup[1]));
  ok &= ShapeCheck(speedup[2] >= 2.0,
                   StringPrintf("JNI 4-worker speedup >= 2x (got %.2fx): "
                                "workers share one JagVM",
                                speedup[2]));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
