// Ablation: JIT vs interpretation vs native (Section 5.3's enabling claim).
//
// The paper's Figure 6 result — Java arithmetic keeping pace with C++ —
// "essentially [is] the result of a good JIT compiler". This bench isolates
// that claim on the JagVM substrate: the same integer-add loop (a) native
// with the opaque-barrier discipline, (b) JagVM JIT-compiled, (c) JagVM
// interpreted. Expect interpret >> jit ~ native.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "jjc/jjc.h"
#include "jvm/class_loader.h"
#include "jvm/vm.h"

namespace jaguar {
namespace {

constexpr int64_t kIterations = 1 << 16;

const char* kLoopSource = R"(
class Loop {
  static int run(int n) {
    int acc = 0;
    int i = 0;
    while (i < n) {
      acc = acc + i;
      i = i + 1;
    }
    return acc;
  }
})";

struct VmFixture {
  explicit VmFixture(bool jit, bool budget_checks = true) {
    jvm::JvmOptions opts;
    opts.enable_jit = jit;
    opts.jit_budget_checks = budget_checks;
    vm = std::make_unique<jvm::Jvm>(opts);
    auto cf = jjc::Compile(kLoopSource);
    JAGUAR_CHECK(cf.ok()) << cf.status();
    JAGUAR_CHECK(vm->system_loader()->LoadClass(Slice(cf->Serialize())).ok());
    security = jvm::SecurityManager::AllowAll();
  }

  int64_t Run(int64_t n) {
    jvm::ExecContext ctx(vm.get(), vm->system_loader(), &security, {});
    Result<int64_t> r = ctx.CallStatic("Loop", "run", {n});
    JAGUAR_CHECK(r.ok()) << r.status();
    return *r;
  }

  std::unique_ptr<jvm::Jvm> vm;
  jvm::SecurityManager security;
};

void BM_NativeAddLoop(benchmark::State& state) {
  for (auto _ : state) {
    int64_t acc = 0;
    for (int64_t i = 0; i < kIterations; ++i) {
      acc += i;
      asm volatile("" : "+r"(acc));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kIterations);
}
BENCHMARK(BM_NativeAddLoop);

void BM_JagVmJit(benchmark::State& state) {
  VmFixture fixture(/*jit=*/true);
  fixture.Run(kIterations);  // warm the code cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run(kIterations));
  }
  state.SetItemsProcessed(state.iterations() * kIterations);
}
BENCHMARK(BM_JagVmJit);

void BM_JagVmJitNoBudgetChecks(benchmark::State& state) {
  VmFixture fixture(/*jit=*/true, /*budget_checks=*/false);
  fixture.Run(kIterations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run(kIterations));
  }
  state.SetItemsProcessed(state.iterations() * kIterations);
}
BENCHMARK(BM_JagVmJitNoBudgetChecks);

void BM_JagVmInterpreter(benchmark::State& state) {
  VmFixture fixture(/*jit=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run(kIterations));
  }
  state.SetItemsProcessed(state.iterations() * kIterations);
}
BENCHMARK(BM_JagVmInterpreter);

}  // namespace
}  // namespace jaguar

BENCHMARK_MAIN();
