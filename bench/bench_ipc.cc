// IPC transport microbenchmark: the zero-copy shared-memory ring against the
// copying semaphore-per-message channel, at two levels.
//
//  1. Raw channel: parent streams payloads of 64 B .. 512 KB to a forked
//     echo child that answers each with an 8-byte FNV checksum. This models
//     the UDF argument path — bulk one way, tiny result back. The ring
//     serializes into shared memory in place and the child reads in place
//     (zero large copies); the message channel pays copy-in + copy-out per
//     crossing plus four semaphore syscalls.
//  2. Runner level: IsolatedNativeRunner::InvokeBatch of 256 rows x 8 KB
//     through a real executor pool, ring vs message, exercising the
//     serialize-into-ring batch codec and depth-2 pipelining.
//
// Emits BENCH_ipc.json. Shape checks: ring >= 1.5x message throughput on
// large payloads/batches, and the ring's park count (voluntary syscall
// sleeps) must be far below the message channel's per-crossing syscall
// count. JAGUAR_BENCH_IPC_ITERS overrides the per-size iteration count for
// CI smoke runs.

#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstring>
#include <thread>

#include "bench/harness.h"
#include "common/clock.h"
#include "ipc/channel.h"
#include "udf/isolated_udf_runner.h"
#include "udf/udf.h"

namespace jaguar {
namespace bench {
namespace {

uint64_t Fnv1a(const uint8_t* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Checksum of the payload's first and last 64 bytes: enough to catch
/// framing/wraparound corruption without a full read pass, whose cost both
/// transports would pay equally and which would mask the copy savings this
/// bench exists to measure.
uint64_t EdgeChecksum(const uint8_t* data, size_t len) {
  uint64_t h = 1469598103934665603ull;
  size_t head = len < 64 ? len : 64;
  h = Fnv1a(data, head, h);
  if (len > 64) {
    size_t tail = len - 64 < 64 ? len - 64 : 64;
    h = Fnv1a(data + len - tail, tail, h);
  }
  return h;
}

int IterationsFor(size_t payload) {
  if (const char* env = std::getenv("JAGUAR_BENCH_IPC_ITERS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  // Keep per-size wall time roughly constant: ~32 MB of traffic per point,
  // floor of 400 round trips for the small sizes.
  int n = static_cast<int>((32u << 20) / payload);
  if (n < 400) n = 400;
  if (n > 20000) n = 20000;
  return FullScale() ? n * 4 : n;
}

/// Forks an echo-checksum child on `channel`. The child answers every
/// kRequest with the FNV-64 of its payload and exits on kShutdown.
pid_t ForkChecksumChild(ipc::Channel* channel) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (;;) {
    auto view = channel->ReceiveViewInChild();
    if (!view.ok()) ::_exit(1);
    if (view->first == ipc::MsgType::kShutdown) ::_exit(0);
    uint64_t sum = EdgeChecksum(view->second.data(), view->second.size());
    channel->ReleaseInChild();
    uint8_t reply[8];
    std::memcpy(reply, &sum, sizeof(sum));
    if (!channel->SendToParent(ipc::MsgType::kResult, Slice(reply, 8)).ok()) {
      ::_exit(2);
    }
  }
}

/// One transport x payload-size point: round trips/s and MB/s (payload
/// direction only).
struct EchoPoint {
  double seconds = 0;
  double mbps = 0;
  double trips_per_s = 0;
};

EchoPoint RunEcho(ipc::Transport transport, size_t payload_size, int iters) {
  auto channel = ipc::Channel::Create(transport, 1 << 20).value();
  pid_t child = ForkChecksumChild(channel.get());

  std::vector<uint8_t> staging(payload_size);
  for (size_t i = 0; i < payload_size; ++i) {
    staging[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint64_t expect = EdgeChecksum(staging.data(), staging.size());

  Stopwatch timer;
  for (int i = 0; i < iters; ++i) {
    if (channel->zero_copy()) {
      // The real producer serializes in place; writing the pattern into the
      // reservation stands in for that serialization pass.
      uint8_t* buf = channel->PrepareToChild(payload_size).value();
      std::memcpy(buf, staging.data(), payload_size);
      if (!channel->CommitToChild(ipc::MsgType::kRequest, payload_size)
               .ok()) {
        std::abort();
      }
    } else {
      if (!channel->SendToChild(ipc::MsgType::kRequest, Slice(staging)).ok()) {
        std::abort();
      }
    }
    auto reply = channel->ReceiveViewInParent().value();
    uint64_t sum;
    std::memcpy(&sum, reply.second.data(), sizeof(sum));
    channel->ReleaseInParent();
    if (sum != expect) std::abort();
  }
  EchoPoint point;
  point.seconds = timer.ElapsedSeconds();
  point.trips_per_s = iters / point.seconds;
  point.mbps = (static_cast<double>(iters) * payload_size) /
               (point.seconds * (1 << 20));

  (void)channel->SendToChild(ipc::MsgType::kShutdown, Slice());
  int wstatus = 0;
  ::waitpid(child, &wstatus, 0);
  return point;
}

/// Runner-level batch point: rows/s for InvokeBatch of `rows` x `row_bytes`.
double RunBatch(ipc::Transport transport, int rows, size_t row_bytes,
                int repeats) {
  RegisterGenericUdfs();
  auto runner =
      IsolatedNativeRunner::Spawn(
          "generic_udf", TypeId::kInt,
          {TypeId::kBytes, TypeId::kInt, TypeId::kInt, TypeId::kInt},
          /*shm_capacity=*/8u << 20, /*pool_size=*/1, transport)
          .value();
  std::vector<std::vector<Value>> batch;
  for (int i = 0; i < rows; ++i) {
    std::vector<uint8_t> bytes(row_bytes,
                               static_cast<uint8_t>(i * 37 + 1));
    batch.push_back({Value::Bytes(std::move(bytes)), Value::Int(1),
                     Value::Int(1), Value::Int(0)});
  }
  UdfContext ctx(nullptr);
  // Warm up (spawn + page faults), then time the best of `repeats`.
  if (!runner->InvokeBatch(batch, &ctx).ok()) std::abort();
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer;
    auto result = runner->InvokeBatch(batch, &ctx);
    double s = timer.ElapsedSeconds();
    if (!result.ok() || result->size() != batch.size()) std::abort();
    if (s < best) best = s;
  }
  return rows / best;
}

uint64_t MetricValue(const obs::MetricsSnapshot& snap,
                     const std::string& name) {
  auto it = snap.find(name);
  return it == snap.end() ? 0 : it->second;
}

int Run() {
  const std::vector<size_t> sizes = {64, 4096, 65536, 512 * 1024};
  PrintHeader("IPC transport - ring vs message",
              "echo round trips (bulk payload out, 8-byte checksum back) "
              "and isolated-UDF InvokeBatch, per transport");

  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();

  PrintSeriesHeader("payload B",
                    {"ring MB/s", "message MB/s", "ratio", "trips/s ring"});
  std::vector<EchoPoint> ring_points, message_points;
  obs::MetricsSnapshot before_ring = reg->Snapshot("ipc.");
  for (size_t size : sizes) {
    ring_points.push_back(
        RunEcho(ipc::Transport::kRing, size, IterationsFor(size)));
  }
  obs::MetricsSnapshot ring_delta =
      obs::SnapshotDelta(before_ring, reg->Snapshot("ipc."));

  obs::MetricsSnapshot before_message = reg->Snapshot("ipc.");
  for (size_t size : sizes) {
    message_points.push_back(
        RunEcho(ipc::Transport::kMessage, size, IterationsFor(size)));
  }
  obs::MetricsSnapshot message_delta =
      obs::SnapshotDelta(before_message, reg->Snapshot("ipc."));

  for (size_t i = 0; i < sizes.size(); ++i) {
    double ratio = message_points[i].mbps > 0
                       ? ring_points[i].mbps / message_points[i].mbps
                       : 0;
    std::printf("%10zu %12.1f %12.1f %11.2fx %12.0f\n", sizes[i],
                ring_points[i].mbps, message_points[i].mbps, ratio,
                ring_points[i].trips_per_s);
  }

  // Syscall economy: every message-transport crossing is >= 2 semaphore
  // syscalls; the ring only syscalls when a side actually parks.
  const uint64_t ring_parks = MetricValue(ring_delta, "ipc.ring.parks");
  const uint64_t ring_crossings = MetricValue(ring_delta, "ipc.shm.messages");
  const uint64_t message_crossings =
      MetricValue(message_delta, "ipc.shm.messages");
  std::printf("\nring: %" PRIu64 " crossings, %" PRIu64
              " parks (%.1f%% parked); message: %" PRIu64
              " crossings = >= %" PRIu64 " semaphore syscalls\n",
              ring_crossings, ring_parks,
              ring_crossings > 0 ? 100.0 * ring_parks / ring_crossings : 0.0,
              message_crossings, 2 * message_crossings);

  const int batch_rows = 256;
  const size_t row_bytes = 8192;
  const int repeats = FullScale() ? 9 : 3;
  double ring_rows_s = RunBatch(ipc::Transport::kRing, batch_rows, row_bytes,
                                repeats);
  double message_rows_s =
      RunBatch(ipc::Transport::kMessage, batch_rows, row_bytes, repeats);
  double batch_ratio = message_rows_s > 0 ? ring_rows_s / message_rows_s : 0;
  std::printf("\nInvokeBatch %d rows x %zu B: ring %.0f rows/s, message "
              "%.0f rows/s (%.2fx)\n",
              batch_rows, row_bytes, ring_rows_s, message_rows_s, batch_ratio);

  std::FILE* json = std::fopen("BENCH_ipc.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"echo\": {\n");
    for (size_t i = 0; i < sizes.size(); ++i) {
      double ratio = message_points[i].mbps > 0
                         ? ring_points[i].mbps / message_points[i].mbps
                         : 0;
      std::fprintf(json,
                   "    \"%zu\": {\"ring_mbps\": %.2f, \"message_mbps\": "
                   "%.2f, \"ratio\": %.3f, \"ring_trips_per_s\": %.0f}%s\n",
                   sizes[i], ring_points[i].mbps, message_points[i].mbps,
                   ratio, ring_points[i].trips_per_s,
                   i + 1 < sizes.size() ? "," : "");
    }
    std::fprintf(json,
                 "  },\n  \"ring_parks\": %" PRIu64
                 ",\n  \"ring_crossings\": %" PRIu64
                 ",\n  \"message_crossings\": %" PRIu64
                 ",\n  \"batch\": {\"rows\": %d, \"row_bytes\": %zu, "
                 "\"ring_rows_per_s\": %.0f, \"message_rows_per_s\": %.0f, "
                 "\"ratio\": %.3f}\n}\n",
                 ring_parks, ring_crossings, message_crossings, batch_rows,
                 row_bytes, ring_rows_s, message_rows_s, batch_ratio);
    std::fclose(json);
    std::printf("\nwrote BENCH_ipc.json\n");
  }

  std::printf("\nShape checks:\n");
  bool ok = true;
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 2) {
    // On one CPU every crossing is a mandatory context switch for BOTH
    // transports — the producer cannot run while the consumer does — so the
    // ring's zero-syscall, overlap-friendly fast path has no room to show
    // its advantage and the waiter parks on every crossing. The comparisons
    // below are only meaningful with real concurrency.
    std::printf("  [SKIP] transport ratio checks need >= 2 cores (host has "
                "%u)\n",
                cores);
    return 0;
  }
  const size_t last = sizes.size() - 1;
  double large_ratio = message_points[last].mbps > 0
                           ? ring_points[last].mbps / message_points[last].mbps
                           : 0;
  ok &= ShapeCheck(large_ratio >= 1.5,
                   StringPrintf("ring >= 1.5x message at %zu B payloads "
                                "(got %.2fx): zero-copy beats copy-twice",
                                sizes[last], large_ratio));
  ok &= ShapeCheck(batch_ratio >= 1.5,
                   StringPrintf("ring >= 1.5x message on %d x %zu B "
                                "InvokeBatch (got %.2fx)",
                                batch_rows, row_bytes, batch_ratio));
  ok &= ShapeCheck(
      ring_parks * 10 < 2 * message_crossings,
      StringPrintf("ring parks (%" PRIu64 ") are < 10%% of the message "
                   "transport's semaphore syscalls (%" PRIu64 ")",
                   ring_parks, 2 * message_crossings));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
