// Buffer-pool scalability sweep: hot-cache fetch throughput under 1 vs 4
// worker threads, with the shard count ablated (1 shard reproduces the old
// single-latch pool; 0 = auto sharding), plus a cold sequential scan with
// readahead on/off and a duplicate-read-suppression probe.
//
// Runs against a raw DiskManager + BufferPool (no SQL layer) so the numbers
// isolate the page-cache path: latch acquisition, page-table lookup, clock
// maintenance and miss I/O.
//
// Emits BENCH_bufferpool.json (machine-readable numbers for CI artifacts).
// Shape checks require concurrent misses of one page to issue exactly one
// disk read, and — on machines with >= 4 cores — the 4-worker hot-cache
// sweep to beat the single-shard pool by >= 2x. Below 4 cores the scaling
// check is skipped (a single core cannot exhibit latch parallelism).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/clock.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace jaguar {
namespace bench {
namespace {

struct HotResult {
  size_t shards = 0;
  size_t workers = 0;
  double seconds = 0;
  double fetches_per_sec = 0;
};

/// Times `iters` hot-cache fetches per worker. Every page fits in the pool,
/// so after warm-up each fetch is a pure latch + page-table + pin round trip.
HotResult TimeHotFetches(DiskManager* dm, size_t pages, size_t shards,
                         size_t workers, size_t iters) {
  BufferPoolConfig config;
  config.shards = shards;
  config.workers_hint = workers;
  config.readahead_pages = 0;  // isolate the fetch path
  BufferPool pool(dm, pages, /*wal=*/nullptr, config);
  for (PageId id = 0; id < pages; ++id) {
    auto g = pool.FetchPage(id);
    if (!g.ok()) {
      std::fprintf(stderr, "warm-up fetch failed: %s\n",
                   g.status().ToString().c_str());
      std::exit(1);
    }
  }

  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // Per-worker stride walk: co-prime stride covers all pages while
      // spreading concurrent workers across shards.
      PageId id = (w * 977) % pages;
      const PageId stride = 769 % pages;
      for (size_t i = 0; i < iters; ++i) {
        auto g = pool.FetchPage(id);
        if (!g.ok() || g.value().data()[0] != 0) std::abort();
        id = (id + stride) % pages;
      }
    });
  }
  while (ready.load() < workers) std::this_thread::yield();
  Stopwatch clock;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  HotResult r;
  r.shards = pool.num_shards();
  r.workers = workers;
  r.seconds = clock.ElapsedSeconds();
  r.fetches_per_sec =
      r.seconds > 0 ? static_cast<double>(iters * workers) / r.seconds : 0;
  return r;
}

struct ScanResult {
  double seconds = 0;
  uint64_t readahead_issued = 0;
  uint64_t readahead_hits = 0;
};

/// Sequentially fetches all `pages` through a pool far smaller than the
/// relation, hinting `depth` pages ahead (the TableHeap/morsel scan pattern).
ScanResult TimeColdScan(DiskManager* dm, size_t pages, size_t depth) {
  BufferPoolConfig config;
  config.readahead_pages = depth;
  BufferPool pool(dm, std::max<size_t>(64, pages / 16), /*wal=*/nullptr,
                  config);
  std::vector<PageId> ids(pages);
  for (size_t i = 0; i < pages; ++i) ids[i] = static_cast<PageId>(i);

  Stopwatch clock;
  for (size_t p = 0; p < pages; ++p) {
    if (depth > 0 && p + 1 < pages) {
      pool.Prefetch(&ids[p + 1], std::min(depth, pages - p - 1));
    }
    auto g = pool.FetchPage(ids[p]);
    if (!g.ok()) {
      std::fprintf(stderr, "scan fetch failed: %s\n",
                   g.status().ToString().c_str());
      std::exit(1);
    }
  }
  ScanResult r;
  r.seconds = clock.ElapsedSeconds();
  r.readahead_issued = pool.readahead_issued();
  r.readahead_hits = pool.readahead_hits();
  return r;
}

/// 8 threads barrier-fetch the same uncached page; returns the disk-read
/// delta (must be 1: the miss coalescing contract).
uint64_t DuplicateReadProbe(DiskManager* dm, PageId target) {
  BufferPoolConfig config;
  config.workers_hint = 8;
  config.readahead_pages = 0;
  BufferPool pool(dm, 16, /*wal=*/nullptr, config);
  const uint64_t reads_before = dm->reads();
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto g = pool.FetchPage(target);
      if (!g.ok()) std::abort();
    });
  }
  while (ready.load() < 8) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return dm->reads() - reads_before;
}

int Run() {
  const size_t pages = FullScale() ? 16384 : 2048;
  const size_t iters = FullScale() ? 2000000 : 200000;
  const unsigned cores = std::thread::hardware_concurrency();
  PrintHeader(
      "Buffer pool - shard scaling, readahead, miss coalescing",
      StringPrintf("%zu pages; hot fetch matrix (1 vs auto shards x 1 vs 4 "
                   "workers, %zu fetches/worker) on %u cores",
                   pages, iters, cores));

  const std::string path = "bench_bufferpool.db";
  std::remove(path.c_str());
  DiskManager dm;
  if (!dm.Open(path).ok() ||
      !dm.EnsureSize(static_cast<uint32_t>(pages)).ok()) {
    std::fprintf(stderr, "failed to create %s\n", path.c_str());
    return 1;
  }

  // Hot-cache fetch matrix: shards x workers.
  std::vector<HotResult> hot;
  PrintSeriesHeader("shards", {"workers", "seconds", "Mfetch/s"});
  for (size_t shards : {size_t{1}, size_t{0}}) {  // 0 = auto
    for (size_t workers : {size_t{1}, size_t{4}}) {
      HotResult r = TimeHotFetches(&dm, pages, shards, workers, iters);
      hot.push_back(r);
      std::printf("%12zu %12zu %12.6f %12.2f\n", r.shards, r.workers,
                  r.seconds, r.fetches_per_sec / 1e6);
    }
  }

  // Cold sequential scan, readahead off vs on.
  ScanResult no_ra = TimeColdScan(&dm, pages, 0);
  ScanResult ra = TimeColdScan(&dm, pages, 8);
  std::printf("\ncold scan of %zu pages through a %zu-frame pool:\n", pages,
              std::max<size_t>(64, pages / 16));
  std::printf("  readahead off  %10.6f s\n", no_ra.seconds);
  std::printf("  readahead 8    %10.6f s  (issued %llu, hits %llu)\n",
              ra.seconds, static_cast<unsigned long long>(ra.readahead_issued),
              static_cast<unsigned long long>(ra.readahead_hits));

  const uint64_t dup_reads = DuplicateReadProbe(&dm, pages / 2);
  std::printf("\n8-thread concurrent miss of one page: %llu disk read(s)\n",
              static_cast<unsigned long long>(dup_reads));

  // Machine-readable artifact for CI trend tracking.
  std::FILE* json = std::fopen("BENCH_bufferpool.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"pages\": %zu,\n  \"cores\": %u,\n", pages,
                 cores);
    std::fprintf(json, "  \"hot_fetch\": {\n");
    for (size_t i = 0; i < hot.size(); ++i) {
      std::fprintf(json,
                   "    \"shards%zu_workers%zu\": {\"seconds\": %.6f, "
                   "\"fetches_per_sec\": %.0f}%s\n",
                   hot[i].shards, hot[i].workers, hot[i].seconds,
                   hot[i].fetches_per_sec, i + 1 < hot.size() ? "," : "");
    }
    std::fprintf(json,
                 "  },\n  \"cold_scan\": {\n"
                 "    \"readahead_off_seconds\": %.6f,\n"
                 "    \"readahead_on_seconds\": %.6f,\n"
                 "    \"readahead_issued\": %llu,\n"
                 "    \"readahead_hits\": %llu\n  },\n",
                 no_ra.seconds, ra.seconds,
                 static_cast<unsigned long long>(ra.readahead_issued),
                 static_cast<unsigned long long>(ra.readahead_hits));
    std::fprintf(json, "  \"duplicate_read_suppression\": %llu\n}\n",
                 static_cast<unsigned long long>(dup_reads));
    std::fclose(json);
    std::printf("wrote BENCH_bufferpool.json\n");
  }

  std::printf("\nShape checks:\n");
  bool ok = true;
  ok &= ShapeCheck(dup_reads == 1,
                   "concurrent misses of one page issue exactly one read");
  ok &= ShapeCheck(ra.readahead_issued > 0 && ra.readahead_hits > 0,
                   "readahead issues prefetches that later fetches hit");
  // hot[1] = 1 shard / 4 workers, hot[3] = auto shards / 4 workers.
  const double speedup =
      hot[3].seconds > 0 ? hot[1].seconds / hot[3].seconds : 0;
  if (cores >= 4) {
    ok &= ShapeCheck(
        speedup >= 2.0,
        StringPrintf("4-worker hot cache: auto shards beat 1 shard >= 2x "
                     "(got %.2fx)",
                     speedup));
  } else {
    std::printf("SKIP  shard-scaling >= 2x check (needs >= 4 cores, have %u; "
                "measured %.2fx)\n",
                cores, speedup);
  }

  dm.Close();
  std::remove(path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
