// Ablation: amortizing per-invocation boundary costs by batching
// (Section 2.5: "Since there are several invocations of the UDF in a
// database environment, it may be possible to reduce the overhead through
// batching").
//
// Two boundaries, each measured per-call vs batched:
//  * Design 2's process boundary: N executor round trips of one item vs one
//    round trip carrying N items.
//  * Design 3's language boundary: N CallStatic crossings vs one crossing
//    that loops N times inside the VM.

#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "common/logging.h"
#include "ipc/remote_executor.h"
#include "jjc/jjc.h"
#include "jvm/vm.h"

namespace jaguar {
namespace {

constexpr int kBatch = 256;

// -- Process boundary (Design 2) ---------------------------------------------

Result<std::vector<uint8_t>> SumHandler(Slice request, ipc::Channel*) {
  BufferReader r(request);
  JAGUAR_ASSIGN_OR_RETURN(uint32_t count, BatchCodec::ReadCount(&r));
  int64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(int64_t v, r.ReadI64());
    total += v * v;
  }
  BufferWriter w;
  w.PutI64(total);
  return w.Release();
}

Result<std::vector<uint8_t>> NoCallbacks(Slice) {
  return Internal("no callbacks in this bench");
}

void BM_IpcPerInvocation(benchmark::State& state) {
  auto executor = ipc::RemoteExecutor::Spawn(1 << 16, &SumHandler).value();
  for (auto _ : state) {
    int64_t total = 0;
    for (int i = 0; i < kBatch; ++i) {
      BufferWriter w;
      BatchCodec::WriteCount(&w, 1);
      w.PutI64(i);
      auto result = executor->Execute(w.AsSlice(), &NoCallbacks);
      JAGUAR_CHECK(result.ok());
      BufferReader r((Slice(*result)));
      total += r.ReadI64().value();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_IpcPerInvocation);

void BM_IpcBatched(benchmark::State& state) {
  auto executor = ipc::RemoteExecutor::Spawn(1 << 16, &SumHandler).value();
  for (auto _ : state) {
    BufferWriter w;
    BatchCodec::WriteCount(&w, kBatch);
    for (int i = 0; i < kBatch; ++i) w.PutI64(i);
    auto result = executor->Execute(w.AsSlice(), &NoCallbacks);
    JAGUAR_CHECK(result.ok());
    BufferReader r((Slice(*result)));
    benchmark::DoNotOptimize(r.ReadI64().value());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_IpcBatched);

// -- Language boundary (Design 3) ---------------------------------------------

const char* kVmSource = R"(
class B {
  static int one(int x) { return x * x; }
  static int many(int n) {
    int total = 0;
    int i = 0;
    while (i < n) {
      total = total + one(i);
      i = i + 1;
    }
    return total;
  }
})";

struct VmFixture {
  VmFixture() {
    vm = std::make_unique<jvm::Jvm>();
    auto cf = jjc::Compile(kVmSource);
    JAGUAR_CHECK(cf.ok()) << cf.status();
    JAGUAR_CHECK(vm->system_loader()->LoadClass(Slice(cf->Serialize())).ok());
    security = jvm::SecurityManager::AllowAll();
  }
  std::unique_ptr<jvm::Jvm> vm;
  jvm::SecurityManager security;
};

void BM_VmPerInvocation(benchmark::State& state) {
  VmFixture fixture;
  for (auto _ : state) {
    int64_t total = 0;
    for (int i = 0; i < kBatch; ++i) {
      // A fresh boundary crossing (context + marshalling) per item, as a
      // per-tuple UDF application does.
      jvm::ExecContext ctx(fixture.vm.get(), fixture.vm->system_loader(),
                           &fixture.security, {});
      total += ctx.CallStatic("B", "one", {i}).value_or(0);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_VmPerInvocation);

void BM_VmBatched(benchmark::State& state) {
  VmFixture fixture;
  for (auto _ : state) {
    jvm::ExecContext ctx(fixture.vm.get(), fixture.vm->system_loader(),
                         &fixture.security, {});
    benchmark::DoNotOptimize(ctx.CallStatic("B", "many", {kBatch}).value_or(0));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_VmBatched);

}  // namespace
}  // namespace jaguar

BENCHMARK_MAIN();
