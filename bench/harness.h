#ifndef JAGUAR_BENCH_HARNESS_H_
#define JAGUAR_BENCH_HARNESS_H_

/// \file harness.h
/// Shared infrastructure for the figure-reproduction benchmarks.
///
/// Experimental setup mirroring Section 5.1:
///  * Relations Rel1 / Rel100 / Rel10000 with a `ByteArray` attribute of
///    1 / 100 / 10000 bytes per tuple (plus an `id` column used to vary the
///    number of UDF invocations with a restrictive predicate).
///  * The generic UDF registered under every design:
///      - g_cpp   Design 1, native in-process          ("C++")
///      - g_bcpp  Design 1 + explicit bounds checks    ("BC++", Section 5.4)
///      - g_icpp  Design 2, isolated process            ("IC++")
///      - g_jni   Design 3, JagVM in-process            ("JNI")
///      - g_sfi   Design 1 + SFI masking                ("SFI")
///  * Queries shaped `SELECT g(R.ByteArray, i, d, c) FROM RelN R WHERE
///    R.id < k`.
///
/// Scale: the paper used 10,000 invocations on a 1996 Sparc20. On a modern
/// machine the no-op configurations finish in microseconds, so each figure
/// picks per-point work large enough to measure while keeping the full
/// harness run in minutes. Set JAGUAR_BENCH_SCALE=full for paper-scale runs.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "jjc/jjc.h"
#include "udf/generic_udf.h"

namespace jaguar {
namespace bench {

/// Relation descriptor: name + ByteArray size per tuple.
struct RelationSpec {
  std::string name;
  size_t bytearray_size;
};

inline std::vector<RelationSpec> PaperRelations() {
  return {{"Rel1", 1}, {"Rel100", 100}, {"Rel10000", 10000}};
}

/// True when JAGUAR_BENCH_SCALE=full (paper-scale sweeps).
inline bool FullScale() {
  const char* env = std::getenv("JAGUAR_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

class BenchEnv {
 public:
  /// Builds a fresh database with the given relations at `cardinality`
  /// tuples each, and registers the generic UDF under every design.
  /// `base_options` customizes the engine (e.g. JIT/accounting ablations).
  static std::unique_ptr<BenchEnv> Create(
      const std::vector<RelationSpec>& relations, int cardinality,
      DatabaseOptions base_options = {});

  ~BenchEnv();

  Database* db() { return db_.get(); }
  int cardinality() const { return cardinality_; }

  /// Executes `sql`, returning wall-clock seconds (aborts on error). The
  /// per-query metrics delta of the last execution is kept for
  /// `last_metrics_delta` / `PrintBoundaryCounts`.
  double TimeQuery(const std::string& sql);

  /// Metrics registry delta of the most recent TimeQuery execution: exact
  /// invocation / boundary-byte / callback / shm-message counts, the
  /// Figure-5/6/8 quantities alongside the wall time.
  const obs::MetricsSnapshot& last_metrics_delta() const {
    return last_metrics_delta_;
  }

  /// Prints the UDF/IPC/JVM counters from the last query's delta, one
  /// `label metric value` line each (set JAGUAR_BENCH_METRICS=1 to have the
  /// figure benches call this after each series point).
  void PrintBoundaryCounts(const std::string& label) const;

  /// Minimum of `repeats` timings (paper reports response time; min damps
  /// scheduler noise on a shared machine).
  double TimeQueryMin(const std::string& sql, int repeats);

  /// "SELECT <fn>(R.ByteArray, i, d, c) FROM <rel> R WHERE R.id < <k>".
  std::string GenericQuery(const std::string& fn, const std::string& rel,
                           int64_t invocations, int64_t indep, int64_t dep,
                           int64_t callbacks) const;

  /// Runs one generic-UDF configuration and returns seconds.
  double TimeGeneric(const std::string& fn, const std::string& rel,
                     int64_t invocations, int64_t indep, int64_t dep,
                     int64_t callbacks, int repeats = 1);

 private:
  BenchEnv() = default;
  void Load(const std::vector<RelationSpec>& relations);
  void RegisterDesigns();

  std::string path_;
  std::unique_ptr<Database> db_;
  int cardinality_ = 0;
  obs::MetricsSnapshot last_metrics_delta_;
};

/// Printing helpers: paper-style series tables plus PASS/FAIL shape checks.
void PrintHeader(const std::string& title, const std::string& note);
void PrintSeriesHeader(const std::string& x_label,
                       const std::vector<std::string>& series);
void PrintSeriesRow(int64_t x, const std::vector<double>& seconds);
void PrintRelativeRow(int64_t x, const std::vector<double>& ratios);

/// Records and prints a shape check ("who wins / by what factor").
/// Returns `ok` so callers can aggregate.
bool ShapeCheck(bool ok, const std::string& description);

}  // namespace bench
}  // namespace jaguar

#endif  // JAGUAR_BENCH_HARNESS_H_
