// Figure 5 — Calibration: Function Invocation Costs.
//
// 10,000 invocations of a UDF that performs no work, for the three designs
// (C++, IC++, JNI), varying the bytearray size along the X axis
// (1, 100, 10000 bytes == relations Rel1, Rel100, Rel10000).
//
// Paper shapes:
//  * 10,000 JNI invocations incur "only a marginal cost".
//  * For smaller bytearrays, IC++ invocation cost EXCEEDS JNI: crossing the
//    JNI boundary is cheaper than an IPC context switch.
//  * For the largest bytearray, JNI is marginally worse than IC++ (cost of
//    mapping large byte arrays into the VM).

#include <thread>

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const int card = 10000;
  PrintHeader("Figure 5 - Calibration: function invocation costs",
              "10,000 no-op UDF invocations; X = bytearray size; "
              "times exclude the base scan cost (Figure 4)");
  auto env = BenchEnv::Create(PaperRelations(), card);

  struct Point {
    int64_t size;
    std::string rel;
  };
  std::vector<Point> points = {{1, "Rel1"}, {100, "Rel100"},
                               {10000, "Rel10000"}};
  std::vector<std::string> designs = {"C++", "IC++", "JNI"};
  std::vector<std::string> fns = {"g_cpp", "g_icpp", "g_jni"};

  const int repeats = 5;
  PrintSeriesHeader("array bytes", designs);
  // raw[point][design]: full query time; cost[point][design]: minus the
  // no-op-scan base (the paper's presentation).
  std::vector<std::vector<double>> raw(points.size());
  std::vector<std::vector<double>> cost(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    double base =
        env->TimeGeneric("noop_udf", points[p].rel, card, 0, 0, 0, repeats);
    for (size_t f = 0; f < fns.size(); ++f) {
      double t =
          env->TimeGeneric(fns[f], points[p].rel, card, 0, 0, 0, repeats);
      if (std::getenv("JAGUAR_BENCH_METRICS") != nullptr) {
        env->PrintBoundaryCounts(
            StringPrintf("%s@%lldB", designs[f].c_str(),
                         static_cast<long long>(points[p].size)));
      }
      raw[p].push_back(t);
      cost[p].push_back(std::max(0.0, t - base));
    }
    PrintSeriesRow(points[p].size, cost[p]);
  }

  // Batched counterpart (Section 2.5): the same series with vectorized
  // execution on — each operator pull ships one 256-row batch across the
  // isolation boundary instead of 256 single-row crossings.
  DatabaseOptions batched_options;
  batched_options.vectorized_execution = true;
  batched_options.batch_size = 256;
  auto batched_env = BenchEnv::Create(PaperRelations(), card, batched_options);

  std::printf("\nBatched (batch size 256):\n");
  PrintSeriesHeader("array bytes", designs);
  // Boundary-crossing counts per (point, design), scalar vs batched — the
  // deterministic quantity behind the wall-clock numbers.
  auto crossings = [](const obs::MetricsSnapshot& delta,
                      const std::string& design) -> uint64_t {
    const std::string key = design == "JNI" ? "jvm.boundary.crossings"
                                            : "ipc.shm.messages";
    auto it = delta.find(key);
    return it != delta.end() ? it->second : 0;
  };
  std::vector<std::vector<uint64_t>> scalar_crossings(points.size());
  std::vector<std::vector<uint64_t>> batched_crossings(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    double base = batched_env->TimeGeneric("noop_udf", points[p].rel, card, 0,
                                           0, 0, repeats);
    std::vector<double> batched_cost;
    for (size_t f = 0; f < fns.size(); ++f) {
      env->TimeGeneric(fns[f], points[p].rel, card, 0, 0, 0, 1);
      scalar_crossings[p].push_back(
          crossings(env->last_metrics_delta(), designs[f]));
      double t = batched_env->TimeGeneric(fns[f], points[p].rel, card, 0, 0, 0,
                                          repeats);
      batched_crossings[p].push_back(
          crossings(batched_env->last_metrics_delta(), designs[f]));
      if (std::getenv("JAGUAR_BENCH_METRICS") != nullptr) {
        batched_env->PrintBoundaryCounts(
            StringPrintf("batched:%s@%lldB", designs[f].c_str(),
                         static_cast<long long>(points[p].size)));
      }
      batched_cost.push_back(std::max(0.0, t - base));
    }
    PrintSeriesRow(points[p].size, batched_cost);
  }

  // Parallel counterpart (beyond the paper): the batched series with 4
  // morsel-driven workers, each isolated-design worker crossing through its
  // own pooled executor process.
  const size_t workers = 4;
  const unsigned cores = std::thread::hardware_concurrency();
  DatabaseOptions parallel_options = batched_options;
  parallel_options.num_workers = workers;
  auto parallel_env = BenchEnv::Create(PaperRelations(), card,
                                       parallel_options);
  std::printf("\nBatched + %zu workers (executor pool, host has %u cores):\n",
              workers, cores);
  PrintSeriesHeader("array bytes", {"IC++", "IJNI"});
  // [point][0]=IC++, [1]=IJNI: batched 1-worker vs batched 4-worker times.
  std::vector<std::vector<double>> pool_serial(points.size());
  std::vector<std::vector<double>> pool_parallel(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<double> row;
    for (const char* fn : {"g_icpp", "g_ijni"}) {
      pool_serial[p].push_back(
          batched_env->TimeGeneric(fn, points[p].rel, card, 0, 0, 0, repeats));
      pool_parallel[p].push_back(
          parallel_env->TimeGeneric(fn, points[p].rel, card, 0, 0, 0,
                                    repeats));
      row.push_back(pool_parallel[p].back());
    }
    PrintSeriesRow(points[p].size, row);
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  // Batching must cut boundary crossings by at least 2x for the designs
  // that pay a per-invocation crossing (exact counters, not wall clock).
  ok &= ShapeCheck(
      scalar_crossings[0][1] >= 2 * batched_crossings[0][1] &&
          batched_crossings[0][1] > 0,
      StringPrintf("IC++ batching cuts shm messages >=2x (%llu -> %llu)",
                   static_cast<unsigned long long>(scalar_crossings[0][1]),
                   static_cast<unsigned long long>(batched_crossings[0][1])));
  ok &= ShapeCheck(
      scalar_crossings[0][2] >= 2 * batched_crossings[0][2] &&
          batched_crossings[0][2] > 0,
      StringPrintf("JNI batching cuts VM boundary crossings >=2x "
                   "(%llu -> %llu)",
                   static_cast<unsigned long long>(scalar_crossings[0][2]),
                   static_cast<unsigned long long>(batched_crossings[0][2])));
  ok &= ShapeCheck(cost[0][1] > cost[0][2],
                   "small arrays: IC++ invocation (process crossing) costs "
                   "more than JNI (language boundary)");
  ok &= ShapeCheck(cost[1][1] > cost[1][2],
                   "100-byte arrays: IC++ still above JNI");
  // Marshalling scales with array size for JNI. Compare the JNI-vs-C++ gap
  // within each relation (same scan both sides, so the base cancels exactly)
  // rather than across noisy base subtractions.
  double gap_small = raw[0][2] - raw[0][0];
  double gap_large = raw[2][2] - raw[2][0];
  ok &= ShapeCheck(gap_large > gap_small,
                   StringPrintf("JNI marshalling cost grows with bytearray "
                                "size (gap %.1fms at 1B -> %.1fms at 10KB)",
                                gap_small * 1e3, gap_large * 1e3));
  ok &= ShapeCheck(cost[0][2] < 0.5,
                   "10,000 JNI invocations cost only marginal absolute time");
  // Scaling shape: with an executor pool, 4 workers must at least double the
  // batched throughput of the isolated designs on the largest arrays (where
  // there is real serialization + crossing work to spread). Unachievable on
  // small hosts, so skipped there.
  if (cores >= workers) {
    ok &= ShapeCheck(
        pool_serial[2][0] >= 2.0 * pool_parallel[2][0],
        StringPrintf("IC++ batched, 4 workers >= 2x 1 worker (%.1fms -> "
                     "%.1fms)",
                     pool_serial[2][0] * 1e3, pool_parallel[2][0] * 1e3));
    ok &= ShapeCheck(
        pool_serial[2][1] >= 2.0 * pool_parallel[2][1],
        StringPrintf("IJNI batched, 4 workers >= 2x 1 worker (%.1fms -> "
                     "%.1fms)",
                     pool_serial[2][1] * 1e3, pool_parallel[2][1] * 1e3));
  } else {
    std::printf("  [SKIP] pool scaling checks need >= %zu cores (host has "
                "%u)\n",
                workers, cores);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
