// Figure 5 — Calibration: Function Invocation Costs.
//
// 10,000 invocations of a UDF that performs no work, for the three designs
// (C++, IC++, JNI), varying the bytearray size along the X axis
// (1, 100, 10000 bytes == relations Rel1, Rel100, Rel10000).
//
// Paper shapes:
//  * 10,000 JNI invocations incur "only a marginal cost".
//  * For smaller bytearrays, IC++ invocation cost EXCEEDS JNI: crossing the
//    JNI boundary is cheaper than an IPC context switch.
//  * For the largest bytearray, JNI is marginally worse than IC++ (cost of
//    mapping large byte arrays into the VM).

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const int card = 10000;
  PrintHeader("Figure 5 - Calibration: function invocation costs",
              "10,000 no-op UDF invocations; X = bytearray size; "
              "times exclude the base scan cost (Figure 4)");
  auto env = BenchEnv::Create(PaperRelations(), card);

  struct Point {
    int64_t size;
    std::string rel;
  };
  std::vector<Point> points = {{1, "Rel1"}, {100, "Rel100"},
                               {10000, "Rel10000"}};
  std::vector<std::string> designs = {"C++", "IC++", "JNI"};
  std::vector<std::string> fns = {"g_cpp", "g_icpp", "g_jni"};

  const int repeats = 5;
  PrintSeriesHeader("array bytes", designs);
  // raw[point][design]: full query time; cost[point][design]: minus the
  // no-op-scan base (the paper's presentation).
  std::vector<std::vector<double>> raw(points.size());
  std::vector<std::vector<double>> cost(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    double base =
        env->TimeGeneric("noop_udf", points[p].rel, card, 0, 0, 0, repeats);
    for (size_t f = 0; f < fns.size(); ++f) {
      double t =
          env->TimeGeneric(fns[f], points[p].rel, card, 0, 0, 0, repeats);
      if (std::getenv("JAGUAR_BENCH_METRICS") != nullptr) {
        env->PrintBoundaryCounts(
            StringPrintf("%s@%lldB", designs[f].c_str(),
                         static_cast<long long>(points[p].size)));
      }
      raw[p].push_back(t);
      cost[p].push_back(std::max(0.0, t - base));
    }
    PrintSeriesRow(points[p].size, cost[p]);
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  ok &= ShapeCheck(cost[0][1] > cost[0][2],
                   "small arrays: IC++ invocation (process crossing) costs "
                   "more than JNI (language boundary)");
  ok &= ShapeCheck(cost[1][1] > cost[1][2],
                   "100-byte arrays: IC++ still above JNI");
  // Marshalling scales with array size for JNI. Compare the JNI-vs-C++ gap
  // within each relation (same scan both sides, so the base cancels exactly)
  // rather than across noisy base subtractions.
  double gap_small = raw[0][2] - raw[0][0];
  double gap_large = raw[2][2] - raw[2][0];
  ok &= ShapeCheck(gap_large > gap_small,
                   StringPrintf("JNI marshalling cost grows with bytearray "
                                "size (gap %.1fms at 1B -> %.1fms at 10KB)",
                                gap_small * 1e3, gap_large * 1e3));
  ok &= ShapeCheck(cost[0][2] < 0.5,
                   "10,000 JNI invocations cost only marginal absolute time");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
