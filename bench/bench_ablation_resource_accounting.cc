// Ablation: the cost of resource accounting (Section 6.2).
//
// The paper notes that 1998 JVMs could not police CPU or memory per UDF and
// points at Cornell's J-Kernel work on *instrumenting bytecode* so "the use
// of resources can be monitored and policed. Such mechanisms will be
// essential in database systems."
//
// JagVM builds that policing in: the JIT charges the instruction budget once
// per basic block; allocations charge the heap quota. This bench measures
// what that protection costs, by compiling the same loops with and without
// the budget instrumentation.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "jjc/jjc.h"
#include "jvm/vm.h"

namespace jaguar {
namespace {

const char* kSource = R"(
class W {
  static int tightLoop(int n) {
    int acc = 0;
    int i = 0;
    while (i < n) {
      acc = acc + i * 3 - (i / 7);
      i = i + 1;
    }
    return acc;
  }
  static int allocLoop(int n) {
    int acc = 0;
    int i = 0;
    while (i < n) {
      byte[] scratch = new byte[64];
      scratch[i % 64] = i;
      acc = acc + scratch[i % 64];
      i = i + 1;
    }
    return acc;
  }
})";

struct VmFixture {
  explicit VmFixture(bool budget_checks) {
    jvm::JvmOptions opts;
    opts.jit_budget_checks = budget_checks;
    vm = std::make_unique<jvm::Jvm>(opts);
    auto cf = jjc::Compile(kSource);
    JAGUAR_CHECK(cf.ok()) << cf.status();
    JAGUAR_CHECK(vm->system_loader()->LoadClass(Slice(cf->Serialize())).ok());
    security = jvm::SecurityManager::AllowAll();
  }
  int64_t Run(const char* method, int64_t n, jvm::ResourceLimits limits = {}) {
    jvm::ExecContext ctx(vm.get(), vm->system_loader(), &security, limits);
    Result<int64_t> r = ctx.CallStatic("W", method, {n});
    JAGUAR_CHECK(r.ok()) << r.status();
    return *r;
  }
  std::unique_ptr<jvm::Jvm> vm;
  jvm::SecurityManager security;
};

constexpr int64_t kN = 1 << 16;

void BM_TightLoop_AccountingOn(benchmark::State& state) {
  VmFixture fixture(/*budget_checks=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run("tightLoop", kN));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_TightLoop_AccountingOn);

void BM_TightLoop_AccountingOff(benchmark::State& state) {
  VmFixture fixture(/*budget_checks=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run("tightLoop", kN));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_TightLoop_AccountingOff);

void BM_TightLoop_WithFiniteBudget(benchmark::State& state) {
  // A finite budget costs the same as the unlimited sentinel: the charge is
  // identical, only the trap fires earlier.
  VmFixture fixture(/*budget_checks=*/true);
  jvm::ResourceLimits limits;
  limits.instruction_budget = int64_t{1} << 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run("tightLoop", kN, limits));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_TightLoop_WithFiniteBudget);

void BM_AllocLoop_HeapAccounting(benchmark::State& state) {
  // Allocation-heavy loop: every `new byte[]` charges the heap quota.
  VmFixture fixture(/*budget_checks=*/true);
  jvm::ResourceLimits limits;
  limits.heap_quota_bytes = 1 << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.Run("allocLoop", 4096, limits));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AllocLoop_HeapAccounting);

}  // namespace
}  // namespace jaguar

BENCHMARK_MAIN();
