// Figure 8 — Callbacks.
//
// Invocations of a UDF that performs no computation but makes NumCallbacks
// requests back to the database server; NumCallbacks varies along X.
//
// Paper shapes:
//  * "The isolated C++ design performs poorly because it faces the most
//    expensive boundary to cross" — each callback is two process crossings.
//  * "For Java UDFs, the overhead imposed by the Java native interface is
//    not as significant."
//  * "Even for the common case where there are a few callbacks, IC++ is
//    significantly slower than JNI."

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const int card = 10000;
  const int64_t invocations = FullScale() ? 10000 : 1000;
  PrintHeader("Figure 8 - Callbacks (NumCallbacks sweep)",
              StringPrintf("%lld invocations over Rel1; UDFs do no "
                           "computation, only server callbacks",
                           static_cast<long long>(invocations)));
  auto env = BenchEnv::Create({{"Rel1", 1}}, card);

  std::vector<int64_t> xs = {0, 1, 10, 100};
  std::vector<std::string> designs = {"C++", "IC++", "JNI"};
  std::vector<std::string> fns = {"g_cpp", "g_icpp", "g_jni"};

  PrintSeriesHeader("Callbacks", designs);
  std::vector<std::vector<double>> times(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (const std::string& fn : fns) {
      times[i].push_back(env->TimeGeneric(fn, "Rel1", invocations, 0, 0,
                                          xs[i], /*repeats=*/2));
    }
    PrintSeriesRow(xs[i], times[i]);
  }

  std::printf("\nRelative to C++ (the paper's lower graph):\n");
  PrintSeriesHeader("Callbacks", designs);
  std::vector<std::vector<double>> rel(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t d = 0; d < fns.size(); ++d) {
      rel[i].push_back(times[i][d] / times[i][0]);
    }
    PrintRelativeRow(xs[i], rel[i]);
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  const size_t last = xs.size() - 1;
  ok &= ShapeCheck(times[last][1] > 2 * times[last][2],
                   StringPrintf("IC++ callbacks (process crossings) are far "
                                "more expensive than JNI callbacks (%.1fx)",
                                times[last][1] / times[last][2]));
  ok &= ShapeCheck(times[last][2] > times[last][0],
                   "JNI callbacks still cost more than direct C++ calls");
  ok &= ShapeCheck(times[1][1] > times[1][2],
                   "even for a single callback per invocation, IC++ is "
                   "slower than JNI");
  // Callback cost scales with the count for IC++.
  ok &= ShapeCheck(times[last][1] > 5 * times[1][1],
                   "IC++ cost grows with the number of callbacks");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
