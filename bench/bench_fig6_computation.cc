// Figure 6 — Pure (data-independent) Computation.
//
// 10,000 UDF invocations over Rel10000; NumDataIndepComps varies along X;
// absolute times plus times relative to the best case (C++).
//
// Paper shapes:
//  * "JNI performs worse than both C++ options. However, the difference is a
//    constant small invocation cost difference that does not change as the
//    amount of computation changes" — i.e. JIT-compiled bytecode arithmetic
//    runs at native speed; only the per-invocation boundary cost differs.
//  * "Even when the number of computations is very high, there is no extra
//    price paid by JNI": the relative curves converge toward 1.
//
// One deliberate divergence: JagVM *always* polices per-UDF CPU budgets
// (Section 6.2 accounting, which the paper's 1998 JVMs lacked and the paper
// calls "essential in database systems"). The "JNI" series runs with that
// protection on; the "JNI-noacct" series disables it, reproducing the
// paper's configuration exactly. bench_ablation_resource_accounting isolates
// the difference.

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const int card = 10000;
  const int64_t invocations = card;
  PrintHeader("Figure 6 - Pure computation (NumDataIndepComps sweep)",
              "10,000 invocations over Rel10000; integer-add loop in the UDF");
  auto env = BenchEnv::Create({{"Rel10000", 10000}}, card);
  DatabaseOptions noacct;
  noacct.udf_jit_budget_checks = false;
  auto env_noacct = BenchEnv::Create({{"Rel10000", 10000}}, card, noacct);

  std::vector<int64_t> xs = {0, 10, 100, 1000, 10000, 100000};
  if (FullScale()) xs.push_back(1000000);
  std::vector<std::string> designs = {"C++", "IC++", "JNI", "JNI-noacct"};

  PrintSeriesHeader("IndepComps", designs);
  std::vector<std::vector<double>> times(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (const char* fn : {"g_cpp", "g_icpp", "g_jni"}) {
      times[i].push_back(
          env->TimeGeneric(fn, "Rel10000", invocations, xs[i], 0, 0,
                           /*repeats=*/2));
    }
    times[i].push_back(
        env_noacct->TimeGeneric("g_jni", "Rel10000", invocations, xs[i], 0, 0,
                                /*repeats=*/2));
    PrintSeriesRow(xs[i], times[i]);
  }

  std::printf("\nRelative to C++ (the paper's lower graph):\n");
  PrintSeriesHeader("IndepComps", designs);
  std::vector<std::vector<double>> rel(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t d = 0; d < designs.size(); ++d) {
      rel[i].push_back(times[i][d] / times[i][0]);
    }
    PrintRelativeRow(xs[i], rel[i]);
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  const size_t last = xs.size() - 1;
  ok &= ShapeCheck(rel[last][3] < 1.5,
                   StringPrintf("in the paper's configuration (no CPU "
                                "accounting) JIT-compiled JNI matches the "
                                "C++ slope (relative %.2fx at "
                                "IndepComps=%lld)",
                                rel[last][3],
                                static_cast<long long>(xs[last])));
  ok &= ShapeCheck(rel[last][2] < 2.5,
                   StringPrintf("with always-on CPU accounting (stronger "
                                "than the paper's JVM) JNI stays within a "
                                "small constant factor (%.2fx)",
                                rel[last][2]));
  ok &= ShapeCheck(rel[last][1] < 1.5,
                   StringPrintf("IC++ overhead amortizes with computation "
                                "(relative %.2fx)", rel[last][1]));
  // The extra JNI cost does not grow in proportion to the computation: the
  // relative curve flattens rather than diverging.
  ok &= ShapeCheck(rel[last][3] <= rel[1][3] + 0.3,
                   "JNI's extra cost is a near-constant invocation charge, "
                   "not a computation slowdown");
  ok &= ShapeCheck(times[last][0] > times[0][0] * 2,
                   "the sweep actually exercises computation");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
