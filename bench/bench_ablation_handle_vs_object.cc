// Ablation: whole-object arguments vs handle + callbacks (Section 5.6).
//
// "There is a tradeoff in the design of a UDF that accesses a large object.
// Should the UDF ask for the entire object (which is expensive), or should
// it ask for a handle to the object and then perform callbacks? Our
// experiments indicate the inherent costs in each approach."
//
// Setup: a 256 KB object in the server LOB store; a JJava UDF needs `k` bytes
// of it. Strategy A passes the whole object across the boundary; strategy B
// passes the handle and fetches one `k`-byte clip via Jaguar.fetch. The
// harness sweeps `k` and prints the crossover.

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/random.h"

namespace jaguar {
namespace bench {
namespace {

const char* kWholeSource = R"(
class Whole {
  static int run(byte[] obj, int offset, int len) {
    int acc = 0;
    int i = 0;
    while (i < len) {
      acc = acc + obj[offset + i];
      i = i + 1;
    }
    return acc;
  }
})";

const char* kHandleSource = R"(
class Clip {
  static int run(int handle, int offset, int len) {
    byte[] clip = Jaguar.fetch(handle, offset, len);
    int acc = 0;
    int i = 0;
    while (i < clip.length) {
      acc = acc + clip[i];
      i = i + 1;
    }
    return acc;
  }
})";

int Run() {
  PrintHeader("Ablation - whole object vs handle + callbacks (Section 5.6)",
              "256 KB server object; UDF needs only `len` bytes of it");

  const size_t kObjectSize = 256 * 1024;
  const int kRows = 200;

  auto env = BenchEnv::Create({{"Rel1", 1}}, kRows);
  Database* db = env->db();

  // The whole-object strategy stores the blob inline in the tuple (the
  // query must haul every byte to the UDF); the handle strategy stores the
  // object once in the LOB store and keeps only a handle per tuple — the
  // exact alternative Section 5.6 describes.
  Random rng(123);
  auto object = rng.Bytes(kObjectSize);
  int64_t handle = db->StoreLob(object).value();

  JAGUAR_CHECK(db->Execute("CREATE TABLE objs (id INT, obj BYTEARRAY)").ok());
  JAGUAR_CHECK(db->Execute("CREATE TABLE refs (id INT, h INT)").ok());
  for (int base = 0; base < kRows; base += 50) {
    std::string sql = "INSERT INTO objs VALUES ";
    std::string ref_sql = "INSERT INTO refs VALUES ";
    for (int i = 0; i < 50; ++i) {
      if (i > 0) {
        sql += ", ";
        ref_sql += ", ";
      }
      sql += StringPrintf("(%d, randbytes(%zu, 123))", base + i, kObjectSize);
      ref_sql += StringPrintf("(%d, %lld)", base + i,
                              static_cast<long long>(handle));
    }
    JAGUAR_CHECK(db->Execute(sql).ok());
    JAGUAR_CHECK(db->Execute(ref_sql).ok());
  }

  auto register_udf = [&](const char* name, const char* source,
                          const char* entry, std::vector<TypeId> args) {
    UdfInfo info;
    info.name = name;
    info.language = UdfLanguage::kJJava;
    info.return_type = TypeId::kInt;
    info.arg_types = std::move(args);
    info.impl_name = entry;
    auto cf = jjc::Compile(source);
    JAGUAR_CHECK(cf.ok()) << cf.status();
    info.payload = cf->Serialize();
    JAGUAR_CHECK(db->RegisterUdf(info).ok());
  };
  register_udf("whole_sum", kWholeSource, "Whole.run",
               {TypeId::kBytes, TypeId::kInt, TypeId::kInt});
  register_udf("clip_sum", kHandleSource, "Clip.run",
               {TypeId::kInt, TypeId::kInt, TypeId::kInt});

  std::vector<int64_t> lens = {64, 1024, 16384, 262144};
  PrintSeriesHeader("clip bytes", {"whole-object", "handle+fetch"});
  std::vector<double> whole_times, handle_times;
  for (int64_t len : lens) {
    double whole = env->TimeQueryMin(
        StringPrintf("SELECT whole_sum(obj, 0, %lld) FROM objs",
                     static_cast<long long>(len)),
        5);
    double handle_t = env->TimeQueryMin(
        StringPrintf("SELECT clip_sum(h, 0, %lld) FROM refs",
                     static_cast<long long>(len)),
        5);
    whole_times.push_back(whole);
    handle_times.push_back(handle_t);
    PrintSeriesRow(len, {whole, handle_t});
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  ok &= ShapeCheck(handle_times[0] < whole_times[0],
                   "small clips: the handle+callback strategy wins "
                   "(marshalling the whole object dominates)");
  // The paper: "our experiments indicate the inherent costs in each
  // approach" — there is a crossover: once the UDF touches the whole object
  // anyway, paying a callback round trip on top of the copy loses.
  ok &= ShapeCheck(handle_times.back() > handle_times[0] * 2,
                   "fetching everything through callbacks erases most of the "
                   "handle strategy's advantage (its cost converges toward "
                   "the whole-object transfer)");
  ok &= ShapeCheck(handle_times[0] * 4 < whole_times[0],
                   "the small-clip advantage is large (the paper's reason "
                   "Clip()/Lookup() UDFs want handles)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
