// Secondary-index selectivity sweep: the paper's guarded-UDF query shape
//
//   SELECT R.id FROM Rel100 R
//   WHERE g_cpp(R.ByteArray, 40, 1, 0) >= 0 AND R.id < K
//
// with K swept over {1, 10, 50, 100}% of the relation. Without an index the
// expensive UDF conjunct (written first) runs on every tuple; with a B+-tree
// on `id` the planner extracts the indexable conjunct and the UDF runs only
// on the K survivors, so the win grows as the predicate gets more selective.
//
// Emits BENCH_index.json (machine-readable speedups for CI artifacts).
// Shape checks require the 1%-selectivity query to actually take the index
// path, to confine UDF invocations to the survivors, and to beat the full
// scan by >= 2x.

#include "bench/harness.h"
#include "common/clock.h"

namespace jaguar {
namespace bench {
namespace {

std::string SweepQuery(int64_t k) {
  // UDF conjunct first: a sequential scan evaluates it for every tuple, so
  // any index win must come from the planner re-ordering, not the query text.
  return StringPrintf(
      "SELECT R.id FROM Rel100 R "
      "WHERE g_cpp(R.ByteArray, 40, 1, 0) >= 0 AND R.id < %lld",
      static_cast<long long>(k));
}

int Run() {
  const int rows = FullScale() ? 100000 : 10000;
  const int repeats = 3;
  PrintHeader(
      "Secondary index - UDF-guarding selectivity sweep",
      StringPrintf("UDF-first predicate over %d rows of Rel100; full scan "
                   "vs B+-tree on id at 1/10/50/100%% selectivity",
                   rows));

  DatabaseOptions options;
  options.vectorized_execution = true;
  options.batch_size = 256;
  options.num_workers = 1;
  auto env = BenchEnv::Create({{"Rel100", 100}}, rows, options);

  const std::vector<int> selectivities = {1, 10, 50, 100};
  std::vector<double> scan_seconds;
  for (int sel : selectivities) {
    scan_seconds.push_back(
        env->TimeQueryMin(SweepQuery(rows * sel / 100), repeats));
  }

  const obs::MetricsSnapshot wal_before =
      obs::MetricsRegistry::Global()->Snapshot("wal.");
  Stopwatch build_clock;
  auto created = env->db()->Execute("CREATE INDEX idx_id ON Rel100 (id)");
  if (!created.ok()) {
    std::fprintf(stderr, "CREATE INDEX failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  const double build_seconds = build_clock.ElapsedSeconds();
  const obs::MetricsSnapshot wal_delta = obs::SnapshotDelta(
      wal_before, obs::MetricsRegistry::Global()->Snapshot("wal."));

  std::vector<double> index_seconds, speedups;
  obs::MetricsSnapshot one_pct_delta;
  PrintSeriesHeader("sel %", {"scan s", "index s", "speedup"});
  for (size_t i = 0; i < selectivities.size(); ++i) {
    const int sel = selectivities[i];
    index_seconds.push_back(
        env->TimeQueryMin(SweepQuery(rows * sel / 100), repeats));
    if (sel == 1) one_pct_delta = env->last_metrics_delta();
    speedups.push_back(index_seconds[i] > 0
                           ? scan_seconds[i] / index_seconds[i]
                           : 0);
    std::printf("%12d %12.6f %12.6f %11.2fx\n", sel, scan_seconds[i],
                index_seconds[i], speedups[i]);
  }
  std::printf("\nindex build (backfill of %d rows): %.6f s\n", rows,
              build_seconds);
  for (const auto& [name, value] : wal_delta) {
    std::printf("  build %-24s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  // Machine-readable artifact for CI trend tracking.
  std::FILE* json = std::fopen("BENCH_index.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"rows\": %d,\n  \"build_seconds\": %.6f,\n"
                 "  \"selectivity_sweep\": {\n",
                 rows, build_seconds);
    for (size_t i = 0; i < selectivities.size(); ++i) {
      std::fprintf(json,
                   "    \"%d\": {\"scan_seconds\": %.6f, "
                   "\"index_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   selectivities[i], scan_seconds[i], index_seconds[i],
                   speedups[i], i + 1 < selectivities.size() ? "," : "");
    }
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_index.json\n");
  }

  std::printf("\nShape checks:\n");
  bool ok = true;
  auto scans = one_pct_delta.find("exec.index.scans");
  ok &= ShapeCheck(scans != one_pct_delta.end() && scans->second > 0,
                   "1% query took the index path");
  auto invocations = one_pct_delta.find("udf.cpp.invocations");
  const uint64_t survivors = static_cast<uint64_t>(rows) / 100;
  ok &= ShapeCheck(
      invocations != one_pct_delta.end() &&
          invocations->second <= survivors,
      StringPrintf("UDF ran only on the %llu index survivors",
                   static_cast<unsigned long long>(survivors)));
  ok &= ShapeCheck(
      speedups[0] >= 2.0,
      StringPrintf("index beats full scan >= 2x at 1%% selectivity "
                   "(got %.2fx)",
                   speedups[0]));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
