// Figure 7 — Data Access (data-dependent computation).
//
// Invocations over Rel10000 (10,000-byte arrays); NumDataDepComps — the
// number of full passes over the byte array — varies along X. Absolute plus
// relative times, and the bounds-checked C++ comparison of Section 5.4.
//
// Paper shapes:
//  * "Java performs run-time array bounds checking ... there is a
//    significant penalty paid": JNI falls well behind plain C++ as data
//    access grows.
//  * "When compared to [a bounds-checked C++ UDF], JNI performs only 20%
//    worse even with large values of NumDataDepComps ... the extra array
//    bounds check affects C++ in just the same way as Java."
//  * The paper did not run JNI at DataDepComps=1000 "because of the large
//    time involved" — we likewise cap the sweep (raise with
//    JAGUAR_BENCH_SCALE=full).

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const bool full = FullScale();
  const int card = 10000;
  const int64_t invocations = full ? 10000 : 1000;
  PrintHeader("Figure 7 - Data access (NumDataDepComps sweep)",
              StringPrintf("%lld invocations over Rel10000; each DataDepComp "
                           "is one full pass over the 10,000-byte array",
                           static_cast<long long>(invocations)));
  auto env = BenchEnv::Create({{"Rel10000", 10000}}, card);

  std::vector<int64_t> xs = full ? std::vector<int64_t>{0, 1, 10, 100, 1000}
                                 : std::vector<int64_t>{0, 1, 10, 100};
  std::vector<std::string> designs = {"C++", "BC++", "IC++", "JNI"};
  std::vector<std::string> fns = {"g_cpp", "g_bcpp", "g_icpp", "g_jni"};

  PrintSeriesHeader("DataDepComps", designs);
  std::vector<std::vector<double>> times(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (const std::string& fn : fns) {
      times[i].push_back(
          env->TimeGeneric(fn, "Rel10000", invocations, 0, xs[i], 0,
                           /*repeats=*/2));
    }
    PrintSeriesRow(xs[i], times[i]);
  }

  std::printf("\nRelative to C++ (the paper's lower graph):\n");
  PrintSeriesHeader("DataDepComps", designs);
  std::vector<std::vector<double>> rel(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t d = 0; d < fns.size(); ++d) {
      rel[i].push_back(times[i][d] / times[i][0]);
    }
    PrintRelativeRow(xs[i], rel[i]);
  }

  const size_t last = xs.size() - 1;
  double jni_vs_bcpp = times[last][3] / times[last][1];
  std::printf("\nJNI vs bounds-checked C++ at DataDepComps=%lld: %.1f%% %s\n",
              static_cast<long long>(xs[last]),
              std::abs(jni_vs_bcpp - 1.0) * 100,
              jni_vs_bcpp >= 1.0 ? "slower" : "faster");

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  ok &= ShapeCheck(rel[last][3] > 1.2,
                   StringPrintf("JNI pays a significant data-access penalty "
                                "vs unchecked C++ (%.2fx)", rel[last][3]));
  ok &= ShapeCheck(rel[last][1] > 1.05,
                   StringPrintf("explicit bounds checks slow C++ too "
                                "(BC++ %.2fx)", rel[last][1]));
  // The BC++/JNI gap is the least stable number on a timeshared container
  // (observed 0-80% across runs); the robust claim is that JNI sits within
  // 2x of checked C++ while being much further from its own worst case
  // (the interpreter, ~60x — see bench_ablation_jit).
  ok &= ShapeCheck(jni_vs_bcpp < 2.0,
                   StringPrintf("vs bounds-checked C++ the JNI penalty is "
                                "modest (paper: ~20%%; measured: %.0f%%, "
                                "run-to-run 0-80%% on this container)",
                                (jni_vs_bcpp - 1.0) * 100));
  ok &= ShapeCheck(times[1][3] / times[1][0] < 3.0,
                   "for a small number of passes, JNI's overall performance "
                   "is not much worse than C++");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
