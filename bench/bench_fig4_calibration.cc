// Figure 4 — Calibration: Table Access Costs.
//
// The paper's first calibration: run the experiment query with a trivial
// integrated C++ UDF that does no work, varying the number of UDF
// invocations along the X axis, one line per relation (Rel1, Rel100,
// Rel10000). These are the base system costs (scan + predicate + projection)
// that later figures subtract to isolate UDF effects.

#include "bench/harness.h"

namespace jaguar {
namespace bench {
namespace {

int Run() {
  const int card = 10000;  // the paper cardinality in every mode
  PrintHeader("Figure 4 - Calibration: table access costs",
              "Query: SELECT noop_udf(R.ByteArray,0,0,0) FROM RelN R "
              "WHERE R.id < k   (trivial integrated C++ UDF)");
  auto env = BenchEnv::Create(PaperRelations(), card);

  std::vector<int64_t> ks = {1, 10, 100, 1000, card};
  std::vector<std::string> rels = {"Rel1", "Rel100", "Rel10000"};

  PrintSeriesHeader("# calls", rels);
  std::vector<std::vector<double>> times(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    for (const std::string& rel : rels) {
      times[i].push_back(env->TimeGeneric("noop_udf", rel, ks[i], 0, 0, 0,
                                          /*repeats=*/3));
    }
    PrintSeriesRow(ks[i], times[i]);
  }

  std::printf("\nShape checks (vs the paper):\n");
  bool ok = true;
  // The query always scans the whole relation; cost is dominated by the scan
  // and grows with tuple size, while extra no-op invocations are cheap.
  ok &= ShapeCheck(times.back()[2] > times.back()[0],
                   "scanning Rel10000 costs more than Rel1 (larger tuples)");
  ok &= ShapeCheck(times.back()[0] >= times[0][0] * 0.5,
                   "base cost is scan-dominated (invocation count is minor "
                   "for a no-op UDF)");
  ok &= ShapeCheck(times.back()[2] < 30.0,
                   "full-table access completes in interactive time");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jaguar

int main() { return jaguar::bench::Run(); }
