#include "sql/ast.h"

namespace jaguar {
namespace sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Expr::Call(std::string function, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function = std::move(function);
  e->args = std::move(args);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNeg ? "-" : "NOT ") + "(" +
             left->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpToString(binary_op) + " " +
             right->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace sql
}  // namespace jaguar
