#ifndef JAGUAR_SQL_PARSER_H_
#define JAGUAR_SQL_PARSER_H_

/// \file parser.h
/// Recursive-descent parser producing the AST of ast.h. All errors are
/// reported as InvalidArgument with the offending token's offset.

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace jaguar {
namespace sql {

/// Parses a single SQL statement (optionally terminated by ';').
Result<Statement> Parse(const std::string& input);

/// Parses a standalone expression (used by tests and the binder).
Result<ExprPtr> ParseExpression(const std::string& input);

}  // namespace sql
}  // namespace jaguar

#endif  // JAGUAR_SQL_PARSER_H_
