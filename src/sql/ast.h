#ifndef JAGUAR_SQL_AST_H_
#define JAGUAR_SQL_AST_H_

/// \file ast.h
/// Abstract syntax trees for the SQL subset jaguar supports:
///
///   SELECT <exprs|*> FROM <table> [<alias>] [WHERE <expr>]
///       [GROUP BY <expr>, ...] [ORDER BY <expr> [ASC|DESC]] [LIMIT n]
///   SELECT COUNT(*)|COUNT(e)|SUM(e)|AVG(e)|MIN(e)|MAX(e), ... FROM ...
///   CREATE TABLE <name> (<col> <type>, ...)
///   INSERT INTO <name> VALUES (<expr>, ...), ...
///   UPDATE <name> SET <col> = <expr>, ... [WHERE <expr>]
///   DELETE FROM <name> [WHERE <expr>]
///   DROP TABLE <name>
///   CREATE INDEX <name> ON <table> (<col>)
///   DROP INDEX <name>
///
/// Expressions cover the paper's queries: comparisons, boolean logic,
/// arithmetic, column references (optionally qualified: `S.history`), and
/// function calls (`InvestVal(S.history) > 5`).

#include <memory>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace jaguar {
namespace sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp : uint8_t { kNeg, kNot };

const char* BinaryOpToString(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,
};

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  ///< Optional table alias ("S" in S.history).
  std::string column;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;   ///< Also the operand of unary expressions.
  ExprPtr right;

  // kFunctionCall
  std::string function;
  std::vector<ExprPtr> args;

  static ExprPtr Literal(Value v);
  static ExprPtr Column(std::string qualifier, std::string column);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Call(std::string function, std::vector<ExprPtr> args);

  /// Unparses for error messages and tests.
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind : uint8_t {
  kSelect,
  kCreateTable,
  kInsert,
  kDropTable,
  kDelete,
  kUpdate,
  kShowMetrics,
  kSetTimeout,
  kCreateIndex,
  kDropIndex,
};

/// One SELECT output item: expression plus optional alias.
struct SelectItem {
  ExprPtr expr;  ///< Null for `*`.
  std::string alias;
  bool is_star = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string table;
  std::string table_alias;  ///< Empty if none.
  ExprPtr where;            ///< Null if none.
  std::vector<ExprPtr> group_by;  ///< Empty if none.
  ExprPtr order_by;         ///< Null if none.
  bool order_desc = false;
  int64_t limit = -1;       ///< -1 == no limit.
};

struct CreateTableStmt {
  std::string table;
  Schema schema;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  ///< Constant expressions.
};

struct DropTableStmt {
  std::string table;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< Null deletes every row.
};

struct UpdateStmt {
  std::string table;
  /// Column-name/value-expression assignments, applied left to right; value
  /// expressions see the row's *old* values.
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< Null updates every row.
};

/// CREATE INDEX <name> ON <table> (<column>) — a secondary B+-tree index.
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
};

/// DROP INDEX <name>.
struct DropIndexStmt {
  std::string index;
};

/// SHOW METRICS [LIKE '<prefix>'] — reads the process-wide metrics registry.
/// LIKE filters by name prefix (the registry's filtering convention, not SQL
/// `%` patterns).
struct ShowMetricsStmt {
  std::string like_prefix;  ///< Empty shows every metric.
};

/// SET TIMEOUT <ms> — session-level query deadline override.
/// 0 clears the override, falling back to `DatabaseOptions::query_timeout_ms`.
struct SetTimeoutStmt {
  int64_t timeout_ms = 0;
};

struct Statement {
  StatementKind kind;
  SelectStmt select;
  CreateTableStmt create_table;
  InsertStmt insert;
  DropTableStmt drop_table;
  DeleteStmt delete_stmt;
  UpdateStmt update;
  ShowMetricsStmt show_metrics;
  SetTimeoutStmt set_timeout;
  CreateIndexStmt create_index;
  DropIndexStmt drop_index;
};

}  // namespace sql
}  // namespace jaguar

#endif  // JAGUAR_SQL_AST_H_
