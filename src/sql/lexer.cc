#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace jaguar {
namespace sql {

bool Token::IsSymbol(const char* s) const {
  return kind == TokenKind::kSymbol && text == s;
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t k) -> char {
    return i + k < n ? input[i + k] : '\0';
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIdentifier, input.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        } else {
          i = save;  // 'e' belongs to a following identifier, not the number
        }
      }
      tokens.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                        input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return InvalidArgument(StringPrintf(
            "unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    // Multi-character operators first.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "=="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        tokens.push_back({TokenKind::kSymbol, op, start});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOneChar = "()+-*/%,.<>=;";
    if (kOneChar.find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return InvalidArgument(
        StringPrintf("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace sql
}  // namespace jaguar
