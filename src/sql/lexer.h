#ifndef JAGUAR_SQL_LEXER_H_
#define JAGUAR_SQL_LEXER_H_

/// \file lexer.h
/// Tokenizer for the SQL subset. Identifiers and keywords are
/// case-insensitive; strings use single quotes with '' as the escape.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace jaguar {
namespace sql {

enum class TokenKind : uint8_t {
  kIdentifier,  ///< Bare name (may be a keyword; parser decides by context).
  kInteger,     ///< Integer literal.
  kFloat,       ///< Floating-point literal.
  kString,      ///< 'quoted string' (text holds the unescaped contents).
  kSymbol,      ///< Punctuation/operator; text holds it, e.g. "<=", "(", ",".
  kEnd,         ///< End of input.
};

struct Token {
  TokenKind kind;
  std::string text;   ///< Identifier name, literal spelling, or symbol.
  size_t offset = 0;  ///< Byte offset in the input, for error messages.

  bool IsSymbol(const char* s) const;
  /// Case-insensitive keyword match (only meaningful for identifiers).
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes `input`; returns the token list ending with a kEnd token, or
/// InvalidArgument with position info for malformed input (unterminated
/// string, stray character).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace jaguar

#endif  // JAGUAR_SQL_LEXER_H_
