#include "sql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace jaguar {
namespace sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      stmt.kind = StatementKind::kSelect;
      JAGUAR_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (PeekKeyword("CREATE")) {
      if (Peek(1).IsKeyword("INDEX")) {
        stmt.kind = StatementKind::kCreateIndex;
        JAGUAR_ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex());
      } else {
        stmt.kind = StatementKind::kCreateTable;
        JAGUAR_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      }
    } else if (PeekKeyword("INSERT")) {
      stmt.kind = StatementKind::kInsert;
      JAGUAR_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else if (PeekKeyword("DROP")) {
      if (Peek(1).IsKeyword("INDEX")) {
        stmt.kind = StatementKind::kDropIndex;
        JAGUAR_ASSIGN_OR_RETURN(stmt.drop_index, ParseDropIndex());
      } else {
        stmt.kind = StatementKind::kDropTable;
        JAGUAR_ASSIGN_OR_RETURN(stmt.drop_table, ParseDropTable());
      }
    } else if (PeekKeyword("DELETE")) {
      stmt.kind = StatementKind::kDelete;
      JAGUAR_ASSIGN_OR_RETURN(stmt.delete_stmt, ParseDelete());
    } else if (PeekKeyword("UPDATE")) {
      stmt.kind = StatementKind::kUpdate;
      JAGUAR_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
    } else if (PeekKeyword("SHOW")) {
      stmt.kind = StatementKind::kShowMetrics;
      JAGUAR_ASSIGN_OR_RETURN(stmt.show_metrics, ParseShowMetrics());
    } else if (PeekKeyword("SET")) {
      stmt.kind = StatementKind::kSetTimeout;
      JAGUAR_ASSIGN_OR_RETURN(stmt.set_timeout, ParseSetTimeout());
    } else {
      return Error(
          "expected SELECT, CREATE, INSERT, UPDATE, DELETE, DROP, SET or "
          "SHOW");
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<ExprPtr> ParseBareExpression() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool PeekKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

  Status Error(const std::string& msg) const {
    return InvalidArgument(StringPrintf("%s (near offset %zu, got '%s')",
                                        msg.c_str(), Peek().offset,
                                        Peek().text.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return Error(std::string("expected ") + kw);
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* s) {
    if (!Peek().IsSymbol(s)) {
      return Error(std::string("expected '") + s + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  /// Converts an integer token, rejecting values outside int64 instead of
  /// silently clamping to LLONG_MAX the way a bare strtoll would.
  Result<int64_t> ParseInt64(const Token& tok) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(tok.text.c_str(), &end, 10);
    if (errno == ERANGE) {
      return InvalidArgument(
          StringPrintf("integer literal '%s' out of 64-bit range "
                       "(near offset %zu)",
                       tok.text.c_str(), tok.offset));
    }
    if (end != tok.text.c_str() + tok.text.size() ||
        end == tok.text.c_str()) {
      return InvalidArgument(
          StringPrintf("malformed integer literal '%s' (near offset %zu)",
                       tok.text.c_str(), tok.offset));
    }
    return static_cast<int64_t>(v);
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "SELECT", "FROM", "WHERE",  "AND", "OR",  "NOT",    "AS",   "CREATE",
        "TABLE",  "INSERT", "INTO", "VALUES", "DROP", "LIMIT", "NULL",
        "TRUE",   "FALSE", "ORDER", "BY", "ASC", "DESC", "DELETE", "GROUP",
        "UPDATE", "SET"};
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  // -- SELECT ---------------------------------------------------------------

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    while (true) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.is_star = true;
      } else {
        JAGUAR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (PeekKeyword("AS")) {
          Advance();
          JAGUAR_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        }
      }
      stmt.items.push_back(std::move(item));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    // Optional table alias: `FROM Stocks S`.
    if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek().text)) {
      stmt.table_alias = Advance().text;
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      JAGUAR_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        JAGUAR_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        stmt.group_by.push_back(std::move(key));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      JAGUAR_RETURN_IF_ERROR(ExpectKeyword("BY"));
      JAGUAR_ASSIGN_OR_RETURN(stmt.order_by, ParseExpr());
      if (PeekKeyword("ASC")) {
        Advance();
      } else if (PeekKeyword("DESC")) {
        Advance();
        stmt.order_desc = true;
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      JAGUAR_ASSIGN_OR_RETURN(stmt.limit, ParseInt64(Advance()));
    }
    return stmt;
  }

  // -- CREATE TABLE ---------------------------------------------------------

  Result<CreateTableStmt> ParseCreateTable() {
    CreateTableStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    JAGUAR_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Column> cols;
    while (true) {
      Column col;
      JAGUAR_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      JAGUAR_ASSIGN_OR_RETURN(std::string type_name,
                              ExpectIdentifier("column type"));
      JAGUAR_ASSIGN_OR_RETURN(col.type, TypeIdFromString(type_name));
      cols.push_back(std::move(col));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    JAGUAR_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.schema = Schema(std::move(cols));
    return stmt;
  }

  // -- INSERT ---------------------------------------------------------------

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      JAGUAR_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      while (true) {
        JAGUAR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      JAGUAR_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    return stmt;
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (PeekKeyword("WHERE")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<UpdateStmt> ParseUpdate() {
    UpdateStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      JAGUAR_ASSIGN_OR_RETURN(std::string col,
                              ExpectIdentifier("column name"));
      JAGUAR_RETURN_IF_ERROR(ExpectSymbol("="));
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(value));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<DropTableStmt> ParseDropTable() {
    DropTableStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    return stmt;
  }

  // CREATE INDEX <name> ON <table> (<column>)
  Result<CreateIndexStmt> ParseCreateIndex() {
    CreateIndexStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier("index name"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("ON"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    JAGUAR_RETURN_IF_ERROR(ExpectSymbol("("));
    JAGUAR_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("column name"));
    JAGUAR_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  Result<DropIndexStmt> ParseDropIndex() {
    DropIndexStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    JAGUAR_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier("index name"));
    return stmt;
  }

  // SHOW METRICS [LIKE '<prefix>']
  Result<ShowMetricsStmt> ParseShowMetrics() {
    ShowMetricsStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("METRICS"));
    if (PeekKeyword("LIKE")) {
      Advance();
      if (Peek().kind != TokenKind::kString) {
        return Error("expected a quoted prefix after LIKE");
      }
      stmt.like_prefix = Advance().text;
    }
    return stmt;
  }

  // SET TIMEOUT <ms> (0 clears the session override)
  Result<SetTimeoutStmt> ParseSetTimeout() {
    SetTimeoutStmt stmt;
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("SET"));
    JAGUAR_RETURN_IF_ERROR(ExpectKeyword("TIMEOUT"));
    if (Peek().kind != TokenKind::kInteger) {
      return Error("expected integer milliseconds after SET TIMEOUT");
    }
    JAGUAR_ASSIGN_OR_RETURN(stmt.timeout_ms, ParseInt64(Advance()));
    if (stmt.timeout_ms < 0) {
      return Error("SET TIMEOUT requires a non-negative millisecond count");
    }
    return stmt;
  }

  // -- Expressions (precedence climbing) -------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    struct CmpOp {
      const char* sym;
      BinaryOp op;
    };
    static const CmpOp kOps[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNe},
        {"!=", BinaryOp::kNe}, {"==", BinaryOp::kEq}, {"=", BinaryOp::kEq},
        {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const CmpOp& c : kOps) {
      if (Peek().IsSymbol(c.sym)) {
        Advance();
        JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Expr::Binary(c.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      BinaryOp op = Advance().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") ||
           Peek().IsSymbol("%")) {
      const std::string sym = Advance().text;
      BinaryOp op = sym == "*"   ? BinaryOp::kMul
                    : sym == "/" ? BinaryOp::kDiv
                                 : BinaryOp::kMod;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger: {
        JAGUAR_ASSIGN_OR_RETURN(int64_t v, ParseInt64(Advance()));
        return Expr::Literal(Value::Int(v));
      }
      case TokenKind::kFloat: {
        Advance();
        return Expr::Literal(Value::Double(std::strtod(tok.text.c_str(),
                                                       nullptr)));
      }
      case TokenKind::kString: {
        Advance();
        return Expr::Literal(Value::String(tok.text));
      }
      case TokenKind::kSymbol: {
        if (tok.IsSymbol("(")) {
          Advance();
          JAGUAR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          JAGUAR_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        return Error("expected expression");
      }
      case TokenKind::kIdentifier: {
        if (tok.IsKeyword("NULL")) {
          Advance();
          return Expr::Literal(Value::Null());
        }
        if (tok.IsKeyword("TRUE")) {
          Advance();
          return Expr::Literal(Value::Bool(true));
        }
        if (tok.IsKeyword("FALSE")) {
          Advance();
          return Expr::Literal(Value::Bool(false));
        }
        std::string name = Advance().text;
        if (Peek().IsSymbol("(")) {  // function call
          Advance();
          // COUNT(*) is canonicalized to a zero-argument "count_star" call.
          if (Peek().IsSymbol("*") && EqualsIgnoreCase(name, "count")) {
            Advance();
            JAGUAR_RETURN_IF_ERROR(ExpectSymbol(")"));
            return Expr::Call("count_star", {});
          }
          std::vector<ExprPtr> args;
          if (!Peek().IsSymbol(")")) {
            while (true) {
              JAGUAR_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (Peek().IsSymbol(",")) {
                Advance();
                continue;
              }
              break;
            }
          }
          JAGUAR_RETURN_IF_ERROR(ExpectSymbol(")"));
          return Expr::Call(std::move(name), std::move(args));
        }
        if (Peek().IsSymbol(".")) {  // qualified column: S.history
          Advance();
          JAGUAR_ASSIGN_OR_RETURN(std::string col,
                                  ExpectIdentifier("column name"));
          return Expr::Column(std::move(name), std::move(col));
        }
        return Expr::Column("", std::move(name));
      }
      case TokenKind::kEnd:
        return Error("unexpected end of input");
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& input) {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& input) {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseBareExpression();
}

}  // namespace sql
}  // namespace jaguar
