#ifndef JAGUAR_OBS_METRICS_H_
#define JAGUAR_OBS_METRICS_H_

/// \file metrics.h
/// Process-wide observability layer: lock-free counters and fixed-bucket
/// log-scale histograms behind a named registry.
///
/// The paper's evaluation (Sections 5–6) is built on counting what crosses a
/// language or process boundary — invocations, bytes, callbacks, JIT
/// compilations — and timing how long the crossing takes. This registry makes
/// those quantities first-class in the live engine instead of ad-hoc bench
/// counters: every subsystem registers counters/histograms by dotted name
/// ("udf.jni.invocations", "ipc.shm.wait_ns", ...) and the engine exposes
/// them through `SHOW METRICS`, `DumpText()`/`DumpJson()` and per-query
/// snapshot deltas in `QueryResult`.
///
/// Concurrency model: `GetCounter`/`GetHistogram` take a mutex once to
/// register or look up a name and return a pointer that is stable for the
/// process lifetime; hot paths cache the pointer and touch only relaxed
/// atomics afterwards. Counts are monotone, so relaxed ordering is safe —
/// readers may see a slightly stale value, never a torn one.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jaguar {
namespace obs {

/// A monotonically increasing 64-bit counter. Add/value are wait-free.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative 64-bit samples (typically
/// nanoseconds or bytes). Bucket `i` covers values whose bit width is `i`,
/// i.e. [2^(i-1), 2^i); bucket 0 holds exactly the value 0. With 64 buckets
/// the full uint64 range is representable, so Record never clamps.
///
/// Percentiles are approximate: `ValueAtPercentile` answers with the upper
/// bound of the bucket containing the requested rank, which is within 2x of
/// the true value — plenty for "is this microseconds or milliseconds" style
/// questions the paper's figures ask.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean of all recorded samples (0 if none recorded).
  double Mean() const;
  /// \param p in [0, 100]. Approximate value at the p-th percentile.
  uint64_t ValueAtPercentile(double p) const;

  /// \return Index of the bucket `value` falls into (also its bit width).
  static int BucketIndex(uint64_t value);
  /// \return Inclusive upper bound of bucket `i` (0 for bucket 0).
  static uint64_t BucketUpperBound(int i);

  /// Copies the per-bucket counts (index = bit width of the sample).
  std::vector<uint64_t> BucketCounts() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// A point-in-time reading of every registered metric, keyed by name.
/// Counters appear under their own name; a histogram `h` contributes
/// `h.count` and `h.sum` (the pieces whose before/after difference is
/// meaningful — percentiles of a delta are not well-defined).
using MetricsSnapshot = std::map<std::string, uint64_t>;

/// \return `after - before`, keeping only entries that changed (metrics
/// registered after `before` was taken count from zero).
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Process-wide named registry of counters and histograms.
class MetricsRegistry {
 public:
  /// The process-global registry (what `SHOW METRICS` reads).
  static MetricsRegistry* Global();

  /// Returns the counter registered under `name`, creating it on first use.
  /// The pointer is stable for the registry's lifetime — cache it in hot
  /// paths. A name holds either a counter or a histogram, never both;
  /// requesting the wrong kind returns nullptr (callers treat this as a
  /// programming error).
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Reads every metric whose name starts with `prefix` ("" = all).
  MetricsSnapshot Snapshot(const std::string& prefix = "") const;

  /// One metric per line, sorted by name:
  ///   storage.bufferpool.hits 1043
  ///   udf.jni.latency_ns count=10000 sum=54321000 p50=4095 p99=16383
  std::string DumpText(const std::string& prefix = "") const;

  /// A single JSON object. Counters map to integers; histograms map to an
  /// object {"count":..,"sum":..,"mean":..,"p50":..,"p90":..,"p99":..}.
  std::string DumpJson(const std::string& prefix = "") const;

  /// Human-readable rows for SHOW METRICS: pairs of (name, value-string).
  /// Histograms expand to one row per statistic, like DumpText fields.
  std::vector<std::pair<std::string, std::string>> Rows(
      const std::string& prefix = "") const;

 private:
  mutable std::mutex mutex_;
  // node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII scope timer: records elapsed nanoseconds into `hist` on destruction.
/// A null histogram makes the timer a no-op, so call sites can keep one
/// unconditional Timer and decide at setup time whether to measure.
class Timer {
 public:
  explicit Timer(Histogram* hist);
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

 private:
  Histogram* hist_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace jaguar

#endif  // JAGUAR_OBS_METRICS_H_
