#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <limits>

#include "common/clock.h"
#include "common/string_util.h"

namespace jaguar {
namespace obs {

namespace {

bool HasPrefix(const std::string& name, const std::string& prefix) {
  return prefix.empty() || StartsWith(name, prefix);
}

}  // namespace

int Histogram::BucketIndex(uint64_t value) {
  int width = std::bit_width(value);  // 0 for value == 0
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << i) - 1;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::ValueAtPercentile(double p) const {
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t total = count();
  if (total == 0) return 0;
  // Rank of the requested sample, 1-based; p=0 maps to the first sample.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * total);
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    uint64_t base = it == before.end() ? 0 : it->second;
    if (value != base) delta[name] = value - base;
  }
  return delta;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (histograms_.count(name) != 0) return nullptr;
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0) return nullptr;
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    if (HasPrefix(name, prefix)) snap[name] = counter->value();
  }
  for (const auto& [name, hist] : histograms_) {
    if (!HasPrefix(name, prefix)) continue;
    snap[name + ".count"] = hist->count();
    snap[name + ".sum"] = hist->sum();
  }
  return snap;
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::Rows(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Merge the two maps into one name-sorted row list.
  std::map<std::string, std::string> rows;
  for (const auto& [name, counter] : counters_) {
    if (!HasPrefix(name, prefix)) continue;
    rows[name] = StringPrintf(
        "%" PRIu64, counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    if (!HasPrefix(name, prefix)) continue;
    rows[name + ".count"] = StringPrintf("%" PRIu64, hist->count());
    rows[name + ".sum"] = StringPrintf("%" PRIu64, hist->sum());
    rows[name + ".mean"] = StringPrintf("%.1f", hist->Mean());
    rows[name + ".p50"] =
        StringPrintf("%" PRIu64, hist->ValueAtPercentile(50));
    rows[name + ".p99"] =
        StringPrintf("%" PRIu64, hist->ValueAtPercentile(99));
  }
  return {rows.begin(), rows.end()};
}

std::string MetricsRegistry::DumpText(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::string> lines;
  for (const auto& [name, counter] : counters_) {
    if (!HasPrefix(name, prefix)) continue;
    lines[name] = StringPrintf("%s %" PRIu64, name.c_str(), counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    if (!HasPrefix(name, prefix)) continue;
    lines[name] = StringPrintf(
        "%s count=%" PRIu64 " sum=%" PRIu64 " mean=%.1f p50=%" PRIu64
        " p90=%" PRIu64 " p99=%" PRIu64,
        name.c_str(), hist->count(), hist->sum(), hist->Mean(),
        hist->ValueAtPercentile(50), hist->ValueAtPercentile(90),
        hist->ValueAtPercentile(99));
  }
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::DumpJson(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::string> fields;
  for (const auto& [name, counter] : counters_) {
    if (!HasPrefix(name, prefix)) continue;
    fields[name] = StringPrintf("%" PRIu64, counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    if (!HasPrefix(name, prefix)) continue;
    fields[name] = StringPrintf(
        "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
        ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
        ",\"p99\":%" PRIu64 "}",
        hist->count(), hist->sum(), hist->Mean(), hist->ValueAtPercentile(50),
        hist->ValueAtPercentile(90), hist->ValueAtPercentile(99));
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : fields) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + value;
  }
  out += "}";
  return out;
}

Timer::Timer(Histogram* hist) : hist_(hist), start_ns_(0) {
  if (hist_ != nullptr) {
    start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  }
}

Timer::~Timer() {
  if (hist_ == nullptr) return;
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  int64_t elapsed = now_ns - start_ns_;
  hist_->Record(elapsed > 0 ? static_cast<uint64_t>(elapsed) : 0);
}

}  // namespace obs
}  // namespace jaguar
