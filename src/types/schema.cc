#include "types/schema.h"

#include "common/string_util.h"

namespace jaguar {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return NotFound("no column named '" + name + "'");
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeIdToString(columns_[i].type);
  }
  out += ")";
  return out;
}

void Schema::WriteTo(BufferWriter* w) const {
  w->PutU32(static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> Schema::ReadFrom(BufferReader* r) {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  if (n > 1u << 16) return Corruption("implausible column count");
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    JAGUAR_ASSIGN_OR_RETURN(c.name, r->ReadString());
    JAGUAR_ASSIGN_OR_RETURN(uint8_t t, r->ReadU8());
    if (t > static_cast<uint8_t>(TypeId::kBytes)) {
      return Corruption("bad type tag in schema");
    }
    c.type = static_cast<TypeId>(t);
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

}  // namespace jaguar
