#ifndef JAGUAR_TYPES_SCHEMA_H_
#define JAGUAR_TYPES_SCHEMA_H_

/// \file schema.h
/// Relation schemas: ordered, named, typed columns.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "types/value.h"

namespace jaguar {

/// One column of a relation.
struct Column {
  std::string name;
  TypeId type;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of columns. Column name lookup is case-insensitive, as in
/// SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// \return Index of the named column, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// \return true if `name` resolves to a column.
  bool Contains(const std::string& name) const { return IndexOf(name).ok(); }

  /// \return "(name TYPE, ...)" for error messages and catalog dumps.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  /// Serialization for the system catalog and the wire protocol.
  void WriteTo(BufferWriter* w) const;
  static Result<Schema> ReadFrom(BufferReader* r);

 private:
  std::vector<Column> columns_;
};

}  // namespace jaguar

#endif  // JAGUAR_TYPES_SCHEMA_H_
