#ifndef JAGUAR_TYPES_VALUE_H_
#define JAGUAR_TYPES_VALUE_H_

/// \file value.h
/// The runtime value system of the jaguar OR-DBMS.
///
/// Values cover the types the paper's workloads need: integers for UDF control
/// parameters and results, strings for predicates like `S.type = "tech"`, and
/// byte arrays for the paper's central `ByteArray` attribute (images, stock
/// histories, generic blobs).
///
/// Values implement the **ADT stream protocol** of Section 6.4: every type can
/// write itself to an output stream and reconstruct itself from an input
/// stream. The identical encoding is used on disk (tuples in slotted pages),
/// across the IPC boundary (Design 2), across the JagVM boundary (Design 3),
/// and on the network wire — which is exactly what makes UDFs portable between
/// client and server.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace jaguar {

/// Type tags. The numeric values are part of the on-disk/on-wire format.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,     ///< 64-bit signed integer.
  kDouble = 3,  ///< IEEE-754 double.
  kString = 4,  ///< Variable-length character string.
  kBytes = 5,   ///< Variable-length byte array (the paper's ByteArray ADT).
};

/// \return Human/SQL-facing name of a type ("INT", "BYTEARRAY", ...).
const char* TypeIdToString(TypeId t);

/// Parses a SQL type name ("INT", "BIGINT", "DOUBLE", "FLOAT", "STRING",
/// "VARCHAR", "TEXT", "BYTEARRAY", "BYTES", "BLOB", "BOOL", "BOOLEAN").
Result<TypeId> TypeIdFromString(const std::string& name);

/// A dynamically typed SQL value.
class Value {
 public:
  /// Constructs a SQL NULL.
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(TypeId::kBool, v); }
  static Value Int(int64_t v) { return Value(TypeId::kInt, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value String(std::string v) {
    return Value(TypeId::kString, std::move(v));
  }
  static Value Bytes(std::vector<uint8_t> v) {
    return Value(TypeId::kBytes, std::move(v));
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  /// Typed accessors; calling the wrong accessor is a programming error
  /// (checked via assert in debug builds through std::get).
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const std::vector<uint8_t>& AsBytes() const {
    return std::get<std::vector<uint8_t>>(data_);
  }
  std::vector<uint8_t>& MutableBytes() {
    return std::get<std::vector<uint8_t>>(data_);
  }

  /// Numeric coercion: int → double where needed. Errors on non-numerics.
  Result<double> CoerceDouble() const;
  /// Int accessor with coercion from bool; errors on other types.
  Result<int64_t> CoerceInt() const;

  /// Deep equality (NULL equals NULL here; SQL ternary logic is applied by the
  /// expression evaluator, not by this method).
  bool Equals(const Value& other) const;

  /// Three-way comparison for ORDER/predicates. Values must be comparable
  /// (same type family); returns InvalidArgument otherwise.
  Result<int> Compare(const Value& other) const;

  /// \return Display form used by result printers ("NULL", "42", "'abc'",
  /// "<N bytes>").
  std::string ToString() const;

  /// ADT stream protocol (§6.4): appends `type tag + payload`.
  void WriteTo(BufferWriter* w) const;
  /// ADT stream protocol: reads one value written by `WriteTo`.
  static Result<Value> ReadFrom(BufferReader* r);

  /// \return Serialized size in bytes (tag + payload).
  size_t SerializedSize() const;

 private:
  template <typename T>
  Value(TypeId t, T&& v) : type_(t), data_(std::forward<T>(v)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<uint8_t>>
      data_;
};

}  // namespace jaguar

#endif  // JAGUAR_TYPES_VALUE_H_
