#ifndef JAGUAR_TYPES_TUPLE_H_
#define JAGUAR_TYPES_TUPLE_H_

/// \file tuple.h
/// A row of values, serializable through the ADT stream protocol so the same
/// bytes travel between heap pages, the IPC shared-memory segment, and the
/// network wire.

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace jaguar {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }

  /// Serializes all values (self-describing; no schema needed to decode).
  void WriteTo(BufferWriter* w) const;
  static Result<Tuple> ReadFrom(BufferReader* r);

  /// Convenience: serialize to a fresh byte vector.
  std::vector<uint8_t> Serialize() const;
  /// Convenience: deserialize one tuple occupying the whole slice.
  static Result<Tuple> Deserialize(Slice bytes);

  /// Validates this tuple against a schema (arity and types; NULL matches any
  /// column type).
  Status CheckSchema(const Schema& schema) const;

  /// \return "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace jaguar

#endif  // JAGUAR_TYPES_TUPLE_H_
