#include "types/tuple.h"

#include "common/string_util.h"

namespace jaguar {

void Tuple::WriteTo(BufferWriter* w) const {
  w->PutU32(static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) v.WriteTo(w);
}

Result<Tuple> Tuple::ReadFrom(BufferReader* r) {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  if (n > 1u << 20) return Corruption("implausible tuple arity");
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Value::ReadFrom(r));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

std::vector<uint8_t> Tuple::Serialize() const {
  BufferWriter w;
  WriteTo(&w);
  return w.Release();
}

Result<Tuple> Tuple::Deserialize(Slice bytes) {
  BufferReader r(bytes);
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, ReadFrom(&r));
  if (!r.AtEnd()) return Corruption("trailing bytes after tuple");
  return t;
}

Status Tuple::CheckSchema(const Schema& schema) const {
  if (values_.size() != schema.num_columns()) {
    return InvalidArgument(StringPrintf(
        "tuple has %zu values but schema has %zu columns", values_.size(),
        schema.num_columns()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    TypeId want = schema.column(i).type;
    TypeId got = values_[i].type();
    const bool numeric_ok =
        want == TypeId::kDouble && got == TypeId::kInt;  // implicit widening
    if (got != want && !numeric_ok) {
      return InvalidArgument(StringPrintf(
          "column %zu (%s) expects %s but value is %s", i,
          schema.column(i).name.c_str(), TypeIdToString(want),
          TypeIdToString(got)));
    }
  }
  return Status::OK();
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace jaguar
