#include "types/value.h"

#include "common/string_util.h"

namespace jaguar {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOL";
    case TypeId::kInt: return "INT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "STRING";
    case TypeId::kBytes: return "BYTEARRAY";
  }
  return "?";
}

Result<TypeId> TypeIdFromString(const std::string& name) {
  const std::string n = ToUpper(name);
  if (n == "INT" || n == "INTEGER" || n == "BIGINT") return TypeId::kInt;
  if (n == "DOUBLE" || n == "FLOAT" || n == "REAL") return TypeId::kDouble;
  if (n == "STRING" || n == "VARCHAR" || n == "TEXT" || n == "CHAR") {
    return TypeId::kString;
  }
  if (n == "BYTEARRAY" || n == "BYTES" || n == "BLOB") return TypeId::kBytes;
  if (n == "BOOL" || n == "BOOLEAN") return TypeId::kBool;
  return InvalidArgument("unknown type name: " + name);
}

Result<double> Value::CoerceDouble() const {
  switch (type_) {
    case TypeId::kInt: return static_cast<double>(AsInt());
    case TypeId::kDouble: return AsDouble();
    case TypeId::kBool: return AsBool() ? 1.0 : 0.0;
    default:
      return InvalidArgument(std::string("cannot coerce ") +
                             TypeIdToString(type_) + " to DOUBLE");
  }
}

Result<int64_t> Value::CoerceInt() const {
  switch (type_) {
    case TypeId::kInt: return AsInt();
    case TypeId::kBool: return static_cast<int64_t>(AsBool() ? 1 : 0);
    default:
      return InvalidArgument(std::string("cannot coerce ") +
                             TypeIdToString(type_) + " to INT");
  }
}

bool Value::Equals(const Value& other) const {
  if (type_ != other.type_) {
    // Numeric cross-type equality (int vs double).
    if ((type_ == TypeId::kInt && other.type_ == TypeId::kDouble) ||
        (type_ == TypeId::kDouble && other.type_ == TypeId::kInt)) {
      return CoerceDouble().value() == other.CoerceDouble().value();
    }
    return false;
  }
  return data_ == other.data_;
}

Result<int> Value::Compare(const Value& other) const {
  auto three_way = [](auto a, auto b) { return a < b ? -1 : (a > b ? 1 : 0); };
  if (is_null() || other.is_null()) {
    return InvalidArgument("cannot compare NULL values");
  }
  const bool numeric_a = type_ == TypeId::kInt || type_ == TypeId::kDouble ||
                         type_ == TypeId::kBool;
  const bool numeric_b = other.type_ == TypeId::kInt ||
                         other.type_ == TypeId::kDouble ||
                         other.type_ == TypeId::kBool;
  if (numeric_a && numeric_b) {
    if (type_ == TypeId::kInt && other.type_ == TypeId::kInt) {
      return three_way(AsInt(), other.AsInt());
    }
    JAGUAR_ASSIGN_OR_RETURN(double a, CoerceDouble());
    JAGUAR_ASSIGN_OR_RETURN(double b, other.CoerceDouble());
    return three_way(a, b);
  }
  if (type_ != other.type_) {
    return InvalidArgument(std::string("cannot compare ") +
                           TypeIdToString(type_) + " with " +
                           TypeIdToString(other.type_));
  }
  switch (type_) {
    case TypeId::kString:
      return three_way(AsString().compare(other.AsString()), 0);
    case TypeId::kBytes:
      return Slice(AsBytes()).Compare(Slice(other.AsBytes()));
    default:
      return InvalidArgument("unorderable type");
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return AsBool() ? "true" : "false";
    case TypeId::kInt: return std::to_string(AsInt());
    case TypeId::kDouble: return StringPrintf("%g", AsDouble());
    case TypeId::kString: return "'" + AsString() + "'";
    case TypeId::kBytes:
      return StringPrintf("<%zu bytes>", AsBytes().size());
  }
  return "?";
}

void Value::WriteTo(BufferWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type_));
  switch (type_) {
    case TypeId::kNull: break;
    case TypeId::kBool: w->PutU8(AsBool() ? 1 : 0); break;
    case TypeId::kInt: w->PutI64(AsInt()); break;
    case TypeId::kDouble: w->PutDouble(AsDouble()); break;
    case TypeId::kString: w->PutString(AsString()); break;
    case TypeId::kBytes: w->PutLengthPrefixed(Slice(AsBytes())); break;
  }
}

Result<Value> Value::ReadFrom(BufferReader* r) {
  JAGUAR_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      JAGUAR_ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      return Value::Bool(b != 0);
    }
    case TypeId::kInt: {
      JAGUAR_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      JAGUAR_ASSIGN_OR_RETURN(double v, r->ReadDouble());
      return Value::Double(v);
    }
    case TypeId::kString: {
      JAGUAR_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::String(std::move(s));
    }
    case TypeId::kBytes: {
      JAGUAR_ASSIGN_OR_RETURN(Slice s, r->ReadLengthPrefixed());
      return Value::Bytes(s.ToVector());
    }
  }
  return Corruption("unknown value type tag " + std::to_string(tag));
}

size_t Value::SerializedSize() const {
  switch (type_) {
    case TypeId::kNull: return 1;
    case TypeId::kBool: return 2;
    case TypeId::kInt: return 9;
    case TypeId::kDouble: return 9;
    case TypeId::kString: return 5 + AsString().size();
    case TypeId::kBytes: return 5 + AsBytes().size();
  }
  return 1;
}

}  // namespace jaguar
