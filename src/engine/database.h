#ifndef JAGUAR_ENGINE_DATABASE_H_
#define JAGUAR_ENGINE_DATABASE_H_

/// \file database.h
/// The embedded jaguar OR-DBMS: storage + catalog + SQL + UDFs in one object.
/// This is the primary public API; the network server (src/net) and every
/// example/bench build on it.
///
/// ```
///   auto db = Database::Open("/tmp/demo.db").value();
///   db->Execute("CREATE TABLE stocks (symbol STRING, type STRING, "
///               "history BYTEARRAY)");
///   db->Execute("INSERT INTO stocks VALUES ('IBM', 'tech', "
///               "randbytes(1000, 42))");
///   auto r = db->Execute("SELECT symbol FROM stocks S "
///               "WHERE S.type = 'tech' AND InvestVal(S.history) > 5");
/// ```

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "udf/quarantine.h"
#include "jvm/vm.h"
#include "storage/storage_engine.h"
#include "udf/udf.h"
#include "udf/udf_manager.h"

namespace jaguar {

namespace sql {
struct Statement;
}  // namespace sql

struct DatabaseOptions {
  /// Buffer pool capacity in pages (8 KB each).
  size_t buffer_pool_pages = 1024;
  /// Per-invocation UDF callback quota (0 = unlimited) — part of the
  /// Section 6.2 resource-management policy.
  uint64_t udf_callback_quota = 0;
  /// JagVM: JIT-compile JJava UDFs (false = interpret; the Figure 6
  /// ablation).
  bool udf_jit = true;
  /// JagVM: emit per-block CPU-budget checks in JIT code (Section 6.2
  /// accounting). The paper's 1998 JVMs had no such policing; disabling
  /// this reproduces their configuration exactly.
  bool udf_jit_budget_checks = true;
  /// JagVM per-invocation instruction budget (0 = unlimited).
  int64_t udf_instruction_budget = 0;
  /// JagVM per-invocation heap quota in bytes (0 = unlimited).
  size_t udf_heap_quota_bytes = 0;
  /// Shared-memory capacity per direction for Design-2 executors.
  size_t isolated_shm_bytes = 1 << 20;
  /// IPC transport for isolated executor channels: "ring" (zero-copy SPSC
  /// ring buffer, zero syscalls on the uncontended path) or "message" (the
  /// copying semaphore-per-message channel). Any other value fails Open with
  /// InvalidArgument.
  std::string ipc_transport = "ring";
  /// Vectorized execution (Section 2.5): operators exchange `batch_size`
  /// tuples per `NextBatch` pull and UDF calls cross the isolation boundary
  /// once per batch instead of once per tuple. Off by default so the
  /// paper-figure benchmarks keep measuring true per-invocation crossings.
  bool vectorized_execution = false;
  /// Tuples per operator batch when `vectorized_execution` is on.
  size_t batch_size = 256;
  /// Capacity (entries) of the per-(UDF, arguments) result memo attached to
  /// each runner; 0 = disabled. Only deterministic, callback-free
  /// invocations are memoized, and re-registration drops the memo.
  size_t udf_memo_entries = 0;
  /// Morsel-driven intra-query parallelism: worker threads per SELECT
  /// (1 = serial). Requires `vectorized_execution`. Covers every plan
  /// shape — scans (LIMIT truncates after the morsel-order merge),
  /// aggregation (per-morsel partial hash tables merged in morsel order)
  /// and ORDER BY (per-morsel sorted runs, k-way merge) — with output
  /// byte-identical to serial. Isolated UDF designs get an executor pool
  /// of this size (one child process per worker).
  size_t num_workers = 1;
  /// Wall-clock deadline per query in milliseconds (0 = unlimited). When it
  /// passes, serial and parallel operators stop between tuples/batches,
  /// JagVM UDFs abort via the instruction-budget/deadline check, and wedged
  /// isolated executor children are SIGKILLed by the watchdog; the query
  /// fails with DeadlineExceeded. Integrated C++ UDFs remain unkillable
  /// mid-invocation (the paper's Table 1 security column). `SET TIMEOUT <ms>`
  /// overrides this per session.
  int64_t query_timeout_ms = 0;
  /// Write-ahead logging (crash recovery). Off = pre-WAL behavior: no log
  /// file, durability only at Flush()/Close().
  bool wal_enabled = true;
  /// fsync the log after every mutating statement. Disabling keeps write
  /// ordering (the WAL rule) but lets a crash lose the last few statements;
  /// benchmarks use this so figures measure UDF costs, not fsyncs.
  bool wal_fsync = true;
  /// Auto-checkpoint (flush + log truncation) once the log exceeds this many
  /// bytes.
  uint64_t wal_checkpoint_bytes = 8ull << 20;
  /// Buffer pool shard count (rounded up to a power of two). 0 = auto:
  /// scaled from `num_workers`, capped at 16. 1 reproduces the old
  /// single-latch pool (used by the bench ablation).
  size_t buffer_pool_shards = 0;
  /// Sequential-scan readahead depth in pages (0 = off): scans hint the
  /// pool, a background worker prefetches, and prefetched pages enter the
  /// replacement clock cold so one big scan cannot evict the working set.
  size_t readahead_pages = 8;
  /// Background writer thread: trickles dirty unpinned pages to disk
  /// (honoring the WAL rule) so foreground fetches rarely pay a
  /// write+fsync at eviction time.
  bool bg_writer = false;
};

/// Server-side large-object store: the target of UDF handle callbacks
/// (Section 5.5's Clip()/Lookup() pattern). Objects persist in a hidden
/// catalog table.
class LobStore {
 public:
  LobStore(StorageEngine* engine, Catalog* catalog);

  /// Loads (or creates) the hidden LOB table and its in-memory index.
  Status Init();

  /// Stores `data`; returns the new object's handle.
  Result<int64_t> Store(const std::vector<uint8_t>& data);

  /// Reads `len` bytes at `offset`; clamped at the object's end.
  Result<std::vector<uint8_t>> Fetch(int64_t handle, uint64_t offset,
                                     uint64_t len);

  /// Total size of an object.
  Result<uint64_t> Size(int64_t handle);

 private:
  StorageEngine* engine_;
  Catalog* catalog_;
  PageId heap_root_ = kInvalidPageId;
  std::unordered_map<int64_t, RecordId> index_;
  int64_t next_id_ = 1;
};

class Database : public UdfCallbackHandler {
 public:
  /// Opens (creating if needed) the database at `path`.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, const DatabaseOptions& options = {});

  ~Database() override;

  /// Parses and executes one SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Registers a UDF in the catalog (payload already verified by the caller
  /// for JJava UDFs; the net server verifies uploads before calling this).
  Status RegisterUdf(UdfInfo info);
  Status DropUdf(const std::string& name);

  /// Large-object API (handles are what UDF callbacks dereference).
  Result<int64_t> StoreLob(const std::vector<uint8_t>& data);
  Result<std::vector<uint8_t>> FetchLob(int64_t handle, uint64_t offset,
                                        uint64_t len);

  /// UdfCallbackHandler — the server side of UDF callbacks.
  /// kind 0: echo `arg` (the paper's data-less benchmark callback).
  /// kind 1: size of LOB `arg`.
  Result<int64_t> Callback(int64_t kind, int64_t arg) override;
  Result<std::vector<uint8_t>> FetchBytes(int64_t handle, uint64_t offset,
                                          uint64_t len) override;

  /// Total callbacks served since open (calibration/visibility).
  uint64_t callbacks_served() const { return callbacks_served_.load(); }

  Catalog* catalog() { return catalog_.get(); }
  StorageEngine* storage() { return storage_.get(); }
  UdfManager* udf_manager() { return udf_manager_.get(); }
  /// The server's single JagVM instance (created at open, lives to close —
  /// the paper's policy for the embedded JVM).
  jvm::Jvm* vm() { return vm_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// Flushes all state to disk.
  Status Flush();

 private:
  Database() = default;

  /// Dispatches a parsed statement; `Execute` wraps this with the
  /// before/after metrics snapshots that fill `QueryResult::metrics_delta`.
  /// `deadline` is the query's cancellation token (inactive when unbounded);
  /// it lives in `Execute`'s frame for the duration of the statement.
  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt,
                                       const QueryDeadline& deadline);
  Result<QueryResult> ExecuteSelect(const sql::Statement& stmt,
                                    const QueryDeadline& deadline);
  Result<QueryResult> ExecuteAggregate(const sql::Statement& stmt,
                                       const QueryDeadline& deadline);
  Result<QueryResult> ExecuteInsert(const sql::Statement& stmt,
                                    const QueryDeadline& deadline);
  Result<QueryResult> ExecuteDelete(const sql::Statement& stmt,
                                    const QueryDeadline& deadline);
  Result<QueryResult> ExecuteUpdate(const sql::Statement& stmt,
                                    const QueryDeadline& deadline);
  Result<QueryResult> ExecuteShowMetrics(const sql::Statement& stmt);
  Result<QueryResult> ExecuteCreateIndex(const sql::Statement& stmt,
                                         const QueryDeadline& deadline);
  Result<QueryResult> ExecuteDropIndex(const sql::Statement& stmt);

  /// Synchronous secondary-index maintenance, applied to every index on
  /// `table`. NULL keys are never stored; `Validate` rejects over-size keys
  /// *before* the heap mutates so a failed statement leaves both sides
  /// untouched.
  Status ValidateIndexKeys(const TableInfo* table, const Tuple& t) const;
  Status InsertIndexEntries(const TableInfo* table, const Tuple& t,
                            RecordId rid);
  Status DeleteIndexEntries(const TableInfo* table, const Tuple& t,
                            RecordId rid);
  /// Rebuilds every secondary index from its table heap. Run after crash
  /// recovery: the redo-only WAL replays complete *records*, but a crash
  /// mid-statement can leave an index reflecting only part of a structure
  /// modification relative to its heap, so recovery re-derives index state
  /// from the (consistent) heaps.
  Status RebuildIndexesAfterCrash();

  DatabaseOptions options_;
  /// Session-level `SET TIMEOUT` override in ms; 0 = none (use
  /// `options_.query_timeout_ms`).
  int64_t session_timeout_ms_ = 0;
  std::unique_ptr<StorageEngine> storage_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<jvm::Jvm> vm_;
  /// Disables UDFs that keep timing out or crashing (consecutive-strike
  /// policy); re-registration clears the entry. Declared before
  /// `udf_manager_` so it outlives the runners reporting outcomes to it.
  QuarantineTracker quarantine_;
  std::unique_ptr<UdfManager> udf_manager_;
  std::unique_ptr<LobStore> lobs_;
  /// Atomic: parallel scan workers serve callbacks concurrently.
  std::atomic<uint64_t> callbacks_served_{0};
};

}  // namespace jaguar

#endif  // JAGUAR_ENGINE_DATABASE_H_
