#ifndef JAGUAR_ENGINE_QUERY_RESULT_H_
#define JAGUAR_ENGINE_QUERY_RESULT_H_

/// \file query_result.h
/// Materialized result of one SQL statement.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace jaguar {

struct QueryResult {
  Schema schema;             ///< Empty for DDL/DML statements.
  std::vector<Tuple> rows;   ///< SELECT output.
  uint64_t rows_affected = 0;
  std::string message;       ///< Human-readable status ("Table created").

  /// What this statement changed in the process-wide metrics registry
  /// (after minus before, zero entries dropped): exact invocation,
  /// boundary-byte and callback counts for the query, alongside wall time.
  /// Histograms appear as `<name>.count` / `<name>.sum` entries.
  obs::MetricsSnapshot metrics_delta;

  /// Renders an aligned ASCII table (used by the CLI client and examples).
  std::string ToPrettyString() const;
};

}  // namespace jaguar

#endif  // JAGUAR_ENGINE_QUERY_RESULT_H_
