#ifndef JAGUAR_ENGINE_QUERY_RESULT_H_
#define JAGUAR_ENGINE_QUERY_RESULT_H_

/// \file query_result.h
/// Materialized result of one SQL statement.

#include <cstdint>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/tuple.h"

namespace jaguar {

struct QueryResult {
  Schema schema;             ///< Empty for DDL/DML statements.
  std::vector<Tuple> rows;   ///< SELECT output.
  uint64_t rows_affected = 0;
  std::string message;       ///< Human-readable status ("Table created").

  /// Renders an aligned ASCII table (used by the CLI client and examples).
  std::string ToPrettyString() const;
};

}  // namespace jaguar

#endif  // JAGUAR_ENGINE_QUERY_RESULT_H_
