#include "engine/database.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/expression.h"
#include "exec/index_scan.h"
#include "exec/operators.h"
#include "index/btree.h"
#include "exec/parallel.h"
#include "exec/sort.h"
#include "sql/parser.h"
#include "udf/builtins.h"
#include "udf/isolated_udf_runner.h"
#include "udf/jvm_udf_runner.h"
#include "udf/sfi_udf_runner.h"
#include "udf/generic_udf.h"

namespace jaguar {

namespace {
/// Hidden catalog table backing the LOB store.
constexpr char kLobTableName[] = "__lobs";

obs::Counter* DeadlineQueries() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->GetCounter("exec.deadline.queries");
  return counter;
}

obs::Counter* DeadlineExceededQueries() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->GetCounter("exec.deadline.exceeded");
  return counter;
}
}  // namespace

// ---------------------------------------------------------------------------
// LobStore
// ---------------------------------------------------------------------------

LobStore::LobStore(StorageEngine* engine, Catalog* catalog)
    : engine_(engine), catalog_(catalog) {}

Status LobStore::Init() {
  Result<const TableInfo*> info = catalog_->GetTable(kLobTableName);
  if (!info.ok()) {
    if (!info.status().IsNotFound()) return info.status();
    Schema schema({{"id", TypeId::kInt}, {"data", TypeId::kBytes}});
    JAGUAR_RETURN_IF_ERROR(catalog_->CreateTable(kLobTableName, schema));
    JAGUAR_ASSIGN_OR_RETURN(info, catalog_->GetTable(kLobTableName));
  }
  heap_root_ = (*info)->first_page;
  // Build the handle index.
  TableHeap heap(engine_, heap_root_);
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    if (t.num_values() != 2 || t.value(0).type() != TypeId::kInt) {
      return Corruption("malformed LOB record");
    }
    int64_t id = t.value(0).AsInt();
    index_[id] = rec->first;
    next_id_ = std::max(next_id_, id + 1);
  }
  return Status::OK();
}

Result<int64_t> LobStore::Store(const std::vector<uint8_t>& data) {
  int64_t id = next_id_++;
  Tuple t({Value::Int(id), Value::Bytes(data)});
  TableHeap heap(engine_, heap_root_);
  JAGUAR_ASSIGN_OR_RETURN(RecordId rid, heap.Insert(Slice(t.Serialize())));
  index_[id] = rid;
  return id;
}

Result<std::vector<uint8_t>> LobStore::Fetch(int64_t handle, uint64_t offset,
                                             uint64_t len) {
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return NotFound(StringPrintf("no LOB with handle %lld",
                                 static_cast<long long>(handle)));
  }
  TableHeap heap(engine_, heap_root_);
  JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap.Get(it->second));
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(bytes)));
  const std::vector<uint8_t>& data = t.value(1).AsBytes();
  if (offset >= data.size()) return std::vector<uint8_t>();
  uint64_t end = std::min<uint64_t>(data.size(), offset + len);
  return std::vector<uint8_t>(data.begin() + offset, data.begin() + end);
}

Result<uint64_t> LobStore::Size(int64_t handle) {
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return NotFound(StringPrintf("no LOB with handle %lld",
                                 static_cast<long long>(handle)));
  }
  TableHeap heap(engine_, heap_root_);
  JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap.Get(it->second));
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(bytes)));
  return t.value(1).AsBytes().size();
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::~Database() {
  if (storage_ != nullptr) storage_->Close().ok();
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  RegisterBuiltinUdfs();
  RegisterGenericUdfs();
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  wal::WalOptions wal_options;
  wal_options.enabled = options.wal_enabled;
  wal_options.fsync_on_commit = options.wal_fsync;
  wal_options.checkpoint_bytes = options.wal_checkpoint_bytes;
  BufferPoolConfig pool_config;
  pool_config.shards = options.buffer_pool_shards;
  pool_config.workers_hint = std::max<size_t>(1, options.num_workers);
  pool_config.readahead_pages = options.readahead_pages;
  pool_config.bg_writer = options.bg_writer;
  JAGUAR_ASSIGN_OR_RETURN(
      db->storage_,
      StorageEngine::Open(path, options.buffer_pool_pages, wal_options,
                          pool_config));
  JAGUAR_ASSIGN_OR_RETURN(db->catalog_, Catalog::Open(db->storage_.get()));

  // One JagVM per server, created at startup (Section 4.2: "a single JVM is
  // created when the database server starts up, and is used until shutdown").
  jvm::JvmOptions vm_options;
  vm_options.enable_jit = options.udf_jit;
  vm_options.jit_budget_checks = options.udf_jit_budget_checks;
  db->vm_ = std::make_unique<jvm::Jvm>(vm_options);
  JAGUAR_RETURN_IF_ERROR(InstallJaguarNatives(db->vm_.get()));

  db->udf_manager_ = std::make_unique<UdfManager>(db->catalog_.get());
  db->udf_manager_->set_memo_capacity(options.udf_memo_entries);
  db->udf_manager_->set_quarantine(&db->quarantine_);
  jvm::ResourceLimits limits;
  limits.instruction_budget = options.udf_instruction_budget;
  limits.heap_quota_bytes = options.udf_heap_quota_bytes;
  db->udf_manager_->SetRunnerFactory(
      UdfLanguage::kJJava, MakeJvmRunnerFactory(db->vm_.get(), limits));
  // Isolated designs get one executor process per parallel worker, so the
  // morsel workers never serialize on a single child.
  const size_t pool_size = std::max<size_t>(1, options.num_workers);
  JAGUAR_ASSIGN_OR_RETURN(ipc::Transport transport,
                          ipc::ParseTransport(options.ipc_transport));
  db->udf_manager_->SetRunnerFactory(
      UdfLanguage::kNativeIsolated,
      MakeIsolatedRunnerFactory(options.isolated_shm_bytes, pool_size,
                                transport));
  db->udf_manager_->SetRunnerFactory(UdfLanguage::kNativeSfi,
                                     MakeSfiRunnerFactory());
  db->udf_manager_->SetRunnerFactory(
      UdfLanguage::kJJavaIsolated,
      MakeIsolatedJvmRunnerFactory(limits, options.isolated_shm_bytes,
                                   pool_size, transport));

  db->lobs_ = std::make_unique<LobStore>(db->storage_.get(), db->catalog_.get());
  JAGUAR_RETURN_IF_ERROR(db->lobs_->Init());

  // After *crash* recovery, re-derive every secondary index from its heap:
  // the redo-only WAL replays whole page images, but a crash mid-statement
  // can persist an index state that reflects only part of a structure
  // modification relative to the replayed heap. A clean reopen (recovery
  // scanned just the checkpoint frame, replayed nothing) skips this.
  const wal::RecoveryStats& rs = db->storage_->recovery_stats();
  if (rs.records_scanned > 1 || rs.pages_replayed > 0) {
    JAGUAR_RETURN_IF_ERROR(db->RebuildIndexesAfterCrash());
  }
  return db;
}

Result<QueryResult> Database::Execute(const std::string& sql_text) {
  JAGUAR_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql_text));
  // Per-query cancellation token: session `SET TIMEOUT` override wins over
  // the open-time default; 0 in both places means no deadline.
  const int64_t timeout_ms = session_timeout_ms_ > 0
                                 ? session_timeout_ms_
                                 : options_.query_timeout_ms;
  const QueryDeadline deadline = QueryDeadline::After(timeout_ms);
  if (deadline.active()) DeadlineQueries()->Add();
  // Bracket execution with registry snapshots so callers get the exact
  // boundary-crossing counts this statement caused (Figures 5/6/8 quantities)
  // without having to diff the global registry themselves.
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  Result<QueryResult> result = ExecuteStatement(stmt, deadline);
  if (!result.ok() && result.status().IsDeadlineExceeded()) {
    DeadlineExceededQueries()->Add();
  }
  // Statement-level commit: a mutating statement is durable once Execute
  // returns OK. One Commit() covers every record the statement appended
  // (group commit), and the hook also auto-checkpoints a grown log.
  if (result.ok()) {
    switch (stmt.kind) {
      case sql::StatementKind::kCreateTable:
      case sql::StatementKind::kDropTable:
      case sql::StatementKind::kInsert:
      case sql::StatementKind::kDelete:
      case sql::StatementKind::kUpdate:
      case sql::StatementKind::kCreateIndex:
      case sql::StatementKind::kDropIndex:
        JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
        break;
      default:
        break;
    }
  }
  if (result.ok()) {
    result->metrics_delta =
        obs::SnapshotDelta(before, obs::MetricsRegistry::Global()->Snapshot());
  }
  return result;
}

Result<QueryResult> Database::ExecuteStatement(const sql::Statement& stmt,
                                               const QueryDeadline& deadline) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(stmt, deadline);
    case sql::StatementKind::kShowMetrics:
      return ExecuteShowMetrics(stmt);
    case sql::StatementKind::kCreateTable: {
      JAGUAR_RETURN_IF_ERROR(catalog_->CreateTable(stmt.create_table.table,
                                                   stmt.create_table.schema));
      QueryResult result;
      result.message = "Table " + stmt.create_table.table + " created";
      return result;
    }
    case sql::StatementKind::kInsert:
      return ExecuteInsert(stmt, deadline);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(stmt, deadline);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(stmt, deadline);
    case sql::StatementKind::kSetTimeout: {
      session_timeout_ms_ = stmt.set_timeout.timeout_ms;
      QueryResult result;
      result.message =
          session_timeout_ms_ > 0
              ? StringPrintf("query timeout set to %lld ms",
                             static_cast<long long>(session_timeout_ms_))
              : "query timeout override cleared";
      return result;
    }
    case sql::StatementKind::kCreateIndex:
      return ExecuteCreateIndex(stmt, deadline);
    case sql::StatementKind::kDropIndex:
      return ExecuteDropIndex(stmt);
    case sql::StatementKind::kDropTable: {
      if (EqualsIgnoreCase(stmt.drop_table.table, kLobTableName)) {
        return InvalidArgument("cannot drop the internal LOB table");
      }
      JAGUAR_RETURN_IF_ERROR(catalog_->DropTable(stmt.drop_table.table));
      QueryResult result;
      result.message = "Table " + stmt.drop_table.table + " dropped";
      return result;
    }
  }
  return Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteShowMetrics(const sql::Statement& stmt) {
  const std::string& prefix = stmt.show_metrics.like_prefix;
  QueryResult result;
  result.schema = Schema({{"metric", TypeId::kString},
                          {"value", TypeId::kString}});
  for (auto& [name, value] : obs::MetricsRegistry::Global()->Rows(prefix)) {
    result.rows.emplace_back(
        std::vector<Value>{Value::String(name), Value::String(value)});
  }
  return result;
}

Result<QueryResult> Database::ExecuteAggregate(const sql::Statement& stmt,
                                               const QueryDeadline& deadline) {
  const sql::SelectStmt& sel = stmt.select;
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(sel.table));
  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  JAGUAR_ASSIGN_OR_RETURN(
      exec::AggregatePlan plan,
      exec::PlanAggregate(sel, table->schema, sel.table, sel.table_alias,
                          udf_manager_.get()));

  exec::BoundExprPtr predicate;
  if (sel.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*sel.where, table->schema, sel.table,
                              sel.table_alias, udf_manager_.get()));
  }

  // ORDER BY sorts the aggregate *output*, so its key resolves against the
  // select items / output schema — bind it up front so errors surface
  // before any rows are consumed.
  exec::BoundExprPtr order_key;
  if (sel.order_by != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        order_key,
        exec::BindAggregateOrderKey(sel, plan, udf_manager_.get()));
  }

  std::vector<Tuple> rows;
  const bool parallel =
      options_.num_workers > 1 && options_.vectorized_execution;
  if (parallel) {
    exec::ParallelAggregateSpec pspec;
    pspec.engine = storage_.get();
    pspec.first_page = table->first_page;
    pspec.predicate = predicate.get();
    pspec.plan = &plan;
    pspec.batch_size = options_.batch_size;
    pspec.num_workers = options_.num_workers;
    pspec.callback_handler = this;
    pspec.callback_quota = options_.udf_callback_quota;
    pspec.deadline = &deadline;
    JAGUAR_ASSIGN_OR_RETURN(rows, exec::RunParallelAggregate(pspec));
  } else {
    exec::OperatorPtr op = std::make_unique<exec::SeqScanOp>(
        storage_.get(), table->first_page, table->schema);
    if (predicate != nullptr) {
      op = std::make_unique<exec::FilterOp>(std::move(op),
                                            std::move(predicate), &ctx);
    }
    exec::HashAggregateOp agg(
        std::move(op), &plan, &ctx,
        options_.vectorized_execution ? options_.batch_size : 0, &deadline);
    exec::TupleBatch batch(options_.batch_size);
    while (true) {
      JAGUAR_RETURN_IF_ERROR(agg.NextBatch(&batch));
      if (batch.empty()) break;
      for (Tuple& t : batch.tuples()) rows.push_back(std::move(t));
    }
  }

  if (order_key != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        rows, exec::SortRows(
                  std::move(rows), *order_key, sel.order_desc, sel.limit,
                  &ctx, options_.vectorized_execution ? options_.batch_size : 0,
                  &deadline));
  } else if (sel.limit >= 0 &&
             rows.size() > static_cast<size_t>(sel.limit)) {
    rows.resize(static_cast<size_t>(sel.limit));
  }

  QueryResult result;
  result.schema = plan.out_schema;
  result.rows = std::move(rows);
  result.rows_affected = result.rows.size();
  return result;
}

Result<QueryResult> Database::ExecuteSelect(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::SelectStmt& sel = stmt.select;
  if (exec::SelectHasAggregate(sel) || !sel.group_by.empty()) {
    return ExecuteAggregate(stmt, deadline);
  }
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(sel.table));

  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  // Plan: SeqScan|IndexScan -> [Filter] -> Project -> [Limit]. The predicate
  // is bound here but only wrapped into a FilterOp on the serial path — the
  // parallel scan evaluates it per worker against the shared expression tree.
  exec::BoundExprPtr predicate;
  if (sel.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*sel.where, table->schema, sel.table,
                              sel.table_alias, udf_manager_.get()));
  }

  // Planner rule: if some AND-chain conjunct is `<indexed col> <cmp> <lit>`,
  // probe the B+-tree and evaluate only the residual predicate (which may
  // hold expensive UDF calls) on the survivors.
  std::optional<exec::IndexPick> pick;
  if (predicate != nullptr) {
    std::vector<exec::IndexCandidate> candidates;
    for (const IndexInfo* idx : catalog_->IndexesForTable(sel.table)) {
      candidates.push_back({idx->column_index, idx->root, idx->name});
    }
    pick = exec::PickIndexScan(&predicate, candidates, table->schema);
  }

  exec::OperatorPtr op;
  if (pick.has_value()) {
    op = std::make_unique<exec::IndexScanOp>(
        storage_.get(), pick->root, table->first_page, table->schema,
        pick->lower, pick->upper, pick->equality);
  } else {
    op = std::make_unique<exec::SeqScanOp>(storage_.get(), table->first_page,
                                           table->schema);
  }

  std::vector<exec::BoundExprPtr> out_exprs;
  std::vector<Column> out_cols;
  for (const sql::SelectItem& item : sel.items) {
    if (item.is_star) {
      for (size_t i = 0; i < table->schema.num_columns(); ++i) {
        auto col = std::make_unique<exec::BoundExpr>();
        col->kind = exec::BoundExprKind::kColumn;
        col->column_index = i;
        col->result_type = table->schema.column(i).type;
        out_exprs.push_back(std::move(col));
        out_cols.push_back(table->schema.column(i));
      }
      continue;
    }
    JAGUAR_ASSIGN_OR_RETURN(
        exec::BoundExprPtr bound,
        exec::Bind(*item.expr, table->schema, sel.table, sel.table_alias,
                   udf_manager_.get()));
    std::string name = !item.alias.empty() ? item.alias : item.expr->ToString();
    out_cols.push_back({std::move(name), bound->result_type});
    out_exprs.push_back(std::move(bound));
  }
  Schema out_schema(std::move(out_cols));

  // ORDER BY evaluates its key against the *input* schema, so sorting
  // happens on (key, projected row) pairs materialized before projection
  // order is applied. Plan: scan/filter -> [sort] -> project -> [limit].
  exec::BoundExprPtr order_key;
  if (sel.order_by != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        order_key, exec::Bind(*sel.order_by, table->schema, sel.table,
                              sel.table_alias, udf_manager_.get()));
  }

  QueryResult result;
  result.schema = out_schema;
  // Every vectorized plan shape can run morsel-parallel: plain scans merge
  // per-morsel output (LIMIT truncates after the morsel-order merge), and
  // ORDER BY k-way-merges per-morsel sorted runs — both byte-identical to
  // the serial plan. An index pick forces the serial path: the morsel
  // drivers partition heap pages, which an index probe already bypassed.
  const bool parallel = options_.num_workers > 1 &&
                        options_.vectorized_execution && !pick.has_value();
  if (order_key == nullptr) {
    if (parallel) {
      exec::ParallelScanSpec pspec;
      pspec.engine = storage_.get();
      pspec.first_page = table->first_page;
      pspec.predicate = predicate.get();
      pspec.out_exprs = &out_exprs;
      pspec.batch_size = options_.batch_size;
      pspec.num_workers = options_.num_workers;
      pspec.limit = sel.limit;
      pspec.callback_handler = this;
      pspec.callback_quota = options_.udf_callback_quota;
      pspec.deadline = &deadline;
      JAGUAR_ASSIGN_OR_RETURN(result.rows, exec::RunParallelScan(pspec));
      result.rows_affected = result.rows.size();
      return result;
    }
    if (predicate != nullptr) {
      op = std::make_unique<exec::FilterOp>(std::move(op),
                                            std::move(predicate), &ctx);
    }
    op = std::make_unique<exec::ProjectOp>(std::move(op), std::move(out_exprs),
                                           out_schema, &ctx);
    if (sel.limit >= 0) {
      op = std::make_unique<exec::LimitOp>(std::move(op), sel.limit);
    }
    if (options_.vectorized_execution) {
      exec::TupleBatch batch(options_.batch_size);
      while (true) {
        JAGUAR_RETURN_IF_ERROR(deadline.Check());
        JAGUAR_RETURN_IF_ERROR(op->NextBatch(&batch));
        if (batch.empty()) break;
        for (Tuple& t : batch.tuples()) result.rows.push_back(std::move(t));
      }
    } else {
      while (true) {
        JAGUAR_RETURN_IF_ERROR(deadline.Check());
        JAGUAR_ASSIGN_OR_RETURN(auto t, op->Next());
        if (!t.has_value()) break;
        result.rows.push_back(std::move(*t));
      }
    }
  } else if (parallel) {
    exec::ParallelSortSpec pspec;
    pspec.engine = storage_.get();
    pspec.first_page = table->first_page;
    pspec.predicate = predicate.get();
    pspec.order_key = order_key.get();
    pspec.descending = sel.order_desc;
    pspec.limit = sel.limit;
    pspec.out_exprs = &out_exprs;
    pspec.batch_size = options_.batch_size;
    pspec.num_workers = options_.num_workers;
    pspec.callback_handler = this;
    pspec.callback_quota = options_.udf_callback_quota;
    pspec.deadline = &deadline;
    JAGUAR_ASSIGN_OR_RETURN(result.rows, exec::RunParallelSort(pspec));
  } else {
    if (predicate != nullptr) {
      op = std::make_unique<exec::FilterOp>(std::move(op),
                                            std::move(predicate), &ctx);
    }
    exec::SortOp sort(std::move(op), std::move(order_key),
                      std::move(out_exprs), out_schema, sel.order_desc,
                      sel.limit, &ctx,
                      options_.vectorized_execution ? options_.batch_size : 0,
                      &deadline);
    exec::TupleBatch batch(options_.batch_size);
    while (true) {
      JAGUAR_RETURN_IF_ERROR(sort.NextBatch(&batch));
      if (batch.empty()) break;
      for (Tuple& t : batch.tuples()) result.rows.push_back(std::move(t));
    }
  }
  result.rows_affected = result.rows.size();
  return result;
}

Result<QueryResult> Database::ExecuteDelete(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::DeleteStmt& del = stmt.delete_stmt;
  if (EqualsIgnoreCase(del.table, kLobTableName)) {
    return InvalidArgument("cannot delete from the internal LOB table");
  }
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(del.table));
  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  exec::BoundExprPtr predicate;
  if (del.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*del.where, table->schema, del.table, "",
                              udf_manager_.get()));
  }

  // Collect matching records first, then delete (no iterator invalidation).
  // The tuples ride along so index maintenance can re-derive the keys the
  // deleted rows contributed.
  TableHeap heap(storage_.get(), table->first_page);
  std::vector<std::pair<RecordId, Tuple>> victims;
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    bool matches = true;
    if (predicate != nullptr) {
      JAGUAR_ASSIGN_OR_RETURN(matches, exec::EvalPredicate(*predicate, t,
                                                           &ctx));
    }
    if (matches) victims.emplace_back(rec->first, std::move(t));
  }
  for (const auto& [rid, tuple] : victims) {
    JAGUAR_RETURN_IF_ERROR(heap.Delete(rid));
    JAGUAR_RETURN_IF_ERROR(DeleteIndexEntries(table, tuple, rid));
  }
  QueryResult result;
  result.rows_affected = victims.size();
  result.message = StringPrintf("%zu row(s) deleted", victims.size());
  return result;
}

Result<QueryResult> Database::ExecuteUpdate(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::UpdateStmt& upd = stmt.update;
  if (EqualsIgnoreCase(upd.table, kLobTableName)) {
    return InvalidArgument("cannot update the internal LOB table");
  }
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(upd.table));
  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  exec::BoundExprPtr predicate;
  if (upd.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*upd.where, table->schema, upd.table, "",
                              udf_manager_.get()));
  }
  struct Assignment {
    size_t column;
    exec::BoundExprPtr value;
  };
  std::vector<Assignment> assignments;
  for (const auto& [col_name, value_expr] : upd.assignments) {
    Assignment a;
    JAGUAR_ASSIGN_OR_RETURN(a.column, table->schema.IndexOf(col_name));
    JAGUAR_ASSIGN_OR_RETURN(
        a.value, exec::Bind(*value_expr, table->schema, upd.table, "",
                            udf_manager_.get()));
    assignments.push_back(std::move(a));
  }

  // Phase 1: materialize the replacement tuples (value expressions see the
  // old row). Phase 2: delete + reinsert — updates may change record size,
  // and a collect-then-apply plan cannot revisit its own insertions. The old
  // tuple is retained so phase 2 can remove the index entries it contributed
  // before inserting the new row's entries under its new record id.
  struct PendingUpdate {
    RecordId rid;
    Tuple old_tuple;
    Tuple new_tuple;
  };
  TableHeap heap(storage_.get(), table->first_page);
  std::vector<PendingUpdate> updates;
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    if (predicate != nullptr) {
      JAGUAR_ASSIGN_OR_RETURN(bool matches,
                              exec::EvalPredicate(*predicate, t, &ctx));
      if (!matches) continue;
    }
    std::vector<Value> values = t.values();
    for (const Assignment& a : assignments) {
      JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*a.value, t, &ctx));
      if (table->schema.column(a.column).type == TypeId::kDouble &&
          v.type() == TypeId::kInt) {
        v = Value::Double(static_cast<double>(v.AsInt()));
      }
      values[a.column] = std::move(v);
    }
    Tuple updated(std::move(values));
    JAGUAR_RETURN_IF_ERROR(updated.CheckSchema(table->schema));
    JAGUAR_RETURN_IF_ERROR(ValidateIndexKeys(table, updated));
    updates.push_back({rec->first, std::move(t), std::move(updated)});
  }
  for (auto& u : updates) {
    JAGUAR_RETURN_IF_ERROR(heap.Delete(u.rid));
    JAGUAR_RETURN_IF_ERROR(DeleteIndexEntries(table, u.old_tuple, u.rid));
    JAGUAR_ASSIGN_OR_RETURN(RecordId new_rid,
                            heap.Insert(Slice(u.new_tuple.Serialize())));
    JAGUAR_RETURN_IF_ERROR(InsertIndexEntries(table, u.new_tuple, new_rid));
  }
  QueryResult result;
  result.rows_affected = updates.size();
  result.message = StringPrintf("%zu row(s) updated", updates.size());
  return result;
}

Result<QueryResult> Database::ExecuteInsert(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::InsertStmt& ins = stmt.insert;
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(ins.table));

  UdfContext ctx(this);
  ctx.set_deadline(&deadline);
  const Schema empty_schema;
  const Tuple empty_tuple;
  TableHeap heap(storage_.get(), table->first_page);
  uint64_t inserted = 0;
  for (const std::vector<sql::ExprPtr>& row : ins.rows) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    std::vector<Value> values;
    values.reserve(row.size());
    for (const sql::ExprPtr& expr : row) {
      // VALUES expressions are constant: bound against an empty schema, so
      // column references fail; function calls (randbytes, ...) work.
      JAGUAR_ASSIGN_OR_RETURN(
          exec::BoundExprPtr bound,
          exec::Bind(*expr, empty_schema, ins.table, "", udf_manager_.get()));
      JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*bound, empty_tuple, &ctx));
      values.push_back(std::move(v));
    }
    // Widen INT literals into DOUBLE columns before storing.
    if (values.size() == table->schema.num_columns()) {
      for (size_t i = 0; i < values.size(); ++i) {
        if (table->schema.column(i).type == TypeId::kDouble &&
            values[i].type() == TypeId::kInt) {
          values[i] = Value::Double(static_cast<double>(values[i].AsInt()));
        }
      }
    }
    Tuple t(std::move(values));
    JAGUAR_RETURN_IF_ERROR(t.CheckSchema(table->schema));
    JAGUAR_RETURN_IF_ERROR(ValidateIndexKeys(table, t));
    JAGUAR_ASSIGN_OR_RETURN(RecordId rid, heap.Insert(Slice(t.Serialize())));
    JAGUAR_RETURN_IF_ERROR(InsertIndexEntries(table, t, rid));
    ++inserted;
  }
  QueryResult result;
  result.rows_affected = inserted;
  result.message = StringPrintf("%llu row(s) inserted",
                                static_cast<unsigned long long>(inserted));
  return result;
}

Result<QueryResult> Database::ExecuteCreateIndex(const sql::Statement& stmt,
                                                 const QueryDeadline& deadline) {
  const sql::CreateIndexStmt& ci = stmt.create_index;
  if (EqualsIgnoreCase(ci.table, kLobTableName)) {
    return InvalidArgument("cannot index the internal LOB table");
  }
  JAGUAR_RETURN_IF_ERROR(catalog_->CreateIndex(ci.index, ci.table, ci.column));
  JAGUAR_ASSIGN_OR_RETURN(const IndexInfo* idx, catalog_->GetIndex(ci.index));
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(ci.table));

  // Backfill from the existing heap. On failure the half-built index is
  // dropped (best effort) so a failed CREATE INDEX leaves no entry behind.
  Status backfill = [&]() -> Status {
    BTree tree(storage_.get(), idx->root);
    TableHeap heap(storage_.get(), table->first_page);
    TableHeap::Iterator it = heap.Scan();
    while (true) {
      JAGUAR_RETURN_IF_ERROR(deadline.Check());
      JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
      if (!rec.has_value()) break;
      JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
      const Value& key = t.value(idx->column_index);
      if (key.is_null()) continue;  // NULL keys are never stored
      JAGUAR_RETURN_IF_ERROR(tree.Insert(key, rec->first));
    }
    return Status::OK();
  }();
  if (!backfill.ok()) {
    catalog_->DropIndex(ci.index).ok();
    return backfill;
  }
  QueryResult result;
  result.message = "Index " + ci.index + " created";
  return result;
}

Result<QueryResult> Database::ExecuteDropIndex(const sql::Statement& stmt) {
  JAGUAR_RETURN_IF_ERROR(catalog_->DropIndex(stmt.drop_index.index));
  QueryResult result;
  result.message = "Index " + stmt.drop_index.index + " dropped";
  return result;
}

Status Database::ValidateIndexKeys(const TableInfo* table,
                                   const Tuple& t) const {
  for (const IndexInfo* idx : catalog_->IndexesForTable(table->name)) {
    const Value& key = t.value(idx->column_index);
    if (key.is_null()) continue;
    BufferWriter w;
    key.WriteTo(&w);
    if (w.size() > BTree::kMaxKeyBytes) {
      return InvalidArgument(StringPrintf(
          "value for indexed column '%s' exceeds the %zu-byte index key limit",
          idx->column.c_str(), BTree::kMaxKeyBytes));
    }
  }
  return Status::OK();
}

Status Database::InsertIndexEntries(const TableInfo* table, const Tuple& t,
                                    RecordId rid) {
  for (const IndexInfo* idx : catalog_->IndexesForTable(table->name)) {
    const Value& key = t.value(idx->column_index);
    if (key.is_null()) continue;
    BTree tree(storage_.get(), idx->root);
    JAGUAR_RETURN_IF_ERROR(tree.Insert(key, rid));
  }
  return Status::OK();
}

Status Database::DeleteIndexEntries(const TableInfo* table, const Tuple& t,
                                    RecordId rid) {
  for (const IndexInfo* idx : catalog_->IndexesForTable(table->name)) {
    const Value& key = t.value(idx->column_index);
    if (key.is_null()) continue;
    BTree tree(storage_.get(), idx->root);
    JAGUAR_RETURN_IF_ERROR(tree.Delete(key, rid));
  }
  return Status::OK();
}

Status Database::RebuildIndexesAfterCrash() {
  bool any = false;
  for (const std::string& name : catalog_->ListIndexes()) {
    JAGUAR_ASSIGN_OR_RETURN(const IndexInfo* idx, catalog_->GetIndex(name));
    JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table,
                            catalog_->GetTable(idx->table));
    BTree tree(storage_.get(), idx->root);
    JAGUAR_RETURN_IF_ERROR(tree.Clear());
    TableHeap heap(storage_.get(), table->first_page);
    TableHeap::Iterator it = heap.Scan();
    while (true) {
      JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
      if (!rec.has_value()) break;
      JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
      const Value& key = t.value(idx->column_index);
      if (key.is_null()) continue;
      JAGUAR_RETURN_IF_ERROR(tree.Insert(key, rec->first));
    }
    any = true;
  }
  // The rebuild itself is WAL-logged like any other mutation; commit it so
  // a crash during the *next* statement replays on top of sound indexes.
  if (any) JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  return Status::OK();
}

Status Database::RegisterUdf(UdfInfo info) {
  // Untrusted JJava uploads are verified *at registration* — malformed or
  // ill-typed bytecode never reaches the catalog. Building a runner performs
  // parse + verify + link checks and validates the declared signature.
  if (info.language == UdfLanguage::kJJava ||
      info.language == UdfLanguage::kJJavaIsolated) {
    jvm::ResourceLimits limits;
    limits.instruction_budget = options_.udf_instruction_budget;
    limits.heap_quota_bytes = options_.udf_heap_quota_bytes;
    JAGUAR_RETURN_IF_ERROR(
        JvmUdfRunner::Create(vm_.get(), info, limits).status());
  }
  const std::string name = info.name;
  JAGUAR_RETURN_IF_ERROR(catalog_->RegisterUdf(std::move(info)));
  JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  udf_manager_->InvalidateCache();
  // Re-registration is the operator's "I fixed it" signal: clear any
  // quarantine verdict and strike streak.
  quarantine_.Reset(name);
  return Status::OK();
}

Status Database::DropUdf(const std::string& name) {
  JAGUAR_RETURN_IF_ERROR(catalog_->DropUdf(name));
  JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  udf_manager_->InvalidateCache();
  quarantine_.Reset(name);
  return Status::OK();
}

Result<int64_t> Database::StoreLob(const std::vector<uint8_t>& data) {
  JAGUAR_ASSIGN_OR_RETURN(int64_t handle, lobs_->Store(data));
  JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  return handle;
}

Result<std::vector<uint8_t>> Database::FetchLob(int64_t handle,
                                                uint64_t offset, uint64_t len) {
  return lobs_->Fetch(handle, offset, len);
}

Result<int64_t> Database::Callback(int64_t kind, int64_t arg) {
  ++callbacks_served_;
  switch (kind) {
    case 0:
      // The paper's benchmark callback: no data moves, the server replies.
      return arg;
    case 1: {
      JAGUAR_ASSIGN_OR_RETURN(uint64_t size, lobs_->Size(arg));
      return static_cast<int64_t>(size);
    }
    default:
      return NotSupported(StringPrintf("unknown callback kind %lld",
                                       static_cast<long long>(kind)));
  }
}

Result<std::vector<uint8_t>> Database::FetchBytes(int64_t handle,
                                                  uint64_t offset,
                                                  uint64_t len) {
  ++callbacks_served_;
  return lobs_->Fetch(handle, offset, len);
}

Status Database::Flush() { return storage_->Checkpoint(); }

}  // namespace jaguar
