#include "engine/database.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/parallel.h"
#include "sql/parser.h"
#include "udf/builtins.h"
#include "udf/isolated_udf_runner.h"
#include "udf/jvm_udf_runner.h"
#include "udf/sfi_udf_runner.h"
#include "udf/generic_udf.h"

namespace jaguar {

namespace {
/// Hidden catalog table backing the LOB store.
constexpr char kLobTableName[] = "__lobs";

obs::Counter* DeadlineQueries() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->GetCounter("exec.deadline.queries");
  return counter;
}

obs::Counter* DeadlineExceededQueries() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->GetCounter("exec.deadline.exceeded");
  return counter;
}
}  // namespace

// ---------------------------------------------------------------------------
// LobStore
// ---------------------------------------------------------------------------

LobStore::LobStore(StorageEngine* engine, Catalog* catalog)
    : engine_(engine), catalog_(catalog) {}

Status LobStore::Init() {
  Result<const TableInfo*> info = catalog_->GetTable(kLobTableName);
  if (!info.ok()) {
    if (!info.status().IsNotFound()) return info.status();
    Schema schema({{"id", TypeId::kInt}, {"data", TypeId::kBytes}});
    JAGUAR_RETURN_IF_ERROR(catalog_->CreateTable(kLobTableName, schema));
    JAGUAR_ASSIGN_OR_RETURN(info, catalog_->GetTable(kLobTableName));
  }
  heap_root_ = (*info)->first_page;
  // Build the handle index.
  TableHeap heap(engine_, heap_root_);
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    if (t.num_values() != 2 || t.value(0).type() != TypeId::kInt) {
      return Corruption("malformed LOB record");
    }
    int64_t id = t.value(0).AsInt();
    index_[id] = rec->first;
    next_id_ = std::max(next_id_, id + 1);
  }
  return Status::OK();
}

Result<int64_t> LobStore::Store(const std::vector<uint8_t>& data) {
  int64_t id = next_id_++;
  Tuple t({Value::Int(id), Value::Bytes(data)});
  TableHeap heap(engine_, heap_root_);
  JAGUAR_ASSIGN_OR_RETURN(RecordId rid, heap.Insert(Slice(t.Serialize())));
  index_[id] = rid;
  return id;
}

Result<std::vector<uint8_t>> LobStore::Fetch(int64_t handle, uint64_t offset,
                                             uint64_t len) {
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return NotFound(StringPrintf("no LOB with handle %lld",
                                 static_cast<long long>(handle)));
  }
  TableHeap heap(engine_, heap_root_);
  JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap.Get(it->second));
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(bytes)));
  const std::vector<uint8_t>& data = t.value(1).AsBytes();
  if (offset >= data.size()) return std::vector<uint8_t>();
  uint64_t end = std::min<uint64_t>(data.size(), offset + len);
  return std::vector<uint8_t>(data.begin() + offset, data.begin() + end);
}

Result<uint64_t> LobStore::Size(int64_t handle) {
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return NotFound(StringPrintf("no LOB with handle %lld",
                                 static_cast<long long>(handle)));
  }
  TableHeap heap(engine_, heap_root_);
  JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap.Get(it->second));
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(bytes)));
  return t.value(1).AsBytes().size();
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::~Database() {
  if (storage_ != nullptr) storage_->Close().ok();
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  RegisterBuiltinUdfs();
  RegisterGenericUdfs();
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  wal::WalOptions wal_options;
  wal_options.enabled = options.wal_enabled;
  wal_options.fsync_on_commit = options.wal_fsync;
  wal_options.checkpoint_bytes = options.wal_checkpoint_bytes;
  JAGUAR_ASSIGN_OR_RETURN(
      db->storage_,
      StorageEngine::Open(path, options.buffer_pool_pages, wal_options));
  JAGUAR_ASSIGN_OR_RETURN(db->catalog_, Catalog::Open(db->storage_.get()));

  // One JagVM per server, created at startup (Section 4.2: "a single JVM is
  // created when the database server starts up, and is used until shutdown").
  jvm::JvmOptions vm_options;
  vm_options.enable_jit = options.udf_jit;
  vm_options.jit_budget_checks = options.udf_jit_budget_checks;
  db->vm_ = std::make_unique<jvm::Jvm>(vm_options);
  JAGUAR_RETURN_IF_ERROR(InstallJaguarNatives(db->vm_.get()));

  db->udf_manager_ = std::make_unique<UdfManager>(db->catalog_.get());
  db->udf_manager_->set_memo_capacity(options.udf_memo_entries);
  db->udf_manager_->set_quarantine(&db->quarantine_);
  jvm::ResourceLimits limits;
  limits.instruction_budget = options.udf_instruction_budget;
  limits.heap_quota_bytes = options.udf_heap_quota_bytes;
  db->udf_manager_->SetRunnerFactory(
      UdfLanguage::kJJava, MakeJvmRunnerFactory(db->vm_.get(), limits));
  // Isolated designs get one executor process per parallel worker, so the
  // morsel workers never serialize on a single child.
  const size_t pool_size = std::max<size_t>(1, options.num_workers);
  JAGUAR_ASSIGN_OR_RETURN(ipc::Transport transport,
                          ipc::ParseTransport(options.ipc_transport));
  db->udf_manager_->SetRunnerFactory(
      UdfLanguage::kNativeIsolated,
      MakeIsolatedRunnerFactory(options.isolated_shm_bytes, pool_size,
                                transport));
  db->udf_manager_->SetRunnerFactory(UdfLanguage::kNativeSfi,
                                     MakeSfiRunnerFactory());
  db->udf_manager_->SetRunnerFactory(
      UdfLanguage::kJJavaIsolated,
      MakeIsolatedJvmRunnerFactory(limits, options.isolated_shm_bytes,
                                   pool_size, transport));

  db->lobs_ = std::make_unique<LobStore>(db->storage_.get(), db->catalog_.get());
  JAGUAR_RETURN_IF_ERROR(db->lobs_->Init());
  return db;
}

Result<QueryResult> Database::Execute(const std::string& sql_text) {
  JAGUAR_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql_text));
  // Per-query cancellation token: session `SET TIMEOUT` override wins over
  // the open-time default; 0 in both places means no deadline.
  const int64_t timeout_ms = session_timeout_ms_ > 0
                                 ? session_timeout_ms_
                                 : options_.query_timeout_ms;
  const QueryDeadline deadline = QueryDeadline::After(timeout_ms);
  if (deadline.active()) DeadlineQueries()->Add();
  // Bracket execution with registry snapshots so callers get the exact
  // boundary-crossing counts this statement caused (Figures 5/6/8 quantities)
  // without having to diff the global registry themselves.
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  Result<QueryResult> result = ExecuteStatement(stmt, deadline);
  if (!result.ok() && result.status().IsDeadlineExceeded()) {
    DeadlineExceededQueries()->Add();
  }
  // Statement-level commit: a mutating statement is durable once Execute
  // returns OK. One Commit() covers every record the statement appended
  // (group commit), and the hook also auto-checkpoints a grown log.
  if (result.ok()) {
    switch (stmt.kind) {
      case sql::StatementKind::kCreateTable:
      case sql::StatementKind::kDropTable:
      case sql::StatementKind::kInsert:
      case sql::StatementKind::kDelete:
      case sql::StatementKind::kUpdate:
        JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
        break;
      default:
        break;
    }
  }
  if (result.ok()) {
    result->metrics_delta =
        obs::SnapshotDelta(before, obs::MetricsRegistry::Global()->Snapshot());
  }
  return result;
}

Result<QueryResult> Database::ExecuteStatement(const sql::Statement& stmt,
                                               const QueryDeadline& deadline) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(stmt, deadline);
    case sql::StatementKind::kShowMetrics:
      return ExecuteShowMetrics(stmt);
    case sql::StatementKind::kCreateTable: {
      JAGUAR_RETURN_IF_ERROR(catalog_->CreateTable(stmt.create_table.table,
                                                   stmt.create_table.schema));
      QueryResult result;
      result.message = "Table " + stmt.create_table.table + " created";
      return result;
    }
    case sql::StatementKind::kInsert:
      return ExecuteInsert(stmt, deadline);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(stmt, deadline);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(stmt, deadline);
    case sql::StatementKind::kSetTimeout: {
      session_timeout_ms_ = stmt.set_timeout.timeout_ms;
      QueryResult result;
      result.message =
          session_timeout_ms_ > 0
              ? StringPrintf("query timeout set to %lld ms",
                             static_cast<long long>(session_timeout_ms_))
              : "query timeout override cleared";
      return result;
    }
    case sql::StatementKind::kDropTable: {
      if (EqualsIgnoreCase(stmt.drop_table.table, kLobTableName)) {
        return InvalidArgument("cannot drop the internal LOB table");
      }
      JAGUAR_RETURN_IF_ERROR(catalog_->DropTable(stmt.drop_table.table));
      QueryResult result;
      result.message = "Table " + stmt.drop_table.table + " dropped";
      return result;
    }
  }
  return Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteShowMetrics(const sql::Statement& stmt) {
  const std::string& prefix = stmt.show_metrics.like_prefix;
  QueryResult result;
  result.schema = Schema({{"metric", TypeId::kString},
                          {"value", TypeId::kString}});
  for (auto& [name, value] : obs::MetricsRegistry::Global()->Rows(prefix)) {
    result.rows.emplace_back(
        std::vector<Value>{Value::String(name), Value::String(value)});
  }
  return result;
}

namespace {

/// Aggregate functions recognized in SELECT items (no GROUP BY: one output
/// row over the whole filtered input, like early OR-DBMS engines).
bool IsAggregateName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max") || EqualsIgnoreCase(name, "count_star");
}

bool HasAggregate(const sql::SelectStmt& sel) {
  for (const sql::SelectItem& item : sel.items) {
    if (!item.is_star && item.expr->kind == sql::ExprKind::kFunctionCall &&
        IsAggregateName(item.expr->function)) {
      return true;
    }
  }
  return false;
}

/// One aggregate output column: what to compute (spec) and its running
/// state per group (accumulator).
struct AggSpec {
  std::string fn;          // lower-cased aggregate name
  exec::BoundExprPtr arg;  // null for count(*)
  TypeId out_type = TypeId::kInt;
};

struct AggAccum {
  int64_t count = 0;
  bool any = false;
  int64_t sum_int = 0;
  double sum_double = 0;
  bool is_double = false;
  Value min_value;
  Value max_value;
};

Status Accumulate(const AggSpec& spec, const Value& v, AggAccum* acc) {
  if (v.is_null()) return Status::OK();  // SQL: aggregates ignore NULLs
  ++acc->count;
  if (spec.fn == "sum" || spec.fn == "avg") {
    JAGUAR_ASSIGN_OR_RETURN(double d, v.CoerceDouble());
    acc->sum_double += d;
    if (v.type() == TypeId::kInt) acc->sum_int += v.AsInt();
    else acc->is_double = true;
  } else if (spec.fn == "min" || spec.fn == "max") {
    if (!acc->any) {
      acc->min_value = v;
      acc->max_value = v;
    } else {
      JAGUAR_ASSIGN_OR_RETURN(int cmp_min, v.Compare(acc->min_value));
      if (cmp_min < 0) acc->min_value = v;
      JAGUAR_ASSIGN_OR_RETURN(int cmp_max, v.Compare(acc->max_value));
      if (cmp_max > 0) acc->max_value = v;
    }
  }
  acc->any = true;
  return Status::OK();
}

Value Finalize(const AggSpec& spec, const AggAccum& acc) {
  if (spec.fn == "count" || spec.fn == "count_star") {
    return Value::Int(acc.count);
  }
  if (!acc.any) return Value::Null();  // empty group input
  if (spec.fn == "sum") {
    return acc.is_double ? Value::Double(acc.sum_double)
                         : Value::Int(acc.sum_int);
  }
  if (spec.fn == "avg") {
    return Value::Double(acc.sum_double / static_cast<double>(acc.count));
  }
  return spec.fn == "min" ? acc.min_value : acc.max_value;
}

}  // namespace

Result<QueryResult> Database::ExecuteAggregate(const sql::Statement& stmt,
                                               const QueryDeadline& deadline) {
  const sql::SelectStmt& sel = stmt.select;
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(sel.table));
  if (sel.order_by != nullptr) {
    return NotSupported("ORDER BY cannot be combined with aggregation");
  }
  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  exec::OperatorPtr op = std::make_unique<exec::SeqScanOp>(
      storage_.get(), table->first_page, table->schema);
  if (sel.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        exec::BoundExprPtr predicate,
        exec::Bind(*sel.where, table->schema, sel.table, sel.table_alias,
                   udf_manager_.get()));
    op = std::make_unique<exec::FilterOp>(std::move(op), std::move(predicate),
                                          &ctx);
  }

  // Bind the GROUP BY keys.
  std::vector<exec::BoundExprPtr> group_keys;
  std::vector<std::string> group_texts;
  for (const sql::ExprPtr& key : sel.group_by) {
    JAGUAR_ASSIGN_OR_RETURN(
        exec::BoundExprPtr bound,
        exec::Bind(*key, table->schema, sel.table, sel.table_alias,
                   udf_manager_.get()));
    group_keys.push_back(std::move(bound));
    group_texts.push_back(key->ToString());
  }

  // Classify select items: aggregate, or one of the group-by expressions.
  struct OutputItem {
    bool is_agg;
    size_t index;  // into specs / group_keys
  };
  std::vector<AggSpec> specs;
  std::vector<OutputItem> outputs;
  std::vector<Column> out_cols;
  for (const sql::SelectItem& item : sel.items) {
    if (item.is_star) {
      return NotSupported("SELECT * cannot be combined with aggregation");
    }
    const bool is_agg = item.expr->kind == sql::ExprKind::kFunctionCall &&
                        IsAggregateName(item.expr->function);
    if (is_agg) {
      AggSpec spec;
      spec.fn = ToLower(item.expr->function);
      if (spec.fn != "count_star") {
        if (item.expr->args.size() != 1) {
          return InvalidArgument(spec.fn + " takes exactly one argument");
        }
        JAGUAR_ASSIGN_OR_RETURN(
            spec.arg, exec::Bind(*item.expr->args[0], table->schema,
                                 sel.table, sel.table_alias,
                                 udf_manager_.get()));
      }
      if (spec.fn == "count" || spec.fn == "count_star") {
        spec.out_type = TypeId::kInt;
      } else if (spec.fn == "avg") {
        spec.out_type = TypeId::kDouble;
      } else if (spec.fn == "sum") {
        spec.out_type = spec.arg->result_type == TypeId::kDouble
                            ? TypeId::kDouble
                            : TypeId::kInt;
      } else {
        spec.out_type = spec.arg->result_type;
      }
      std::string name =
          !item.alias.empty()
              ? item.alias
              : (spec.fn == "count_star" ? "count(*)" : item.expr->ToString());
      out_cols.push_back({std::move(name), spec.out_type});
      outputs.push_back({true, specs.size()});
      specs.push_back(std::move(spec));
      continue;
    }
    // Must textually match a GROUP BY expression (standard simple rule).
    const std::string text = item.expr->ToString();
    size_t key_index = group_texts.size();
    for (size_t k = 0; k < group_texts.size(); ++k) {
      if (group_texts[k] == text) {
        key_index = k;
        break;
      }
    }
    if (key_index == group_texts.size()) {
      return NotSupported("select item '" + text +
                          "' is neither an aggregate nor a GROUP BY key");
    }
    std::string name = !item.alias.empty() ? item.alias : text;
    out_cols.push_back({std::move(name), group_keys[key_index]->result_type});
    outputs.push_back({false, key_index});
  }

  // Group accumulation; group identity = serialized key values. With no
  // GROUP BY there is one implicit group that exists even for empty input.
  struct Group {
    std::vector<Value> keys;
    std::vector<AggAccum> accums;
  };
  std::map<std::string, Group> groups;  // ordered: deterministic output
  if (group_keys.empty()) {
    groups[""] = Group{{}, std::vector<AggAccum>(specs.size())};
  }
  while (true) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    JAGUAR_ASSIGN_OR_RETURN(auto t, op->Next());
    if (!t.has_value()) break;
    std::vector<Value> keys;
    BufferWriter key_bytes;
    for (const exec::BoundExprPtr& key : group_keys) {
      JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*key, *t, &ctx));
      v.WriteTo(&key_bytes);
      keys.push_back(std::move(v));
    }
    std::string key(reinterpret_cast<const char*>(key_bytes.buffer().data()),
                    key_bytes.size());
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.keys = std::move(keys);
      it->second.accums.assign(specs.size(), AggAccum{});
    }
    for (size_t a = 0; a < specs.size(); ++a) {
      if (specs[a].fn == "count_star") {
        ++it->second.accums[a].count;
        continue;
      }
      JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*specs[a].arg, *t, &ctx));
      JAGUAR_RETURN_IF_ERROR(Accumulate(specs[a], v, &it->second.accums[a]));
    }
  }

  QueryResult result;
  result.schema = Schema(std::move(out_cols));
  for (auto& [key, group] : groups) {
    std::vector<Value> row;
    row.reserve(outputs.size());
    for (const OutputItem& out : outputs) {
      row.push_back(out.is_agg ? Finalize(specs[out.index],
                                          group.accums[out.index])
                               : group.keys[out.index]);
    }
    result.rows.push_back(Tuple(std::move(row)));
  }
  result.rows_affected = result.rows.size();
  if (sel.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(sel.limit)) {
    result.rows.resize(static_cast<size_t>(sel.limit));
    result.rows_affected = result.rows.size();
  }
  return result;
}

Result<QueryResult> Database::ExecuteSelect(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::SelectStmt& sel = stmt.select;
  if (HasAggregate(sel) || !sel.group_by.empty()) {
    return ExecuteAggregate(stmt, deadline);
  }
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(sel.table));

  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  // Plan: SeqScan -> [Filter] -> Project -> [Limit]. The predicate is bound
  // here but only wrapped into a FilterOp on the serial path — the parallel
  // scan evaluates it per worker against the shared expression tree.
  exec::OperatorPtr op = std::make_unique<exec::SeqScanOp>(
      storage_.get(), table->first_page, table->schema);

  exec::BoundExprPtr predicate;
  if (sel.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*sel.where, table->schema, sel.table,
                              sel.table_alias, udf_manager_.get()));
  }

  std::vector<exec::BoundExprPtr> out_exprs;
  std::vector<Column> out_cols;
  for (const sql::SelectItem& item : sel.items) {
    if (item.is_star) {
      for (size_t i = 0; i < table->schema.num_columns(); ++i) {
        auto col = std::make_unique<exec::BoundExpr>();
        col->kind = exec::BoundExprKind::kColumn;
        col->column_index = i;
        col->result_type = table->schema.column(i).type;
        out_exprs.push_back(std::move(col));
        out_cols.push_back(table->schema.column(i));
      }
      continue;
    }
    JAGUAR_ASSIGN_OR_RETURN(
        exec::BoundExprPtr bound,
        exec::Bind(*item.expr, table->schema, sel.table, sel.table_alias,
                   udf_manager_.get()));
    std::string name = !item.alias.empty() ? item.alias : item.expr->ToString();
    out_cols.push_back({std::move(name), bound->result_type});
    out_exprs.push_back(std::move(bound));
  }
  Schema out_schema(std::move(out_cols));

  // ORDER BY evaluates its key against the *input* schema, so sorting
  // happens on (key, projected row) pairs materialized before projection
  // order is applied. Plan: scan/filter -> [sort] -> project -> [limit].
  exec::BoundExprPtr order_key;
  if (sel.order_by != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        order_key, exec::Bind(*sel.order_by, table->schema, sel.table,
                              sel.table_alias, udf_manager_.get()));
  }

  QueryResult result;
  result.schema = out_schema;
  if (order_key == nullptr) {
    // Morsel-driven parallel scan: order-insensitive vectorized plans only
    // (ORDER BY sorts serially anyway; LIMIT would make workers race for
    // the cutoff). The merged result is in serial scan order regardless.
    const bool parallel = options_.num_workers > 1 &&
                          options_.vectorized_execution && sel.limit < 0;
    if (parallel) {
      exec::ParallelScanSpec pspec;
      pspec.engine = storage_.get();
      pspec.first_page = table->first_page;
      pspec.predicate = predicate.get();
      pspec.out_exprs = &out_exprs;
      pspec.batch_size = options_.batch_size;
      pspec.num_workers = options_.num_workers;
      pspec.callback_handler = this;
      pspec.callback_quota = options_.udf_callback_quota;
      pspec.deadline = &deadline;
      JAGUAR_ASSIGN_OR_RETURN(result.rows, exec::RunParallelScan(pspec));
      result.rows_affected = result.rows.size();
      return result;
    }
    if (predicate != nullptr) {
      op = std::make_unique<exec::FilterOp>(std::move(op),
                                            std::move(predicate), &ctx);
    }
    op = std::make_unique<exec::ProjectOp>(std::move(op), std::move(out_exprs),
                                           out_schema, &ctx);
    if (sel.limit >= 0) {
      op = std::make_unique<exec::LimitOp>(std::move(op), sel.limit);
    }
    if (options_.vectorized_execution) {
      exec::TupleBatch batch(options_.batch_size);
      while (true) {
        JAGUAR_RETURN_IF_ERROR(deadline.Check());
        JAGUAR_RETURN_IF_ERROR(op->NextBatch(&batch));
        if (batch.empty()) break;
        for (Tuple& t : batch.tuples()) result.rows.push_back(std::move(t));
      }
    } else {
      while (true) {
        JAGUAR_RETURN_IF_ERROR(deadline.Check());
        JAGUAR_ASSIGN_OR_RETURN(auto t, op->Next());
        if (!t.has_value()) break;
        result.rows.push_back(std::move(*t));
      }
    }
  } else {
    if (predicate != nullptr) {
      op = std::make_unique<exec::FilterOp>(std::move(op),
                                            std::move(predicate), &ctx);
    }
    std::vector<std::pair<Value, Tuple>> keyed;
    if (options_.vectorized_execution) {
      // Materialize via the batch path: order key and output expressions are
      // evaluated batch-at-a-time (UDFs in either cross once per batch).
      exec::TupleBatch batch(options_.batch_size);
      while (true) {
        JAGUAR_RETURN_IF_ERROR(deadline.Check());
        JAGUAR_RETURN_IF_ERROR(op->NextBatch(&batch));
        if (batch.empty()) break;
        JAGUAR_ASSIGN_OR_RETURN(
            std::vector<Value> keys,
            exec::EvalBatch(*order_key, batch.tuples(), &ctx));
        std::vector<std::vector<Value>> cols;
        cols.reserve(out_exprs.size());
        for (const exec::BoundExprPtr& e : out_exprs) {
          JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> col,
                                  exec::EvalBatch(*e, batch.tuples(), &ctx));
          cols.push_back(std::move(col));
        }
        for (size_t row = 0; row < batch.size(); ++row) {
          std::vector<Value> out;
          out.reserve(out_exprs.size());
          for (std::vector<Value>& col : cols) out.push_back(std::move(col[row]));
          keyed.emplace_back(std::move(keys[row]), Tuple(std::move(out)));
        }
      }
    } else {
      while (true) {
        JAGUAR_RETURN_IF_ERROR(deadline.Check());
        JAGUAR_ASSIGN_OR_RETURN(auto t, op->Next());
        if (!t.has_value()) break;
        JAGUAR_ASSIGN_OR_RETURN(Value key, exec::Eval(*order_key, *t, &ctx));
        std::vector<Value> out;
        out.reserve(out_exprs.size());
        for (const exec::BoundExprPtr& e : out_exprs) {
          JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*e, *t, &ctx));
          out.push_back(std::move(v));
        }
        keyed.emplace_back(std::move(key), Tuple(std::move(out)));
      }
    }
    // NULL keys sort first; comparison failures surface as errors.
    Status sort_error;
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       if (!sort_error.ok()) return false;
                       if (a.first.is_null() || b.first.is_null()) {
                         return a.first.is_null() && !b.first.is_null();
                       }
                       Result<int> cmp = a.first.Compare(b.first);
                       if (!cmp.ok()) {
                         sort_error = cmp.status();
                         return false;
                       }
                       return *cmp < 0;
                     });
    JAGUAR_RETURN_IF_ERROR(sort_error);
    if (sel.order_desc) std::reverse(keyed.begin(), keyed.end());
    int64_t limit = sel.limit >= 0 ? sel.limit
                                   : static_cast<int64_t>(keyed.size());
    for (int64_t i = 0; i < limit && i < static_cast<int64_t>(keyed.size());
         ++i) {
      result.rows.push_back(std::move(keyed[i].second));
    }
  }
  result.rows_affected = result.rows.size();
  return result;
}

Result<QueryResult> Database::ExecuteDelete(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::DeleteStmt& del = stmt.delete_stmt;
  if (EqualsIgnoreCase(del.table, kLobTableName)) {
    return InvalidArgument("cannot delete from the internal LOB table");
  }
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(del.table));
  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  exec::BoundExprPtr predicate;
  if (del.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*del.where, table->schema, del.table, "",
                              udf_manager_.get()));
  }

  // Collect matching record ids first, then delete (no iterator
  // invalidation).
  TableHeap heap(storage_.get(), table->first_page);
  std::vector<RecordId> victims;
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    bool matches = true;
    if (predicate != nullptr) {
      JAGUAR_ASSIGN_OR_RETURN(matches, exec::EvalPredicate(*predicate, t,
                                                           &ctx));
    }
    if (matches) victims.push_back(rec->first);
  }
  for (const RecordId& rid : victims) {
    JAGUAR_RETURN_IF_ERROR(heap.Delete(rid));
  }
  QueryResult result;
  result.rows_affected = victims.size();
  result.message = StringPrintf("%zu row(s) deleted", victims.size());
  return result;
}

Result<QueryResult> Database::ExecuteUpdate(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::UpdateStmt& upd = stmt.update;
  if (EqualsIgnoreCase(upd.table, kLobTableName)) {
    return InvalidArgument("cannot update the internal LOB table");
  }
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(upd.table));
  UdfContext ctx(this);
  ctx.set_callback_quota(options_.udf_callback_quota);
  ctx.set_deadline(&deadline);

  exec::BoundExprPtr predicate;
  if (upd.where != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(
        predicate, exec::Bind(*upd.where, table->schema, upd.table, "",
                              udf_manager_.get()));
  }
  struct Assignment {
    size_t column;
    exec::BoundExprPtr value;
  };
  std::vector<Assignment> assignments;
  for (const auto& [col_name, value_expr] : upd.assignments) {
    Assignment a;
    JAGUAR_ASSIGN_OR_RETURN(a.column, table->schema.IndexOf(col_name));
    JAGUAR_ASSIGN_OR_RETURN(
        a.value, exec::Bind(*value_expr, table->schema, upd.table, "",
                            udf_manager_.get()));
    assignments.push_back(std::move(a));
  }

  // Phase 1: materialize the replacement tuples (value expressions see the
  // old row). Phase 2: delete + reinsert — updates may change record size,
  // and a collect-then-apply plan cannot revisit its own insertions.
  TableHeap heap(storage_.get(), table->first_page);
  std::vector<std::pair<RecordId, Tuple>> updates;
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    if (predicate != nullptr) {
      JAGUAR_ASSIGN_OR_RETURN(bool matches,
                              exec::EvalPredicate(*predicate, t, &ctx));
      if (!matches) continue;
    }
    std::vector<Value> values = t.values();
    for (const Assignment& a : assignments) {
      JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*a.value, t, &ctx));
      if (table->schema.column(a.column).type == TypeId::kDouble &&
          v.type() == TypeId::kInt) {
        v = Value::Double(static_cast<double>(v.AsInt()));
      }
      values[a.column] = std::move(v);
    }
    Tuple updated(std::move(values));
    JAGUAR_RETURN_IF_ERROR(updated.CheckSchema(table->schema));
    updates.emplace_back(rec->first, std::move(updated));
  }
  for (auto& [rid, tuple] : updates) {
    JAGUAR_RETURN_IF_ERROR(heap.Delete(rid));
    JAGUAR_RETURN_IF_ERROR(heap.Insert(Slice(tuple.Serialize())).status());
  }
  QueryResult result;
  result.rows_affected = updates.size();
  result.message = StringPrintf("%zu row(s) updated", updates.size());
  return result;
}

Result<QueryResult> Database::ExecuteInsert(const sql::Statement& stmt,
                                            const QueryDeadline& deadline) {
  const sql::InsertStmt& ins = stmt.insert;
  JAGUAR_ASSIGN_OR_RETURN(const TableInfo* table, catalog_->GetTable(ins.table));

  UdfContext ctx(this);
  ctx.set_deadline(&deadline);
  const Schema empty_schema;
  const Tuple empty_tuple;
  TableHeap heap(storage_.get(), table->first_page);
  uint64_t inserted = 0;
  for (const std::vector<sql::ExprPtr>& row : ins.rows) {
    JAGUAR_RETURN_IF_ERROR(deadline.Check());
    std::vector<Value> values;
    values.reserve(row.size());
    for (const sql::ExprPtr& expr : row) {
      // VALUES expressions are constant: bound against an empty schema, so
      // column references fail; function calls (randbytes, ...) work.
      JAGUAR_ASSIGN_OR_RETURN(
          exec::BoundExprPtr bound,
          exec::Bind(*expr, empty_schema, ins.table, "", udf_manager_.get()));
      JAGUAR_ASSIGN_OR_RETURN(Value v, exec::Eval(*bound, empty_tuple, &ctx));
      values.push_back(std::move(v));
    }
    // Widen INT literals into DOUBLE columns before storing.
    if (values.size() == table->schema.num_columns()) {
      for (size_t i = 0; i < values.size(); ++i) {
        if (table->schema.column(i).type == TypeId::kDouble &&
            values[i].type() == TypeId::kInt) {
          values[i] = Value::Double(static_cast<double>(values[i].AsInt()));
        }
      }
    }
    Tuple t(std::move(values));
    JAGUAR_RETURN_IF_ERROR(t.CheckSchema(table->schema));
    JAGUAR_RETURN_IF_ERROR(heap.Insert(Slice(t.Serialize())).status());
    ++inserted;
  }
  QueryResult result;
  result.rows_affected = inserted;
  result.message = StringPrintf("%llu row(s) inserted",
                                static_cast<unsigned long long>(inserted));
  return result;
}

Status Database::RegisterUdf(UdfInfo info) {
  // Untrusted JJava uploads are verified *at registration* — malformed or
  // ill-typed bytecode never reaches the catalog. Building a runner performs
  // parse + verify + link checks and validates the declared signature.
  if (info.language == UdfLanguage::kJJava ||
      info.language == UdfLanguage::kJJavaIsolated) {
    jvm::ResourceLimits limits;
    limits.instruction_budget = options_.udf_instruction_budget;
    limits.heap_quota_bytes = options_.udf_heap_quota_bytes;
    JAGUAR_RETURN_IF_ERROR(
        JvmUdfRunner::Create(vm_.get(), info, limits).status());
  }
  const std::string name = info.name;
  JAGUAR_RETURN_IF_ERROR(catalog_->RegisterUdf(std::move(info)));
  JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  udf_manager_->InvalidateCache();
  // Re-registration is the operator's "I fixed it" signal: clear any
  // quarantine verdict and strike streak.
  quarantine_.Reset(name);
  return Status::OK();
}

Status Database::DropUdf(const std::string& name) {
  JAGUAR_RETURN_IF_ERROR(catalog_->DropUdf(name));
  JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  udf_manager_->InvalidateCache();
  quarantine_.Reset(name);
  return Status::OK();
}

Result<int64_t> Database::StoreLob(const std::vector<uint8_t>& data) {
  JAGUAR_ASSIGN_OR_RETURN(int64_t handle, lobs_->Store(data));
  JAGUAR_RETURN_IF_ERROR(storage_->WalCommit());
  return handle;
}

Result<std::vector<uint8_t>> Database::FetchLob(int64_t handle,
                                                uint64_t offset, uint64_t len) {
  return lobs_->Fetch(handle, offset, len);
}

Result<int64_t> Database::Callback(int64_t kind, int64_t arg) {
  ++callbacks_served_;
  switch (kind) {
    case 0:
      // The paper's benchmark callback: no data moves, the server replies.
      return arg;
    case 1: {
      JAGUAR_ASSIGN_OR_RETURN(uint64_t size, lobs_->Size(arg));
      return static_cast<int64_t>(size);
    }
    default:
      return NotSupported(StringPrintf("unknown callback kind %lld",
                                       static_cast<long long>(kind)));
  }
}

Result<std::vector<uint8_t>> Database::FetchBytes(int64_t handle,
                                                  uint64_t offset,
                                                  uint64_t len) {
  ++callbacks_served_;
  return lobs_->Fetch(handle, offset, len);
}

Status Database::Flush() { return storage_->Checkpoint(); }

}  // namespace jaguar
