#include "engine/query_result.h"

#include <algorithm>

namespace jaguar {

std::string QueryResult::ToPrettyString() const {
  if (schema.num_columns() == 0) {
    return message.empty() ? "OK" : message;
  }
  const size_t ncols = schema.num_columns();
  std::vector<size_t> widths(ncols);
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < ncols; ++c) {
    widths[c] = schema.column(c).name.size();
  }
  cells.reserve(rows.size());
  for (const Tuple& row : rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < ncols && c < row.num_values(); ++c) {
      line.push_back(row.value(c).ToString());
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& line) {
    out += "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < line.size() ? line[c] : "";
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };
  std::vector<std::string> header;
  for (size_t c = 0; c < ncols; ++c) header.push_back(schema.column(c).name);
  std::string rule = "+";
  for (size_t c = 0; c < ncols; ++c) rule += std::string(widths[c] + 2, '-') + "+";
  rule += "\n";
  out += rule;
  append_row(header);
  out += rule;
  for (const auto& line : cells) append_row(line);
  out += rule;
  out += std::to_string(rows.size()) + " row(s)\n";
  return out;
}

}  // namespace jaguar
