#ifndef JAGUAR_IPC_REMOTE_EXECUTOR_H_
#define JAGUAR_IPC_REMOTE_EXECUTOR_H_

/// \file remote_executor.h
/// A forked executor process plus the request/callback/result protocol of
/// Design 2. The paper assigns "one remote executor process per UDF in the
/// query ... created once per query (not once per function invocation)"; the
/// UDF layer follows the same policy.
///
/// Protocol (all over one ShmChannel):
///
///   parent                         child
///   ------ kRequest(payload) --->  handler runs...
///   <----- kCallbackRequest ----   (0..n times; parent answers each)
///   ------ kCallbackReply ----->
///   <----- kResult | kError ----
///
/// Errors cross the boundary as serialized Status (code + message).

#include <sys/types.h>

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "ipc/shm_channel.h"

namespace jaguar {
namespace ipc {

/// Serializes a Status for the wire (code byte + message).
std::vector<uint8_t> EncodeStatus(const Status& status);
Status DecodeStatus(Slice payload);

class RemoteExecutor {
 public:
  /// Runs in the child for each kRequest. May issue callbacks by sending
  /// kCallbackRequest on `channel` and awaiting kCallbackReply. Returns the
  /// result payload, or an error to be shipped back as kError.
  using RequestHandler =
      std::function<Result<std::vector<uint8_t>>(Slice request,
                                                 ShmChannel* channel)>;

  /// Answers a child callback in the parent.
  using CallbackHandler =
      std::function<Result<std::vector<uint8_t>>(Slice payload)>;

  /// Forks an executor child running `handler` in a loop. The child inherits
  /// the parent's full image (so native UDF registries resolve identically —
  /// the same effect as the paper's executors being built from the server
  /// binary).
  static Result<std::unique_ptr<RemoteExecutor>> Spawn(
      size_t shm_capacity, RequestHandler handler);

  ~RemoteExecutor();
  RemoteExecutor(const RemoteExecutor&) = delete;
  RemoteExecutor& operator=(const RemoteExecutor&) = delete;

  /// Parent side: executes one request, servicing callbacks until the result
  /// arrives. Equivalent to BeginExecute + FinishExecute.
  Result<std::vector<uint8_t>> Execute(Slice request,
                                       const CallbackHandler& on_callback);

  /// Parent side, pipelined form: ships the request to the child and returns
  /// immediately, leaving it in flight. The caller overlaps useful work —
  /// serializing the *next* request — with the child's execution, then calls
  /// FinishExecute to collect the result. At most one request may be in
  /// flight per executor (the channel has a single message slot per
  /// direction); a second BeginExecute before FinishExecute is an error.
  Status BeginExecute(Slice request);

  /// Parent side: services callbacks for the in-flight request until its
  /// result (or error) arrives. Must follow a successful BeginExecute.
  Result<std::vector<uint8_t>> FinishExecute(const CallbackHandler& on_callback);

  /// True between a successful BeginExecute and its FinishExecute.
  bool in_flight() const { return in_flight_; }

  /// Asks the child to exit and reaps it. Called by the destructor too.
  Status Shutdown();

  pid_t child_pid() const { return child_pid_; }
  ShmChannel* channel() { return channel_.get(); }

 private:
  RemoteExecutor() = default;

  std::unique_ptr<ShmChannel> channel_;
  pid_t child_pid_ = -1;
  bool in_flight_ = false;
};

}  // namespace ipc
}  // namespace jaguar

#endif  // JAGUAR_IPC_REMOTE_EXECUTOR_H_
