#ifndef JAGUAR_IPC_REMOTE_EXECUTOR_H_
#define JAGUAR_IPC_REMOTE_EXECUTOR_H_

/// \file remote_executor.h
/// A forked executor process plus the request/callback/result protocol of
/// Design 2. The paper assigns "one remote executor process per UDF in the
/// query ... created once per query (not once per function invocation)"; the
/// UDF layer follows the same policy.
///
/// Protocol (all over one Channel — ring or message transport):
///
///   parent                         child
///   ------ kRequest(payload) --->  handler runs...
///   <----- kCallbackRequest ----   (0..n times; parent answers each)
///   ------ kCallbackReply ----->
///   <----- kResult | kError ----
///
/// Errors cross the boundary as serialized Status (code + message).
///
/// On the ring transport the parent may keep up to `send_queue_depth()` (2)
/// requests committed before collecting the first result — the pipelined
/// double-buffering of Section 2.5 batching without any copy into a private
/// buffer: `PrepareRequest`/`BeginExecutePrepared` serialize the request
/// straight into shared memory, and `FinishExecuteWith` hands the result to
/// the caller as an in-place view before releasing it.

#include <sys/types.h>

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "ipc/channel.h"

namespace jaguar {
namespace ipc {

/// Serializes a Status for the wire (code byte + message).
std::vector<uint8_t> EncodeStatus(const Status& status);
Status DecodeStatus(Slice payload);

class RemoteExecutor {
 public:
  /// Runs in the child for each kRequest. May issue callbacks by sending
  /// kCallbackRequest on `channel` and awaiting kCallbackReply. Returns the
  /// result payload, or an error to be shipped back as kError. `request` may
  /// be an in-place view into transport memory: a handler that issues
  /// callbacks or sends its own zero-copy response must decode what it needs
  /// and call `channel->ReleaseInChild()` first (decode-then-release). A
  /// handler that ships its own kResult (zero-copy) calls
  /// `channel->MarkResponseSent()` and its return value is ignored.
  using RequestHandler =
      std::function<Result<std::vector<uint8_t>>(Slice request,
                                                 Channel* channel)>;

  /// Answers a child callback in the parent.
  using CallbackHandler =
      std::function<Result<std::vector<uint8_t>>(Slice payload)>;

  /// Consumes a result payload in place (before the frame is released).
  using ResultConsumer = std::function<Status(Slice payload)>;

  /// Forks an executor child running `handler` in a loop. The child inherits
  /// the parent's full image (so native UDF registries resolve identically —
  /// the same effect as the paper's executors being built from the server
  /// binary).
  static Result<std::unique_ptr<RemoteExecutor>> Spawn(
      size_t shm_capacity, RequestHandler handler,
      Transport transport = Transport::kRing);

  ~RemoteExecutor();
  RemoteExecutor(const RemoteExecutor&) = delete;
  RemoteExecutor& operator=(const RemoteExecutor&) = delete;

  /// Parent side: executes one request, servicing callbacks until the result
  /// arrives. Equivalent to BeginExecute + FinishExecute.
  Result<std::vector<uint8_t>> Execute(Slice request,
                                       const CallbackHandler& on_callback);

  /// Parent side, pipelined form: ships the request to the child and returns
  /// immediately, leaving it in flight. The caller overlaps useful work —
  /// serializing the *next* request — with the child's execution, then calls
  /// FinishExecute to collect the result. At most `send_queue_depth()`
  /// requests may be in flight per executor (1 on the message transport,
  /// whose channel has a single slot per direction; 2 on the ring);
  /// exceeding the depth is an error.
  Status BeginExecute(Slice request);

  /// Zero-copy form of BeginExecute: reserve up to `max_len` bytes in the
  /// to-child ring, serialize the request into the returned region, then
  /// commit it with BeginExecutePrepared. On the message transport the
  /// region is an internal scratch buffer (one copy, as before).
  Result<uint8_t*> PrepareRequest(size_t max_len);
  Status BeginExecutePrepared(size_t actual_len);

  /// Parent side: services callbacks for the oldest in-flight request until
  /// its result (or error) arrives. Must follow a successful BeginExecute*.
  Result<std::vector<uint8_t>> FinishExecute(const CallbackHandler& on_callback);

  /// Like FinishExecute but hands the result payload to `consume` as an
  /// in-place view (zero-copy on the ring transport) and releases it after
  /// `consume` returns.
  Status FinishExecuteWith(const CallbackHandler& on_callback,
                           const ResultConsumer& consume);

  /// Requests currently committed but not yet finished.
  size_t in_flight() const { return in_flight_; }
  size_t send_queue_depth() const { return channel_->send_queue_depth(); }

  /// Asks the child to exit and reaps it. Called by the destructor too.
  Status Shutdown();

  /// SIGKILLs and reaps the child without a handshake — for discarding a
  /// wedged executor or cleaning up a leased-but-orphaned one at pool
  /// teardown. Idempotent; safe when the child is already dead.
  void Kill();

  pid_t child_pid() const { return child_pid_; }
  Channel* channel() { return channel_.get(); }

 private:
  RemoteExecutor() = default;

  std::unique_ptr<Channel> channel_;
  pid_t child_pid_ = -1;
  size_t in_flight_ = 0;
};

}  // namespace ipc
}  // namespace jaguar

#endif  // JAGUAR_IPC_REMOTE_EXECUTOR_H_
