#ifndef JAGUAR_IPC_RING_CHANNEL_H_
#define JAGUAR_IPC_RING_CHANNEL_H_

/// \file ring_channel.h
/// The "ring" transport: one lock-free SPSC ring buffer per direction in a
/// MAP_SHARED|MAP_ANONYMOUS mapping inherited across fork(). Sends serialize
/// directly into the ring (PrepareTo*/CommitTo*), receives view frames in
/// place and release them after decoding, and an uncontended crossing costs
/// zero syscalls — see common/ring_buffer.h for the frame format, parking
/// protocol and memory-ordering argument.
///
/// Each ring's capacity is sized to hold two maximal frames plus slack, so
/// the parent can pipeline request k+1 behind an unconsumed request k
/// (`send_queue_depth() == 2`) and still post small callback replies without
/// ever filling the ring — the flow-control analysis DESIGN.md §IPC records.

#include <cstdint>
#include <memory>
#include <optional>

#include "common/ring_buffer.h"
#include "ipc/channel.h"

namespace jaguar {
namespace ipc {

class RingChannel : public Channel {
 public:
  /// Allocates a channel accepting payloads up to `data_capacity` bytes per
  /// message (parity with ShmChannel). Must be created before fork().
  static Result<std::unique_ptr<RingChannel>> Create(size_t data_capacity);

  ~RingChannel() override;

  const char* transport_name() const override { return "ring"; }
  bool zero_copy() const override { return true; }
  size_t send_queue_depth() const override { return 2; }

  /// Ring bytes per direction for a given payload limit: two maximal padded
  /// frames plus wrap/reply slack, rounded up to a power of two.
  static uint64_t RingCapacityFor(size_t data_capacity);

  Status SendToChild(MsgType type, Slice payload) override;
  Status SendToParent(MsgType type, Slice payload) override;

  Result<uint8_t*> PrepareToChild(size_t max_len) override;
  Status CommitToChild(MsgType type, size_t actual_len) override;
  Result<uint8_t*> PrepareToParent(size_t max_len) override;
  Status CommitToParent(MsgType type, size_t actual_len) override;

  void ReleaseInChild() override;
  void ReleaseInParent() override;

 protected:
  Result<Msg> DoReceiveInChild() override;
  Result<Msg> DoReceiveInParent() override;
  Result<View> DoReceiveViewInChild() override;
  Result<View> DoReceiveViewInParent() override;

 private:
  RingChannel() = default;

  SpscRingBuffer::WaitOptions ParentWait() const;
  SpscRingBuffer::WaitOptions ChildWait() const;
  Result<View> ReceiveView(SpscRingBuffer* ring,
                           const SpscRingBuffer::WaitOptions& w,
                           std::optional<uint64_t>* view_end);
  Result<Msg> ReceiveCopy(SpscRingBuffer* ring,
                          const SpscRingBuffer::WaitOptions& w);

  void* mem_ = nullptr;
  size_t total_size_ = 0;
  SpscRingBuffer to_child_;
  SpscRingBuffer to_parent_;

  /// Release token of the current in-place view per receiving side (each
  /// forked process only ever uses one side's slot).
  std::optional<uint64_t> child_view_end_;
  std::optional<uint64_t> parent_view_end_;
};

}  // namespace ipc
}  // namespace jaguar

#endif  // JAGUAR_IPC_RING_CHANNEL_H_
