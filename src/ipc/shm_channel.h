#ifndef JAGUAR_IPC_SHM_CHANNEL_H_
#define JAGUAR_IPC_SHM_CHANNEL_H_

/// \file shm_channel.h
/// The Design-2 transport: a parent↔child message channel over shared memory
/// with process-shared POSIX semaphores — exactly the mechanism Section 4.1
/// describes: "The server copies the function arguments into shared memory,
/// and 'sends' a request by releasing a semaphore."
///
/// Each direction has a type field, a length field and a fixed-capacity data
/// area; semaphores signal message availability. Message *types* multiplex
/// the two conversations that share the channel: UDF requests flowing down,
/// and results *or callback requests* flowing up (a callback suspends the
/// request until the parent posts the callback reply).
///
/// The memory is MAP_SHARED|MAP_ANONYMOUS and is inherited across fork(), so
/// no filesystem names are involved.

#include <semaphore.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/slice.h"
#include "common/status.h"

namespace jaguar {
namespace ipc {

enum class MsgType : uint32_t {
  kRequest = 1,          ///< parent→child: run a UDF.
  kCallbackRequest = 2,  ///< child→parent: UDF needs the server.
  kCallbackReply = 3,    ///< parent→child: callback result.
  kResult = 4,           ///< child→parent: UDF result.
  kError = 5,            ///< child→parent: UDF failed (payload = status).
  kShutdown = 6,         ///< parent→child: exit the executor loop.
};

class ShmChannel {
 public:
  /// Allocates a channel whose per-direction data area holds `data_capacity`
  /// bytes. Must be created before fork(); both processes then use the same
  /// object (the mapping is shared).
  static Result<std::unique_ptr<ShmChannel>> Create(size_t data_capacity);

  ~ShmChannel();
  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;

  size_t data_capacity() const { return capacity_; }

  /// Sends a message toward the child / parent. Fails with InvalidArgument
  /// if the payload exceeds the data capacity.
  Status SendToChild(MsgType type, Slice payload);
  Status SendToParent(MsgType type, Slice payload);

  /// Blocks (with timeout) for the next message in the given direction.
  Result<std::pair<MsgType, std::vector<uint8_t>>> ReceiveInChild();
  Result<std::pair<MsgType, std::vector<uint8_t>>> ReceiveInParent();

  /// Wait timeout for receives, seconds (guards against a dead peer).
  void set_timeout_seconds(int seconds) { timeout_seconds_ = seconds; }

  /// Attaches (or clears, with null) the query deadline observed by
  /// `ReceiveInParent`. The parent already wakes every 100ms slice to
  /// re-check its monotonic budget; with a deadline installed it also checks
  /// the deadline and abandons the wait with `DeadlineExceeded` — this is the
  /// watchdog tick that lets the runner SIGKILL a wedged executor child at
  /// most ~100ms after the deadline passes. Not owned; the caller must keep
  /// the deadline alive across the receive (and clear it afterwards).
  void set_parent_deadline(const QueryDeadline* deadline) {
    parent_deadline_ = deadline;
  }

 private:
  ShmChannel() = default;

  struct Header {
    sem_t to_child_sem;
    sem_t to_parent_sem;
    uint32_t to_child_type;
    uint64_t to_child_len;
    uint32_t to_parent_type;
    uint64_t to_parent_len;
  };

  Status Send(sem_t* sem, uint32_t* type_field, uint64_t* len_field,
              uint8_t* data_area, MsgType type, Slice payload);
  Result<std::pair<MsgType, std::vector<uint8_t>>> Receive(
      sem_t* sem, const uint32_t* type_field, const uint64_t* len_field,
      const uint8_t* data_area, const QueryDeadline* deadline);

  void* mem_ = nullptr;
  size_t total_size_ = 0;
  size_t capacity_ = 0;
  Header* header_ = nullptr;
  uint8_t* to_child_data_ = nullptr;
  uint8_t* to_parent_data_ = nullptr;
  int timeout_seconds_ = 30;
  const QueryDeadline* parent_deadline_ = nullptr;
};

}  // namespace ipc
}  // namespace jaguar

#endif  // JAGUAR_IPC_SHM_CHANNEL_H_
