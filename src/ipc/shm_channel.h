#ifndef JAGUAR_IPC_SHM_CHANNEL_H_
#define JAGUAR_IPC_SHM_CHANNEL_H_

/// \file shm_channel.h
/// The "message" transport (Design 2's original mechanism): a parent↔child
/// message channel over shared memory with process-shared POSIX semaphores —
/// exactly what Section 4.1 describes: "The server copies the function
/// arguments into shared memory, and 'sends' a request by releasing a
/// semaphore."
///
/// Each direction has a type field, a length field and a fixed-capacity data
/// area; semaphores signal message availability. One message slot per
/// direction, a semaphore syscall per message, and payloads copied in and
/// out — the copy-twice, syscall-per-message baseline the ring transport
/// (ring_channel.h) exists to beat. Kept behind
/// `DatabaseOptions::ipc_transport = "message"` as the benchable fallback.
///
/// The memory is MAP_SHARED|MAP_ANONYMOUS and is inherited across fork(), so
/// no filesystem names are involved.

#include <semaphore.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/slice.h"
#include "common/status.h"
#include "ipc/channel.h"

namespace jaguar {
namespace ipc {

class ShmChannel : public Channel {
 public:
  /// Allocates a channel whose per-direction data area holds `data_capacity`
  /// bytes. Must be created before fork(); both processes then use the same
  /// object (the mapping is shared).
  static Result<std::unique_ptr<ShmChannel>> Create(size_t data_capacity);

  ~ShmChannel() override;

  const char* transport_name() const override { return "message"; }

  /// Sends a message toward the child / parent. Fails with InvalidArgument
  /// if the payload exceeds the data capacity.
  Status SendToChild(MsgType type, Slice payload) override;
  Status SendToParent(MsgType type, Slice payload) override;

 protected:
  /// Blocks (with timeout) for the next message in the given direction.
  Result<Msg> DoReceiveInChild() override;
  Result<Msg> DoReceiveInParent() override;

 private:
  ShmChannel() = default;

  struct Header {
    sem_t to_child_sem;
    sem_t to_parent_sem;
    uint32_t to_child_type;
    uint64_t to_child_len;
    uint32_t to_parent_type;
    uint64_t to_parent_len;
  };

  Status Send(sem_t* sem, uint32_t* type_field, uint64_t* len_field,
              uint8_t* data_area, MsgType type, Slice payload);
  Result<Msg> Receive(sem_t* sem, const uint32_t* type_field,
                      const uint64_t* len_field, const uint8_t* data_area,
                      const QueryDeadline* deadline);

  void* mem_ = nullptr;
  size_t total_size_ = 0;
  Header* header_ = nullptr;
  uint8_t* to_child_data_ = nullptr;
  uint8_t* to_parent_data_ = nullptr;
};

}  // namespace ipc
}  // namespace jaguar

#endif  // JAGUAR_IPC_SHM_CHANNEL_H_
