#ifndef JAGUAR_IPC_CHANNEL_H_
#define JAGUAR_IPC_CHANNEL_H_

/// \file channel.h
/// The parent↔child IPC transport abstraction behind the isolated-UDF
/// boundary. Two implementations exist:
///
///   - "ring" (RingChannel): a lock-free SPSC ring buffer per direction in
///     shared memory — zero-copy sends (serialize straight into the ring),
///     in-place receive views, and zero syscalls on the uncontended path.
///     The default.
///   - "message" (ShmChannel): the paper's Section-4.1 mechanism — one
///     message slot per direction, a semaphore post per message, payloads
///     copied in and out. Kept behind `DatabaseOptions::ipc_transport` as
///     the benchable/revertible fallback.
///
/// The base class supplies copying shims for the zero-copy entry points
/// (`Prepare*/Commit*` fall back to a scratch buffer + `Send*`; view
/// receives fall back to copy-then-view), so protocol code above — the
/// remote executor, the UDF runners — has exactly one code path and the
/// transport choice is purely a performance knob.
///
/// Message types multiplex the two conversations sharing a channel: UDF
/// requests flowing down, and results *or callback requests* flowing up (a
/// callback suspends the request until the parent posts the reply). The ring
/// transport additionally pipelines: the parent may commit request k+1 while
/// request k is still executing, so a child awaiting a callback reply can see
/// the *next* request first — it stashes such frames (`StashInChild`) and the
/// receive wrappers drain the stash before touching the transport.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/slice.h"
#include "common/status.h"

namespace jaguar {
namespace ipc {

enum class MsgType : uint32_t {
  kRequest = 1,          ///< parent→child: run a UDF.
  kCallbackRequest = 2,  ///< child→parent: UDF needs the server.
  kCallbackReply = 3,    ///< parent→child: callback result.
  kResult = 4,           ///< child→parent: UDF result.
  kError = 5,            ///< child→parent: UDF failed (payload = status).
  kShutdown = 6,         ///< parent→child: exit the executor loop.
};

/// Which transport a channel (and everything above it) uses.
enum class Transport {
  kRing,     ///< SPSC shared-memory ring buffer (zero-copy fast path).
  kMessage,  ///< single-slot semaphore-per-message channel (the paper's).
};

const char* TransportName(Transport t);
Result<Transport> ParseTransport(const std::string& name);

class Channel {
 public:
  using Msg = std::pair<MsgType, std::vector<uint8_t>>;
  /// A received frame viewed in place (ring) or over an internal scratch
  /// buffer (message). Valid until the matching Release*/next receive.
  using View = std::pair<MsgType, Slice>;

  /// Allocates a channel of the given transport whose per-direction payload
  /// limit is `data_capacity` bytes. Must be created before fork(); both
  /// processes then use the same object (the mapping is shared).
  static Result<std::unique_ptr<Channel>> Create(Transport transport,
                                                 size_t data_capacity);

  virtual ~Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  size_t data_capacity() const { return capacity_; }
  virtual const char* transport_name() const = 0;

  /// True when Prepare*/Commit* and view receives avoid intermediate copies.
  virtual bool zero_copy() const { return false; }

  /// Requests the parent may commit before collecting the first result (1 =
  /// no overlap; the ring's flow control affords a depth of 2, sized so a
  /// pipelined request plus callback replies can never fill the ring).
  virtual size_t send_queue_depth() const { return 1; }

  /// Copying sends. Fail with InvalidArgument if the payload exceeds
  /// `data_capacity`.
  virtual Status SendToChild(MsgType type, Slice payload) = 0;
  virtual Status SendToParent(MsgType type, Slice payload) = 0;

  /// Zero-copy sends: reserve a region of up to `max_len` bytes, serialize
  /// into it, commit with the actual length. Default shims serialize into a
  /// scratch buffer and forward to Send* (message-transport semantics). At
  /// most one reservation per direction may be outstanding.
  virtual Result<uint8_t*> PrepareToChild(size_t max_len);
  virtual Status CommitToChild(MsgType type, size_t actual_len);
  virtual Result<uint8_t*> PrepareToParent(size_t max_len);
  virtual Status CommitToParent(MsgType type, size_t actual_len);

  /// Copying receives. The child-side wrapper drains stashed frames first.
  Result<Msg> ReceiveInChild();
  Result<Msg> ReceiveInParent() { return DoReceiveInParent(); }

  /// Like ReceiveInChild but bypasses the stash: used by a child awaiting a
  /// callback reply, which must *not* re-pop the requests it just deferred.
  Result<Msg> ReceiveFreshInChild() { return DoReceiveInChild(); }

  /// View receives: the frame stays in transport memory (ring) until the
  /// matching Release. Default shims copy-receive into an internal buffer.
  /// Release is idempotent and a no-op for non-ring-backed views.
  Result<View> ReceiveViewInChild();
  Result<View> ReceiveViewInParent() { return DoReceiveViewInParent(); }
  virtual void ReleaseInChild() {}
  virtual void ReleaseInParent() {}

  /// Child side: defer an out-of-order frame (a pipelined kRequest that
  /// arrived while awaiting a kCallbackReply); receive wrappers return
  /// stashed frames, oldest first, before reading the transport.
  void StashInChild(MsgType type, std::vector<uint8_t> payload);

  /// Child side: a zero-copy handler that shipped its own kResult marks the
  /// response sent so the executor loop does not send a second one.
  void MarkResponseSent() { response_sent_ = true; }
  bool TakeResponseSent() {
    bool v = response_sent_;
    response_sent_ = false;
    return v;
  }

  /// Wait timeout for receives (and ring-space waits), seconds — guards
  /// against a dead peer.
  void set_timeout_seconds(int seconds) { timeout_seconds_ = seconds; }

  /// Attaches (or clears, with null) the query deadline observed by
  /// parent-side waits. The parent wakes every ~100 ms slice to re-check its
  /// monotonic budget; with a deadline installed it also checks the deadline
  /// and abandons the wait with `DeadlineExceeded` — the watchdog tick that
  /// lets the runner SIGKILL a wedged executor child at most ~100 ms after
  /// the deadline passes. Not owned; the caller must keep the deadline alive
  /// across the wait (and clear it afterwards).
  void set_parent_deadline(const QueryDeadline* deadline) {
    parent_deadline_ = deadline;
  }

 protected:
  Channel() = default;

  virtual Result<Msg> DoReceiveInChild() = 0;
  virtual Result<Msg> DoReceiveInParent() = 0;
  /// Default view receives: copy-receive into an internal per-direction
  /// buffer and return a view over it.
  virtual Result<View> DoReceiveViewInChild();
  virtual Result<View> DoReceiveViewInParent();

  size_t capacity_ = 0;
  int timeout_seconds_ = 30;
  const QueryDeadline* parent_deadline_ = nullptr;

 private:
  std::deque<Msg> child_stash_;
  std::vector<uint8_t> child_view_buf_;
  std::vector<uint8_t> parent_view_buf_;
  MsgType child_view_type_ = MsgType::kRequest;
  MsgType parent_view_type_ = MsgType::kRequest;
  std::vector<uint8_t> to_child_scratch_;
  std::vector<uint8_t> to_parent_scratch_;
  bool response_sent_ = false;
};

}  // namespace ipc
}  // namespace jaguar

#endif  // JAGUAR_IPC_CHANNEL_H_
