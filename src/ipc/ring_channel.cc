#include "ipc/ring_channel.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {
namespace ipc {

namespace {

RingStats MakeRingStats() {
  auto* reg = obs::MetricsRegistry::Global();
  RingStats s;
  s.bytes = reg->GetCounter("ipc.ring.bytes");
  s.frames = reg->GetCounter("ipc.ring.frames");
  s.wraps = reg->GetCounter("ipc.ring.wraps");
  s.spins = reg->GetCounter("ipc.ring.spins");
  s.parks = reg->GetCounter("ipc.ring.parks");
  s.wakes = reg->GetCounter("ipc.ring.wakes");
  return s;
}

/// Every committed frame is one Section-4.1 boundary crossing, whatever the
/// transport — these are the same counters the message channel bumps, so
/// crossing-count assertions and figures stay transport-independent. (Like
/// all IPC counters they are per-process: a forked executor child
/// accumulates into its own copy.)
void CountMessage(size_t payload_bytes) {
  static obs::Counter* messages =
      obs::MetricsRegistry::Global()->GetCounter("ipc.shm.messages");
  static obs::Counter* bytes =
      obs::MetricsRegistry::Global()->GetCounter("ipc.shm.payload_bytes");
  messages->Add();
  bytes->Add(payload_bytes);
}

}  // namespace

uint64_t RingChannel::RingCapacityFor(size_t data_capacity) {
  const uint64_t frame =
      SpscRingBuffer::Pad(SpscRingBuffer::kHeaderBytes + data_capacity);
  return SpscRingBuffer::RoundUpPow2(2 * (frame + 64) + 4096);
}

Result<std::unique_ptr<RingChannel>> RingChannel::Create(
    size_t data_capacity) {
  auto channel = std::unique_ptr<RingChannel>(new RingChannel());
  channel->capacity_ = data_capacity;
  const uint64_t ring_cap = RingCapacityFor(data_capacity);
  const size_t per_ring = SpscRingBuffer::LayoutBytes(ring_cap);
  channel->total_size_ = 2 * per_ring;
  void* mem = ::mmap(nullptr, channel->total_size_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return IoError(StringPrintf("mmap(%zu) for ring channel failed: %s",
                                channel->total_size_, std::strerror(errno)));
  }
  channel->mem_ = mem;
  RingStats stats = MakeRingStats();
  JAGUAR_RETURN_IF_ERROR(
      channel->to_child_.Init(mem, ring_cap, data_capacity, stats));
  JAGUAR_RETURN_IF_ERROR(channel->to_parent_.Init(
      static_cast<uint8_t*>(mem) + per_ring, ring_cap, data_capacity, stats));
  return channel;
}

RingChannel::~RingChannel() {
  if (mem_ != nullptr) {
    to_child_.Destroy();
    to_parent_.Destroy();
    ::munmap(mem_, total_size_);
  }
}

SpscRingBuffer::WaitOptions RingChannel::ParentWait() const {
  SpscRingBuffer::WaitOptions w;
  w.budget_ns = static_cast<int64_t>(timeout_seconds_) * 1000000000;
  w.deadline = parent_deadline_;
  return w;
}

SpscRingBuffer::WaitOptions RingChannel::ChildWait() const {
  // Children never observe a query deadline: the parent enforces it by
  // killing them from outside.
  SpscRingBuffer::WaitOptions w;
  w.budget_ns = static_cast<int64_t>(timeout_seconds_) * 1000000000;
  return w;
}

Status RingChannel::SendToChild(MsgType type, Slice payload) {
  JAGUAR_RETURN_IF_ERROR(
      to_child_.Write(static_cast<uint32_t>(type), payload, ParentWait()));
  CountMessage(payload.size());
  return Status::OK();
}

Status RingChannel::SendToParent(MsgType type, Slice payload) {
  JAGUAR_RETURN_IF_ERROR(
      to_parent_.Write(static_cast<uint32_t>(type), payload, ChildWait()));
  CountMessage(payload.size());
  return Status::OK();
}

Result<uint8_t*> RingChannel::PrepareToChild(size_t max_len) {
  return to_child_.Prepare(max_len, ParentWait());
}

Status RingChannel::CommitToChild(MsgType type, size_t actual_len) {
  JAGUAR_RETURN_IF_ERROR(
      to_child_.Commit(static_cast<uint32_t>(type), actual_len));
  CountMessage(actual_len);
  return Status::OK();
}

Result<uint8_t*> RingChannel::PrepareToParent(size_t max_len) {
  return to_parent_.Prepare(max_len, ChildWait());
}

Status RingChannel::CommitToParent(MsgType type, size_t actual_len) {
  JAGUAR_RETURN_IF_ERROR(
      to_parent_.Commit(static_cast<uint32_t>(type), actual_len));
  CountMessage(actual_len);
  return Status::OK();
}

Result<Channel::View> RingChannel::ReceiveView(
    SpscRingBuffer* ring, const SpscRingBuffer::WaitOptions& w,
    std::optional<uint64_t>* view_end) {
  JAGUAR_ASSIGN_OR_RETURN(SpscRingBuffer::Frame f, ring->Read(w));
  *view_end = f.end_pos;
  return View(static_cast<MsgType>(f.type), f.payload);
}

Result<Channel::Msg> RingChannel::ReceiveCopy(
    SpscRingBuffer* ring, const SpscRingBuffer::WaitOptions& w) {
  JAGUAR_ASSIGN_OR_RETURN(SpscRingBuffer::Frame f, ring->Read(w));
  Msg msg(static_cast<MsgType>(f.type), f.payload.ToVector());
  ring->Release(f.end_pos);
  return msg;
}

Result<Channel::Msg> RingChannel::DoReceiveInChild() {
  return ReceiveCopy(&to_child_, ChildWait());
}

Result<Channel::Msg> RingChannel::DoReceiveInParent() {
  return ReceiveCopy(&to_parent_, ParentWait());
}

Result<Channel::View> RingChannel::DoReceiveViewInChild() {
  return ReceiveView(&to_child_, ChildWait(), &child_view_end_);
}

Result<Channel::View> RingChannel::DoReceiveViewInParent() {
  return ReceiveView(&to_parent_, ParentWait(), &parent_view_end_);
}

void RingChannel::ReleaseInChild() {
  if (child_view_end_.has_value()) {
    to_child_.Release(*child_view_end_);
    child_view_end_.reset();
  }
}

void RingChannel::ReleaseInParent() {
  if (parent_view_end_.has_value()) {
    to_parent_.Release(*parent_view_end_);
    parent_view_end_.reset();
  }
}

}  // namespace ipc
}  // namespace jaguar
