#include "ipc/remote_executor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include "common/bytes.h"
#include "common/logging.h"

namespace jaguar {
namespace ipc {

std::vector<uint8_t> EncodeStatus(const Status& status) {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Release();
}

Status DecodeStatus(Slice payload) {
  BufferReader r(payload);
  Result<uint8_t> code = r.ReadU8();
  if (!code.ok()) return Corruption("malformed status payload");
  Result<std::string> message = r.ReadString();
  if (!message.ok()) return Corruption("malformed status payload");
  return Status(static_cast<StatusCode>(*code), std::move(*message));
}

namespace {

/// Child main loop: serve requests until kShutdown (or channel failure).
[[noreturn]] void ChildLoop(ShmChannel* channel,
                            const RemoteExecutor::RequestHandler& handler) {
  while (true) {
    Result<std::pair<MsgType, std::vector<uint8_t>>> msg =
        channel->ReceiveInChild();
    if (!msg.ok()) _exit(2);
    if (msg->first == MsgType::kShutdown) _exit(0);
    if (msg->first != MsgType::kRequest) _exit(3);

    Result<std::vector<uint8_t>> result =
        handler(Slice(msg->second), channel);
    Status send = result.ok()
                      ? channel->SendToParent(MsgType::kResult, Slice(*result))
                      : channel->SendToParent(
                            MsgType::kError,
                            Slice(EncodeStatus(result.status())));
    if (!send.ok()) _exit(4);
  }
}

}  // namespace

Result<std::unique_ptr<RemoteExecutor>> RemoteExecutor::Spawn(
    size_t shm_capacity, RequestHandler handler) {
  auto executor = std::unique_ptr<RemoteExecutor>(new RemoteExecutor());
  JAGUAR_ASSIGN_OR_RETURN(executor->channel_, ShmChannel::Create(shm_capacity));
  pid_t pid = ::fork();
  if (pid < 0) return IoError("fork failed");
  if (pid == 0) {
    ChildLoop(executor->channel_.get(), handler);  // never returns
  }
  executor->child_pid_ = pid;
  return executor;
}

RemoteExecutor::~RemoteExecutor() { Shutdown().ok(); }

Status RemoteExecutor::Shutdown() {
  if (child_pid_ < 0) return Status::OK();
  channel_->SendToChild(MsgType::kShutdown, Slice()).ok();
  int status = 0;
  pid_t reaped = ::waitpid(child_pid_, &status, 0);
  child_pid_ = -1;
  if (reaped < 0) return IoError("waitpid failed");
  return Status::OK();
}

Result<std::vector<uint8_t>> RemoteExecutor::Execute(
    Slice request, const CallbackHandler& on_callback) {
  JAGUAR_RETURN_IF_ERROR(BeginExecute(request));
  return FinishExecute(on_callback);
}

Status RemoteExecutor::BeginExecute(Slice request) {
  if (child_pid_ < 0) return Internal("remote executor already shut down");
  if (in_flight_) {
    return Internal("remote executor already has a request in flight");
  }
  JAGUAR_RETURN_IF_ERROR(channel_->SendToChild(MsgType::kRequest, request));
  in_flight_ = true;
  return Status::OK();
}

Result<std::vector<uint8_t>> RemoteExecutor::FinishExecute(
    const CallbackHandler& on_callback) {
  if (!in_flight_) return Internal("no request in flight");
  in_flight_ = false;
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto msg, channel_->ReceiveInParent());
    switch (msg.first) {
      case MsgType::kResult:
        return std::move(msg.second);
      case MsgType::kError:
        return DecodeStatus(Slice(msg.second));
      case MsgType::kCallbackRequest: {
        Result<std::vector<uint8_t>> reply = on_callback(Slice(msg.second));
        if (!reply.ok()) {
          // Surface the callback failure to the child; it will fail the UDF
          // and ship the error back as kError.
          JAGUAR_RETURN_IF_ERROR(channel_->SendToChild(
              MsgType::kError, Slice(EncodeStatus(reply.status()))));
          break;
        }
        JAGUAR_RETURN_IF_ERROR(
            channel_->SendToChild(MsgType::kCallbackReply, Slice(*reply)));
        break;
      }
      default:
        return Internal("unexpected message type from executor child");
    }
  }
}

}  // namespace ipc
}  // namespace jaguar
