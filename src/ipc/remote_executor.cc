#include "ipc/remote_executor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include "common/bytes.h"
#include "common/logging.h"

namespace jaguar {
namespace ipc {

std::vector<uint8_t> EncodeStatus(const Status& status) {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Release();
}

Status DecodeStatus(Slice payload) {
  BufferReader r(payload);
  Result<uint8_t> code = r.ReadU8();
  if (!code.ok()) return Corruption("malformed status payload");
  Result<std::string> message = r.ReadString();
  if (!message.ok()) return Corruption("malformed status payload");
  return Status(static_cast<StatusCode>(*code), std::move(*message));
}

namespace {

/// Child main loop: serve requests until kShutdown (or channel failure).
/// Requests arrive as in-place views; ReleaseInChild after the handler is a
/// safety net for handlers that did not release themselves (release is
/// idempotent). A handler that shipped its own zero-copy kResult marked the
/// response sent, so the loop must not send a second one.
[[noreturn]] void ChildLoop(Channel* channel,
                            const RemoteExecutor::RequestHandler& handler) {
  while (true) {
    Result<Channel::View> msg = channel->ReceiveViewInChild();
    if (!msg.ok()) _exit(2);
    if (msg->first == MsgType::kShutdown) _exit(0);
    if (msg->first != MsgType::kRequest) _exit(3);

    Result<std::vector<uint8_t>> result = handler(msg->second, channel);
    channel->ReleaseInChild();
    if (channel->TakeResponseSent()) {
      if (!result.ok()) _exit(3);
      continue;
    }
    Status send = result.ok()
                      ? channel->SendToParent(MsgType::kResult, Slice(*result))
                      : channel->SendToParent(
                            MsgType::kError,
                            Slice(EncodeStatus(result.status())));
    if (!send.ok()) _exit(4);
  }
}

}  // namespace

Result<std::unique_ptr<RemoteExecutor>> RemoteExecutor::Spawn(
    size_t shm_capacity, RequestHandler handler, Transport transport) {
  auto executor = std::unique_ptr<RemoteExecutor>(new RemoteExecutor());
  JAGUAR_ASSIGN_OR_RETURN(executor->channel_,
                          Channel::Create(transport, shm_capacity));
  pid_t pid = ::fork();
  if (pid < 0) return IoError("fork failed");
  if (pid == 0) {
    ChildLoop(executor->channel_.get(), handler);  // never returns
  }
  executor->child_pid_ = pid;
  return executor;
}

RemoteExecutor::~RemoteExecutor() { Shutdown().ok(); }

Status RemoteExecutor::Shutdown() {
  if (child_pid_ < 0) return Status::OK();
  channel_->SendToChild(MsgType::kShutdown, Slice()).ok();
  int status = 0;
  pid_t reaped = ::waitpid(child_pid_, &status, 0);
  child_pid_ = -1;
  if (reaped < 0) return IoError("waitpid failed");
  return Status::OK();
}

void RemoteExecutor::Kill() {
  if (child_pid_ <= 0) return;
  ::kill(child_pid_, SIGKILL);
  int status = 0;
  ::waitpid(child_pid_, &status, 0);
  child_pid_ = -1;
}

Result<std::vector<uint8_t>> RemoteExecutor::Execute(
    Slice request, const CallbackHandler& on_callback) {
  JAGUAR_RETURN_IF_ERROR(BeginExecute(request));
  return FinishExecute(on_callback);
}

Status RemoteExecutor::BeginExecute(Slice request) {
  if (child_pid_ < 0) return Internal("remote executor already shut down");
  if (in_flight_ >= channel_->send_queue_depth()) {
    return Internal("remote executor request pipeline is full");
  }
  JAGUAR_RETURN_IF_ERROR(channel_->SendToChild(MsgType::kRequest, request));
  ++in_flight_;
  return Status::OK();
}

Result<uint8_t*> RemoteExecutor::PrepareRequest(size_t max_len) {
  if (child_pid_ < 0) return Internal("remote executor already shut down");
  if (in_flight_ >= channel_->send_queue_depth()) {
    return Internal("remote executor request pipeline is full");
  }
  return channel_->PrepareToChild(max_len);
}

Status RemoteExecutor::BeginExecutePrepared(size_t actual_len) {
  JAGUAR_RETURN_IF_ERROR(
      channel_->CommitToChild(MsgType::kRequest, actual_len));
  ++in_flight_;
  return Status::OK();
}

Result<std::vector<uint8_t>> RemoteExecutor::FinishExecute(
    const CallbackHandler& on_callback) {
  std::vector<uint8_t> out;
  JAGUAR_RETURN_IF_ERROR(
      FinishExecuteWith(on_callback, [&out](Slice payload) -> Status {
        out.assign(payload.data(), payload.data() + payload.size());
        return Status::OK();
      }));
  return out;
}

Status RemoteExecutor::FinishExecuteWith(const CallbackHandler& on_callback,
                                         const ResultConsumer& consume) {
  if (in_flight_ == 0) return Internal("no request in flight");
  --in_flight_;
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(Channel::View msg,
                            channel_->ReceiveViewInParent());
    switch (msg.first) {
      case MsgType::kResult: {
        Status consumed = consume(msg.second);
        channel_->ReleaseInParent();
        return consumed;
      }
      case MsgType::kError: {
        Status error = DecodeStatus(msg.second);
        channel_->ReleaseInParent();
        return error;
      }
      case MsgType::kCallbackRequest: {
        Result<std::vector<uint8_t>> reply = on_callback(msg.second);
        channel_->ReleaseInParent();
        if (!reply.ok()) {
          // Surface the callback failure to the child; it will fail the UDF
          // and ship the error back as kError.
          JAGUAR_RETURN_IF_ERROR(channel_->SendToChild(
              MsgType::kError, Slice(EncodeStatus(reply.status()))));
          break;
        }
        JAGUAR_RETURN_IF_ERROR(
            channel_->SendToChild(MsgType::kCallbackReply, Slice(*reply)));
        break;
      }
      default:
        channel_->ReleaseInParent();
        return Internal("unexpected message type from executor child");
    }
  }
}

}  // namespace ipc
}  // namespace jaguar
