#include "ipc/shm_channel.h"

#include <sys/mman.h>
#include <time.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {
namespace ipc {

Result<std::unique_ptr<ShmChannel>> ShmChannel::Create(size_t data_capacity) {
  auto channel = std::unique_ptr<ShmChannel>(new ShmChannel());
  channel->capacity_ = data_capacity;
  channel->total_size_ = sizeof(Header) + 2 * data_capacity;
  void* mem = ::mmap(nullptr, channel->total_size_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return IoError(StringPrintf("mmap(%zu) for shm channel failed: %s",
                                channel->total_size_, std::strerror(errno)));
  }
  channel->mem_ = mem;
  channel->header_ = static_cast<Header*>(mem);
  channel->to_child_data_ = static_cast<uint8_t*>(mem) + sizeof(Header);
  channel->to_parent_data_ = channel->to_child_data_ + data_capacity;
  if (::sem_init(&channel->header_->to_child_sem, /*pshared=*/1, 0) != 0 ||
      ::sem_init(&channel->header_->to_parent_sem, /*pshared=*/1, 0) != 0) {
    return IoError("sem_init failed");
  }
  return channel;
}

ShmChannel::~ShmChannel() {
  if (mem_ != nullptr) {
    ::sem_destroy(&header_->to_child_sem);
    ::sem_destroy(&header_->to_parent_sem);
    ::munmap(mem_, total_size_);
  }
}

Status ShmChannel::Send(sem_t* sem, uint32_t* type_field, uint64_t* len_field,
                        uint8_t* data_area, MsgType type, Slice payload) {
  if (payload.size() > capacity_) {
    return InvalidArgument(StringPrintf(
        "shm message of %zu bytes exceeds channel capacity %zu",
        payload.size(), capacity_));
  }
  *type_field = static_cast<uint32_t>(type);
  *len_field = payload.size();
  if (!payload.empty()) {
    std::memcpy(data_area, payload.data(), payload.size());
  }
  if (::sem_post(sem) != 0) return IoError("sem_post failed");
  // Counted only on successful post: each message is one semaphore release,
  // the Section-4.1 crossing the paper measures. Note these counters are
  // per-process — a forked executor child accumulates into its own copy.
  static obs::Counter* messages =
      obs::MetricsRegistry::Global()->GetCounter("ipc.shm.messages");
  static obs::Counter* bytes =
      obs::MetricsRegistry::Global()->GetCounter("ipc.shm.payload_bytes");
  messages->Add();
  bytes->Add(payload.size());
  return Status::OK();
}

Result<Channel::Msg> ShmChannel::Receive(
    sem_t* sem, const uint32_t* type_field, const uint64_t* len_field,
    const uint8_t* data_area, const QueryDeadline* deadline) {
  // A deadline that is already dead on entry fails before any waiting.
  JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
  static obs::Histogram* wait_ns =
      obs::MetricsRegistry::Global()->GetHistogram("ipc.shm.wait_ns");
  obs::Timer wait_timer(wait_ns);
  // The overall timeout is measured on CLOCK_MONOTONIC, but sem_timedwait
  // only takes CLOCK_REALTIME deadlines — which jump under clock adjustment,
  // turning one long wait into "never fires" or "fires immediately". So wait
  // in short realtime slices and re-check the monotonic budget between them:
  // a dead peer (or a clock step) can delay us by at most one slice.
  constexpr long kSliceNs = 100 * 1000 * 1000;  // 100ms
  struct timespec start;
  ::clock_gettime(CLOCK_MONOTONIC, &start);
  const int64_t budget_ns = static_cast<int64_t>(timeout_seconds_) * 1000000000;
  while (true) {
    struct timespec slice;
    ::clock_gettime(CLOCK_REALTIME, &slice);
    slice.tv_nsec += kSliceNs;
    if (slice.tv_nsec >= 1000000000) {
      slice.tv_nsec -= 1000000000;
      ++slice.tv_sec;
    }
    if (::sem_timedwait(sem, &slice) == 0) break;
    if (errno == EINTR) continue;  // retry the same slice's worth of waiting
    if (errno != ETIMEDOUT) {
      return IoError(StringPrintf("sem_timedwait failed: %s",
                                  std::strerror(errno)));
    }
    // Between slices: first the query deadline (watchdog tick), then the
    // dead-peer budget. Expiry mid-wait is detected at most one slice late.
    JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
    struct timespec now;
    ::clock_gettime(CLOCK_MONOTONIC, &now);
    const int64_t elapsed_ns =
        (now.tv_sec - start.tv_sec) * 1000000000 +
        (now.tv_nsec - start.tv_nsec);
    if (elapsed_ns >= budget_ns) {
      return IoError("shm channel receive timed out (peer dead?)");
    }
  }
  uint64_t len = *len_field;
  if (len > capacity_) return Corruption("shm message length out of range");
  std::vector<uint8_t> payload(data_area, data_area + len);
  return std::make_pair(static_cast<MsgType>(*type_field),
                        std::move(payload));
}

Status ShmChannel::SendToChild(MsgType type, Slice payload) {
  return Send(&header_->to_child_sem, &header_->to_child_type,
              &header_->to_child_len, to_child_data_, type, payload);
}

Status ShmChannel::SendToParent(MsgType type, Slice payload) {
  return Send(&header_->to_parent_sem, &header_->to_parent_type,
              &header_->to_parent_len, to_parent_data_, type, payload);
}

Result<Channel::Msg> ShmChannel::DoReceiveInChild() {
  // Children never observe a query deadline: the parent enforces it by
  // killing them from outside.
  return Receive(&header_->to_child_sem, &header_->to_child_type,
                 &header_->to_child_len, to_child_data_, nullptr);
}

Result<Channel::Msg> ShmChannel::DoReceiveInParent() {
  return Receive(&header_->to_parent_sem, &header_->to_parent_type,
                 &header_->to_parent_len, to_parent_data_, parent_deadline_);
}

}  // namespace ipc
}  // namespace jaguar
