#include "ipc/channel.h"

#include "ipc/ring_channel.h"
#include "ipc/shm_channel.h"
#include "obs/metrics.h"

namespace jaguar {
namespace ipc {

namespace {

/// Pipelined requests a child had to copy aside while awaiting a callback
/// reply — the (bounded, small) copy cost the ring pays to preserve FIFO
/// frame order under pipelining.
obs::Counter* StashCopies() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("ipc.ring.stash_copies");
  return c;
}

}  // namespace

const char* TransportName(Transport t) {
  return t == Transport::kRing ? "ring" : "message";
}

Result<Transport> ParseTransport(const std::string& name) {
  if (name == "ring") return Transport::kRing;
  if (name == "message") return Transport::kMessage;
  return InvalidArgument("unknown ipc transport '" + name +
                         "' (expected 'ring' or 'message')");
}

Result<std::unique_ptr<Channel>> Channel::Create(Transport transport,
                                                 size_t data_capacity) {
  if (transport == Transport::kRing) {
    JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<RingChannel> channel,
                            RingChannel::Create(data_capacity));
    return std::unique_ptr<Channel>(std::move(channel));
  }
  JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<ShmChannel> channel,
                          ShmChannel::Create(data_capacity));
  return std::unique_ptr<Channel>(std::move(channel));
}

Result<uint8_t*> Channel::PrepareToChild(size_t max_len) {
  to_child_scratch_.resize(max_len);
  return to_child_scratch_.data();
}

Status Channel::CommitToChild(MsgType type, size_t actual_len) {
  if (actual_len > to_child_scratch_.size()) {
    return Internal("ipc commit exceeds the prepared reservation");
  }
  return SendToChild(type, Slice(to_child_scratch_.data(), actual_len));
}

Result<uint8_t*> Channel::PrepareToParent(size_t max_len) {
  to_parent_scratch_.resize(max_len);
  return to_parent_scratch_.data();
}

Status Channel::CommitToParent(MsgType type, size_t actual_len) {
  if (actual_len > to_parent_scratch_.size()) {
    return Internal("ipc commit exceeds the prepared reservation");
  }
  return SendToParent(type, Slice(to_parent_scratch_.data(), actual_len));
}

Result<Channel::Msg> Channel::ReceiveInChild() {
  if (!child_stash_.empty()) {
    Msg msg = std::move(child_stash_.front());
    child_stash_.pop_front();
    return msg;
  }
  return DoReceiveInChild();
}

Result<Channel::View> Channel::ReceiveViewInChild() {
  if (!child_stash_.empty()) {
    child_view_type_ = child_stash_.front().first;
    child_view_buf_ = std::move(child_stash_.front().second);
    child_stash_.pop_front();
    return View(child_view_type_, Slice(child_view_buf_));
  }
  return DoReceiveViewInChild();
}

Result<Channel::View> Channel::DoReceiveViewInChild() {
  JAGUAR_ASSIGN_OR_RETURN(Msg msg, DoReceiveInChild());
  child_view_type_ = msg.first;
  child_view_buf_ = std::move(msg.second);
  return View(child_view_type_, Slice(child_view_buf_));
}

Result<Channel::View> Channel::DoReceiveViewInParent() {
  JAGUAR_ASSIGN_OR_RETURN(Msg msg, DoReceiveInParent());
  parent_view_type_ = msg.first;
  parent_view_buf_ = std::move(msg.second);
  return View(parent_view_type_, Slice(parent_view_buf_));
}

void Channel::StashInChild(MsgType type, std::vector<uint8_t> payload) {
  child_stash_.emplace_back(type, std::move(payload));
  StashCopies()->Add();
}

}  // namespace ipc
}  // namespace jaguar
