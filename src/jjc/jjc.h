#ifndef JAGUAR_JJC_JJC_H_
#define JAGUAR_JJC_JJC_H_

/// \file jjc.h
/// jjc — the JJava compiler. JJava is jaguar's Java-like UDF language: a
/// class with static methods over `int`, `byte[]` and `int[]`, compiled to
/// verified JagVM bytecode. It is what the paper's users would write instead
/// of Java:
///
/// ```java
/// class InvestVal {
///   static int run(byte[] history) {
///     int score = 0;
///     int i = 1;
///     while (i < history.length) {
///       if (history[i] > history[i - 1]) { score = score + 1; }
///       i = i + 1;
///     }
///     return (score * 10) / history.length;
///   }
/// }
/// ```
///
/// Language summary:
///  * types: `int` (64-bit), `byte[]`, `int[]`, `void` (returns only);
///    booleans are ints (0/1), conditions are C-like (nonzero = true)
///  * statements: declarations with initializers, assignment (including
///    `a[i] = e`), `if`/`else`, `while`, `for`, `return`, blocks, expression
///    statements
///  * expressions: integer literals (incl. hex), arithmetic `+ - * / %`,
///    comparisons, `&& || !` (short-circuit), unary `-`, array indexing,
///    `.length`, `new byte[n]` / `new int[n]`, calls `f(x)` (same class),
///    `Cls.f(x)` (same namespace), and native calls `Jaguar.*`
///  * native functions visible to UDFs (the server callback surface):
///      - `Jaguar.callback(kind, arg) -> int`
///      - `Jaguar.fetch(handle, offset, len) -> byte[]`

#include <map>
#include <string>

#include "common/status.h"
#include "jvm/class_file.h"

namespace jaguar {
namespace jjc {

struct CompileOptions {
  /// Native functions callable as `Jaguar.<name>(...)` etc., mapping the
  /// full dotted name to a JagVM signature string.
  std::map<std::string, std::string> native_decls = {
      {"Jaguar.callback", "(II)I"},
      {"Jaguar.fetch", "(III)B"},
  };
};

/// Compiles one JJava class to a class file. The output still goes through
/// the bytecode verifier at load time — the compiler is not trusted
/// (Section 2.4: safe languages must not depend on compiler trust; JagVM,
/// like Java, verifies the *bytecode*).
Result<jvm::ClassFile> Compile(const std::string& source,
                               const CompileOptions& options = {});

}  // namespace jjc
}  // namespace jaguar

#endif  // JAGUAR_JJC_JJC_H_
