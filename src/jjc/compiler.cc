#include <map>
#include <vector>

#include "common/string_util.h"
#include "jjc/jjc.h"
#include "jjc/parser.h"
#include "jvm/bytecode.h"

namespace jaguar {
namespace jjc {

namespace {

using jvm::CodeWriter;
using jvm::Op;

char TypeChar(JType t) {
  switch (t) {
    case JType::kInt: return 'I';
    case JType::kByteArray: return 'B';
    case JType::kIntArray: return 'A';
    case JType::kVoid: return 'V';
  }
  return '?';
}

std::string MethodSigString(const MethodDecl& m) {
  std::string sig = "(";
  for (const Param& p : m.params) sig += TypeChar(p.type);
  sig += ")";
  sig += TypeChar(m.return_type);
  return sig;
}

/// Label/fixup management layered on CodeWriter byte offsets.
class Labels {
 public:
  uint32_t New() {
    positions_.push_back(UINT32_MAX);
    return static_cast<uint32_t>(positions_.size() - 1);
  }
  void Bind(uint32_t label, uint32_t offset) { positions_[label] = offset; }
  void AddFixup(uint32_t label, uint32_t instr_offset) {
    fixups_.push_back({label, instr_offset});
  }
  Status Patch(CodeWriter* code) {
    for (const auto& [label, instr_offset] : fixups_) {
      if (positions_[label] == UINT32_MAX) {
        return Internal("jjc: unbound label");
      }
      code->PatchA(instr_offset, positions_[label]);
    }
    return Status::OK();
  }

 private:
  std::vector<uint32_t> positions_;
  std::vector<std::pair<uint32_t, uint32_t>> fixups_;
};

struct LocalVar {
  uint32_t slot;
  JType type;
};

class MethodCompiler {
 public:
  MethodCompiler(const ClassDecl& cls, const MethodDecl& method,
                 const std::map<std::string, std::string>& natives,
                 jvm::ClassFile* cf)
      : cls_(cls), method_(method), natives_(natives), cf_(cf) {}

  Result<jvm::MethodDef> Run() {
    PushScope();
    for (const Param& p : method_.params) {
      JAGUAR_RETURN_IF_ERROR(Declare(method_.line, p.name, p.type));
    }
    JAGUAR_RETURN_IF_ERROR(CompileStmt(*method_.body));
    if (method_.return_type == JType::kVoid) {
      code_.Emit(Op::kReturn);  // implicit return at end (may be unreachable)
    }
    JAGUAR_RETURN_IF_ERROR(labels_.Patch(&code_));

    jvm::MethodDef def;
    def.name_idx = cf_->InternUtf8(method_.name);
    def.sig_idx = cf_->InternUtf8(MethodSigString(method_));
    def.max_locals = static_cast<uint16_t>(next_slot_);
    def.max_stack = 0;  // verifier computes
    def.code = code_.Release();
    return def;
  }

 private:
  Status Error(int line, const std::string& msg) {
    return InvalidArgument(StringPrintf("line %d: in %s.%s: %s", line,
                                        cls_.name.c_str(),
                                        method_.name.c_str(), msg.c_str()));
  }

  // -- Scopes ---------------------------------------------------------------

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  Status Declare(int line, const std::string& name, JType type) {
    if (scopes_.back().count(name) != 0) {
      return Error(line, "duplicate variable '" + name + "'");
    }
    if (next_slot_ >= 256) return Error(line, "too many local variables");
    scopes_.back()[name] = {next_slot_++, type};
    return Status::OK();
  }

  Result<LocalVar> Lookup(int line, const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return Error(line, "undefined variable '" + name + "'");
  }

  // -- Statements -------------------------------------------------------------

  Status CompileStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        PushScope();
        for (const StmtPtr& inner : s.stmts) {
          JAGUAR_RETURN_IF_ERROR(CompileStmt(*inner));
        }
        PopScope();
        return Status::OK();
      }
      case StmtKind::kVarDecl: {
        JAGUAR_RETURN_IF_ERROR(Declare(s.line, s.name, s.decl_type));
        LocalVar var = Lookup(s.line, s.name).value();
        if (s.init != nullptr) {
          JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*s.init));
          if (t != s.decl_type) {
            return Error(s.line, StringPrintf("cannot initialize %s with %s",
                                              JTypeToString(s.decl_type),
                                              JTypeToString(t)));
          }
          code_.EmitA(t == JType::kInt ? Op::kIStore : Op::kAStore, var.slot);
        } else if (s.decl_type == JType::kInt) {
          // Java-style default: ints start at 0. Arrays must be assigned
          // before use (enforced by the bytecode verifier).
          code_.EmitImm(Op::kIConst, 0);
          code_.EmitA(Op::kIStore, var.slot);
        }
        return Status::OK();
      }
      case StmtKind::kAssign: {
        if (s.index_target == nullptr) {
          JAGUAR_ASSIGN_OR_RETURN(LocalVar var, Lookup(s.line, s.name));
          JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*s.value));
          if (t != var.type) {
            return Error(s.line,
                         StringPrintf("cannot assign %s to %s variable '%s'",
                                      JTypeToString(t),
                                      JTypeToString(var.type),
                                      s.name.c_str()));
          }
          code_.EmitA(t == JType::kInt ? Op::kIStore : Op::kAStore, var.slot);
          return Status::OK();
        }
        // a[i] = v: compile array, index, value; pick the store opcode.
        const Expr& target = *s.index_target;
        JAGUAR_ASSIGN_OR_RETURN(JType arr_t, CompileExpr(*target.a));
        if (arr_t != JType::kByteArray && arr_t != JType::kIntArray) {
          return Error(s.line, "indexed assignment target is not an array");
        }
        JAGUAR_ASSIGN_OR_RETURN(JType idx_t, CompileExpr(*target.b));
        if (idx_t != JType::kInt) return Error(s.line, "array index not int");
        JAGUAR_ASSIGN_OR_RETURN(JType val_t, CompileExpr(*s.value));
        if (val_t != JType::kInt) {
          return Error(s.line, "array element value must be int");
        }
        code_.Emit(arr_t == JType::kByteArray ? Op::kBAStore : Op::kIAStore);
        return Status::OK();
      }
      case StmtKind::kIf: {
        uint32_t else_label = labels_.New();
        JAGUAR_RETURN_IF_ERROR(
            EmitCondJump(*s.cond, else_label, /*jump_if_true=*/false));
        JAGUAR_RETURN_IF_ERROR(CompileStmt(*s.then_branch));
        if (s.else_branch != nullptr) {
          uint32_t end_label = labels_.New();
          labels_.AddFixup(end_label, code_.EmitA(Op::kGoto, 0));
          labels_.Bind(else_label, code_.size());
          JAGUAR_RETURN_IF_ERROR(CompileStmt(*s.else_branch));
          labels_.Bind(end_label, code_.size());
        } else {
          labels_.Bind(else_label, code_.size());
        }
        return Status::OK();
      }
      case StmtKind::kWhile: {
        // Rotated ("bottom-test") loop: guard once, then test at the bottom.
        // One conditional branch per iteration instead of a conditional plus
        // an unconditional jump — measurably faster under the JIT.
        uint32_t top = labels_.New();
        uint32_t end = labels_.New();
        JAGUAR_RETURN_IF_ERROR(
            EmitCondJump(*s.cond, end, /*jump_if_true=*/false));
        labels_.Bind(top, code_.size());
        JAGUAR_RETURN_IF_ERROR(CompileStmt(*s.body));
        JAGUAR_RETURN_IF_ERROR(
            EmitCondJump(*s.cond, top, /*jump_if_true=*/true));
        labels_.Bind(end, code_.size());
        return Status::OK();
      }
      case StmtKind::kFor: {
        PushScope();
        if (s.for_init != nullptr) {
          JAGUAR_RETURN_IF_ERROR(CompileStmt(*s.for_init));
        }
        // Rotated loop, as for kWhile. `for (;;)` keeps a plain backedge.
        uint32_t top = labels_.New();
        uint32_t end = labels_.New();
        if (s.cond != nullptr) {
          JAGUAR_RETURN_IF_ERROR(
              EmitCondJump(*s.cond, end, /*jump_if_true=*/false));
        }
        labels_.Bind(top, code_.size());
        JAGUAR_RETURN_IF_ERROR(CompileStmt(*s.body));
        if (s.for_step != nullptr) {
          JAGUAR_RETURN_IF_ERROR(CompileStmt(*s.for_step));
        }
        if (s.cond != nullptr) {
          JAGUAR_RETURN_IF_ERROR(
              EmitCondJump(*s.cond, top, /*jump_if_true=*/true));
        } else {
          labels_.AddFixup(top, code_.EmitA(Op::kGoto, 0));
        }
        labels_.Bind(end, code_.size());
        PopScope();
        return Status::OK();
      }
      case StmtKind::kReturn: {
        if (method_.return_type == JType::kVoid) {
          if (s.ret_value != nullptr) {
            return Error(s.line, "void method returns a value");
          }
          code_.Emit(Op::kReturn);
          return Status::OK();
        }
        if (s.ret_value == nullptr) {
          return Error(s.line, "missing return value");
        }
        JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*s.ret_value));
        if (t != method_.return_type) {
          return Error(s.line, StringPrintf("returning %s from a %s method",
                                            JTypeToString(t),
                                            JTypeToString(method_.return_type)));
        }
        code_.Emit(t == JType::kInt ? Op::kIReturn : Op::kAReturn);
        return Status::OK();
      }
      case StmtKind::kExprStmt: {
        JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*s.expr));
        if (t != JType::kVoid) code_.Emit(Op::kPop);
        return Status::OK();
      }
    }
    return Internal("unhandled statement kind");
  }

  // -- Conditions (fused compare-and-branch) -----------------------------------

  static bool IsComparisonOp(const std::string& op) {
    return op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
           op == ">=";
  }

  /// Emits code that jumps to `target` when `e` is true/false per
  /// `jump_if_true`, without materializing a 0/1 value where avoidable.
  Status EmitCondJump(const Expr& e, uint32_t target, bool jump_if_true) {
    if (e.kind == ExprKind::kUnary && e.op == "!") {
      return EmitCondJump(*e.a, target, !jump_if_true);
    }
    if (e.kind == ExprKind::kBinary && e.op == "&&") {
      if (jump_if_true) {
        uint32_t skip = labels_.New();
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.a, skip, false));
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.b, target, true));
        labels_.Bind(skip, code_.size());
      } else {
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.a, target, false));
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.b, target, false));
      }
      return Status::OK();
    }
    if (e.kind == ExprKind::kBinary && e.op == "||") {
      if (jump_if_true) {
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.a, target, true));
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.b, target, true));
      } else {
        uint32_t skip = labels_.New();
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.a, skip, true));
        JAGUAR_RETURN_IF_ERROR(EmitCondJump(*e.b, target, false));
        labels_.Bind(skip, code_.size());
      }
      return Status::OK();
    }
    if (e.kind == ExprKind::kBinary && IsComparisonOp(e.op)) {
      JAGUAR_ASSIGN_OR_RETURN(JType ta, CompileExpr(*e.a));
      JAGUAR_ASSIGN_OR_RETURN(JType tb, CompileExpr(*e.b));
      if (ta != JType::kInt || tb != JType::kInt) {
        return Error(e.line, "comparison operands must be int");
      }
      Op op;
      if (e.op == "==") op = jump_if_true ? Op::kIfICmpEq : Op::kIfICmpNe;
      else if (e.op == "!=") op = jump_if_true ? Op::kIfICmpNe : Op::kIfICmpEq;
      else if (e.op == "<") op = jump_if_true ? Op::kIfICmpLt : Op::kIfICmpGe;
      else if (e.op == "<=") op = jump_if_true ? Op::kIfICmpLe : Op::kIfICmpGt;
      else if (e.op == ">") op = jump_if_true ? Op::kIfICmpGt : Op::kIfICmpLe;
      else op = jump_if_true ? Op::kIfICmpGe : Op::kIfICmpLt;
      labels_.AddFixup(target, code_.EmitA(op, 0));
      return Status::OK();
    }
    // Generic: evaluate as int, compare against zero.
    JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(e));
    if (t != JType::kInt) return Error(e.line, "condition must be int");
    labels_.AddFixup(target,
                     code_.EmitA(jump_if_true ? Op::kIfNe : Op::kIfEq, 0));
    return Status::OK();
  }

  // -- Expressions -----------------------------------------------------------

  Result<JType> CompileExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        code_.EmitImm(Op::kIConst, e.int_value);
        return JType::kInt;
      case ExprKind::kVar: {
        JAGUAR_ASSIGN_OR_RETURN(LocalVar var, Lookup(e.line, e.name));
        code_.EmitA(var.type == JType::kInt ? Op::kILoad : Op::kALoad,
                    var.slot);
        return var.type;
      }
      case ExprKind::kUnary: {
        if (e.op == "-") {
          JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*e.a));
          if (t != JType::kInt) return Error(e.line, "cannot negate non-int");
          code_.Emit(Op::kINeg);
          return JType::kInt;
        }
        // "!" in value context: materialize 0/1.
        return MaterializeBool(e);
      }
      case ExprKind::kBinary: {
        if (IsComparisonOp(e.op) || e.op == "&&" || e.op == "||") {
          return MaterializeBool(e);
        }
        JAGUAR_ASSIGN_OR_RETURN(JType ta, CompileExpr(*e.a));
        JAGUAR_ASSIGN_OR_RETURN(JType tb, CompileExpr(*e.b));
        if (ta != JType::kInt || tb != JType::kInt) {
          return Error(e.line, StringPrintf("operator %s needs int operands",
                                            e.op.c_str()));
        }
        if (e.op == "+") code_.Emit(Op::kIAdd);
        else if (e.op == "-") code_.Emit(Op::kISub);
        else if (e.op == "*") code_.Emit(Op::kIMul);
        else if (e.op == "/") code_.Emit(Op::kIDiv);
        else if (e.op == "%") code_.Emit(Op::kIRem);
        else return Error(e.line, "unknown operator " + e.op);
        return JType::kInt;
      }
      case ExprKind::kIndex: {
        JAGUAR_ASSIGN_OR_RETURN(JType arr_t, CompileExpr(*e.a));
        if (arr_t != JType::kByteArray && arr_t != JType::kIntArray) {
          return Error(e.line, "indexing a non-array");
        }
        JAGUAR_ASSIGN_OR_RETURN(JType idx_t, CompileExpr(*e.b));
        if (idx_t != JType::kInt) return Error(e.line, "array index not int");
        code_.Emit(arr_t == JType::kByteArray ? Op::kBALoad : Op::kIALoad);
        return JType::kInt;
      }
      case ExprKind::kLength: {
        JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*e.a));
        if (t != JType::kByteArray && t != JType::kIntArray) {
          return Error(e.line, ".length on a non-array");
        }
        code_.Emit(Op::kArrayLen);
        return JType::kInt;
      }
      case ExprKind::kNewArray: {
        JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*e.a));
        if (t != JType::kInt) return Error(e.line, "array size must be int");
        code_.Emit(e.new_elem_type == JType::kByteArray ? Op::kNewBArray
                                                        : Op::kNewIArray);
        return e.new_elem_type;
      }
      case ExprKind::kCall:
        return CompileCall(e);
    }
    return Internal("unhandled expression kind");
  }

  /// Compiles a boolean-valued expression to an explicit 0/1.
  Result<JType> MaterializeBool(const Expr& e) {
    uint32_t true_label = labels_.New();
    uint32_t end_label = labels_.New();
    JAGUAR_RETURN_IF_ERROR(EmitCondJump(e, true_label, /*jump_if_true=*/true));
    code_.EmitImm(Op::kIConst, 0);
    labels_.AddFixup(end_label, code_.EmitA(Op::kGoto, 0));
    labels_.Bind(true_label, code_.size());
    code_.EmitImm(Op::kIConst, 1);
    labels_.Bind(end_label, code_.size());
    return JType::kInt;
  }

  Result<JType> CompileCall(const Expr& e) {
    // Resolve the callee signature.
    std::string sig_text;
    bool is_native = false;
    std::string full_name =
        e.qualifier.empty() ? e.name : e.qualifier + "." + e.name;
    if (!e.qualifier.empty()) {
      auto native = natives_.find(full_name);
      if (native != natives_.end()) {
        sig_text = native->second;
        is_native = true;
      } else if (e.qualifier != cls_.name) {
        return Error(e.line,
                     "unknown function '" + full_name +
                         "' (only Jaguar.* natives and same-class calls are "
                         "available to UDFs)");
      }
    }
    if (!is_native) {
      const MethodDecl* target = nullptr;
      for (const MethodDecl& m : cls_.methods) {
        if (m.name == e.name) {
          target = &m;
          break;
        }
      }
      if (target == nullptr) {
        return Error(e.line, "undefined function '" + e.name + "'");
      }
      sig_text = MethodSigString(*target);
    }
    JAGUAR_ASSIGN_OR_RETURN(jvm::Signature sig,
                            jvm::Signature::Parse(sig_text));
    if (e.args.size() != sig.params.size()) {
      return Error(e.line, StringPrintf("%s expects %zu arguments, got %zu",
                                        full_name.c_str(), sig.params.size(),
                                        e.args.size()));
    }
    for (size_t i = 0; i < e.args.size(); ++i) {
      JAGUAR_ASSIGN_OR_RETURN(JType t, CompileExpr(*e.args[i]));
      JType want = sig.params[i] == jvm::VType::kInt ? JType::kInt
                   : sig.params[i] == jvm::VType::kByteArray
                       ? JType::kByteArray
                       : JType::kIntArray;
      if (t != want) {
        return Error(e.line,
                     StringPrintf("argument %zu of %s: expected %s, got %s",
                                  i + 1, full_name.c_str(),
                                  JTypeToString(want), JTypeToString(t)));
      }
    }
    if (is_native) {
      code_.EmitA(Op::kCallNative, cf_->AddNativeRef(full_name, sig_text));
    } else {
      code_.EmitA(Op::kCall, cf_->AddMethodRef(cls_.name, e.name, sig_text));
    }
    if (sig.returns_void) return JType::kVoid;
    switch (sig.return_type) {
      case jvm::VType::kInt: return JType::kInt;
      case jvm::VType::kByteArray: return JType::kByteArray;
      case jvm::VType::kIntArray: return JType::kIntArray;
    }
    return JType::kInt;
  }

  const ClassDecl& cls_;
  const MethodDecl& method_;
  const std::map<std::string, std::string>& natives_;
  jvm::ClassFile* cf_;
  CodeWriter code_;
  Labels labels_;
  std::vector<std::map<std::string, LocalVar>> scopes_;
  uint32_t next_slot_ = 0;
};

}  // namespace

Result<jvm::ClassFile> Compile(const std::string& source,
                               const CompileOptions& options) {
  JAGUAR_ASSIGN_OR_RETURN(ClassDecl cls, ParseClass(source));
  jvm::ClassFile cf;
  cf.class_name = cls.name;
  for (const MethodDecl& m : cls.methods) {
    MethodCompiler compiler(cls, m, options.native_decls, &cf);
    JAGUAR_ASSIGN_OR_RETURN(jvm::MethodDef def, compiler.Run());
    cf.methods.push_back(std::move(def));
  }
  return cf;
}

}  // namespace jjc
}  // namespace jaguar
