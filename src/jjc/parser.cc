#include "jjc/parser.h"

#include "common/string_util.h"
#include "jjc/lexer.h"

namespace jaguar {
namespace jjc {

const char* JTypeToString(JType t) {
  switch (t) {
    case JType::kInt: return "int";
    case JType::kByteArray: return "byte[]";
    case JType::kIntArray: return "int[]";
    case JType::kVoid: return "void";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ClassDecl> Run() {
    ClassDecl cls;
    JAGUAR_RETURN_IF_ERROR(ExpectIdent("class"));
    JAGUAR_ASSIGN_OR_RETURN(cls.name, ExpectName("class name"));
    JAGUAR_RETURN_IF_ERROR(Expect("{"));
    while (!Peek().Is("}")) {
      JAGUAR_ASSIGN_OR_RETURN(MethodDecl m, ParseMethod());
      cls.methods.push_back(std::move(m));
    }
    JAGUAR_RETURN_IF_ERROR(Expect("}"));
    if (Peek().kind != Tok::kEnd) return Error("trailing input after class");
    return cls;
  }

 private:
  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return InvalidArgument(StringPrintf("line %d: %s (got '%s')", Peek().line,
                                        msg.c_str(), Peek().text.c_str()));
  }

  Status Expect(const char* punct) {
    if (!Peek().Is(punct)) return Error(std::string("expected '") + punct + "'");
    Advance();
    return Status::OK();
  }
  Status ExpectIdent(const char* name) {
    if (!Peek().IsIdent(name)) {
      return Error(std::string("expected '") + name + "'");
    }
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectName(const char* what) {
    if (Peek().kind != Tok::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  static bool IsKeyword(const std::string& s) {
    static const char* kw[] = {"class",  "static", "int",   "byte", "void",
                               "if",     "else",   "while", "for",  "return",
                               "new"};
    for (const char* k : kw) {
      if (s == k) return true;
    }
    return false;
  }

  /// Parses `int`, `byte[]`, `int[]`, `void`; `allow_void` for return types.
  Result<JType> ParseType(bool allow_void) {
    if (Peek().IsIdent("void")) {
      Advance();
      if (!allow_void) return Error("void is only allowed as a return type");
      return JType::kVoid;
    }
    if (Peek().IsIdent("byte")) {
      Advance();
      JAGUAR_RETURN_IF_ERROR(Expect("["));
      JAGUAR_RETURN_IF_ERROR(Expect("]"));
      return JType::kByteArray;
    }
    if (Peek().IsIdent("int")) {
      Advance();
      if (Peek().Is("[")) {
        Advance();
        JAGUAR_RETURN_IF_ERROR(Expect("]"));
        return JType::kIntArray;
      }
      return JType::kInt;
    }
    return Error("expected a type (int, byte[], int[])");
  }

  /// True if the upcoming tokens start a type (for declarations).
  bool PeekIsType() const {
    if (Peek().IsIdent("int")) return true;
    if (Peek().IsIdent("byte") && Peek(1).Is("[")) return true;
    return false;
  }

  Result<MethodDecl> ParseMethod() {
    MethodDecl m;
    m.line = Peek().line;
    JAGUAR_RETURN_IF_ERROR(ExpectIdent("static"));
    JAGUAR_ASSIGN_OR_RETURN(m.return_type, ParseType(/*allow_void=*/true));
    JAGUAR_ASSIGN_OR_RETURN(m.name, ExpectName("method name"));
    JAGUAR_RETURN_IF_ERROR(Expect("("));
    if (!Peek().Is(")")) {
      while (true) {
        Param p;
        JAGUAR_ASSIGN_OR_RETURN(p.type, ParseType(/*allow_void=*/false));
        JAGUAR_ASSIGN_OR_RETURN(p.name, ExpectName("parameter name"));
        m.params.push_back(std::move(p));
        if (Peek().Is(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    JAGUAR_RETURN_IF_ERROR(Expect(")"));
    JAGUAR_ASSIGN_OR_RETURN(m.body, ParseBlock());
    return m;
  }

  Result<StmtPtr> ParseBlock() {
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = Peek().line;
    JAGUAR_RETURN_IF_ERROR(Expect("{"));
    while (!Peek().Is("}")) {
      JAGUAR_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
      block->stmts.push_back(std::move(s));
    }
    JAGUAR_RETURN_IF_ERROR(Expect("}"));
    return StmtPtr(std::move(block));
  }

  Result<StmtPtr> ParseStmt() {
    const int line = Peek().line;
    if (Peek().Is("{")) return ParseBlock();

    if (Peek().IsIdent("if")) {
      Advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kIf;
      s->line = line;
      JAGUAR_RETURN_IF_ERROR(Expect("("));
      JAGUAR_ASSIGN_OR_RETURN(s->cond, ParseExpr());
      JAGUAR_RETURN_IF_ERROR(Expect(")"));
      JAGUAR_ASSIGN_OR_RETURN(s->then_branch, ParseStmt());
      if (Peek().IsIdent("else")) {
        Advance();
        JAGUAR_ASSIGN_OR_RETURN(s->else_branch, ParseStmt());
      }
      return StmtPtr(std::move(s));
    }
    if (Peek().IsIdent("while")) {
      Advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kWhile;
      s->line = line;
      JAGUAR_RETURN_IF_ERROR(Expect("("));
      JAGUAR_ASSIGN_OR_RETURN(s->cond, ParseExpr());
      JAGUAR_RETURN_IF_ERROR(Expect(")"));
      JAGUAR_ASSIGN_OR_RETURN(s->body, ParseStmt());
      return StmtPtr(std::move(s));
    }
    if (Peek().IsIdent("for")) {
      Advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kFor;
      s->line = line;
      JAGUAR_RETURN_IF_ERROR(Expect("("));
      if (!Peek().Is(";")) {
        JAGUAR_ASSIGN_OR_RETURN(s->for_init, ParseSimpleStmt());
      }
      JAGUAR_RETURN_IF_ERROR(Expect(";"));
      if (!Peek().Is(";")) {
        JAGUAR_ASSIGN_OR_RETURN(s->cond, ParseExpr());
      }
      JAGUAR_RETURN_IF_ERROR(Expect(";"));
      if (!Peek().Is(")")) {
        JAGUAR_ASSIGN_OR_RETURN(s->for_step, ParseSimpleStmt());
      }
      JAGUAR_RETURN_IF_ERROR(Expect(")"));
      JAGUAR_ASSIGN_OR_RETURN(s->body, ParseStmt());
      return StmtPtr(std::move(s));
    }
    if (Peek().IsIdent("return")) {
      Advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kReturn;
      s->line = line;
      if (!Peek().Is(";")) {
        JAGUAR_ASSIGN_OR_RETURN(s->ret_value, ParseExpr());
      }
      JAGUAR_RETURN_IF_ERROR(Expect(";"));
      return StmtPtr(std::move(s));
    }
    JAGUAR_ASSIGN_OR_RETURN(StmtPtr s, ParseSimpleStmt());
    JAGUAR_RETURN_IF_ERROR(Expect(";"));
    return s;
  }

  /// Declaration, assignment, or expression — without the trailing ';'
  /// (shared by plain statements and for-headers).
  Result<StmtPtr> ParseSimpleStmt() {
    const int line = Peek().line;
    if (PeekIsType()) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kVarDecl;
      s->line = line;
      JAGUAR_ASSIGN_OR_RETURN(s->decl_type, ParseType(/*allow_void=*/false));
      JAGUAR_ASSIGN_OR_RETURN(s->name, ExpectName("variable name"));
      if (IsKeyword(s->name)) return Error("variable name is a keyword");
      if (Peek().Is("=")) {
        Advance();
        JAGUAR_ASSIGN_OR_RETURN(s->init, ParseExpr());
      }
      return StmtPtr(std::move(s));
    }
    // Assignment vs expression statement: parse an expression; if '='
    // follows and the expression is assignable, treat as assignment.
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().Is("=")) {
      Advance();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kAssign;
      s->line = line;
      if (e->kind == ExprKind::kVar) {
        s->name = e->name;
      } else if (e->kind == ExprKind::kIndex) {
        s->index_target = std::move(e);
      } else {
        return Error("left side of '=' is not assignable");
      }
      JAGUAR_ASSIGN_OR_RETURN(s->value, ParseExpr());
      return StmtPtr(std::move(s));
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExprStmt;
    s->line = line;
    s->expr = std::move(e);
    return StmtPtr(std::move(s));
  }

  // -- Expressions (precedence climbing) --------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  ExprPtr MakeBinary(const std::string& op, ExprPtr a, ExprPtr b, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = op;
    e->a = std::move(a);
    e->b = std::move(b);
    e->line = line;
    return e;
  }

  Result<ExprPtr> ParseOr() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Peek().Is("||")) {
      int line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary("||", std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseEquality());
    while (Peek().Is("&&")) {
      int line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseEquality());
      left = MakeBinary("&&", std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseEquality() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseRelational());
    while (Peek().Is("==") || Peek().Is("!=")) {
      std::string op = Peek().text;
      int line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseRelational());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseRelational() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    while (Peek().Is("<") || Peek().Is("<=") || Peek().Is(">") ||
           Peek().Is(">=")) {
      std::string op = Peek().text;
      int line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().Is("+") || Peek().Is("-")) {
      std::string op = Peek().text;
      int line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().Is("*") || Peek().Is("/") || Peek().Is("%")) {
      std::string op = Peek().text;
      int line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right), line);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().Is("-") || Peek().Is("!")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = Peek().text;
      e->line = Advance().line;
      JAGUAR_ASSIGN_OR_RETURN(e->a, ParseUnary());
      return ExprPtr(std::move(e));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    JAGUAR_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (true) {
      if (Peek().Is("[")) {
        int line = Advance().line;
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::kIndex;
        idx->line = line;
        idx->a = std::move(e);
        JAGUAR_ASSIGN_OR_RETURN(idx->b, ParseExpr());
        JAGUAR_RETURN_IF_ERROR(Expect("]"));
        e = std::move(idx);
        continue;
      }
      if (Peek().Is(".") && Peek(1).IsIdent("length")) {
        int line = Advance().line;
        Advance();  // length
        auto len = std::make_unique<Expr>();
        len->kind = ExprKind::kLength;
        len->line = line;
        len->a = std::move(e);
        e = std::move(len);
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    const int line = tok.line;
    if (tok.kind == Tok::kInt) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIntLit;
      e->int_value = Advance().int_value;
      e->line = line;
      return ExprPtr(std::move(e));
    }
    if (tok.Is("(")) {
      Advance();
      JAGUAR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      JAGUAR_RETURN_IF_ERROR(Expect(")"));
      return e;
    }
    if (tok.IsIdent("new")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNewArray;
      e->line = line;
      if (Peek().IsIdent("byte")) {
        e->new_elem_type = JType::kByteArray;
      } else if (Peek().IsIdent("int")) {
        e->new_elem_type = JType::kIntArray;
      } else {
        return Error("expected 'byte' or 'int' after new");
      }
      Advance();
      JAGUAR_RETURN_IF_ERROR(Expect("["));
      JAGUAR_ASSIGN_OR_RETURN(e->a, ParseExpr());
      JAGUAR_RETURN_IF_ERROR(Expect("]"));
      return ExprPtr(std::move(e));
    }
    if (tok.kind == Tok::kIdent) {
      if (IsKeyword(tok.text)) return Error("unexpected keyword");
      std::string first = Advance().text;
      // Qualified call: Cls.method(...) — but `.length` is handled in
      // postfix, so only treat '.' + ident + '(' as a call.
      if (Peek().Is(".") && Peek(1).kind == Tok::kIdent &&
          !Peek(1).IsIdent("length") && Peek(2).Is("(")) {
        Advance();  // .
        std::string method = Advance().text;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->qualifier = std::move(first);
        e->name = std::move(method);
        e->line = line;
        JAGUAR_RETURN_IF_ERROR(ParseArgs(&e->args));
        return ExprPtr(std::move(e));
      }
      if (Peek().Is("(")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->name = std::move(first);
        e->line = line;
        JAGUAR_RETURN_IF_ERROR(ParseArgs(&e->args));
        return ExprPtr(std::move(e));
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kVar;
      e->name = std::move(first);
      e->line = line;
      return ExprPtr(std::move(e));
    }
    return Error("expected expression");
  }

  Status ParseArgs(std::vector<ExprPtr>* args) {
    JAGUAR_RETURN_IF_ERROR(Expect("("));
    if (!Peek().Is(")")) {
      while (true) {
        JAGUAR_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args->push_back(std::move(arg));
        if (Peek().Is(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    return Expect(")");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ClassDecl> ParseClass(const std::string& source) {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace jjc
}  // namespace jaguar
