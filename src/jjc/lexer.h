#ifndef JAGUAR_JJC_LEXER_H_
#define JAGUAR_JJC_LEXER_H_

/// \file lexer.h
/// Tokenizer for JJava. Tracks line numbers for diagnostics.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace jaguar {
namespace jjc {

enum class Tok : uint8_t {
  kIdent,
  kInt,      ///< Integer literal (decimal or 0x hex); value in `int_value`.
  kPunct,    ///< Operator or punctuation; spelling in `text`.
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  int64_t int_value = 0;
  int line = 0;

  bool Is(const char* punct) const;
  bool IsIdent(const char* name) const;
};

/// Tokenizes JJava source. Handles // and /* */ comments.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace jjc
}  // namespace jaguar

#endif  // JAGUAR_JJC_LEXER_H_
