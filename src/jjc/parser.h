#ifndef JAGUAR_JJC_PARSER_H_
#define JAGUAR_JJC_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for JJava.

#include <string>

#include "common/status.h"
#include "jjc/ast.h"

namespace jaguar {
namespace jjc {

/// Parses one JJava class declaration.
Result<ClassDecl> ParseClass(const std::string& source);

}  // namespace jjc
}  // namespace jaguar

#endif  // JAGUAR_JJC_PARSER_H_
