#ifndef JAGUAR_JJC_AST_H_
#define JAGUAR_JJC_AST_H_

/// \file ast.h
/// JJava abstract syntax trees.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jaguar {
namespace jjc {

/// JJava static types. Booleans are ints; kVoid appears only as a return
/// type.
enum class JType : uint8_t { kInt, kByteArray, kIntArray, kVoid };

const char* JTypeToString(JType t);

// -- Expressions -------------------------------------------------------------

enum class ExprKind : uint8_t {
  kIntLit,
  kVar,
  kUnary,    // - !
  kBinary,   // + - * / % == != < <= > >= && ||
  kIndex,    // a[i]
  kLength,   // a.length
  kNewArray, // new byte[n] / new int[n]
  kCall,     // f(...), Cls.f(...), Jaguar.*(...)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;

  int64_t int_value = 0;          // kIntLit
  std::string name;               // kVar; kCall: function name
  std::string qualifier;          // kCall: class / "Jaguar"
  std::string op;                 // kUnary / kBinary
  ExprPtr a;                      // operand / lhs / array / size
  ExprPtr b;                      // rhs / index
  std::vector<ExprPtr> args;      // kCall
  JType new_elem_type = JType::kInt;  // kNewArray

  /// Filled by the type checker.
  JType type = JType::kInt;
};

// -- Statements ----------------------------------------------------------------

enum class StmtKind : uint8_t {
  kVarDecl,
  kAssign,       // var = e;  or  a[i] = e;
  kIf,
  kWhile,
  kFor,
  kReturn,
  kExprStmt,
  kBlock,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kVarDecl
  JType decl_type = JType::kInt;
  std::string name;
  ExprPtr init;               // may be null (then zero/unset)

  // kAssign: target is either a variable (`name`) or an index expr.
  ExprPtr index_target;       // a[i] target (kIndex expr) or null
  ExprPtr value;

  // kIf / kWhile / kFor
  ExprPtr cond;               // null = for(;;)
  StmtPtr then_branch;
  StmtPtr else_branch;        // may be null
  StmtPtr body;
  StmtPtr for_init;           // may be null
  StmtPtr for_step;           // may be null (an assign/expr statement)

  // kReturn
  ExprPtr ret_value;          // null for `return;`

  // kExprStmt
  ExprPtr expr;

  // kBlock
  std::vector<StmtPtr> stmts;
};

// -- Declarations ----------------------------------------------------------------

struct Param {
  JType type;
  std::string name;
};

struct MethodDecl {
  std::string name;
  JType return_type;
  std::vector<Param> params;
  StmtPtr body;  // kBlock
  int line = 0;
};

struct ClassDecl {
  std::string name;
  std::vector<MethodDecl> methods;
};

}  // namespace jjc
}  // namespace jaguar

#endif  // JAGUAR_JJC_AST_H_
