#include "jjc/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace jaguar {
namespace jjc {

bool Token::Is(const char* punct) const {
  return kind == Tok::kPunct && text == punct;
}

bool Token::IsIdent(const char* name) const {
  return kind == Tok::kIdent && text == name;
}

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();
  auto peek = [&](size_t k) { return i + k < n ? source[i + k] : '\0'; };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) {
        return InvalidArgument(
            StringPrintf("line %d: unterminated block comment", line));
      }
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      tokens.push_back({Tok::kIdent, source.substr(start, i - start), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int base = 10;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        base = 16;
        i += 2;
      }
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])))) {
        ++i;
      }
      std::string text = source.substr(start, i - start);
      char* endp = nullptr;
      int64_t value = static_cast<int64_t>(
          std::strtoull(base == 16 ? text.c_str() + 2 : text.c_str(), &endp,
                        base));
      if (endp == nullptr || *endp != '\0') {
        return InvalidArgument(
            StringPrintf("line %d: bad integer literal '%s'", line,
                         text.c_str()));
      }
      tokens.push_back({Tok::kInt, text, value, line});
      continue;
    }
    static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "&&", "||"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        tokens.push_back({Tok::kPunct, op, 0, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOneChar = "{}()[];,.<>=+-*/%!";
    if (kOneChar.find(c) != std::string::npos) {
      tokens.push_back({Tok::kPunct, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    return InvalidArgument(
        StringPrintf("line %d: unexpected character '%c'", line, c));
  }
  tokens.push_back({Tok::kEnd, "", 0, line});
  return tokens;
}

}  // namespace jjc
}  // namespace jaguar
