#include "catalog/catalog.h"

#include "common/bytes.h"
#include "common/string_util.h"
#include "index/btree.h"

namespace jaguar {

namespace {
constexpr uint8_t kTableTag = 0;
constexpr uint8_t kUdfTag = 1;
constexpr uint8_t kIndexTag = 2;
}  // namespace

const char* UdfLanguageToString(UdfLanguage lang) {
  switch (lang) {
    case UdfLanguage::kNative: return "native";
    case UdfLanguage::kNativeChecked: return "native-checked";
    case UdfLanguage::kNativeIsolated: return "native-isolated";
    case UdfLanguage::kJJava: return "jjava";
    case UdfLanguage::kNativeSfi: return "native-sfi";
    case UdfLanguage::kJJavaIsolated: return "jjava-isolated";
  }
  return "?";
}

Result<std::unique_ptr<Catalog>> Catalog::Open(StorageEngine* engine) {
  auto catalog = std::unique_ptr<Catalog>(new Catalog(engine));
  JAGUAR_ASSIGN_OR_RETURN(PageId root, engine->GetCatalogRoot());
  if (root == kInvalidPageId) {
    JAGUAR_ASSIGN_OR_RETURN(root, TableHeap::Create(engine));
    JAGUAR_RETURN_IF_ERROR(engine->SetCatalogRoot(root));
    catalog->root_ = root;
  } else {
    JAGUAR_RETURN_IF_ERROR(catalog->Load(root));
  }
  return catalog;
}

Status Catalog::Load(PageId root) {
  root_ = root;
  TableHeap heap(engine_, root);
  TableHeap::Iterator it = heap.Scan();
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    BufferReader r(Slice(rec->second));
    JAGUAR_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    if (tag == kTableTag) {
      TableInfo info;
      JAGUAR_ASSIGN_OR_RETURN(info.name, r.ReadString());
      JAGUAR_ASSIGN_OR_RETURN(info.schema, Schema::ReadFrom(&r));
      JAGUAR_ASSIGN_OR_RETURN(info.first_page, r.ReadU32());
      tables_[ToLower(info.name)] = std::move(info);
    } else if (tag == kUdfTag) {
      UdfInfo info;
      JAGUAR_ASSIGN_OR_RETURN(info.name, r.ReadString());
      JAGUAR_ASSIGN_OR_RETURN(uint8_t lang, r.ReadU8());
      if (lang > static_cast<uint8_t>(UdfLanguage::kJJavaIsolated)) {
        return Corruption("bad UDF language tag");
      }
      info.language = static_cast<UdfLanguage>(lang);
      JAGUAR_ASSIGN_OR_RETURN(uint8_t ret, r.ReadU8());
      info.return_type = static_cast<TypeId>(ret);
      JAGUAR_ASSIGN_OR_RETURN(uint32_t nargs, r.ReadU32());
      if (nargs > 256) return Corruption("implausible UDF arity");
      for (uint32_t i = 0; i < nargs; ++i) {
        JAGUAR_ASSIGN_OR_RETURN(uint8_t t, r.ReadU8());
        info.arg_types.push_back(static_cast<TypeId>(t));
      }
      JAGUAR_ASSIGN_OR_RETURN(info.impl_name, r.ReadString());
      JAGUAR_ASSIGN_OR_RETURN(Slice payload, r.ReadLengthPrefixed());
      info.payload = payload.ToVector();
      udfs_[ToLower(info.name)] = std::move(info);
    } else if (tag == kIndexTag) {
      IndexInfo info;
      JAGUAR_ASSIGN_OR_RETURN(info.name, r.ReadString());
      JAGUAR_ASSIGN_OR_RETURN(info.table, r.ReadString());
      JAGUAR_ASSIGN_OR_RETURN(info.column, r.ReadString());
      JAGUAR_ASSIGN_OR_RETURN(info.root, r.ReadU32());
      indexes_[ToLower(info.name)] = std::move(info);
    } else {
      return Corruption("unknown catalog record tag");
    }
  }
  // Index records may precede their table's record in heap order, so column
  // positions resolve in a second pass once every table is loaded.
  for (auto& [key, info] : indexes_) {
    auto tit = tables_.find(ToLower(info.table));
    if (tit == tables_.end()) {
      return Corruption("index '" + info.name + "' references missing table");
    }
    JAGUAR_ASSIGN_OR_RETURN(info.column_index,
                            tit->second.schema.IndexOf(info.column));
  }
  return Status::OK();
}

Status Catalog::Persist() {
  // Rewrite: build a fully populated fresh heap, switch the root pointer to
  // it, and only then drop the old heap. The root switch is one logged
  // header write, so crash recovery sees either the complete old catalog or
  // the complete new one — never a root pointing at a half-built heap.
  const PageId old_root = root_;
  JAGUAR_ASSIGN_OR_RETURN(PageId new_root, TableHeap::Create(engine_));
  TableHeap heap(engine_, new_root);
  for (const auto& [key, info] : tables_) {
    BufferWriter w;
    w.PutU8(kTableTag);
    w.PutString(info.name);
    info.schema.WriteTo(&w);
    w.PutU32(info.first_page);
    JAGUAR_RETURN_IF_ERROR(heap.Insert(w.AsSlice()).status());
  }
  for (const auto& [key, info] : udfs_) {
    BufferWriter w;
    w.PutU8(kUdfTag);
    w.PutString(info.name);
    w.PutU8(static_cast<uint8_t>(info.language));
    w.PutU8(static_cast<uint8_t>(info.return_type));
    w.PutU32(static_cast<uint32_t>(info.arg_types.size()));
    for (TypeId t : info.arg_types) w.PutU8(static_cast<uint8_t>(t));
    w.PutString(info.impl_name);
    w.PutLengthPrefixed(Slice(info.payload));
    JAGUAR_RETURN_IF_ERROR(heap.Insert(w.AsSlice()).status());
  }
  for (const auto& [key, info] : indexes_) {
    BufferWriter w;
    w.PutU8(kIndexTag);
    w.PutString(info.name);
    w.PutString(info.table);
    w.PutString(info.column);
    w.PutU32(info.root);
    JAGUAR_RETURN_IF_ERROR(heap.Insert(w.AsSlice()).status());
  }
  JAGUAR_RETURN_IF_ERROR(engine_->SetCatalogRoot(new_root));
  root_ = new_root;
  if (old_root != kInvalidPageId) {
    TableHeap old_heap(engine_, old_root);
    JAGUAR_RETURN_IF_ERROR(old_heap.DropAll());
  }
  return Status::OK();
}

Status Catalog::CreateTable(const std::string& name, const Schema& schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key) != 0) {
    return AlreadyExists("table '" + name + "' already exists");
  }
  if (schema.num_columns() == 0) {
    return InvalidArgument("table must have at least one column");
  }
  JAGUAR_ASSIGN_OR_RETURN(PageId first, TableHeap::Create(engine_));
  tables_[key] = TableInfo{name, schema, first};
  return Persist();
}

Result<const TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return NotFound("no table named '" + name + "'");
  return &it->second;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return NotFound("no table named '" + name + "'");
  // Indexes on a dropped table go with it.
  const std::string table_key = ToLower(name);
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (ToLower(iit->second.table) == table_key) {
      BTree tree(engine_, iit->second.root);
      JAGUAR_RETURN_IF_ERROR(tree.DropAll());
      iit = indexes_.erase(iit);
    } else {
      ++iit;
    }
  }
  TableHeap heap(engine_, it->second.first_page);
  JAGUAR_RETURN_IF_ERROR(heap.DropAll());
  tables_.erase(it);
  return Persist();
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, info] : tables_) names.push_back(info.name);
  return names;
}

Status Catalog::CreateIndex(const std::string& name, const std::string& table,
                            const std::string& column) {
  const std::string key = ToLower(name);
  if (indexes_.count(key) != 0) {
    return AlreadyExists("index '" + name + "' already exists");
  }
  auto tit = tables_.find(ToLower(table));
  if (tit == tables_.end()) return NotFound("no table named '" + table + "'");
  JAGUAR_ASSIGN_OR_RETURN(size_t col, tit->second.schema.IndexOf(column));
  const TypeId type = tit->second.schema.column(col).type;
  if (type != TypeId::kInt && type != TypeId::kString) {
    return InvalidArgument(
        std::string("only INT and STRING columns can be indexed; '") +
        column + "' is " + TypeIdToString(type));
  }
  JAGUAR_ASSIGN_OR_RETURN(PageId root, BTree::Create(engine_));
  IndexInfo info;
  info.name = name;
  info.table = tit->second.name;
  info.column = tit->second.schema.column(col).name;
  info.column_index = col;
  info.root = root;
  indexes_[key] = std::move(info);
  return Persist();
}

Result<const IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(ToLower(name));
  if (it == indexes_.end()) return NotFound("no index named '" + name + "'");
  return &it->second;
}

Status Catalog::DropIndex(const std::string& name) {
  auto it = indexes_.find(ToLower(name));
  if (it == indexes_.end()) return NotFound("no index named '" + name + "'");
  BTree tree(engine_, it->second.root);
  JAGUAR_RETURN_IF_ERROR(tree.DropAll());
  indexes_.erase(it);
  return Persist();
}

std::vector<const IndexInfo*> Catalog::IndexesForTable(
    const std::string& table) const {
  const std::string key = ToLower(table);
  std::vector<const IndexInfo*> out;
  for (const auto& [name, info] : indexes_) {
    if (ToLower(info.table) == key) out.push_back(&info);
  }
  return out;
}

std::vector<std::string> Catalog::ListIndexes() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [key, info] : indexes_) names.push_back(info.name);
  return names;
}

Status Catalog::RegisterUdf(UdfInfo info) {
  const std::string key = ToLower(info.name);
  if (udfs_.count(key) != 0) {
    return AlreadyExists("UDF '" + info.name + "' already exists");
  }
  udfs_[key] = std::move(info);
  return Persist();
}

Result<const UdfInfo*> Catalog::GetUdf(const std::string& name) const {
  auto it = udfs_.find(ToLower(name));
  if (it == udfs_.end()) return NotFound("no UDF named '" + name + "'");
  return &it->second;
}

Status Catalog::DropUdf(const std::string& name) {
  auto it = udfs_.find(ToLower(name));
  if (it == udfs_.end()) return NotFound("no UDF named '" + name + "'");
  udfs_.erase(it);
  return Persist();
}

std::vector<std::string> Catalog::ListUdfs() const {
  std::vector<std::string> names;
  names.reserve(udfs_.size());
  for (const auto& [key, info] : udfs_) names.push_back(info.name);
  return names;
}

}  // namespace jaguar
