#ifndef JAGUAR_CATALOG_CATALOG_H_
#define JAGUAR_CATALOG_CATALOG_H_

/// \file catalog.h
/// The system catalog: tables (name, schema, heap root) and registered UDFs
/// (name, language, signature, implementation payload).
///
/// UDF registration is first-class catalog state because the paper's whole
/// premise is that *clients* add functions at runtime (Section 6.4): a
/// JJava UDF arrives as verified bytecode in `payload` and must survive
/// server restarts, exactly like a table.
///
/// Persistence: the catalog serializes into its own TableHeap (one record per
/// entry) whose first page is stored in the storage-engine header. Catalog
/// mutations are rare, so each mutation rewrites the catalog heap.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/storage_engine.h"
#include "storage/table_heap.h"
#include "types/schema.h"

namespace jaguar {

/// How a registered UDF is implemented / which design runs it (Table 1).
enum class UdfLanguage : uint8_t {
  kNative = 0,         ///< Design 1: C++ in the server process.
  kNativeChecked = 1,  ///< Design 1 + explicit bounds checks (Section 5.4).
  kNativeIsolated = 2, ///< Design 2: C++ in a separate process.
  kJJava = 3,          ///< Design 3: JJava bytecode in the in-process JagVM.
  kNativeSfi = 4,      ///< Design 1 + software fault isolation (Section 2.3).
  kJJavaIsolated = 5,  ///< Design 4: JJava bytecode in a JagVM hosted by a
                       ///< separate executor process. The paper extrapolates
                       ///< this cell ("a combination of Design 2 and Design
                       ///< 3"); jaguar implements it.
};

const char* UdfLanguageToString(UdfLanguage lang);

/// Catalog entry for one table.
struct TableInfo {
  std::string name;
  Schema schema;
  PageId first_page = kInvalidPageId;
};

/// Catalog entry for one secondary index: a B+-tree over a single column.
/// The root page id is stable for the life of the index (root splits happen
/// in place), so it is recorded once at CREATE INDEX.
struct IndexInfo {
  std::string name;
  std::string table;       ///< Table the index belongs to (original case).
  std::string column;      ///< Indexed column name (original case).
  size_t column_index = 0; ///< Resolved against the table schema at load.
  PageId root = kInvalidPageId;
};

/// Catalog entry for one registered UDF.
struct UdfInfo {
  std::string name;
  UdfLanguage language = UdfLanguage::kNative;
  TypeId return_type = TypeId::kInt;
  std::vector<TypeId> arg_types;
  /// Native UDFs: the symbol name in the native registry. JJava UDFs: the
  /// "Class.method" entry point within `payload`.
  std::string impl_name;
  /// JJava UDFs: the class-file bytes (verified at registration time).
  std::vector<uint8_t> payload;
};

class Catalog {
 public:
  /// Loads the catalog from `engine`'s catalog root, creating an empty one on
  /// first open.
  static Result<std::unique_ptr<Catalog>> Open(StorageEngine* engine);

  // -- Tables ---------------------------------------------------------------

  /// Creates a table and its heap. Fails with AlreadyExists on name clash.
  Status CreateTable(const std::string& name, const Schema& schema);

  /// \return The table's catalog entry (owned by the catalog).
  Result<const TableInfo*> GetTable(const std::string& name) const;

  /// Drops the table, freeing all of its pages — and every index built on
  /// it, freeing their pages too.
  Status DropTable(const std::string& name);

  /// \return Names of all tables, sorted.
  std::vector<std::string> ListTables() const;

  // -- Indexes --------------------------------------------------------------

  /// Creates an (empty) B+-tree index named `name` on `table`(`column`).
  /// The column must be INT or STRING. The caller backfills existing rows.
  Status CreateIndex(const std::string& name, const std::string& table,
                     const std::string& column);

  Result<const IndexInfo*> GetIndex(const std::string& name) const;

  /// Drops the index, freeing its pages.
  Status DropIndex(const std::string& name);

  /// All indexes on `table`, ordered by index name.
  std::vector<const IndexInfo*> IndexesForTable(const std::string& table) const;

  /// \return Names of all indexes, sorted.
  std::vector<std::string> ListIndexes() const;

  // -- UDFs -----------------------------------------------------------------

  /// Registers (or fails on duplicate) a UDF.
  Status RegisterUdf(UdfInfo info);

  Result<const UdfInfo*> GetUdf(const std::string& name) const;

  Status DropUdf(const std::string& name);

  std::vector<std::string> ListUdfs() const;

 private:
  explicit Catalog(StorageEngine* engine) : engine_(engine) {}

  Status Load(PageId root);
  Status Persist();

  StorageEngine* engine_;
  PageId root_ = kInvalidPageId;
  // Keys are lower-cased names (SQL identifiers are case-insensitive).
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, UdfInfo> udfs_;
  std::map<std::string, IndexInfo> indexes_;
};

}  // namespace jaguar

#endif  // JAGUAR_CATALOG_CATALOG_H_
