#include "storage/slotted_page.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/string_util.h"

namespace jaguar {

uint16_t SlottedPage::GetU16(uint32_t off) const {
  return static_cast<uint16_t>(data_[off] | (data_[off + 1] << 8));
}
void SlottedPage::PutU16(uint32_t off, uint16_t v) {
  data_[off] = static_cast<uint8_t>(v);
  data_[off + 1] = static_cast<uint8_t>(v >> 8);
}
uint32_t SlottedPage::GetU32(uint32_t off) const {
  return static_cast<uint32_t>(data_[off]) |
         (static_cast<uint32_t>(data_[off + 1]) << 8) |
         (static_cast<uint32_t>(data_[off + 2]) << 16) |
         (static_cast<uint32_t>(data_[off + 3]) << 24);
}
void SlottedPage::PutU32(uint32_t off, uint32_t v) {
  data_[off] = static_cast<uint8_t>(v);
  data_[off + 1] = static_cast<uint8_t>(v >> 8);
  data_[off + 2] = static_cast<uint8_t>(v >> 16);
  data_[off + 3] = static_cast<uint8_t>(v >> 24);
}

void SlottedPage::Init() {
  // Leave the LSN footer alone: it belongs to the WAL layer, and a re-Init of
  // a recycled page must not roll its LSN backwards.
  std::memset(data_, 0, kPageLsnOffset);
  PutU32(0, kInvalidPageId);  // next_page_id
  set_num_slots(0);
  set_cell_start(static_cast<uint16_t>(kPageLsnOffset));
}

PageId SlottedPage::next_page_id() const { return GetU32(0); }
void SlottedPage::set_next_page_id(PageId id) { PutU32(0, id); }

uint16_t SlottedPage::num_slots() const { return GetU16(4); }

uint32_t SlottedPage::FreeSpace() const {
  uint32_t slot_end = kHeaderSize + num_slots() * kSlotSize;
  uint32_t start = cell_start();
  return start > slot_end ? start - slot_end : 0;
}

uint32_t SlottedPage::MaxRecordSize() {
  return kPageLsnOffset - kHeaderSize - kSlotSize;
}

Result<uint16_t> SlottedPage::Insert(Slice record) {
  if (record.size() > MaxRecordSize()) {
    return InvalidArgument("record larger than page capacity");
  }
  const uint32_t size = static_cast<uint32_t>(record.size());

  // Prefer reusing a tombstone slot (costs 0 new slot bytes).
  uint16_t slot = num_slots();
  bool reused = false;
  for (uint16_t i = 0; i < num_slots(); ++i) {
    if (GetU16(SlotOffsetPos(i)) == 0) {
      slot = i;
      reused = true;
      break;
    }
  }

  uint32_t needed = size + (reused ? 0 : kSlotSize);
  if (FreeSpace() < needed) {
    // Deleted cells may still hold space; compaction can create room.
    Compact();
    if (FreeSpace() < needed) {
      return ResourceExhausted("page full");
    }
  }

  uint16_t new_start = static_cast<uint16_t>(cell_start() - size);
  if (size > 0) std::memcpy(data_ + new_start, record.data(), size);
  set_cell_start(new_start);
  // Cells with size 0 need a non-zero offset marker so the slot is not a
  // tombstone; point them at the current cell_start.
  PutU16(SlotOffsetPos(slot), size > 0 ? new_start : cell_start());
  PutU16(SlotOffsetPos(slot) + 2, static_cast<uint16_t>(size));
  if (!reused) set_num_slots(static_cast<uint16_t>(num_slots() + 1));
  return slot;
}

Result<Slice> SlottedPage::Get(uint16_t slot) const {
  if (slot >= num_slots()) return NotFound("slot out of range");
  uint16_t off = GetU16(SlotOffsetPos(slot));
  if (off == 0) return NotFound("slot deleted");
  uint16_t size = GetU16(SlotOffsetPos(slot) + 2);
  return Slice(data_ + off, size);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= num_slots()) return NotFound("slot out of range");
  if (GetU16(SlotOffsetPos(slot)) == 0) return NotFound("slot already deleted");
  PutU16(SlotOffsetPos(slot), 0);
  PutU16(SlotOffsetPos(slot) + 2, 0);
  return Status::OK();
}

void SlottedPage::Compact() {
  struct LiveCell {
    uint16_t slot;
    uint16_t off;
    uint16_t size;
  };
  std::vector<LiveCell> cells;
  for (uint16_t i = 0; i < num_slots(); ++i) {
    uint16_t off = GetU16(SlotOffsetPos(i));
    if (off == 0) continue;
    cells.push_back({i, off, GetU16(SlotOffsetPos(i) + 2)});
  }
  // Move cells to the end of the page, highest original offset first, so
  // memmove never overwrites bytes it has yet to copy.
  std::sort(cells.begin(), cells.end(),
            [](const LiveCell& a, const LiveCell& b) { return a.off > b.off; });
  uint16_t write_end = static_cast<uint16_t>(kPageLsnOffset);
  for (const LiveCell& c : cells) {
    uint16_t new_off = static_cast<uint16_t>(write_end - c.size);
    if (c.size > 0) std::memmove(data_ + new_off, data_ + c.off, c.size);
    PutU16(SlotOffsetPos(c.slot), c.size > 0 ? new_off : write_end);
    write_end = new_off;
  }
  set_cell_start(write_end);
}

Status SlottedPage::CheckInvariants() const {
  uint32_t slot_end = kHeaderSize + num_slots() * kSlotSize;
  if (slot_end > kPageSize) return Corruption("slot array past page end");
  if (cell_start() < slot_end) return Corruption("cells overlap slot array");
  std::vector<std::pair<uint16_t, uint16_t>> ranges;
  for (uint16_t i = 0; i < num_slots(); ++i) {
    uint16_t off = GetU16(SlotOffsetPos(i));
    if (off == 0) continue;
    uint16_t size = GetU16(SlotOffsetPos(i) + 2);
    if (off < cell_start()) return Corruption("cell before cell_start");
    if (static_cast<uint32_t>(off) + size > kPageLsnOffset) {
      return Corruption("cell past the lsn footer");
    }
    if (size > 0) ranges.emplace_back(off, static_cast<uint16_t>(off + size));
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].first < ranges[i - 1].second) {
      return Corruption(StringPrintf("overlapping cells at offset %u",
                                     ranges[i].first));
    }
  }
  return Status::OK();
}

}  // namespace jaguar
