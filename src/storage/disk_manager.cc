#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/string_util.h"
#include "wal/crash_point.h"

namespace jaguar {

namespace {
std::string Errno(const char* op) {
  return StringPrintf("%s failed: %s", op, std::strerror(errno));
}
}  // namespace

DiskManager::~DiskManager() { Close().ok(); }

Status DiskManager::Open(const std::string& path) {
  if (is_open()) return Internal("disk manager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return IoError(Errno("open"));
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return IoError(Errno("lseek"));
  if (size % kPageSize != 0) {
    return Corruption(StringPrintf("file size %lld is not page aligned",
                                   static_cast<long long>(size)));
  }
  num_pages_.store(static_cast<uint32_t>(size / kPageSize),
                   std::memory_order_release);
  return Status::OK();
}

Status DiskManager::Close() {
  if (!is_open()) return Status::OK();
  Status s = Sync();
  ::close(fd_);
  fd_ = -1;
  return s;
}

Status DiskManager::ReadPage(PageId id, uint8_t* out) {
  if (!is_open()) return Internal("disk manager not open");
  if (id >= num_pages()) {
    return InvalidArgument(StringPrintf("read of unallocated page %u", id));
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n < 0) return IoError(Errno("pread"));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return IoError(StringPrintf("short read of page %u (%zd bytes)", id, n));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const uint8_t* data) {
  if (!is_open()) return Internal("disk manager not open");
  if (id >= num_pages()) {
    return InvalidArgument(StringPrintf("write of unallocated page %u", id));
  }
  JAGUAR_CRASH_POINT("storage.before_page_write");
#ifndef JAGUAR_DISABLE_CRASH_POINTS
  if (wal::CrashPoints::IsArmed("storage.mid_page_write")) {
    // Simulate a torn page: the kernel persisted only the first half of the
    // 8 KiB write before power was lost. Only the leading half is written, so
    // the LSN footer (in the trailing half) still describes the *old* page
    // contents and redo will repair the page from the log.
    ::pwrite(fd_, data, kPageSize / 2, static_cast<off_t>(id) * kPageSize);
    wal::CrashPoints::Die("storage.mid_page_write");
  }
#endif
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) return IoError(Errno("pwrite"));
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePageLocked() {
  std::vector<uint8_t> zero(kPageSize, 0);
  PageId id = num_pages_.load(std::memory_order_relaxed);
  ssize_t n = ::pwrite(fd_, zero.data(), kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) return IoError(Errno("pwrite"));
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Result<PageId> DiskManager::AllocatePage() {
  if (!is_open()) return Internal("disk manager not open");
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  return AllocatePageLocked();
}

Status DiskManager::EnsureSize(uint32_t num_pages) {
  if (!is_open()) return Internal("disk manager not open");
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  while (num_pages_.load(std::memory_order_relaxed) < num_pages) {
    JAGUAR_RETURN_IF_ERROR(AllocatePageLocked().status());
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (!is_open()) return Status::OK();
  if (::fsync(fd_) != 0) return IoError(Errno("fsync"));
  return Status::OK();
}

}  // namespace jaguar
