#ifndef JAGUAR_STORAGE_DISK_MANAGER_H_
#define JAGUAR_STORAGE_DISK_MANAGER_H_

/// \file disk_manager.h
/// Raw page-granularity file I/O. One database == one file; pages are
/// addressed by index. Allocation policy (free lists) lives a layer up in
/// `StorageEngine`; the disk manager only extends the file and moves bytes.
///
/// Thread safety: reads and writes of distinct (or even the same) pages may
/// run concurrently — they are single pread/pwrite calls. Allocation
/// (`AllocatePage`/`EnsureSize`) is serialized internally so the buffer
/// pool's background threads can extend the file safely.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace jaguar {

/// Implements `wal::PageDevice` so the recovery redo pass can patch pages
/// directly, bypassing the buffer pool (which does not exist yet at recovery
/// time).
class DiskManager : public wal::PageDevice {
 public:
  DiskManager() = default;
  ~DiskManager() override;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) the database file at `path`.
  Status Open(const std::string& path);
  /// Flushes and closes the file. Idempotent.
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Number of pages currently in the file.
  uint32_t num_pages() const override {
    return num_pages_.load(std::memory_order_acquire);
  }

  /// Reads page `id` into `out` (which must hold kPageSize bytes).
  Status ReadPage(PageId id, uint8_t* out) override;
  /// Writes kPageSize bytes from `data` to page `id`. The page must already
  /// be allocated (id < num_pages()).
  Status WritePage(PageId id, const uint8_t* data) override;

  /// Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Grows the file with zeroed pages until it holds `num_pages` pages.
  /// No-op when the file is already at least that large.
  Status EnsureSize(uint32_t num_pages) override;

  /// fsync()s the file.
  Status Sync() override;

  /// Cumulative I/O counters (used by tests and the calibration bench).
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  /// Extends the file by one zeroed page; caller holds `alloc_mutex_`.
  Result<PageId> AllocatePageLocked();

  int fd_ = -1;
  std::string path_;
  std::mutex alloc_mutex_;
  std::atomic<uint32_t> num_pages_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_DISK_MANAGER_H_
