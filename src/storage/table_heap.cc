#include "storage/table_heap.h"

#include <cstring>

#include "common/bytes.h"
#include "common/string_util.h"
#include "storage/page_edit.h"
#include "storage/slotted_page.h"

namespace jaguar {

namespace {
constexpr uint8_t kInlineTag = 0x00;
constexpr uint8_t kOverflowTag = 0x01;
constexpr uint32_t kOverflowHeader = 8;  // next (u32) + chunk_len (u32)
// Chunks stop short of the page's LSN footer (page.h).
constexpr uint32_t kOverflowCapacity = kPageLsnOffset - kOverflowHeader;
// Slot payload for an overflow record: tag + total_len + first_page.
constexpr uint32_t kOverflowStubSize = 1 + 8 + 4;

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
}  // namespace

TableHeap::TableHeap(StorageEngine* engine, PageId first_page)
    : engine_(engine), first_page_(first_page), last_page_hint_(first_page) {}

Result<PageId> TableHeap::Create(StorageEngine* engine) {
  JAGUAR_ASSIGN_OR_RETURN(PageId id, engine->AllocatePage());
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, engine->buffer_pool()->FetchPage(id));
  WalPageEdit edit(engine->wal(), &page);
  SlottedPage sp(page.data());
  sp.Init();
  JAGUAR_RETURN_IF_ERROR(edit.Commit());
  return id;
}

Result<RecordId> TableHeap::Insert(Slice record) {
  // Decide inline vs overflow. Inline records need 1 tag byte of headroom.
  const bool overflow = record.size() + 1 > SlottedPage::MaxRecordSize();

  BufferWriter stub;
  if (overflow) {
    JAGUAR_ASSIGN_OR_RETURN(PageId first, WriteOverflow(record));
    stub.PutU8(kOverflowTag);
    stub.PutU64(record.size());
    stub.PutU32(first);
  } else {
    stub.PutU8(kInlineTag);
    stub.PutBytes(record);
  }
  Slice payload = stub.AsSlice();

  // Append into the last page of the chain, extending the chain when full.
  // The record carrying the new tuple is the *last* one the statement logs
  // (chain links and page formats precede it), so a replay that stops early
  // yields a well-formed heap without the tuple — never a torn tuple.
  PageId pid = last_page_hint_;
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                            engine_->buffer_pool()->FetchPage(pid));
    WalPageEdit edit(engine_->wal(), &page);
    SlottedPage sp(page.data());
    Result<uint16_t> slot = sp.Insert(payload);
    if (slot.ok()) {
      JAGUAR_RETURN_IF_ERROR(edit.Commit());
      last_page_hint_ = pid;
      return RecordId{pid, slot.value()};
    }
    if (slot.status().code() != StatusCode::kResourceExhausted) {
      // The size check rejects before touching the page; nothing to log.
      return slot.status();
    }
    PageId next = sp.next_page_id();
    if (next == kInvalidPageId) {
      JAGUAR_ASSIGN_OR_RETURN(PageId fresh, engine_->AllocatePage());
      {
        JAGUAR_ASSIGN_OR_RETURN(PageGuard fresh_page,
                                engine_->buffer_pool()->FetchPage(fresh));
        WalPageEdit fresh_edit(engine_->wal(), &fresh_page);
        SlottedPage fresh_sp(fresh_page.data());
        fresh_sp.Init();
        JAGUAR_RETURN_IF_ERROR(fresh_edit.Commit());
      }
      sp.set_next_page_id(fresh);
      next = fresh;
    }
    // Commit even though the insert failed: the attempt may have compacted
    // the page, and an unlogged mutation would desync replay's diff base.
    JAGUAR_RETURN_IF_ERROR(edit.Commit());
    pid = next;
  }
}

Result<std::vector<uint8_t>> TableHeap::Get(RecordId rid) {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                          engine_->buffer_pool()->FetchPage(rid.page_id));
  SlottedPage sp(page.data());
  JAGUAR_ASSIGN_OR_RETURN(Slice payload, sp.Get(rid.slot));
  if (payload.empty()) return Corruption("empty record payload");
  if (payload[0] == kInlineTag) {
    return payload.SubSlice(1, payload.size() - 1).ToVector();
  }
  if (payload[0] != kOverflowTag || payload.size() != kOverflowStubSize) {
    return Corruption("bad record tag");
  }
  uint64_t total_len = LoadU64(payload.data() + 1);
  PageId first = LoadU32(payload.data() + 9);
  page.Release();  // don't hold the pin while walking the overflow chain
  return ReadOverflow(total_len, first);
}

Result<PageId> TableHeap::WriteOverflow(Slice payload) {
  PageId first = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t off = 0;
  while (off < payload.size()) {
    size_t chunk = std::min<size_t>(kOverflowCapacity, payload.size() - off);
    JAGUAR_ASSIGN_OR_RETURN(PageId pid, engine_->AllocatePage());
    {
      JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                              engine_->buffer_pool()->FetchPage(pid));
      WalPageEdit edit(engine_->wal(), &page);
      StoreU32(page.data(), kInvalidPageId);
      StoreU32(page.data() + 4, static_cast<uint32_t>(chunk));
      std::memcpy(page.data() + kOverflowHeader, payload.data() + off, chunk);
      JAGUAR_RETURN_IF_ERROR(edit.Commit());
    }
    if (prev != kInvalidPageId) {
      JAGUAR_ASSIGN_OR_RETURN(PageGuard prev_page,
                              engine_->buffer_pool()->FetchPage(prev));
      WalPageEdit edit(engine_->wal(), &prev_page);
      StoreU32(prev_page.data(), pid);
      JAGUAR_RETURN_IF_ERROR(edit.Commit());
    } else {
      first = pid;
    }
    prev = pid;
    off += chunk;
  }
  if (first == kInvalidPageId) {
    // Zero-length payloads still get one (empty) overflow page so the stub
    // has a valid chain to point at.
    JAGUAR_ASSIGN_OR_RETURN(first, engine_->AllocatePage());
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                            engine_->buffer_pool()->FetchPage(first));
    WalPageEdit edit(engine_->wal(), &page);
    StoreU32(page.data(), kInvalidPageId);
    StoreU32(page.data() + 4, 0);
    JAGUAR_RETURN_IF_ERROR(edit.Commit());
  }
  return first;
}

Result<std::vector<uint8_t>> TableHeap::ReadOverflow(uint64_t total_len,
                                                     PageId first) {
  std::vector<uint8_t> out;
  out.reserve(total_len);
  PageId pid = first;
  while (pid != kInvalidPageId) {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                            engine_->buffer_pool()->FetchPage(pid));
    uint32_t chunk = LoadU32(page.data() + 4);
    if (chunk > kOverflowCapacity) return Corruption("bad overflow chunk size");
    out.insert(out.end(), page.data() + kOverflowHeader,
               page.data() + kOverflowHeader + chunk);
    pid = LoadU32(page.data());
    if (out.size() > total_len) return Corruption("overflow chain too long");
  }
  if (out.size() != total_len) return Corruption("overflow chain truncated");
  return out;
}

Status TableHeap::FreeOverflow(PageId first) {
  PageId pid = first;
  while (pid != kInvalidPageId) {
    PageId next;
    {
      JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                              engine_->buffer_pool()->FetchPage(pid));
      next = LoadU32(page.data());
    }
    JAGUAR_RETURN_IF_ERROR(engine_->FreePage(pid));
    pid = next;
  }
  return Status::OK();
}

Status TableHeap::Delete(RecordId rid) {
  PageId overflow_first = kInvalidPageId;
  {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                            engine_->buffer_pool()->FetchPage(rid.page_id));
    WalPageEdit edit(engine_->wal(), &page);
    SlottedPage sp(page.data());
    JAGUAR_ASSIGN_OR_RETURN(Slice payload, sp.Get(rid.slot));
    if (!payload.empty() && payload[0] == kOverflowTag &&
        payload.size() == kOverflowStubSize) {
      overflow_first = LoadU32(payload.data() + 9);
    }
    JAGUAR_RETURN_IF_ERROR(sp.Delete(rid.slot));
    JAGUAR_RETURN_IF_ERROR(edit.Commit());
  }
  if (overflow_first != kInvalidPageId) {
    JAGUAR_RETURN_IF_ERROR(FreeOverflow(overflow_first));
  }
  return Status::OK();
}

Status TableHeap::DropAll() {
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    PageId next;
    std::vector<PageId> overflows;
    {
      JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                              engine_->buffer_pool()->FetchPage(pid));
      SlottedPage sp(page.data());
      next = sp.next_page_id();
      for (uint16_t s = 0; s < sp.num_slots(); ++s) {
        Result<Slice> payload = sp.Get(s);
        if (!payload.ok()) continue;
        if (!payload->empty() && (*payload)[0] == kOverflowTag &&
            payload->size() == kOverflowStubSize) {
          overflows.push_back(LoadU32(payload->data() + 9));
        }
      }
    }
    for (PageId of : overflows) {
      JAGUAR_RETURN_IF_ERROR(FreeOverflow(of));
    }
    JAGUAR_RETURN_IF_ERROR(engine_->FreePage(pid));
    pid = next;
  }
  first_page_ = kInvalidPageId;
  return Status::OK();
}

Result<uint64_t> TableHeap::CountRecords() {
  uint64_t n = 0;
  Iterator it = Scan();
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
    if (!rec.has_value()) break;
    ++n;
  }
  return n;
}

Result<std::optional<std::pair<RecordId, std::vector<uint8_t>>>>
TableHeap::Iterator::Next() {
  while (page_ != kInvalidPageId) {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                            heap_->engine_->buffer_pool()->FetchPage(page_));
    SlottedPage sp(page.data());
    if (slot_ == 0 && !single_page_) {
      // Entering a fresh chain page: hint the pool about the next one so a
      // sequential scan overlaps its reads with record processing. Morsel
      // scans hint from their precomputed page list instead (parallel.cc).
      heap_->engine_->buffer_pool()->Prefetch(sp.next_page_id());
    }
    while (slot_ < sp.num_slots()) {
      uint16_t s = slot_++;
      Result<Slice> payload = sp.Get(s);
      if (!payload.ok()) continue;  // tombstone
      RecordId rid{page_, s};
      page.Release();
      JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap_->Get(rid));
      return std::make_optional(std::make_pair(rid, std::move(bytes)));
    }
    page_ = single_page_ ? kInvalidPageId : sp.next_page_id();
    slot_ = 0;
  }
  return std::optional<std::pair<RecordId, std::vector<uint8_t>>>();
}

Result<std::vector<PageId>> TableHeap::ListPages() {
  std::vector<PageId> pages;
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    pages.push_back(pid);
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                            engine_->buffer_pool()->FetchPage(pid));
    SlottedPage sp(page.data());
    pid = sp.next_page_id();
    if (pages.size() > (1u << 24)) return Corruption("page chain cycle");
  }
  return pages;
}

}  // namespace jaguar
