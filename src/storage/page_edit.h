#ifndef JAGUAR_STORAGE_PAGE_EDIT_H_
#define JAGUAR_STORAGE_PAGE_EDIT_H_

/// \file page_edit.h
/// RAII bracket that makes an in-place page mutation WAL-logged.
///
/// Usage at every mutation site:
///
///     WalPageEdit edit(wal, &page);   // snapshots the page's before-image
///     ... mutate page.data() ...
///     JAGUAR_RETURN_IF_ERROR(edit.Commit());
///
/// Commit() diffs the current contents against the snapshot, appends one
/// physical after-image record covering the changed byte range, stamps the
/// record's LSN into the page footer and marks the page dirty. Nothing is
/// appended (and the page is not dirtied) when the mutation turned out to be
/// a no-op. With a null log manager the edit degrades to a plain MarkDirty,
/// which keeps WAL-disabled configurations on the old code path.
///
/// One rule follows from diff-based logging: every mutation of a cached page
/// must go through an edit that gets committed — an unlogged mutation would
/// make later diffs land on a different base during replay. Call sites that
/// mutate and then bail (e.g. a slotted-page insert that compacts and still
/// fails) must still commit the edit.

#include <memory>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace jaguar {

class WalPageEdit {
 public:
  /// Snapshots `page`'s current contents. `wal` may be null (WAL disabled).
  /// The guard must stay valid and pinned until Commit().
  WalPageEdit(wal::LogManager* wal, PageGuard* page);

  WalPageEdit(const WalPageEdit&) = delete;
  WalPageEdit& operator=(const WalPageEdit&) = delete;

  /// Logs the delta (if any) and marks the page dirty. Must be called at
  /// most once; an edit abandoned without Commit() logs nothing, which is
  /// only correct if the caller also made no changes.
  Status Commit();

 private:
  wal::LogManager* wal_;
  PageGuard* page_;
  std::unique_ptr<uint8_t[]> before_;
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_PAGE_EDIT_H_
