#ifndef JAGUAR_STORAGE_TABLE_HEAP_H_
#define JAGUAR_STORAGE_TABLE_HEAP_H_

/// \file table_heap.h
/// An unordered collection of variable-length records stored in a chain of
/// slotted pages, with transparent **overflow chains** for records larger
/// than a page — the paper's `Rel10000` relation stores ~10 KB byte arrays
/// per tuple, larger than our 8 KB pages.
///
/// Record encoding inside a slot:
///   * inline:   [0x00] [payload...]
///   * overflow: [0x01] [u64 total_len] [u32 first_overflow_page]
/// Overflow pages: [u32 next_page] [u32 chunk_len] [chunk bytes...].

#include <cstdint>
#include <optional>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/storage_engine.h"

namespace jaguar {

class TableHeap {
 public:
  /// Attaches to an existing heap whose first page is `first_page`.
  TableHeap(StorageEngine* engine, PageId first_page);

  /// Allocates and formats a new, empty heap; returns its first page id.
  static Result<PageId> Create(StorageEngine* engine);

  PageId first_page() const { return first_page_; }
  StorageEngine* engine() const { return engine_; }

  /// Appends a record; returns its id.
  Result<RecordId> Insert(Slice record);

  /// Reads the full record bytes (reassembling overflow chains).
  Result<std::vector<uint8_t>> Get(RecordId rid);

  /// Deletes a record, freeing any overflow pages.
  Status Delete(RecordId rid);

  /// Frees every page belonging to this heap (data, chain and overflow).
  /// The TableHeap must not be used afterwards.
  Status DropAll();

  /// Number of live records (scans; test/debug use).
  Result<uint64_t> CountRecords();

  /// Forward scan over live records.
  class Iterator {
   public:
    /// \return The next record, or std::nullopt at end of heap.
    Result<std::optional<std::pair<RecordId, std::vector<uint8_t>>>> Next();

   private:
    friend class TableHeap;
    Iterator(TableHeap* heap, PageId page, bool single_page = false)
        : heap_(heap), page_(page), single_page_(single_page) {}
    TableHeap* heap_;
    PageId page_;
    uint16_t slot_ = 0;
    bool single_page_;  ///< Stop at the end of `page` (morsel scans).
  };

  Iterator Scan() { return Iterator(this, first_page_); }

  /// Scan bounded to one chain page (overflow chains of its records are
  /// still followed) — the unit a parallel morsel worker processes.
  Iterator ScanPage(PageId page) {
    return Iterator(this, page, /*single_page=*/true);
  }

  /// The heap's chain pages in scan order — the morsel source for parallel
  /// scans. Overflow pages are not listed (records reassemble them on read).
  Result<std::vector<PageId>> ListPages();

 private:
  Result<std::vector<uint8_t>> ReadOverflow(uint64_t total_len, PageId first);
  Result<PageId> WriteOverflow(Slice payload);
  Status FreeOverflow(PageId first);

  StorageEngine* engine_;
  PageId first_page_;
  PageId last_page_hint_;  // cached append target; validated on use
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_TABLE_HEAP_H_
