#include "storage/page_edit.h"

#include <cstring>

namespace jaguar {

WalPageEdit::WalPageEdit(wal::LogManager* wal, PageGuard* page)
    : wal_(wal), page_(page) {
  if (wal_ != nullptr) {
    before_ = std::make_unique<uint8_t[]>(kPageLsnOffset);
    std::memcpy(before_.get(), page_->data(), kPageLsnOffset);
  }
}

Status WalPageEdit::Commit() {
  if (wal_ == nullptr) {
    page_->MarkDirty();
    return Status::OK();
  }
  // Find the changed byte range (the footer is excluded: it belongs to the
  // log, not the edit). Most edits touch one slot + a few header bytes, so
  // one [lo, hi) range keeps records small without per-byte bookkeeping.
  const uint8_t* now = page_->data();
  uint32_t lo = 0;
  while (lo < kPageLsnOffset && now[lo] == before_[lo]) ++lo;
  if (lo == kPageLsnOffset) return Status::OK();  // no-op edit
  uint32_t hi = kPageLsnOffset;
  while (hi > lo && now[hi - 1] == before_[hi - 1]) --hi;

  wal::WalRecord rec;
  rec.type = wal::WalRecordType::kPageWrite;
  rec.page_id = page_->id();
  rec.offset = lo;
  rec.data.assign(now + lo, now + hi);
  JAGUAR_ASSIGN_OR_RETURN(wal::Lsn lsn, wal_->Append(std::move(rec)));
  SetPageLsn(page_->data(), lsn);
  page_->MarkDirty();
  // Reset the snapshot so an (incorrect but conceivable) second Commit()
  // would log nothing instead of double-logging.
  std::memcpy(before_.get(), now, kPageLsnOffset);
  return Status::OK();
}

}  // namespace jaguar
