#include "storage/storage_engine.h"

#include <cstring>

#include "common/string_util.h"
#include "storage/page_edit.h"
#include "wal/crash_point.h"

namespace jaguar {

namespace {
// Header page field offsets (all u32, little endian).
constexpr uint32_t kOffMagic = 0;
constexpr uint32_t kOffVersion = 4;
constexpr uint32_t kOffFreeListHead = 8;
constexpr uint32_t kOffCatalogRoot = 12;

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
}  // namespace

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& path, size_t pool_pages,
    const wal::WalOptions& wal_options, const BufferPoolConfig& pool_config) {
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine());
  JAGUAR_RETURN_IF_ERROR(engine->disk_.Open(path));

  if (wal_options.enabled) {
    engine->wal_ = std::make_unique<wal::LogManager>(wal_options);
    JAGUAR_RETURN_IF_ERROR(engine->wal_->Open(path + ".wal"));
    if (engine->disk_.num_pages() == 0) {
      // Brand-new data file. Any log content is a stale leftover (the data
      // file was removed, its log was not) — reset rather than replay it
      // into the fresh file.
      JAGUAR_RETURN_IF_ERROR(engine->wal_->Checkpoint(0));
    } else {
      // Redo pass. Writes through the raw disk manager (no pool exists yet),
      // so the pool below starts from fully recovered pages.
      JAGUAR_RETURN_IF_ERROR(
          engine->wal_->Recover(&engine->disk_, &engine->recovery_stats_));
    }
  }

  engine->pool_ = std::make_unique<BufferPool>(
      &engine->disk_, pool_pages, engine->wal_.get(), pool_config);
  if (engine->disk_.num_pages() == 0) {
    JAGUAR_RETURN_IF_ERROR(engine->InitHeader());
  } else {
    JAGUAR_ASSIGN_OR_RETURN(uint32_t magic, engine->ReadHeaderField(kOffMagic));
    if (magic != kMagic) {
      return Corruption("not a jaguar database file: " + path);
    }
    JAGUAR_ASSIGN_OR_RETURN(uint32_t version,
                            engine->ReadHeaderField(kOffVersion));
    if (version != kVersion) {
      return NotSupported(StringPrintf("database version %u (want %u)",
                                       version, kVersion));
    }
  }
  if (engine->wal_ != nullptr) {
    // Start from a clean slate: everything recovered (or freshly
    // initialized) goes to disk and the log truncates, so the next crash
    // only replays from here.
    JAGUAR_RETURN_IF_ERROR(engine->Checkpoint());
  }
  return engine;
}

Status StorageEngine::InitHeader() {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  if (page.id() != 0) return Internal("header page is not page 0");
  if (wal_ != nullptr) {
    wal::WalRecord rec;
    rec.type = wal::WalRecordType::kPageAlloc;
    rec.page_id = page.id();
    JAGUAR_RETURN_IF_ERROR(wal_->Append(std::move(rec)).status());
  }
  WalPageEdit edit(wal_.get(), &page);
  StoreU32(page.data() + kOffMagic, kMagic);
  StoreU32(page.data() + kOffVersion, kVersion);
  StoreU32(page.data() + kOffFreeListHead, kInvalidPageId);
  StoreU32(page.data() + kOffCatalogRoot, kInvalidPageId);
  return edit.Commit();
}

Result<uint32_t> StorageEngine::ReadHeaderField(uint32_t offset) {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(0));
  return LoadU32(page.data() + offset);
}

Status StorageEngine::WriteHeaderField(uint32_t offset, uint32_t value) {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(0));
  WalPageEdit edit(wal_.get(), &page);
  StoreU32(page.data() + offset, value);
  return edit.Commit();
}

Result<PageId> StorageEngine::AllocatePage() {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t head, ReadHeaderField(kOffFreeListHead));
  if (head == kInvalidPageId) {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
    if (wal_ != nullptr) {
      // The fresh page is all zeros (LSN 0); only the file growth needs a
      // record, so replay can re-extend a shorter file.
      wal::WalRecord rec;
      rec.type = wal::WalRecordType::kPageAlloc;
      rec.page_id = page.id();
      JAGUAR_RETURN_IF_ERROR(wal_->Append(std::move(rec)).status());
    }
    return page.id();
  }
  // Pop the free list: the first 4 bytes of a free page hold the next link.
  // The header is updated *before* the popped page is scrubbed: if replay
  // stops between the two records, the page is merely leaked. The reverse
  // order would leave a zeroed page at the head of the free list, and the
  // next pop would follow its bogus "next" link of 0.
  PageId next;
  {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(head));
    next = LoadU32(page.data());
  }
  JAGUAR_RETURN_IF_ERROR(WriteHeaderField(kOffFreeListHead, next));
  {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(head));
    WalPageEdit edit(wal_.get(), &page);
    std::memset(page.data(), 0, kPageLsnOffset);
    JAGUAR_RETURN_IF_ERROR(edit.Commit());
  }
  return head;
}

Status StorageEngine::FreePage(PageId id) {
  if (id == 0 || id == kInvalidPageId || id >= disk_.num_pages()) {
    return InvalidArgument(StringPrintf("cannot free page %u", id));
  }
  JAGUAR_ASSIGN_OR_RETURN(uint32_t head, ReadHeaderField(kOffFreeListHead));
  {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(id));
    WalPageEdit edit(wal_.get(), &page);
    std::memset(page.data(), 0, kPageLsnOffset);
    StoreU32(page.data(), head);
    JAGUAR_RETURN_IF_ERROR(edit.Commit());
  }
  if (wal_ != nullptr) {
    wal::WalRecord rec;
    rec.type = wal::WalRecordType::kPageFree;
    rec.page_id = id;
    JAGUAR_RETURN_IF_ERROR(wal_->Append(std::move(rec)).status());
  }
  // Crash here and replay sees the page linked to the old head but not yet
  // installed as head — an unreferenced page, i.e. a leak, not corruption.
  JAGUAR_CRASH_POINT("storage.after_page_write_before_header");
  return WriteHeaderField(kOffFreeListHead, id);
}

Result<PageId> StorageEngine::GetCatalogRoot() {
  return ReadHeaderField(kOffCatalogRoot);
}

Status StorageEngine::SetCatalogRoot(PageId id) {
  JAGUAR_RETURN_IF_ERROR(WriteHeaderField(kOffCatalogRoot, id));
  if (wal_ != nullptr) {
    // Marker record for log tooling; the physical root update was logged by
    // WriteHeaderField above.
    wal::WalRecord rec;
    rec.type = wal::WalRecordType::kCatalogRoot;
    rec.page_id = 0;
    rec.aux = id;
    JAGUAR_RETURN_IF_ERROR(wal_->Append(std::move(rec)).status());
  }
  return Status::OK();
}

Result<uint32_t> StorageEngine::CountFreePages() {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t head, ReadHeaderField(kOffFreeListHead));
  uint32_t n = 0;
  while (head != kInvalidPageId) {
    if (++n > disk_.num_pages()) return Corruption("free list cycle");
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(head));
    head = LoadU32(page.data());
  }
  return n;
}

Status StorageEngine::WalCommit() {
  if (wal_ == nullptr) return Status::OK();
  JAGUAR_RETURN_IF_ERROR(wal_->Commit());
  if (wal_->LogBytes() >= wal_->options().checkpoint_bytes) {
    return Checkpoint();
  }
  return Status::OK();
}

Status StorageEngine::Checkpoint() {
  if (wal_ == nullptr) return pool_->FlushAll();
  // FlushAll enforces the WAL rule per page (log durable up to each page's
  // LSN) and fsyncs the data file; only then is it safe to truncate the log.
  JAGUAR_RETURN_IF_ERROR(pool_->FlushAll());
  JAGUAR_CRASH_POINT("wal.mid_checkpoint");
  return wal_->Checkpoint(disk_.num_pages());
}

Status StorageEngine::Close() {
  if (pool_ != nullptr) {
    JAGUAR_RETURN_IF_ERROR(Checkpoint());
  }
  if (wal_ != nullptr) {
    JAGUAR_RETURN_IF_ERROR(wal_->Close());
  }
  return disk_.Close();
}

}  // namespace jaguar
