#include "storage/storage_engine.h"

#include <cstring>

#include "common/string_util.h"

namespace jaguar {

namespace {
// Header page field offsets (all u32, little endian).
constexpr uint32_t kOffMagic = 0;
constexpr uint32_t kOffVersion = 4;
constexpr uint32_t kOffFreeListHead = 8;
constexpr uint32_t kOffCatalogRoot = 12;

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
}  // namespace

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& path, size_t pool_pages) {
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine());
  JAGUAR_RETURN_IF_ERROR(engine->disk_.Open(path));
  engine->pool_ = std::make_unique<BufferPool>(&engine->disk_, pool_pages);
  if (engine->disk_.num_pages() == 0) {
    JAGUAR_RETURN_IF_ERROR(engine->InitHeader());
  } else {
    JAGUAR_ASSIGN_OR_RETURN(uint32_t magic, engine->ReadHeaderField(kOffMagic));
    if (magic != kMagic) {
      return Corruption("not a jaguar database file: " + path);
    }
    JAGUAR_ASSIGN_OR_RETURN(uint32_t version,
                            engine->ReadHeaderField(kOffVersion));
    if (version != kVersion) {
      return NotSupported(StringPrintf("database version %u (want %u)",
                                       version, kVersion));
    }
  }
  return engine;
}

Status StorageEngine::InitHeader() {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  if (page.id() != 0) return Internal("header page is not page 0");
  StoreU32(page.data() + kOffMagic, kMagic);
  StoreU32(page.data() + kOffVersion, kVersion);
  StoreU32(page.data() + kOffFreeListHead, kInvalidPageId);
  StoreU32(page.data() + kOffCatalogRoot, kInvalidPageId);
  page.MarkDirty();
  return Status::OK();
}

Result<uint32_t> StorageEngine::ReadHeaderField(uint32_t offset) {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(0));
  return LoadU32(page.data() + offset);
}

Status StorageEngine::WriteHeaderField(uint32_t offset, uint32_t value) {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(0));
  StoreU32(page.data() + offset, value);
  page.MarkDirty();
  return Status::OK();
}

Result<PageId> StorageEngine::AllocatePage() {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t head, ReadHeaderField(kOffFreeListHead));
  if (head == kInvalidPageId) {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
    return page.id();
  }
  // Pop the free list: the first 4 bytes of a free page hold the next link.
  PageId next;
  {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(head));
    next = LoadU32(page.data());
    std::memset(page.data(), 0, kPageSize);
    page.MarkDirty();
  }
  JAGUAR_RETURN_IF_ERROR(WriteHeaderField(kOffFreeListHead, next));
  return head;
}

Status StorageEngine::FreePage(PageId id) {
  if (id == 0 || id == kInvalidPageId || id >= disk_.num_pages()) {
    return InvalidArgument(StringPrintf("cannot free page %u", id));
  }
  JAGUAR_ASSIGN_OR_RETURN(uint32_t head, ReadHeaderField(kOffFreeListHead));
  {
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(id));
    std::memset(page.data(), 0, kPageSize);
    StoreU32(page.data(), head);
    page.MarkDirty();
  }
  return WriteHeaderField(kOffFreeListHead, id);
}

Result<PageId> StorageEngine::GetCatalogRoot() {
  return ReadHeaderField(kOffCatalogRoot);
}

Status StorageEngine::SetCatalogRoot(PageId id) {
  return WriteHeaderField(kOffCatalogRoot, id);
}

Result<uint32_t> StorageEngine::CountFreePages() {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t head, ReadHeaderField(kOffFreeListHead));
  uint32_t n = 0;
  while (head != kInvalidPageId) {
    if (++n > disk_.num_pages()) return Corruption("free list cycle");
    JAGUAR_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(head));
    head = LoadU32(page.data());
  }
  return n;
}

Status StorageEngine::Close() {
  if (pool_ != nullptr) {
    JAGUAR_RETURN_IF_ERROR(pool_->FlushAll());
  }
  return disk_.Close();
}

}  // namespace jaguar
