#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {

namespace {

obs::Counter* PoolCounter(const char* which) {
  return obs::MetricsRegistry::Global()->GetCounter(
      std::string("storage.bufferpool.") + which);
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Readahead hint queue cap: beyond this, hints are dropped rather than
/// letting a huge scan queue prefetches it will outrun anyway.
constexpr size_t kReadaheadQueueCap = 256;

}  // namespace

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) pool_->MarkFrameDirty(frame_, id_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, id_, /*dirty=*/false);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity,
                       wal::LogManager* wal, const BufferPoolConfig& config)
    : disk_(disk), wal_(wal), capacity_(capacity), config_(config) {
  JAGUAR_CHECK(capacity > 0);
  size_t want = config.shards != 0
                    ? config.shards
                    : std::min<size_t>(
                          16, std::max<size_t>(1, config.workers_hint) * 2);
  shards_count_ = NextPow2(want);
  // More shards than frames would let a tiny pool strand capacity behind
  // shard-local bookkeeping; tests run pools as small as two frames.
  while (shards_count_ > 1 && shards_count_ > capacity) shards_count_ /= 2;
  shard_mask_ = shards_count_ - 1;

  frames_ = std::make_unique<Frame[]>(capacity);
  shards_ = std::make_unique<Shard[]>(shards_count_);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(capacity - 1 - i);
  }

  if (config_.readahead_pages > 0) {
    ra_thread_ = std::thread([this] { ReadaheadLoop(); });
  }
  if (config_.bg_writer) {
    bg_thread_ = std::thread([this] { BgWriterLoop(); });
  }
}

BufferPool::~BufferPool() {
  {
    std::lock_guard<std::mutex> lk(ra_mutex_);
    stop_threads_ = true;
  }
  ra_cv_.notify_all();
  if (ra_thread_.joinable()) ra_thread_.join();
  if (bg_thread_.joinable()) bg_thread_.join();
  Status s = FlushAll();
  if (!s.ok()) {
    JAGUAR_LOG(kWarning) << "buffer pool shutdown flush failed, dirty pages "
                            "may be lost: "
                         << s.ToString();
  }
}

void BufferPool::CountIoWait() {
  io_waits_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* waits = PoolCounter("io_waits");
  waits->Add();
}

std::unique_lock<std::mutex> BufferPool::LockShard(Shard& s) {
  std::unique_lock<std::mutex> lk(s.latch, std::try_to_lock);
  if (!lk.owns_lock()) {
    shard_conflicts_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* conflicts = PoolCounter("shard_conflicts");
    conflicts->Add();
    lk.lock();
  }
  return lk;
}

void BufferPool::ClockPush(Shard& s, size_t frame) {
  Frame& f = frames_[frame];
  const uint64_t epoch =
      f.clock_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  s.clock.push_back(ClockEntry{frame, epoch});
  // Every push bumps the epoch, so at most one entry per resident frame is
  // live; the rest are stale tombstones the sweep skips lazily. Eviction is
  // the only other place that pops them, and a working set that fits in the
  // pool never evicts — each pin/unpin cycle would leak one entry forever.
  // Compact here once stale entries outnumber live ones; the ring shrinks to
  // <= table.size(), so the O(n) sweep amortizes to O(1) per push.
  if (s.clock.size() > 16 && s.clock.size() > 2 * s.table.size()) {
    s.clock.erase(std::remove_if(s.clock.begin(), s.clock.end(),
                                 [this](const ClockEntry& e) {
                                   return frames_[e.frame].clock_epoch.load(
                                              std::memory_order_relaxed) !=
                                          e.epoch;
                                 }),
                  s.clock.end());
  }
}

Status BufferPool::WriteBackFrame(Frame& frame) {
  if (wal_ != nullptr) {
    // WAL rule: the record that produced this page image must be durable
    // before the image can reach the data file. Runs without any shard
    // latch held; LogManager::EnsureDurable is internally synchronized.
    JAGUAR_RETURN_IF_ERROR(wal_->EnsureDurable(PageLsn(frame.data.get())));
  }
  // The dirty bit is the caller's to clear, under the shard latch: clearing
  // it here (off-latch) could clobber a concurrent MarkDirty from a pin
  // holder and silently drop that mutation from every future flush.
  return disk_->WritePage(frame.id, frame.data.get());
}

void BufferPool::ReturnFreeFrame(size_t frame) {
  std::lock_guard<std::mutex> lk(free_mutex_);
  free_frames_.push_back(frame);
}

Result<size_t> BufferPool::EvictFromShard(Shard& s) {
  auto lk = LockShard(s);
  // Two passes over the initial ring: every resident candidate gets at most
  // one second chance before the sweep gives up on this shard.
  size_t budget = s.clock.size() * 2;
  while (budget-- > 0 && !s.clock.empty()) {
    ClockEntry e = s.clock.front();
    s.clock.pop_front();
    Frame& f = frames_[e.frame];
    // Stale entry: the frame was pinned, transferred or re-enqueued since.
    if (f.clock_epoch.load(std::memory_order_relaxed) != e.epoch) continue;
    if (f.pin_count.load(std::memory_order_relaxed) > 0 ||
        f.state != FrameState::kIdle) {
      continue;
    }
    if (f.ref) {
      f.ref = false;
      s.clock.push_back(e);  // second chance; epoch unchanged, still valid
      continue;
    }
    // Victim found. Invalidate any other ring entries and unmap it before
    // dropping the latch; fetchers of the victim page wait on the in-flight
    // table until the write-back lands, then re-read from disk.
    f.clock_epoch.fetch_add(1, std::memory_order_relaxed);
    const PageId victim = f.id;
    s.table.erase(victim);
    static obs::Counter* evictions = PoolCounter("evictions");
    if (!f.dirty) {
      f.id = kInvalidPageId;
      evictions_.fetch_add(1, std::memory_order_relaxed);
      evictions->Add();
      return e.frame;
    }
    s.io.insert(victim);
    ++s.inflight_writes;
    lk.unlock();
    Status ws = WriteBackFrame(f);
    lk.lock();
    --s.inflight_writes;
    s.io.erase(victim);
    if (!ws.ok()) {
      // Write-back failed: re-link the victim so its (still dirty) image
      // stays reachable instead of leaking an unreachable frame.
      s.table[victim] = e.frame;
      f.ref = true;
      ClockPush(s, e.frame);
      s.cv.notify_all();
      return ws;
    }
    f.dirty = false;
    f.id = kInvalidPageId;
    // Count only now: a failed write-back above re-links the victim and
    // reclaims nothing, so it must not inflate the eviction counter.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions->Add();
    s.cv.notify_all();
    return e.frame;
  }
  return NotFound("no evictable frame in shard");
}

Result<size_t> BufferPool::AcquireFrame(Shard* home) {
  const size_t start = static_cast<size_t>(home - shards_.get());
  // A concurrent unpin or completed transfer can free a frame between
  // passes, so try the free list + a full sweep a few times before
  // declaring the pool exhausted. With every frame genuinely pinned all
  // passes fail deterministically.
  for (int attempt = 0; attempt < 3; ++attempt) {
    {
      std::lock_guard<std::mutex> lk(free_mutex_);
      if (!free_frames_.empty()) {
        size_t f = free_frames_.back();
        free_frames_.pop_back();
        return f;
      }
    }
    // Sweep the home shard first (keeps scans evicting their own cold
    // pages), then steal from neighbors — one latch at a time, never two.
    for (size_t i = 0; i < shards_count_; ++i) {
      Shard& s = shards_[(start + i) & shard_mask_];
      Result<size_t> r = EvictFromShard(s);
      if (r.ok()) return r;
      if (!r.status().IsNotFound()) return r;  // failed dirty write-back
    }
  }
  return ResourceExhausted("buffer pool exhausted: all frames pinned");
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  Shard& s = ShardOf(id);
  auto lk = LockShard(s);
  // One fetch counts as at most one io_wait no matter how many condvar
  // wakeups it takes (notify_all storms would otherwise overcount).
  bool waited = false;
  for (;;) {
    auto it = s.table.find(id);
    if (it != s.table.end()) {
      Frame& f = frames_[it->second];
      if (f.state == FrameState::kWriting) {
        // Write-back in flight; pinning now would let the image mutate
        // under the disk write. Wait for it to finish.
        waited = true;
        s.cv.wait(lk);
        continue;
      }
      if (waited) CountIoWait();
      hits_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* hits = PoolCounter("hits");
      hits->Add();
      if (f.prefetched) {
        f.prefetched = false;
        readahead_hits_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter* ra_hits = PoolCounter("readahead.hits");
        ra_hits->Add();
      }
      f.ref = true;
      if (f.pin_count.load(std::memory_order_relaxed) == 0) {
        f.clock_epoch.fetch_add(1, std::memory_order_relaxed);  // leaving the replacement pool while pinned
      }
      f.pin_count.fetch_add(1, std::memory_order_relaxed);
      return PageGuard(this, it->second, id, f.data.get());
    }
    if (s.io.count(id) != 0) {
      // Someone else is already reading this page (or writing the evicted
      // image back). Wait for the single I/O instead of duplicating it.
      waited = true;
      s.cv.wait(lk);
      continue;
    }
    break;  // genuine miss and we own the read
  }
  if (waited) CountIoWait();
  misses_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* misses = PoolCounter("misses");
  misses->Add();
  s.io.insert(id);
  lk.unlock();

  Result<size_t> fr = AcquireFrame(&s);
  if (!fr.ok()) {
    lk.lock();
    s.io.erase(id);
    s.cv.notify_all();
    return fr.status();
  }
  Frame& f = frames_[*fr];
  Status rs = disk_->ReadPage(id, f.data.get());

  lk.lock();
  s.io.erase(id);
  if (!rs.ok()) {
    s.cv.notify_all();
    lk.unlock();
    ReturnFreeFrame(*fr);
    return rs;
  }
  f.id = id;
  f.dirty = false;
  f.ref = true;
  f.prefetched = false;
  f.state = FrameState::kIdle;
  f.clock_epoch.fetch_add(1, std::memory_order_relaxed);
  f.pin_count.store(1, std::memory_order_relaxed);
  s.table[id] = *fr;
  s.cv.notify_all();
  return PageGuard(this, *fr, id, f.data.get());
}

Result<PageGuard> BufferPool::NewPage() {
  // A freshly allocated page id cannot be cached or in flight anywhere, so
  // no coalescing bookkeeping is needed before publishing it.
  JAGUAR_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  Shard& s = ShardOf(id);
  JAGUAR_ASSIGN_OR_RETURN(size_t fidx, AcquireFrame(&s));
  Frame& f = frames_[fidx];
  std::memset(f.data.get(), 0, kPageSize);
  auto lk = LockShard(s);
  f.id = id;
  f.dirty = true;
  f.ref = true;
  f.prefetched = false;
  f.state = FrameState::kIdle;
  f.clock_epoch.fetch_add(1, std::memory_order_relaxed);
  f.pin_count.store(1, std::memory_order_relaxed);
  s.table[id] = fidx;
  return PageGuard(this, fidx, id, f.data.get());
}

void BufferPool::Unpin(size_t frame, PageId id, bool dirty) {
  Shard& s = ShardOf(id);
  auto lk = LockShard(s);
  Frame& f = frames_[frame];
  JAGUAR_CHECK(f.pin_count.load(std::memory_order_relaxed) > 0);
  if (dirty) f.dirty = true;
  if (f.pin_count.fetch_sub(1, std::memory_order_relaxed) == 1) {
    ClockPush(s, frame);  // back into the replacement pool, warm (ref set)
  }
}

void BufferPool::MarkFrameDirty(size_t frame, PageId id) {
  Shard& s = ShardOf(id);
  auto lk = LockShard(s);
  frames_[frame].dirty = true;
}

Status BufferPool::FlushAll() {
  // Excluding background-writer rounds (which run entirely inside bg_mutex_)
  // means no frame is kWriting while we scan, and draining inflight_writes
  // means every eviction write-back that started before this flush has
  // landed. Together that makes the post-flush data file complete, which is
  // what lets checkpoints truncate the log safely.
  //
  // Like the background writer, the WAL fsync + page write run OFF the shard
  // latch: the scan marks dirty frames kWriting (pinned ones too — FlushAll
  // writes them, it just keeps fetch hits out while the image is under the
  // disk write), then the latch is dropped for the actual I/O so fetches,
  // unpins and guard releases on the shard are not stalled behind a
  // page-by-page fsync scan.
  std::lock_guard<std::mutex> bg(bg_mutex_);
  Status result = Status::OK();
  std::vector<size_t> batch;
  for (size_t i = 0; i < shards_count_ && result.ok(); ++i) {
    Shard& s = shards_[i];
    batch.clear();
    {
      auto lk = LockShard(s);
      while (s.inflight_writes > 0) s.cv.wait(lk);
      for (const auto& [id, fidx] : s.table) {
        Frame& f = frames_[fidx];
        if (f.dirty) {
          f.state = FrameState::kWriting;
          // Clear dirty at mark time, under the latch: a pin holder's
          // MarkDirty during our off-latch write then re-dirties the frame,
          // so a mutation the write may have missed is flushed next time
          // instead of being lost to an off-latch dirty=false.
          f.dirty = false;
          f.clock_epoch.fetch_add(1, std::memory_order_relaxed);
          s.io.insert(id);
          batch.push_back(fidx);
        }
      }
    }
    for (size_t fidx : batch) {
      Frame& f = frames_[fidx];
      // After the first failure stop issuing writes, but keep clearing the
      // kWriting marks so waiting fetchers are not stuck forever.
      const bool wrote = result.ok();
      Status ws = wrote ? WriteBackFrame(f) : Status::OK();
      auto lk = LockShard(s);
      if (!wrote || !ws.ok()) f.dirty = true;  // image did not reach disk
      f.state = FrameState::kIdle;
      s.io.erase(f.id);
      ClockPush(s, fidx);
      s.cv.notify_all();
      if (!ws.ok()) result = ws;
    }
  }
  JAGUAR_RETURN_IF_ERROR(result);
  return disk_->Sync();
}

Status BufferPool::Discard(PageId id) {
  if (config_.readahead_pages > 0) {
    // Purge queued readahead hints for this page and drain an in-flight
    // prefetch of it: a stale hint processed after we return would reload
    // the old on-disk image of a page whose newer dirty copy this discard
    // deliberately dropped. Done before taking the shard latch — the worker
    // needs that latch to finish the prefetch we may be waiting out.
    std::unique_lock<std::mutex> rlk(ra_mutex_);
    ra_queue_.erase(std::remove(ra_queue_.begin(), ra_queue_.end(), id),
                    ra_queue_.end());
    ra_cv_.wait(rlk, [this, id] { return ra_active_ != id; });
  }
  Shard& s = ShardOf(id);
  auto lk = LockShard(s);
  for (;;) {
    if (s.io.count(id) != 0) {
      s.cv.wait(lk);
      continue;
    }
    auto it = s.table.find(id);
    if (it == s.table.end()) return Status::OK();
    Frame& f = frames_[it->second];
    if (f.state == FrameState::kWriting) {
      s.cv.wait(lk);
      continue;
    }
    if (f.pin_count.load(std::memory_order_relaxed) > 0) {
      return Internal(StringPrintf("discard of pinned page %u", id));
    }
    const size_t fidx = it->second;
    f.clock_epoch.fetch_add(1, std::memory_order_relaxed);  // invalidate ring entries
    f.id = kInvalidPageId;
    f.dirty = false;
    f.prefetched = false;
    s.table.erase(it);
    lk.unlock();
    ReturnFreeFrame(fidx);
    return Status::OK();
  }
}

void BufferPool::Prefetch(const PageId* ids, size_t count) {
  if (config_.readahead_pages == 0 || count == 0) return;
  {
    std::lock_guard<std::mutex> lk(ra_mutex_);
    for (size_t i = 0; i < count; ++i) {
      if (ids[i] == kInvalidPageId) continue;
      if (ra_queue_.size() >= kReadaheadQueueCap) break;
      ra_queue_.push_back(ids[i]);
    }
  }
  // notify_all: the background writer parks on the same condvar, so a
  // notify_one could wake it instead of the readahead worker.
  ra_cv_.notify_all();
}

void BufferPool::ReadaheadOne(PageId id) {
  Shard& s = ShardOf(id);
  {
    auto lk = LockShard(s);
    // Already resident or someone is loading it: the hint did its job.
    if (s.table.count(id) != 0 || s.io.count(id) != 0) return;
    s.io.insert(id);
  }
  Result<size_t> fr = AcquireFrame(&s);
  Status rs = fr.ok() ? disk_->ReadPage(id, frames_[*fr].data.get())
                      : fr.status();
  auto lk = LockShard(s);
  s.io.erase(id);
  if (!rs.ok()) {
    // Best-effort: drop the hint. The foreground fetch will redo the read
    // (and surface the error if it is real).
    s.cv.notify_all();
    lk.unlock();
    if (fr.ok()) ReturnFreeFrame(*fr);
    return;
  }
  Frame& f = frames_[*fr];
  f.id = id;
  f.dirty = false;
  f.ref = false;  // cold: one big scan cannot wipe the warm working set
  f.prefetched = true;
  f.state = FrameState::kIdle;
  f.pin_count.store(0, std::memory_order_relaxed);
  s.table[id] = *fr;
  ClockPush(s, *fr);
  readahead_issued_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* issued = PoolCounter("readahead.issued");
  issued->Add();
  s.cv.notify_all();
}

void BufferPool::ReadaheadLoop() {
  for (;;) {
    PageId id;
    {
      std::unique_lock<std::mutex> lk(ra_mutex_);
      ra_cv_.wait(lk, [this] { return stop_threads_ || !ra_queue_.empty(); });
      if (stop_threads_) return;  // pending hints are only hints; drop them
      id = ra_queue_.front();
      ra_queue_.pop_front();
      // Claimed under ra_mutex_ so Discard can always see a hint for its
      // page: either still queued (purged there) or active (drained here).
      ra_active_ = id;
    }
    ReadaheadOne(id);
    {
      std::lock_guard<std::mutex> lk(ra_mutex_);
      ra_active_ = kInvalidPageId;
    }
    ra_cv_.notify_all();
  }
}

void BufferPool::BgWriterLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(ra_mutex_);
      ra_cv_.wait_for(lk,
                      std::chrono::milliseconds(config_.bg_writer_interval_ms),
                      [this] { return stop_threads_; });
      if (stop_threads_) return;
    }
    BgWriterRound();
  }
}

size_t BufferPool::BgWriterRound() {
  // The whole round runs inside bg_mutex_ so FlushAll (checkpoints) never
  // overlaps a half-finished background write.
  std::lock_guard<std::mutex> bg(bg_mutex_);
  size_t flushed = 0;
  std::vector<size_t> batch;
  for (size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    batch.clear();
    {
      auto lk = LockShard(s);
      for (const auto& [id, fidx] : s.table) {
        if (batch.size() >= config_.bg_writer_batch) break;
        Frame& f = frames_[fidx];
        if (f.dirty && f.state == FrameState::kIdle &&
            f.pin_count.load(std::memory_order_relaxed) == 0) {
          // kWriting keeps fetchers (and thus mutators) out until the disk
          // write completes; the epoch bump keeps eviction away.
          f.state = FrameState::kWriting;
          f.clock_epoch.fetch_add(1, std::memory_order_relaxed);
          s.io.insert(id);
          batch.push_back(fidx);
        }
      }
    }
    for (size_t fidx : batch) {
      Frame& f = frames_[fidx];
      Status ws = WriteBackFrame(f);  // WAL rule first, then the page write
      auto lk = LockShard(s);
      f.state = FrameState::kIdle;
      s.io.erase(f.id);
      if (ws.ok()) {
        // Safe to clear here: the frame was unpinned when marked kWriting
        // and fetch hits wait on kWriting, so no holder could MarkDirty.
        f.dirty = false;
        ++flushed;
        bgwriter_flushes_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter* flushes = PoolCounter("bgwriter.flushes");
        flushes->Add();
      } else {
        JAGUAR_LOG(kWarning) << "background write-back of page " << f.id
                             << " failed: " << ws.ToString();
      }
      // Back into the replacement pool (its ring entries were invalidated
      // when it was marked kWriting).
      ClockPush(s, fidx);
      s.cv.notify_all();
    }
  }
  return flushed;
}

size_t BufferPool::clock_entries() const {
  size_t n = 0;
  for (size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.latch);
    n += s.clock.size();
  }
  return n;
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (size_t i = 0; i < shards_count_; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.latch);
    for (const auto& [id, fidx] : s.table) {
      if (frames_[fidx].pin_count.load(std::memory_order_relaxed) > 0) ++n;
    }
  }
  return n;
}

}  // namespace jaguar
