#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {

namespace {

obs::Counter* PoolCounter(const char* which) {
  return obs::MetricsRegistry::Global()->GetCounter(
      std::string("storage.bufferpool.") + which);
}

}  // namespace

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) pool_->MarkFrameDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, /*dirty=*/false);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity,
                       wal::LogManager* wal)
    : disk_(disk), wal_(wal), capacity_(capacity) {
  JAGUAR_CHECK(capacity > 0);
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(capacity - 1 - i);
  }
}

BufferPool::~BufferPool() { FlushAll().ok(); }

Status BufferPool::WriteBackFrame(Frame& frame) {
  if (wal_ != nullptr) {
    // WAL rule: the record that produced this page image must be durable
    // before the image can reach the data file.
    JAGUAR_RETURN_IF_ERROR(wal_->EnsureDurable(PageLsn(frame.data.get())));
  }
  JAGUAR_RETURN_IF_ERROR(disk_->WritePage(frame.id, frame.data.get()));
  frame.dirty = false;
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    return ResourceExhausted("buffer pool exhausted: all frames pinned");
  }
  size_t f = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[f];
  frame.in_lru = false;
  ++evictions_;
  static obs::Counter* evictions = PoolCounter("evictions");
  evictions->Add();
  if (frame.dirty) {
    JAGUAR_RETURN_IF_ERROR(WriteBackFrame(frame));
  }
  page_table_.erase(frame.id);
  frame.id = kInvalidPageId;
  return f;
}

void BufferPool::MarkFrameDirty(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  frames_[frame].dirty = true;
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    static obs::Counter* hits = PoolCounter("hits");
    hits->Add();
    size_t f = it->second;
    Frame& frame = frames_[f];
    if (frame.pin_count == 0 && frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageGuard(this, f, id, frame.data.get());
  }
  ++misses_;
  static obs::Counter* misses = PoolCounter("misses");
  misses->Add();
  JAGUAR_ASSIGN_OR_RETURN(size_t f, GetVictimFrame());
  Frame& frame = frames_[f];
  Status s = disk_->ReadPage(id, frame.data.get());
  if (!s.ok()) {
    free_frames_.push_back(f);
    return s;
  }
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[id] = f;
  return PageGuard(this, f, id, frame.data.get());
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mutex_);
  JAGUAR_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  JAGUAR_ASSIGN_OR_RETURN(size_t f, GetVictimFrame());
  Frame& frame = frames_[f];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  page_table_[id] = f;
  return PageGuard(this, f, id, frame.data.get());
}

void BufferPool::Unpin(size_t f, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& frame = frames_[f];
  JAGUAR_CHECK(frame.pin_count > 0);
  if (dirty) frame.dirty = true;
  if (--frame.pin_count == 0) {
    lru_.push_back(f);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& frame : frames_) {
    if (frame.id != kInvalidPageId && frame.dirty) {
      JAGUAR_RETURN_IF_ERROR(WriteBackFrame(frame));
    }
  }
  return disk_->Sync();
}

Status BufferPool::Discard(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame& frame = frames_[it->second];
  if (frame.pin_count > 0) {
    return Internal(StringPrintf("discard of pinned page %u", id));
  }
  if (frame.in_lru) {
    lru_.erase(frame.lru_pos);
    frame.in_lru = false;
  }
  frame.id = kInvalidPageId;
  frame.dirty = false;
  free_frames_.push_back(it->second);
  page_table_.erase(it);
  return Status::OK();
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t BufferPool::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.pin_count > 0) ++n;
  }
  return n;
}

}  // namespace jaguar
