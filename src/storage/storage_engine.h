#ifndef JAGUAR_STORAGE_STORAGE_ENGINE_H_
#define JAGUAR_STORAGE_STORAGE_ENGINE_H_

/// \file storage_engine.h
/// Ties the disk manager, write-ahead log and buffer pool together and owns
/// database-level page allocation: a header page (page 0) stores a magic
/// number, the head of the free-page list, and the catalog root. Freed pages
/// are chained through their first four bytes and reused before the file
/// grows.
///
/// Durability: every mutation is logged through `WalPageEdit` before the
/// page can reach disk; `Open` replays the log tail after a crash; and
/// `Checkpoint` bounds replay by flushing everything and truncating the log.
/// See DESIGN.md "Durability & recovery".

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace jaguar {

class StorageEngine {
 public:
  static constexpr uint32_t kMagic = 0x4A414744;  // "JAGD"
  /// v2 added the per-page LSN footer (page.h), which moved the slotted-page
  /// cell area and overflow chunk capacity; v1 files are not readable.
  static constexpr uint32_t kVersion = 2;

  /// Opens or creates the database file at `path`, with its write-ahead log
  /// beside it at `path` + ".wal". Replays the log if the previous process
  /// crashed, then checkpoints so the engine starts from a clean log.
  /// \param pool_pages buffer pool capacity in pages.
  /// \param pool_config sharding / readahead / background-writer knobs.
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& path, size_t pool_pages = 256,
      const wal::WalOptions& wal_options = wal::WalOptions(),
      const BufferPoolConfig& pool_config = BufferPoolConfig());

  /// Checkpoints, flushes everything and closes the files.
  Status Close();

  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }
  /// Null when the engine runs without a log (WalOptions::enabled == false).
  wal::LogManager* wal() { return wal_.get(); }

  /// Allocates a page, preferring the free list over growing the file.
  Result<PageId> AllocatePage();

  /// Returns `id` to the free list. The page must be unpinned.
  Status FreePage(PageId id);

  /// Root page of the serialized system catalog (kInvalidPageId when absent).
  Result<PageId> GetCatalogRoot();
  Status SetCatalogRoot(PageId id);

  /// Number of pages on the free list (walks the chain; test/debug use).
  Result<uint32_t> CountFreePages();

  /// Statement-commit hook: makes the log durable (group commit) and
  /// auto-checkpoints once the log outgrows WalOptions::checkpoint_bytes.
  Status WalCommit();

  /// Full checkpoint: log made durable, all dirty pages flushed, data file
  /// synced, log truncated. Replay after a crash starts from here.
  Status Checkpoint();

  /// What redo did during Open (zeroed when there was nothing to replay).
  const wal::RecoveryStats& recovery_stats() const { return recovery_stats_; }

 private:
  StorageEngine() = default;

  Status InitHeader();
  Result<uint32_t> ReadHeaderField(uint32_t offset);
  Status WriteHeaderField(uint32_t offset, uint32_t value);

  DiskManager disk_;
  // Declared before pool_: ~BufferPool flushes dirty pages, which invokes
  // the WAL rule, so the log must be destroyed after the pool.
  std::unique_ptr<wal::LogManager> wal_;
  std::unique_ptr<BufferPool> pool_;
  wal::RecoveryStats recovery_stats_;
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_STORAGE_ENGINE_H_
