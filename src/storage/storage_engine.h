#ifndef JAGUAR_STORAGE_STORAGE_ENGINE_H_
#define JAGUAR_STORAGE_STORAGE_ENGINE_H_

/// \file storage_engine.h
/// Ties the disk manager and buffer pool together and owns database-level
/// page allocation: a header page (page 0) stores a magic number, the head of
/// the free-page list, and the catalog root. Freed pages are chained through
/// their first four bytes and reused before the file grows.

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace jaguar {

class StorageEngine {
 public:
  static constexpr uint32_t kMagic = 0x4A414744;  // "JAGD"
  static constexpr uint32_t kVersion = 1;

  /// Opens or creates the database file at `path`.
  /// \param pool_pages buffer pool capacity in pages.
  static Result<std::unique_ptr<StorageEngine>> Open(const std::string& path,
                                                     size_t pool_pages = 256);

  /// Flushes everything and closes the file.
  Status Close();

  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }

  /// Allocates a page, preferring the free list over growing the file.
  Result<PageId> AllocatePage();

  /// Returns `id` to the free list. The page must be unpinned.
  Status FreePage(PageId id);

  /// Root page of the serialized system catalog (kInvalidPageId when absent).
  Result<PageId> GetCatalogRoot();
  Status SetCatalogRoot(PageId id);

  /// Number of pages on the free list (walks the chain; test/debug use).
  Result<uint32_t> CountFreePages();

 private:
  StorageEngine() = default;

  Status InitHeader();
  Result<uint32_t> ReadHeaderField(uint32_t offset);
  Status WriteHeaderField(uint32_t offset, uint32_t value);

  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_STORAGE_ENGINE_H_
