#ifndef JAGUAR_STORAGE_SLOTTED_PAGE_H_
#define JAGUAR_STORAGE_SLOTTED_PAGE_H_

/// \file slotted_page.h
/// Classic slotted-page record organization over a raw kPageSize buffer.
///
/// Layout:
///
///     [ header | slot array --> ...free... <-- cell data | lsn footer ]
///
/// * header (12 bytes): next_page_id (u32, heap-file chain), num_slots (u16),
///   cell_start (u16, offset of the lowest cell byte), reserved (u32).
/// * slot array: per slot, offset (u16) and size (u16). A slot with
///   offset == 0 is a tombstone (cell space reclaimable by Compact()).
/// * cells grow downward from kPageLsnOffset; the last 8 bytes hold the
///   page's WAL LSN (see page.h) and are never touched by this class.
///
/// `SlottedPage` is a *view*: it does not own the buffer. The buffer pool owns
/// frames; callers construct a view over a pinned frame.

#include <cstdint>
#include <optional>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace jaguar {

class SlottedPage {
 public:
  /// Wraps (does not initialize) an existing page buffer of kPageSize bytes.
  explicit SlottedPage(uint8_t* data) : data_(data) {}

  /// Formats the buffer as an empty slotted page.
  void Init();

  /// Heap-file chain pointer.
  PageId next_page_id() const;
  void set_next_page_id(PageId id);

  uint16_t num_slots() const;

  /// Bytes available for a new record (including its 4-byte slot), taking
  /// tombstone slot reuse into account for the slot bytes only.
  uint32_t FreeSpace() const;

  /// Maximum record payload a freshly initialized page can hold.
  static uint32_t MaxRecordSize();

  /// Inserts `record`; returns the slot index or ResourceExhausted if it does
  /// not fit (caller moves on to another page).
  Result<uint16_t> Insert(Slice record);

  /// \return View of the record in `slot`, or NotFound for tombstones /
  /// out-of-range slots.
  Result<Slice> Get(uint16_t slot) const;

  /// Tombstones `slot`. Space is reclaimed lazily by Compact().
  Status Delete(uint16_t slot);

  /// Rewrites live cells to eliminate holes left by deletions; slot indices
  /// are stable.
  void Compact();

  /// Validates internal invariants (used by property tests): slots in range,
  /// cells non-overlapping, cell_start consistent.
  Status CheckInvariants() const;

 private:
  static constexpr uint32_t kHeaderSize = 12;
  static constexpr uint32_t kSlotSize = 4;

  uint16_t GetU16(uint32_t off) const;
  void PutU16(uint32_t off, uint16_t v);
  uint32_t GetU32(uint32_t off) const;
  void PutU32(uint32_t off, uint32_t v);

  uint16_t cell_start() const { return GetU16(6); }
  void set_cell_start(uint16_t v) { PutU16(6, v); }
  void set_num_slots(uint16_t v) { PutU16(4, v); }

  uint32_t SlotOffsetPos(uint16_t slot) const {
    return kHeaderSize + slot * kSlotSize;
  }

  uint8_t* data_;
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_SLOTTED_PAGE_H_
