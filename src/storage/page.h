#ifndef JAGUAR_STORAGE_PAGE_H_
#define JAGUAR_STORAGE_PAGE_H_

/// \file page.h
/// Fixed-size page constants and ids for the storage layer.

#include <cstdint>

namespace jaguar {

/// All on-disk I/O happens in units of this many bytes.
inline constexpr uint32_t kPageSize = 8192;

/// Page identifier == page index within the database file.
using PageId = uint32_t;

/// Sentinel for "no page" (end of chains, unallocated references).
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// A record's physical address: page + slot within the page.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const RecordId& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_PAGE_H_
