#ifndef JAGUAR_STORAGE_PAGE_H_
#define JAGUAR_STORAGE_PAGE_H_

/// \file page.h
/// Fixed-size page constants and ids for the storage layer.

#include <cstdint>
#include <cstring>

namespace jaguar {

/// All on-disk I/O happens in units of this many bytes.
inline constexpr uint32_t kPageSize = 8192;

/// Page identifier == page index within the database file.
using PageId = uint32_t;

/// Sentinel for "no page" (end of chains, unallocated references).
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Every page reserves its last 8 bytes for the LSN of the latest WAL record
/// applied to it. Recovery compares this footer against each log record's LSN
/// to decide replay-vs-skip, which is what makes redo idempotent. The footer
/// is uniform across page kinds (header page, slotted pages, overflow pages,
/// free pages); page formats must keep their payload below kPageLsnOffset.
/// A fresh (all-zero) page carries LSN 0, which no log record ever uses.
inline constexpr uint32_t kPageLsnSize = 8;
inline constexpr uint32_t kPageLsnOffset = kPageSize - kPageLsnSize;

inline uint64_t PageLsn(const uint8_t* page) {
  uint64_t lsn;
  std::memcpy(&lsn, page + kPageLsnOffset, kPageLsnSize);
  return lsn;
}

inline void SetPageLsn(uint8_t* page, uint64_t lsn) {
  std::memcpy(page + kPageLsnOffset, &lsn, kPageLsnSize);
}

/// A record's physical address: page + slot within the page.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const RecordId& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_PAGE_H_
