#ifndef JAGUAR_STORAGE_BUFFER_POOL_H_
#define JAGUAR_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// A sharded, I/O-decoupled page cache with clock-sweep (second-chance)
/// replacement, sequential-scan readahead and an optional background writer.
///
/// Callers obtain pages through RAII `PageGuard`s: a guard pins its frame for
/// its lifetime, so forgetting to unpin is impossible by construction. Dirty
/// pages are written back on eviction, by the background writer, and on
/// `FlushAll`.
///
/// Layout: pages are partitioned across `N` shards by
/// `page_id & (N - 1)` (N is a power of two, by default
/// `next_pow2(min(16, workers_hint * 2))`). Each shard owns its own latch,
/// page table, in-flight I/O table and clock ring. Frames themselves float:
/// a frame belongs to whichever shard maps the page it currently holds, and
/// empty frames sit on one global free list, so capacity is shared and a
/// skewed page distribution cannot strand frames in an idle shard. A shard
/// whose clock has no victim steals one from a neighbor — never holding two
/// shard latches at once.
///
/// I/O happens **off the shard latch**:
///  * A miss registers the page in the shard's in-flight table, drops the
///    latch, reads from disk, then relocks to publish the frame. Concurrent
///    fetchers of the same missing page wait on the shard's condvar instead
///    of issuing duplicate reads (`storage.bufferpool.io_waits`).
///  * Evicting a dirty victim likewise registers the victim page id, drops
///    the latch, and only then runs the WAL-rule fsync (`EnsureDurable`) and
///    the page write. Fetchers of the in-flight victim wait for the write,
///    then re-read from disk. If the write-back fails the victim is
///    re-linked into its shard (page table + clock) so the dirty image is
///    never stranded in an unreachable frame.
///
/// Replacement is clock-sweep with a second-chance `ref` bit. Pages loaded
/// by the readahead worker enter the clock *cold* (`ref = 0`) and unpinned,
/// so one large scan streams through a small fraction of the pool instead of
/// wiping the working set; the first real fetch of a prefetched page counts
/// as `storage.bufferpool.readahead.hits` and promotes it to warm.
///
/// The optional background writer (`BufferPoolConfig::bg_writer`) trickles
/// dirty unpinned frames to disk ahead of eviction so foreground fetches
/// rarely pay a write+fsync. It obeys the WAL rule (log durable up to the
/// page's LSN before the image reaches the data file) exactly like the
/// eviction path, and `FlushAll` excludes concurrent writer rounds and
/// drains in-flight write-backs before returning, which keeps checkpoint log
/// truncation safe.
///
/// Thread safety: every public entry point is safe for concurrent use. Page
/// *data* is read outside any latch — safe because a pin keeps the frame
/// resident, and parallel execution only runs read-only plans.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace jaguar {

class BufferPool;

/// Construction-time knobs, threaded down from `DatabaseOptions`.
struct BufferPoolConfig {
  /// Shard count (rounded up to a power of two, clamped to the capacity).
  /// 0 = auto: `next_pow2(min(16, workers_hint * 2))`.
  size_t shards = 0;
  /// Expected number of concurrent fetching threads; drives the auto shard
  /// count.
  size_t workers_hint = 1;
  /// Pages the readahead worker keeps in flight ahead of a sequential scan.
  /// 0 disables readahead (no worker thread is started).
  size_t readahead_pages = 8;
  /// Start a background writer thread that trickles dirty unpinned frames
  /// to disk ahead of eviction.
  bool bg_writer = false;
  /// Background writer round interval.
  int bg_writer_interval_ms = 20;
  /// Max frames the background writer flushes per shard per round.
  size_t bg_writer_batch = 8;
};

/// Pins one page frame for the guard's lifetime. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, PageId id, uint8_t* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      id_ = o.id_;
      data_ = o.data_;
      o.pool_ = nullptr;
      o.data_ = nullptr;
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  /// Marks the page dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  /// \param disk backing store (must outlive the pool).
  /// \param capacity number of frames.
  /// \param wal when non-null, the pool enforces the WAL rule: before a
  ///        dirty page is written back (eviction, background writer or
  ///        FlushAll), the log is made durable up to that page's footer LSN.
  ///        Must outlive the pool.
  BufferPool(DiskManager* disk, size_t capacity,
             wal::LogManager* wal = nullptr,
             const BufferPoolConfig& config = BufferPoolConfig());
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on miss. Concurrent fetches of the
  /// same missing page coalesce into one disk read.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins it (contents zeroed).
  Result<PageGuard> NewPage();

  /// Hints that `ids[0..count)` will be fetched soon (sequential-scan
  /// readahead). Best-effort: already-cached pages, a full queue or a
  /// disabled readahead worker silently drop the hint. Prefetched pages
  /// enter the clock unpinned at cold priority.
  void Prefetch(const PageId* ids, size_t count);
  void Prefetch(PageId id) { Prefetch(&id, 1); }

  /// Writes back all dirty pages (pinned ones included), drains in-flight
  /// write-backs, and syncs. On return every prior mutation is in the data
  /// file, which is what makes WAL truncation after a checkpoint safe.
  /// The writes run off the shard latches (frames are marked kWriting like
  /// the background writer's), so concurrent fetches of other pages are not
  /// stalled behind the flush scan. Pinned pages must not be concurrently
  /// mutated while a flush is in flight — checkpoints run from the write
  /// path's thread, which guarantees that today.
  Status FlushAll();

  /// Drops page `id` from the cache without writing it back. The page must
  /// be unpinned. Used when a page is freed.
  Status Discard(PageId id);

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_count_; }
  /// Readahead depth (0 = disabled); scan code sizes its hints with this.
  size_t readahead_depth() const { return config_.readahead_pages; }

  // Relaxed-atomic statistics: reading them never touches a shard latch.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Occupied frames reclaimed to satisfy a fetch/new-page request.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Fetches that waited for an in-flight read or write-back of their page.
  uint64_t io_waits() const {
    return io_waits_.load(std::memory_order_relaxed);
  }
  /// Shard-latch acquisitions that found the latch already held.
  uint64_t shard_conflicts() const {
    return shard_conflicts_.load(std::memory_order_relaxed);
  }
  uint64_t readahead_issued() const {
    return readahead_issued_.load(std::memory_order_relaxed);
  }
  uint64_t readahead_hits() const {
    return readahead_hits_.load(std::memory_order_relaxed);
  }
  uint64_t bgwriter_flushes() const {
    return bgwriter_flushes_.load(std::memory_order_relaxed);
  }
  /// Number of currently pinned frames (for leak tests).
  size_t pinned_frames() const;
  /// Total clock-ring entries across shards, live and stale (for tests:
  /// the ring must stay O(resident frames) even on hit-only workloads that
  /// never trigger eviction).
  size_t clock_entries() const;

 private:
  friend class PageGuard;

  enum class FrameState : uint8_t {
    kIdle,
    /// Background write-back in flight: the frame stays in its page table
    /// but fetch hits wait until the disk write completes, so the image the
    /// writer captures is never concurrently mutated.
    kWriting,
  };

  struct Frame {
    PageId id = kInvalidPageId;
    /// Atomic only so `pinned_frames()` can read it latch-free; all
    /// transitions happen under the owning shard's latch.
    std::atomic<int> pin_count{0};
    bool dirty = false;
    bool ref = false;         ///< clock second-chance bit
    bool prefetched = false;  ///< set by readahead, cleared on first fetch
    FrameState state = FrameState::kIdle;
    /// Monotonic validity stamp for clock entries: pinning or transferring
    /// a frame bumps it, lazily invalidating stale ring entries. Atomic
    /// (relaxed) because a stale entry in shard B's ring is compared under
    /// B's latch while the frame — since migrated to shard A — bumps under
    /// A's latch. The bump that invalidated a B entry always happened under
    /// B's latch, so a valid match implies this shard still owns the frame.
    std::atomic<uint64_t> clock_epoch{0};
    std::unique_ptr<uint8_t[]> data;
  };

  struct ClockEntry {
    size_t frame;
    uint64_t epoch;
  };

  struct Shard {
    std::mutex latch;
    /// Wakes waiters on the in-flight I/O table and FlushAll's write drain.
    std::condition_variable cv;
    std::unordered_map<PageId, size_t> table;  // page id -> frame index
    /// Pages with a disk read or write-back in flight; fetchers wait on cv.
    std::unordered_set<PageId> io;
    /// Clock ring of (frame, epoch) candidates; entries whose epoch no
    /// longer matches the frame are skipped lazily by the sweep and
    /// compacted by ClockPush once they outnumber live entries, so the ring
    /// stays O(resident frames) even when no eviction ever runs.
    std::deque<ClockEntry> clock;
    /// Eviction write-backs in flight for pages already removed from
    /// `table`; FlushAll drains these before declaring the shard clean.
    size_t inflight_writes = 0;
  };

  Shard& ShardOf(PageId id) { return shards_[id & shard_mask_]; }
  const Shard& ShardOf(PageId id) const { return shards_[id & shard_mask_]; }

  /// Locks a shard, counting contended acquisitions.
  std::unique_lock<std::mutex> LockShard(Shard& s);

  /// Bumps io_waits_; FetchPage calls it once per fetch that waited.
  void CountIoWait();

  void Unpin(size_t frame, PageId id, bool dirty);
  void MarkFrameDirty(size_t frame, PageId id);

  /// Pushes a fresh clock entry for `frame` (bumps the epoch). Requires the
  /// owning shard's latch.
  void ClockPush(Shard& s, size_t frame);

  /// Returns an empty frame: global free list first, then clock-sweep
  /// eviction starting at `home` and stealing from neighbors. Must be called
  /// WITHOUT any shard latch held. ResourceExhausted when every frame is
  /// pinned; any other error is a failed dirty write-back.
  Result<size_t> AcquireFrame(Shard* home);
  /// One clock sweep over `s`; kNotFound when the shard has no victim.
  Result<size_t> EvictFromShard(Shard& s);
  void ReturnFreeFrame(size_t frame);

  /// WAL rule + disk write of one frame's image; runs off the shard latch.
  /// The caller must hold the image exclusively (victim out of the table or
  /// frame marked kWriting) and clears the dirty bit itself, under the
  /// latch, once the write succeeds.
  Status WriteBackFrame(Frame& frame);

  /// Loads one prefetch request (worker thread).
  void ReadaheadOne(PageId id);
  void ReadaheadLoop();
  void BgWriterLoop();
  /// One background-writer round over all shards; returns frames flushed.
  size_t BgWriterRound();

  DiskManager* disk_;
  wal::LogManager* wal_;
  size_t capacity_;
  BufferPoolConfig config_;
  size_t shards_count_ = 1;
  size_t shard_mask_ = 0;

  std::unique_ptr<Frame[]> frames_;
  std::unique_ptr<Shard[]> shards_;

  std::mutex free_mutex_;
  std::vector<size_t> free_frames_;

  /// Serializes background-writer rounds against FlushAll: a round runs
  /// entirely inside this lock, so FlushAll never observes a half-finished
  /// kWriting frame and checkpoints cannot truncate the log under an
  /// in-flight background write.
  std::mutex bg_mutex_;

  // Readahead queue + worker.
  std::mutex ra_mutex_;
  std::condition_variable ra_cv_;
  std::deque<PageId> ra_queue_;
  /// Hint the worker is currently loading; Discard drains it so a prefetch
  /// popped from the queue just before the discard cannot resurrect the page.
  PageId ra_active_ = kInvalidPageId;
  bool stop_threads_ = false;
  std::thread ra_thread_;
  std::thread bg_thread_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> io_waits_{0};
  std::atomic<uint64_t> shard_conflicts_{0};
  std::atomic<uint64_t> readahead_issued_{0};
  std::atomic<uint64_t> readahead_hits_{0};
  std::atomic<uint64_t> bgwriter_flushes_{0};
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_BUFFER_POOL_H_
