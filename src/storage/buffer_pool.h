#ifndef JAGUAR_STORAGE_BUFFER_POOL_H_
#define JAGUAR_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// A fixed-capacity page cache with LRU replacement and pin counting.
///
/// Callers obtain pages through RAII `PageGuard`s: a guard pins its frame for
/// its lifetime, so forgetting to unpin is impossible by construction. Dirty
/// pages are written back on eviction and on `FlushAll`.
///
/// Thread safety: every public entry point (and the guard's Unpin/MarkDirty)
/// takes one internal mutex, so parallel scan workers can fetch pages
/// concurrently. Page *data* is read outside the lock — safe because a pin
/// keeps the frame resident, and parallel execution only runs read-only
/// plans.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace jaguar {

class BufferPool;

/// Pins one page frame for the guard's lifetime. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, PageId id, uint8_t* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      id_ = o.id_;
      data_ = o.data_;
      o.pool_ = nullptr;
      o.data_ = nullptr;
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  /// Marks the page dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  /// \param disk backing store (must outlive the pool).
  /// \param capacity number of frames.
  /// \param wal when non-null, the pool enforces the WAL rule: before a
  ///        dirty page is written back (eviction or FlushAll), the log is
  ///        made durable up to that page's footer LSN. Must outlive the pool.
  BufferPool(DiskManager* disk, size_t capacity,
             wal::LogManager* wal = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on miss.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins it (contents zeroed).
  Result<PageGuard> NewPage();

  /// Writes back all dirty pages (pinned ones included) and syncs.
  Status FlushAll();

  /// Drops page `id` from the cache without writing it back. The page must be
  /// unpinned. Used when a page is freed.
  Status Discard(PageId id);

  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;
  /// Occupied frames reclaimed to satisfy a fetch/new-page request.
  uint64_t evictions() const;
  /// Number of currently pinned frames (for leak tests).
  size_t pinned_frames() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<uint8_t[]> data;
    std::list<size_t>::iterator lru_pos;  // valid only when pin_count == 0
    bool in_lru = false;
  };

  void Unpin(size_t frame, bool dirty);
  void MarkFrameDirty(size_t frame);
  /// Requires `mutex_` held.
  Result<size_t> GetVictimFrame();
  /// WAL rule + write-back of one dirty frame. Requires `mutex_` held (safe:
  /// the log manager has its own lock and never calls back into the pool).
  Status WriteBackFrame(Frame& frame);

  mutable std::mutex mutex_;
  DiskManager* disk_;
  wal::LogManager* wal_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front == least recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace jaguar

#endif  // JAGUAR_STORAGE_BUFFER_POOL_H_
