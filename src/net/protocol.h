#ifndef JAGUAR_NET_PROTOCOL_H_
#define JAGUAR_NET_PROTOCOL_H_

/// \file protocol.h
/// The two-tier wire protocol (Section 2.1): clients connect directly to the
/// database server, send requests, and receive results. Frames are
/// `u32 length | u8 type | payload`; payloads reuse the ADT stream encodings
/// shared by storage and IPC — the same bytes that live on disk travel over
/// the wire, which is what makes client-side and server-side UDF execution
/// interchangeable.
///
/// Requests:
///   kExecuteSql   sql text
///   kRegisterUdf  UdfInfo (JJava payloads are verified server-side on upload
///                 — this is the "migrate the UDF to the server" step of §6.4)
///   kDropUdf      name
///   kStoreLob     bytes                         -> kLobHandle
///   kFetchLob     handle, offset, len           -> kLobData
///   kPing                                       -> kPong
/// Responses:
///   kResultSet | kAck | kError | kLobHandle | kLobData | kPong

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/bytes.h"
#include "common/status.h"
#include "engine/query_result.h"

namespace jaguar {
namespace net {

enum class FrameType : uint8_t {
  kExecuteSql = 1,
  kRegisterUdf = 2,
  kDropUdf = 3,
  kStoreLob = 4,
  kFetchLob = 5,
  kPing = 6,
  kResultSet = 32,
  kAck = 33,
  kError = 34,
  kLobHandle = 35,
  kLobData = 36,
  kPong = 37,
};

/// Hard cap on frame payloads (defense against hostile lengths).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Reads/writes one full frame on a connected socket fd. Blocking; returns
/// IoError on EOF or socket failure.
Status WriteFrame(int fd, FrameType type, Slice payload);
Result<std::pair<FrameType, std::vector<uint8_t>>> ReadFrame(int fd);

/// Payload encodings.
void EncodeUdfInfo(const UdfInfo& info, BufferWriter* w);
Result<UdfInfo> DecodeUdfInfo(BufferReader* r);
void EncodeQueryResult(const QueryResult& result, BufferWriter* w);
Result<QueryResult> DecodeQueryResult(BufferReader* r);
void EncodeStatusPayload(const Status& status, BufferWriter* w);
Status DecodeStatusPayload(BufferReader* r);

}  // namespace net
}  // namespace jaguar

#endif  // JAGUAR_NET_PROTOCOL_H_
