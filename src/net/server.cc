#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace jaguar {
namespace net {

Server::~Server() { Stop(); }

Status Server::Start(uint16_t port) {
  if (running_.load()) return Internal("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return IoError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError(StringPrintf("bind failed: %s", std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError("listen failed");
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  // Wake every serving thread first — a client idling between requests
  // leaves its thread blocked in ReadFrame forever, and joining it without
  // this shutdown would hang Stop until the client went away on its own.
  for (const std::unique_ptr<Connection>& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::unique_ptr<Connection>& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

void Server::ReapFinishedLocked() {
  for (size_t i = 0; i < conns_.size();) {
    if (!conns_[i]->done.load(std::memory_order_acquire)) {
      ++i;
      continue;
    }
    if (conns_[i]->thread.joinable()) conns_[i]->thread.join();
    ::close(conns_[i]->fd);
    conns_[i] = std::move(conns_.back());
    conns_.pop_back();
  }
}

void Server::AcceptLoop() {
  while (running_.load()) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) break;
      continue;
    }
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = client;
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conns_mutex_);
    // Disconnected clients' threads are collected here, so a long-lived
    // server churning through short connections does not accumulate one
    // dead std::thread per client ever served.
    ReapFinishedLocked();
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ServeClient(raw); });
  }
}

void Server::ServeClient(Connection* conn) {
  while (running_.load()) {
    Result<std::pair<FrameType, std::vector<uint8_t>>> frame =
        ReadFrame(conn->fd);
    if (!frame.ok()) break;  // disconnect
    ++requests_served_;
    auto [type, response] = HandleRequest(frame->first, Slice(frame->second));
    if (!WriteFrame(conn->fd, type, Slice(response)).ok()) break;
  }
  // Signal EOF to the peer now, but keep the fd open until the reaper or
  // Stop joins this thread — closing here would race Stop's shutdown() on a
  // reused descriptor.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

std::pair<FrameType, std::vector<uint8_t>> Server::HandleRequest(
    FrameType type, Slice payload) {
  auto error = [](const Status& status) {
    BufferWriter w;
    EncodeStatusPayload(status, &w);
    return std::make_pair(FrameType::kError, w.Release());
  };

  // Liveness probes must not queue behind a long-running query: answer
  // kPing before taking the database mutex.
  if (type == FrameType::kPing) return {FrameType::kPong, {}};

  std::lock_guard<std::mutex> lock(db_mutex_);
  switch (type) {
    case FrameType::kExecuteSql: {
      Result<QueryResult> result = db_->Execute(payload.ToString());
      if (!result.ok()) return error(result.status());
      BufferWriter w;
      EncodeQueryResult(*result, &w);
      return {FrameType::kResultSet, w.Release()};
    }
    case FrameType::kRegisterUdf: {
      BufferReader r(payload);
      Result<UdfInfo> info = DecodeUdfInfo(&r);
      if (!info.ok()) return error(info.status());
      // Registration verifies JJava payloads before they touch the catalog.
      Status s = db_->RegisterUdf(std::move(*info));
      if (!s.ok()) return error(s);
      return {FrameType::kAck, {}};
    }
    case FrameType::kDropUdf: {
      Status s = db_->DropUdf(payload.ToString());
      if (!s.ok()) return error(s);
      return {FrameType::kAck, {}};
    }
    case FrameType::kStoreLob: {
      Result<int64_t> handle = db_->StoreLob(payload.ToVector());
      if (!handle.ok()) return error(handle.status());
      BufferWriter w;
      w.PutI64(*handle);
      return {FrameType::kLobHandle, w.Release()};
    }
    case FrameType::kFetchLob: {
      BufferReader r(payload);
      Result<int64_t> handle = r.ReadI64();
      Result<uint64_t> offset = r.ReadU64();
      Result<uint64_t> len = r.ReadU64();
      if (!handle.ok() || !offset.ok() || !len.ok()) {
        return error(Corruption("malformed kFetchLob"));
      }
      Result<std::vector<uint8_t>> data =
          db_->FetchLob(*handle, *offset, *len);
      if (!data.ok()) return error(data.status());
      return {FrameType::kLobData, std::move(*data)};
    }
    default:
      return error(InvalidArgument("unknown request frame type"));
  }
}

}  // namespace net
}  // namespace jaguar
