#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "jjc/jjc.h"
#include "jvm/vm.h"

namespace jaguar {
namespace net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  auto client = std::unique_ptr<Client>(new Client());
  client->fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client->fd_ < 0) return IoError("socket() failed");
  int one = 1;
  ::setsockopt(client->fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(client->fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return IoError(StringPrintf("connect to %s:%u failed: %s", host.c_str(),
                                port, std::strerror(errno)));
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::pair<FrameType, std::vector<uint8_t>>> Client::RoundTrip(
    FrameType type, Slice payload) {
  JAGUAR_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  JAGUAR_ASSIGN_OR_RETURN(auto response, ReadFrame(fd_));
  if (response.first == FrameType::kError) {
    BufferReader r((Slice(response.second)));
    return DecodeStatusPayload(&r);
  }
  return response;
}

Status Client::Ping() {
  JAGUAR_ASSIGN_OR_RETURN(auto response, RoundTrip(FrameType::kPing, Slice()));
  if (response.first != FrameType::kPong) {
    return Internal("unexpected response to ping");
  }
  return Status::OK();
}

Result<QueryResult> Client::Execute(const std::string& sql) {
  JAGUAR_ASSIGN_OR_RETURN(auto response,
                          RoundTrip(FrameType::kExecuteSql, Slice(sql)));
  if (response.first != FrameType::kResultSet) {
    return Internal("unexpected response to SQL");
  }
  BufferReader r((Slice(response.second)));
  return DecodeQueryResult(&r);
}

Status Client::RegisterUdf(const UdfInfo& info) {
  BufferWriter w;
  EncodeUdfInfo(info, &w);
  JAGUAR_ASSIGN_OR_RETURN(auto response,
                          RoundTrip(FrameType::kRegisterUdf, w.AsSlice()));
  if (response.first != FrameType::kAck) {
    return Internal("unexpected response to UDF registration");
  }
  return Status::OK();
}

Status Client::DropUdf(const std::string& name) {
  JAGUAR_ASSIGN_OR_RETURN(auto response,
                          RoundTrip(FrameType::kDropUdf, Slice(name)));
  if (response.first != FrameType::kAck) {
    return Internal("unexpected response to UDF drop");
  }
  return Status::OK();
}

Status Client::RegisterJJavaUdf(const std::string& name,
                                const std::string& source,
                                const std::string& entry, TypeId return_type,
                                std::vector<TypeId> arg_types) {
  // Compile locally — the client needs no server-side toolchain access,
  // which is precisely the portability advantage of bytecode UDFs.
  JAGUAR_ASSIGN_OR_RETURN(jvm::ClassFile cf, jjc::Compile(source));
  UdfInfo info;
  info.name = name;
  info.language = UdfLanguage::kJJava;
  info.return_type = return_type;
  info.arg_types = std::move(arg_types);
  info.impl_name = entry;
  info.payload = cf.Serialize();
  return RegisterUdf(info);
}

Result<Value> Client::TestUdfLocally(const std::string& source,
                                     const std::string& entry,
                                     const std::vector<Value>& args,
                                     TypeId return_type) {
  JAGUAR_ASSIGN_OR_RETURN(jvm::ClassFile cf, jjc::Compile(source));
  size_t dot = entry.find('.');
  if (dot == std::string::npos) {
    return InvalidArgument("entry point must be 'Class.method'");
  }
  jvm::Jvm vm;
  JAGUAR_RETURN_IF_ERROR(
      vm.system_loader()->LoadClass(Slice(cf.Serialize())).status());
  jvm::SecurityManager security;  // default deny: no callbacks client-side
  jvm::ExecContext ctx(&vm, vm.system_loader(), &security, {});
  std::vector<int64_t> slots;
  for (const Value& v : args) {
    switch (v.type()) {
      case TypeId::kInt: slots.push_back(v.AsInt()); break;
      case TypeId::kBool: slots.push_back(v.AsBool() ? 1 : 0); break;
      case TypeId::kBytes: {
        JAGUAR_ASSIGN_OR_RETURN(jvm::ArrayObject * arr,
                                ctx.NewByteArray(Slice(v.AsBytes())));
        slots.push_back(reinterpret_cast<int64_t>(arr));
        break;
      }
      default:
        return NotSupported("unsupported argument type for local UDF test");
    }
  }
  JAGUAR_ASSIGN_OR_RETURN(
      int64_t raw,
      ctx.CallStatic(entry.substr(0, dot), entry.substr(dot + 1), slots));
  switch (return_type) {
    case TypeId::kInt: return Value::Int(raw);
    case TypeId::kBool: return Value::Bool(raw != 0);
    case TypeId::kBytes:
      return Value::Bytes(jvm::ExecContext::ReadByteArray(
          reinterpret_cast<const jvm::ArrayObject*>(raw)));
    default:
      return NotSupported("unsupported return type for local UDF test");
  }
}

Result<QueryResult> Client::ExecuteWithClientFilter(
    const std::string& sql, const std::string& udf_source,
    const std::string& entry, const std::string& column,
    int64_t min_exclusive) {
  // 1. Data shipping: the server runs the residual query; all candidate
  //    rows cross the wire.
  JAGUAR_ASSIGN_OR_RETURN(QueryResult shipped, Execute(sql));
  JAGUAR_ASSIGN_OR_RETURN(size_t col, shipped.schema.IndexOf(column));

  // 2. Compile the UDF locally and set up a client-side VM (compiled once,
  //    invoked per row — same structure as the server's Design 3).
  JAGUAR_ASSIGN_OR_RETURN(jvm::ClassFile cf, jjc::Compile(udf_source));
  size_t dot = entry.find('.');
  if (dot == std::string::npos) {
    return InvalidArgument("entry point must be 'Class.method'");
  }
  const std::string cls_name = entry.substr(0, dot);
  const std::string method_name = entry.substr(dot + 1);
  jvm::Jvm vm;
  JAGUAR_RETURN_IF_ERROR(
      vm.system_loader()->LoadClass(Slice(cf.Serialize())).status());
  jvm::SecurityManager security;  // no natives client-side

  // 3. Post-filter.
  QueryResult out;
  out.schema = shipped.schema;
  for (Tuple& row : shipped.rows) {
    if (col >= row.num_values()) return Internal("row narrower than schema");
    const Value& v = row.value(col);
    jvm::ExecContext ctx(&vm, vm.system_loader(), &security, {});
    int64_t slot;
    switch (v.type()) {
      case TypeId::kInt: slot = v.AsInt(); break;
      case TypeId::kBool: slot = v.AsBool() ? 1 : 0; break;
      case TypeId::kBytes: {
        JAGUAR_ASSIGN_OR_RETURN(jvm::ArrayObject * arr,
                                ctx.NewByteArray(Slice(v.AsBytes())));
        slot = reinterpret_cast<int64_t>(arr);
        break;
      }
      default:
        return NotSupported("client filter column must be INT/BOOL/BYTEARRAY");
    }
    JAGUAR_ASSIGN_OR_RETURN(int64_t score,
                            ctx.CallStatic(cls_name, method_name, {slot}));
    if (score > min_exclusive) out.rows.push_back(std::move(row));
  }
  out.rows_affected = out.rows.size();
  return out;
}

Result<int64_t> Client::StoreLob(const std::vector<uint8_t>& data) {
  JAGUAR_ASSIGN_OR_RETURN(auto response,
                          RoundTrip(FrameType::kStoreLob, Slice(data)));
  if (response.first != FrameType::kLobHandle) {
    return Internal("unexpected response to LOB store");
  }
  BufferReader r((Slice(response.second)));
  return r.ReadI64();
}

Result<std::vector<uint8_t>> Client::FetchLob(int64_t handle, uint64_t offset,
                                              uint64_t len) {
  BufferWriter w;
  w.PutI64(handle);
  w.PutU64(offset);
  w.PutU64(len);
  JAGUAR_ASSIGN_OR_RETURN(auto response,
                          RoundTrip(FrameType::kFetchLob, w.AsSlice()));
  if (response.first != FrameType::kLobData) {
    return Internal("unexpected response to LOB fetch");
  }
  return std::move(response.second);
}

}  // namespace net
}  // namespace jaguar
