#ifndef JAGUAR_NET_CLIENT_H_
#define JAGUAR_NET_CLIENT_H_

/// \file client.h
/// The jaguar client library — the C++ analogue of the paper's Java applet
/// client library ([PS97]): connect, run SQL, and **develop UDFs locally,
/// then migrate them to the server** (Section 6.4).
///
/// The portability loop the paper describes works like this here:
///   1. Write a JJava UDF and compile it with jjc *on the client*.
///   2. Test it in a client-side JagVM (`TestUdfLocally`) — identical
///      bytecode, identical stream interfaces.
///   3. `RegisterJJavaUdf` uploads the same class file; the server verifies
///      and registers it. Queries now run it server-side.

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "net/protocol.h"
#include "types/value.h"

namespace jaguar {
namespace net {

class Client {
 public:
  /// Connects to a jaguar server at host:port (host must be an IPv4 dotted
  /// quad; the examples use 127.0.0.1).
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip health check.
  Status Ping();

  /// Executes one SQL statement server-side.
  Result<QueryResult> Execute(const std::string& sql);

  /// Registers an already-built UDF descriptor.
  Status RegisterUdf(const UdfInfo& info);
  Status DropUdf(const std::string& name);

  /// Compiles JJava `source` locally and uploads it under `name`.
  /// \param entry "Class.method" entry point.
  Status RegisterJJavaUdf(const std::string& name, const std::string& source,
                          const std::string& entry, TypeId return_type,
                          std::vector<TypeId> arg_types);

  /// Runs a JJava UDF entirely client-side (no server involved): the
  /// "develop and test at the client" half of the migration story. Callbacks
  /// are not available locally (there is no server); UDFs that need them
  /// must be tested against a server.
  static Result<Value> TestUdfLocally(const std::string& source,
                                      const std::string& entry,
                                      const std::vector<Value>& args,
                                      TypeId return_type);

  /// Client-side UDF execution — the "data shipping" alternative of Section
  /// 3.1 and the paper's Section 7 future work. Runs `sql` at the server,
  /// ships the result rows to the client, and keeps only rows where the
  /// locally compiled JJava predicate `entry(row[column]) > min_exclusive`
  /// holds, evaluated in a client-side JagVM. The server never sees the UDF
  /// (useful when the formula is proprietary, or uploads are forbidden);
  /// the price is shipping every candidate row — `udf/placement.h` models
  /// when that price is worth paying.
  Result<QueryResult> ExecuteWithClientFilter(const std::string& sql,
                                              const std::string& udf_source,
                                              const std::string& entry,
                                              const std::string& column,
                                              int64_t min_exclusive);

  /// Large objects.
  Result<int64_t> StoreLob(const std::vector<uint8_t>& data);
  Result<std::vector<uint8_t>> FetchLob(int64_t handle, uint64_t offset,
                                        uint64_t len);

 private:
  Client() = default;

  Result<std::pair<FrameType, std::vector<uint8_t>>> RoundTrip(
      FrameType type, Slice payload);

  int fd_ = -1;
};

}  // namespace net
}  // namespace jaguar

#endif  // JAGUAR_NET_CLIENT_H_
