#ifndef JAGUAR_NET_SERVER_H_
#define JAGUAR_NET_SERVER_H_

/// \file server.h
/// The jaguar network server: accepts direct client connections (the
/// two-tier architecture of Section 2.1) and serves SQL, UDF registration
/// ("migration"), and large-object requests.
///
/// Like PREDATOR, the server is "a single multi-threaded process, with at
/// least one thread per connected client"; query execution itself is
/// serialized by a database mutex (PREDATOR evaluates all expressions
/// serially).

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "net/protocol.h"

namespace jaguar {
namespace net {

class Server {
 public:
  /// \param db the engine to serve (not owned; must outlive the server).
  explicit Server(Database* db) : db_(db) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  Status Start(uint16_t port);

  /// Port actually bound (after Start).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes connections, joins all threads. Idempotent.
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  /// One live client connection: its socket and the thread serving it.
  /// The fd is owned here and closed only after the thread is joined, so
  /// `Stop` can safely `shutdown()` it to wake a blocked `ReadFrame` without
  /// racing a concurrent close (fd-reuse hazard).
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeClient(Connection* conn);
  /// Joins and frees connections whose serving thread has finished.
  /// Requires `conns_mutex_`.
  void ReapFinishedLocked();
  /// Handles one request frame; returns the response frame.
  std::pair<FrameType, std::vector<uint8_t>> HandleRequest(
      FrameType type, Slice payload);

  Database* db_;
  std::mutex db_mutex_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace jaguar

#endif  // JAGUAR_NET_SERVER_H_
