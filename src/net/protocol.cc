#include "net/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace jaguar {
namespace net {

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(StringPrintf("send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n == 0) return IoError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(StringPrintf("recv failed: %s", std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, Slice payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgument("frame payload too large");
  }
  // Header and payload go out as one buffer: a frame is a single send() on
  // the happy path (no short header write can interleave with another
  // thread's error frame), and WriteAll absorbs partial writes and EINTR
  // when the socket buffer is smaller than the frame.
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU8(static_cast<uint8_t>(type));
  frame.PutBytes(payload);
  return WriteAll(fd, frame.buffer().data(), frame.size());
}

Result<std::pair<FrameType, std::vector<uint8_t>>> ReadFrame(int fd) {
  uint8_t header[5];
  JAGUAR_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header)));
  uint32_t len = static_cast<uint32_t>(header[0]) |
                 (static_cast<uint32_t>(header[1]) << 8) |
                 (static_cast<uint32_t>(header[2]) << 16) |
                 (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) return Corruption("oversized frame from peer");
  std::vector<uint8_t> payload(len);
  if (len > 0) {
    JAGUAR_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len));
  }
  return std::make_pair(static_cast<FrameType>(header[4]),
                        std::move(payload));
}

void EncodeUdfInfo(const UdfInfo& info, BufferWriter* w) {
  w->PutString(info.name);
  w->PutU8(static_cast<uint8_t>(info.language));
  w->PutU8(static_cast<uint8_t>(info.return_type));
  w->PutU32(static_cast<uint32_t>(info.arg_types.size()));
  for (TypeId t : info.arg_types) w->PutU8(static_cast<uint8_t>(t));
  w->PutString(info.impl_name);
  w->PutLengthPrefixed(Slice(info.payload));
}

Result<UdfInfo> DecodeUdfInfo(BufferReader* r) {
  UdfInfo info;
  JAGUAR_ASSIGN_OR_RETURN(info.name, r->ReadString());
  JAGUAR_ASSIGN_OR_RETURN(uint8_t lang, r->ReadU8());
  if (lang > static_cast<uint8_t>(UdfLanguage::kJJavaIsolated)) {
    return Corruption("bad UDF language in frame");
  }
  info.language = static_cast<UdfLanguage>(lang);
  JAGUAR_ASSIGN_OR_RETURN(uint8_t ret, r->ReadU8());
  if (ret > static_cast<uint8_t>(TypeId::kBytes)) {
    return Corruption("bad return type in frame");
  }
  info.return_type = static_cast<TypeId>(ret);
  JAGUAR_ASSIGN_OR_RETURN(uint32_t nargs, r->ReadU32());
  if (nargs > 256) return Corruption("implausible UDF arity in frame");
  for (uint32_t i = 0; i < nargs; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(uint8_t t, r->ReadU8());
    if (t > static_cast<uint8_t>(TypeId::kBytes)) {
      return Corruption("bad arg type in frame");
    }
    info.arg_types.push_back(static_cast<TypeId>(t));
  }
  JAGUAR_ASSIGN_OR_RETURN(info.impl_name, r->ReadString());
  JAGUAR_ASSIGN_OR_RETURN(Slice payload, r->ReadLengthPrefixed());
  info.payload = payload.ToVector();
  return info;
}

void EncodeQueryResult(const QueryResult& result, BufferWriter* w) {
  result.schema.WriteTo(w);
  w->PutU64(result.rows_affected);
  w->PutString(result.message);
  w->PutU32(static_cast<uint32_t>(result.rows.size()));
  for (const Tuple& t : result.rows) t.WriteTo(w);
  // Per-query metrics delta: remote clients see the same observability as
  // embedded callers.
  w->PutU32(static_cast<uint32_t>(result.metrics_delta.size()));
  for (const auto& [name, value] : result.metrics_delta) {
    w->PutString(name);
    w->PutU64(value);
  }
}

Result<QueryResult> DecodeQueryResult(BufferReader* r) {
  QueryResult result;
  JAGUAR_ASSIGN_OR_RETURN(result.schema, Schema::ReadFrom(r));
  JAGUAR_ASSIGN_OR_RETURN(result.rows_affected, r->ReadU64());
  JAGUAR_ASSIGN_OR_RETURN(result.message, r->ReadString());
  JAGUAR_ASSIGN_OR_RETURN(uint32_t nrows, r->ReadU32());
  result.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::ReadFrom(r));
    result.rows.push_back(std::move(t));
  }
  JAGUAR_ASSIGN_OR_RETURN(uint32_t nmetrics, r->ReadU32());
  for (uint32_t i = 0; i < nmetrics; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    JAGUAR_ASSIGN_OR_RETURN(uint64_t value, r->ReadU64());
    result.metrics_delta[std::move(name)] = value;
  }
  return result;
}

void EncodeStatusPayload(const Status& status, BufferWriter* w) {
  w->PutU8(static_cast<uint8_t>(status.code()));
  w->PutString(status.message());
}

Status DecodeStatusPayload(BufferReader* r) {
  Result<uint8_t> code = r->ReadU8();
  if (!code.ok()) return Corruption("malformed status frame");
  Result<std::string> message = r->ReadString();
  if (!message.ok()) return Corruption("malformed status frame");
  return Status(static_cast<StatusCode>(*code), std::move(*message));
}

}  // namespace net
}  // namespace jaguar
