#ifndef JAGUAR_UDF_GENERIC_UDF_H_
#define JAGUAR_UDF_GENERIC_UDF_H_

/// \file generic_udf.h
/// The paper's "generic" benchmark UDF (Section 5.1):
///
///     UDF(ByteArray, NumDataIndepComps, NumDataDepComps, NumCallbacks) -> INT
///
/// * a data-independent loop doing `NumDataIndepComps` integer additions,
/// * a data-dependent loop making `NumDataDepComps` full passes over the
///   byte array,
/// * `NumCallbacks` callbacks to the server (no bulk data transferred).
///
/// The result is a deterministic checksum so that every implementation —
/// native, bounds-checked native, SFI native, isolated native, and the JJava
/// bytecode version — must agree bit-for-bit; the test suite exploits this to
/// differentially test every design against every other.
///
/// Each loop iteration passes through an opaque compiler barrier. Without it,
/// the C++ optimizer would reduce the computation loops to closed forms and
/// the comparison with interpreted/JIT-compiled bytecode (which performs the
/// real iterations) would be meaningless.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "udf/udf.h"

namespace jaguar {

/// Reference semantics of the generic UDF, shared by every implementation.
/// Callbacks are routed through `ctx` (`Callback(0, i)` must return a value
/// that is added to the accumulator; the standard handler returns `i`).
Result<int64_t> GenericUdfCompute(const std::vector<uint8_t>& data,
                                  int64_t indep_comps, int64_t dep_comps,
                                  int64_t callbacks, UdfContext* ctx,
                                  bool bounds_checked);

/// Pure function: what the generic UDF returns when every callback `i`
/// yields `i` (the standard benchmark handler). Used as the expected value in
/// differential tests.
int64_t GenericUdfExpected(const std::vector<uint8_t>& data,
                           int64_t indep_comps, int64_t dep_comps,
                           int64_t callbacks);

/// Registers the native implementations in the global registry:
///   * `generic_udf`          — unchecked C++ (the paper's "C++")
///   * `generic_udf_checked`  — C++ with explicit array bounds checks
///     (the fairness variant of Section 5.4)
///   * `noop_udf`             — returns 0, for the calibration experiments
/// Idempotent: re-registration attempts are ignored.
void RegisterGenericUdfs();

/// JJava source code for the generic UDF (compiled by jjc in benches, tests
/// and examples; also what a client would upload in the migration workflow).
const char* GenericUdfJJavaSource();

}  // namespace jaguar

#endif  // JAGUAR_UDF_GENERIC_UDF_H_
