#include "udf/placement.h"

#include "common/string_util.h"

namespace jaguar {

PlacementDecision ChoosePlacement(const PlacementCosts& c) {
  // Server-side ("function shipping"): UDF + callbacks run at the server;
  // only selected rows (argument + other columns) cross the wire.
  const double server_udf = c.tuples * (c.server_seconds_per_invocation +
                                        c.callbacks_per_invocation *
                                            c.server_callback_seconds);
  const double server_ship =
      c.selectivity * c.tuples *
          (c.bytes_per_tuple + c.result_bytes_per_tuple) /
          c.network_bytes_per_second +
      c.network_round_trip_seconds;
  const double server_total = server_udf + server_ship;

  // Client-side ("data shipping", the paper's REDNESS post-filter): every
  // candidate ByteArray crosses the wire, the client filters locally, and
  // any callbacks become network round trips.
  const double client_ship =
      c.tuples * (c.bytes_per_tuple + c.result_bytes_per_tuple) /
          c.network_bytes_per_second +
      c.network_round_trip_seconds;
  const double client_udf =
      c.tuples * (c.client_seconds_per_invocation +
                  c.callbacks_per_invocation * c.network_round_trip_seconds);
  const double client_total = client_ship + client_udf;

  PlacementDecision decision;
  decision.server_seconds = server_total;
  decision.client_seconds = client_total;
  decision.placement =
      server_total <= client_total ? Placement::kServer : Placement::kClient;
  return decision;
}

std::string PlacementDecision::ToString() const {
  return StringPrintf(
      "place UDF at %s (modeled: server %.4fs, client %.4fs)",
      placement == Placement::kServer ? "SERVER" : "CLIENT", server_seconds,
      client_seconds);
}

}  // namespace jaguar
