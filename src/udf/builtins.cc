#include "udf/builtins.h"

#include "common/random.h"
#include "common/string_util.h"
#include "udf/udf.h"

namespace jaguar {

namespace {

Status LengthUdf(const std::vector<Value>& args, UdfContext* ctx, Value* out) {
  *out = Value::Int(static_cast<int64_t>(args[0].AsBytes().size()));
  return Status::OK();
}

Status StrlenUdf(const std::vector<Value>& args, UdfContext* ctx, Value* out) {
  *out = Value::Int(static_cast<int64_t>(args[0].AsString().size()));
  return Status::OK();
}

Status ByteAtUdf(const std::vector<Value>& args, UdfContext* ctx, Value* out) {
  const std::vector<uint8_t>& data = args[0].AsBytes();
  int64_t idx = args[1].AsInt();
  if (idx < 0 || static_cast<uint64_t>(idx) >= data.size()) {
    return RuntimeError(StringPrintf(
        "byte_at index %lld out of bounds for %zu-byte array",
        static_cast<long long>(idx), data.size()));
  }
  *out = Value::Int(data[static_cast<size_t>(idx)]);
  return Status::OK();
}

Status RandBytesUdf(const std::vector<Value>& args, UdfContext* ctx,
                    Value* out) {
  int64_t n = args[0].AsInt();
  int64_t seed = args[1].AsInt();
  if (n < 0 || n > (1 << 28)) {
    return InvalidArgument("randbytes size out of range");
  }
  Random rng(static_cast<uint64_t>(seed));
  *out = Value::Bytes(rng.Bytes(static_cast<size_t>(n)));
  return Status::OK();
}

Status ZeroBytesUdf(const std::vector<Value>& args, UdfContext* ctx,
                    Value* out) {
  int64_t n = args[0].AsInt();
  if (n < 0 || n > (1 << 28)) {
    return InvalidArgument("zerobytes size out of range");
  }
  *out = Value::Bytes(std::vector<uint8_t>(static_cast<size_t>(n), 0));
  return Status::OK();
}

Status AbsIntUdf(const std::vector<Value>& args, UdfContext* ctx, Value* out) {
  int64_t v = args[0].AsInt();
  *out = Value::Int(v < 0 ? -v : v);
  return Status::OK();
}

}  // namespace

void RegisterBuiltinUdfs() {
  static const bool registered = [] {
    NativeUdfRegistry* reg = NativeUdfRegistry::Global();
    reg->Register({"length", TypeId::kInt, {TypeId::kBytes}, &LengthUdf}).ok();
    reg->Register({"strlen", TypeId::kInt, {TypeId::kString}, &StrlenUdf})
        .ok();
    reg->Register({"byte_at", TypeId::kInt, {TypeId::kBytes, TypeId::kInt},
                   &ByteAtUdf})
        .ok();
    reg->Register({"randbytes", TypeId::kBytes, {TypeId::kInt, TypeId::kInt},
                   &RandBytesUdf})
        .ok();
    reg->Register({"zerobytes", TypeId::kBytes, {TypeId::kInt}, &ZeroBytesUdf})
        .ok();
    reg->Register({"abs_int", TypeId::kInt, {TypeId::kInt}, &AbsIntUdf}).ok();
    return true;
  }();
  (void)registered;
}

}  // namespace jaguar
