#ifndef JAGUAR_UDF_UDF_MANAGER_H_
#define JAGUAR_UDF_UDF_MANAGER_H_

/// \file udf_manager.h
/// Resolves function names to runners, honoring each UDF's registered design.
///
/// Native designs (Design 1 and its bounds-checked variant) are handled here
/// directly. The other designs — isolated processes (Design 2), the JagVM
/// (Design 3), SFI — are plugged in as *runner factories* by their modules, so
/// this module stays independent of them:
///
///     manager.SetRunnerFactory(UdfLanguage::kJJava, MakeJvmRunnerFactory(&vm));
///
/// Unregistered names fall back to the global native registry (builtins like
/// `length` and `randbytes` run as Design 1).

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "udf/quarantine.h"
#include "udf/udf.h"

namespace jaguar {

class UdfManager : public UdfResolver {
 public:
  /// \param catalog may be null (native-registry-only resolution; used by
  /// tests and by remote executor processes).
  explicit UdfManager(const Catalog* catalog) : catalog_(catalog) {}

  /// Builds (or returns the cached) runner for `name`.
  Result<UdfRunner*> Resolve(const std::string& name, TypeId* return_type,
                             std::vector<TypeId>* arg_types) override;

  /// Factory producing a runner for one catalog UDF entry of a given design.
  using RunnerFactory =
      std::function<Result<std::unique_ptr<UdfRunner>>(const UdfInfo&)>;

  /// Installs the factory for `lang` (kNativeIsolated, kJJava, kNativeSfi).
  void SetRunnerFactory(UdfLanguage lang, RunnerFactory factory);

  /// Enables the per-(UDF, arguments) result memo: every runner built from
  /// now on gets an LRU `UdfMemoCache` bounded at `entries` results
  /// (0 = disabled, the default — the paper's figures measure real
  /// per-invocation crossings). Existing cached runners are unaffected
  /// until the next invalidation.
  void set_memo_capacity(size_t entries) { memo_capacity_ = entries; }

  /// Drops cached runners and their memo caches (required after catalog
  /// mutations that change a UDF's registration — this is what guarantees
  /// memoized results never outlive a re-registration).
  void InvalidateCache() { cache_.clear(); }

  /// Attaches the per-UDF quarantine tracker (not owned; may be null to
  /// disable). Resolution rejects quarantined names and every runner built
  /// afterwards reports its invocation outcomes to the tracker.
  void set_quarantine(QuarantineTracker* quarantine) {
    quarantine_ = quarantine;
  }
  QuarantineTracker* quarantine() const { return quarantine_; }

 private:
  struct CachedRunner {
    std::unique_ptr<UdfRunner> runner;
    TypeId return_type;
    std::vector<TypeId> arg_types;
    /// Result memo attached to `runner` (null when memoization is off).
    std::unique_ptr<UdfMemoCache> memo;
  };

  Result<CachedRunner> Build(const std::string& name);

  const Catalog* catalog_;
  std::map<UdfLanguage, RunnerFactory> factories_;
  std::map<std::string, CachedRunner> cache_;
  size_t memo_capacity_ = 0;
  QuarantineTracker* quarantine_ = nullptr;
};

}  // namespace jaguar

#endif  // JAGUAR_UDF_UDF_MANAGER_H_
