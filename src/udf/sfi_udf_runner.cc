#include "udf/sfi_udf_runner.h"

#include "common/string_util.h"

namespace jaguar {

namespace {

inline void Opaque(int64_t& v) { asm volatile("" : "+r"(v)); }

/// The paper's generic benchmark UDF, SFI-instrumented: every byte access is
/// masked into the sandbox region.
Status SfiGenericUdf(sfi::SfiRegion* region, uint64_t data_len,
                     const std::vector<Value>& args, UdfContext* ctx,
                     Value* out) {
  JAGUAR_ASSIGN_OR_RETURN(int64_t indep, args[1].CoerceInt());
  JAGUAR_ASSIGN_OR_RETURN(int64_t dep, args[2].CoerceInt());
  JAGUAR_ASSIGN_OR_RETURN(int64_t callbacks, args[3].CoerceInt());

  int64_t acc = 0;
  for (int64_t i = 0; i < indep; ++i) {
    acc += i;
    Opaque(acc);
  }
  for (int64_t pass = 0; pass < dep; ++pass) {
    for (uint64_t j = 0; j < data_len; ++j) {
      // The SFI access: one AND folds the address into the sandbox.
      acc += region->LoadByte(j);
      Opaque(acc);
    }
  }
  for (int64_t c = 0; c < callbacks; ++c) {
    JAGUAR_ASSIGN_OR_RETURN(int64_t r, ctx->Callback(0, c));
    acc += r;
  }
  *out = Value::Int(acc);
  return Status::OK();
}

/// SFI-instrumented rolling checksum (used by examples/tests as a second,
/// store-heavy SFI workload: it writes a histogram inside the sandbox).
Status SfiHistogramUdf(sfi::SfiRegion* region, uint64_t data_len,
                       const std::vector<Value>& args, UdfContext* ctx,
                       Value* out) {
  // Histogram lives in the sandbox just past the data.
  const uint64_t hist_base = data_len;
  for (int i = 0; i < 256; ++i) {
    region->StoreWord(hist_base + 8 * i, 0);
  }
  for (uint64_t j = 0; j < data_len; ++j) {
    uint8_t b = region->LoadByte(j);
    uint64_t slot = hist_base + 8 * b;
    region->StoreWord(slot, region->LoadWord(slot) + 1);
  }
  // Return the index of the most frequent byte value.
  int64_t best = 0, best_count = -1;
  for (int i = 0; i < 256; ++i) {
    int64_t count = region->LoadWord(hist_base + 8 * i);
    if (count > best_count) {
      best_count = count;
      best = i;
    }
  }
  *out = Value::Int(best);
  return Status::OK();
}

}  // namespace

Result<SfiUdfFn> FindSfiUdf(const std::string& impl_name) {
  if (impl_name == "generic_udf") return &SfiGenericUdf;
  if (impl_name == "histogram_udf") return &SfiHistogramUdf;
  return NotFound(
      "no SFI-instrumented build of '" + impl_name +
      "' (source-level SFI requires the UDF to use the sandbox accessors)");
}

Result<std::unique_ptr<SfiNativeRunner>> SfiNativeRunner::Create(
    const std::string& impl_name, TypeId return_type,
    std::vector<TypeId> arg_types, unsigned region_log2) {
  auto runner = std::unique_ptr<SfiNativeRunner>(new SfiNativeRunner());
  JAGUAR_ASSIGN_OR_RETURN(runner->fn_, FindSfiUdf(impl_name));
  runner->return_type_ = return_type;
  runner->arg_types_ = std::move(arg_types);
  JAGUAR_ASSIGN_OR_RETURN(runner->region_, sfi::SfiRegion::Create(region_log2));
  return runner;
}

Result<Value> SfiNativeRunner::DoInvoke(const std::vector<Value>& args,
                                        UdfContext* ctx) {
  JAGUAR_RETURN_IF_ERROR(CheckUdfArgs("sfi_udf", arg_types_, args));
  if (args.empty() || args[0].type() != TypeId::kBytes) {
    return InvalidArgument("SFI UDFs take a BYTEARRAY first argument");
  }
  const std::vector<uint8_t>& data = args[0].AsBytes();
  // One sandbox region per runner: parallel workers sharing the runner must
  // take turns, or their CopyIn/execute pairs would interleave.
  std::lock_guard<std::mutex> lock(region_mutex_);
  // The trusted crossing: copy the data into the sandbox. (Histogram space
  // is reserved past the data by the UDFs that need it.)
  if (data.size() + 4096 > region_.size()) {
    return ResourceExhausted("argument larger than the SFI sandbox");
  }
  JAGUAR_RETURN_IF_ERROR(region_.CopyIn(0, data.data(), data.size()));
  Value out;
  JAGUAR_RETURN_IF_ERROR(fn_(&region_, data.size(), args, ctx, &out));
  return out;
}

UdfManager::RunnerFactory MakeSfiRunnerFactory(unsigned region_log2) {
  return [region_log2](const UdfInfo& info)
             -> Result<std::unique_ptr<UdfRunner>> {
    JAGUAR_ASSIGN_OR_RETURN(
        std::unique_ptr<SfiNativeRunner> runner,
        SfiNativeRunner::Create(info.impl_name, info.return_type,
                                info.arg_types, region_log2));
    return std::unique_ptr<UdfRunner>(std::move(runner));
  };
}

}  // namespace jaguar
