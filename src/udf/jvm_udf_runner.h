#ifndef JAGUAR_UDF_JVM_UDF_RUNNER_H_
#define JAGUAR_UDF_JVM_UDF_RUNNER_H_

/// \file jvm_udf_runner.h
/// Design 3 ("JNI" in the paper's graphs): JJava UDFs executing inside the
/// in-process JagVM.
///
/// Each registered UDF gets its **own class-loader namespace** (Section 6.1
/// isolation) under the VM's system loader, and runs under a default-deny
/// security manager granted only the callback permissions. Arguments are
/// marshalled across the boundary per invocation — byte arrays are copied
/// into the VM heap — which is exactly the "impedance mismatch" cost the
/// paper measures in Figure 5.

#include <memory>

#include "catalog/catalog.h"
#include "jvm/class_loader.h"
#include "jvm/vm.h"
#include "udf/udf.h"
#include "udf/udf_manager.h"

namespace jaguar {

/// Registers the `Jaguar.*` native methods (the UDF→server callback surface)
/// on `vm`:
///   * `Jaguar.callback(kind, arg) -> int`   permission "udf.callback"
///   * `Jaguar.fetch(handle, off, len) -> byte[]`  permission "udf.fetch"
/// They route through the invoking `UdfContext` (stashed in the
/// ExecContext's user data). Idempotent per VM.
Status InstallJaguarNatives(jvm::Jvm* vm);

class JvmUdfRunner : public UdfRunner {
 public:
  /// Loads `info.payload` (a JagVM class file) into a fresh namespace,
  /// resolves the entry point `info.impl_name` ("Class.method"), and checks
  /// its signature against the declared SQL signature (INT ↔ I,
  /// BYTEARRAY ↔ B; BOOL is passed as 0/1 int).
  static Result<std::unique_ptr<JvmUdfRunner>> Create(
      jvm::Jvm* vm, const UdfInfo& info, jvm::ResourceLimits limits);

  std::string design_label() const override { return "JNI"; }

  const jvm::ClassLoader* loader() const { return loader_.get(); }

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;
  /// Crosses the language boundary **once** for the whole batch: a single
  /// ExecContext, the entry point resolved once, and the context recycled
  /// (`ResetForNextItem`) between items so per-invocation quotas still hold.
  Result<std::vector<Value>> DoInvokeBatch(
      const std::vector<std::vector<Value>>& args_batch,
      UdfContext* ctx) override;

 private:
  JvmUdfRunner() = default;

  /// Copies one argument row into `exec`'s heap as raw call slots.
  Result<std::vector<int64_t>> MarshalArgs(jvm::ExecContext* exec,
                                           const std::vector<Value>& args);
  /// Copies a raw result slot back out of the VM (heap-independent Value).
  Result<Value> UnmarshalResult(int64_t raw) const;

  jvm::Jvm* vm_ = nullptr;
  std::unique_ptr<jvm::ClassLoader> loader_;  ///< This UDF's namespace.
  jvm::SecurityManager security_;
  jvm::ResourceLimits limits_;
  std::string class_name_;
  std::string method_name_;
  TypeId return_type_ = TypeId::kInt;
  std::vector<TypeId> arg_types_;
};

/// UdfManager factory for `UdfLanguage::kJJava`.
UdfManager::RunnerFactory MakeJvmRunnerFactory(jvm::Jvm* vm,
                                               jvm::ResourceLimits limits);

}  // namespace jaguar

#endif  // JAGUAR_UDF_JVM_UDF_RUNNER_H_
