#ifndef JAGUAR_UDF_QUARANTINE_H_
#define JAGUAR_UDF_QUARANTINE_H_

/// \file quarantine.h
/// Per-UDF quarantine tracker.
///
/// Section 4 of the paper observes that a misbehaving UDF is not a one-off
/// event: a function that loops forever or crashes its executor will do so on
/// every invocation, and each incident costs the server a killed child and a
/// respawn. The tracker turns repeated incidents into a standing verdict —
/// after `threshold` *consecutive* timeouts/crashes a UDF is quarantined and
/// `UdfManager::Resolve` refuses to run it until it is re-registered (or
/// dropped), mirroring how a DBA would disable a known-bad extension.
///
/// Only failures that indicate a runaway or dead UDF count as strikes:
/// `DeadlineExceeded` (watchdog kill / budget abort) and `IoError` (executor
/// child died mid-crossing). Ordinary errors (bad arguments, runtime faults
/// inside the VM) are the UDF behaving badly but controllably, and any
/// successful invocation resets the streak.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "obs/metrics.h"

namespace jaguar {

class QuarantineTracker {
 public:
  /// \param threshold Consecutive strike count that trips quarantine.
  explicit QuarantineTracker(int threshold = kDefaultThreshold);

  /// Records the outcome of one invocation (or batch crossing) of `name`.
  /// Strikes accumulate on DeadlineExceeded/IoError; success resets.
  void RecordOutcome(const std::string& name, const Status& outcome);

  /// \return OK if `name` may run, SecurityViolation if quarantined.
  /// Bumps `udf.quarantine.rejections` when rejecting.
  Status CheckAllowed(const std::string& name);

  bool IsQuarantined(const std::string& name);

  /// Clears any strikes/quarantine for `name` — called when the UDF is
  /// re-registered or dropped.
  void Reset(const std::string& name);

  int threshold() const { return threshold_; }

  static constexpr int kDefaultThreshold = 3;

 private:
  struct Entry {
    int consecutive_strikes = 0;
    bool quarantined = false;
  };

  const int threshold_;
  std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;  ///< Keyed by lower name.
  obs::Counter* trips_;
  obs::Counter* rejections_;
  obs::Counter* strikes_;
};

}  // namespace jaguar

#endif  // JAGUAR_UDF_QUARANTINE_H_
