#include "udf/jvm_udf_runner.h"

#include "common/string_util.h"

namespace jaguar {

namespace {

Result<jvm::VType> SqlTypeToVmType(TypeId t) {
  switch (t) {
    case TypeId::kInt:
    case TypeId::kBool:
      return jvm::VType::kInt;
    case TypeId::kBytes:
      return jvm::VType::kByteArray;
    default:
      return NotSupported(std::string("JJava UDFs cannot take ") +
                          TypeIdToString(t) + " arguments");
  }
}

UdfContext* ContextOf(jvm::NativeCallInfo* info) {
  return static_cast<UdfContext*>(info->ctx->user_data());
}

}  // namespace

Status InstallJaguarNatives(jvm::Jvm* vm) {
  Status s = vm->RegisterNative(
      {"Jaguar.callback", jvm::Signature::Parse("(II)I").value(),
       "udf.callback", [](jvm::NativeCallInfo* info) -> Status {
         UdfContext* udf_ctx = ContextOf(info);
         if (udf_ctx == nullptr) {
           return Internal("Jaguar.callback outside a UDF invocation");
         }
         JAGUAR_ASSIGN_OR_RETURN(
             info->result, udf_ctx->Callback(info->args[0], info->args[1]));
         return Status::OK();
       }});
  if (s.IsAlreadyExists()) return Status::OK();  // idempotent
  JAGUAR_RETURN_IF_ERROR(s);
  return vm->RegisterNative(
      {"Jaguar.fetch", jvm::Signature::Parse("(III)B").value(), "udf.fetch",
       [](jvm::NativeCallInfo* info) -> Status {
         UdfContext* udf_ctx = ContextOf(info);
         if (udf_ctx == nullptr) {
           return Internal("Jaguar.fetch outside a UDF invocation");
         }
         JAGUAR_ASSIGN_OR_RETURN(
             std::vector<uint8_t> bytes,
             udf_ctx->FetchBytes(info->args[0],
                                 static_cast<uint64_t>(info->args[1]),
                                 static_cast<uint64_t>(info->args[2])));
         JAGUAR_ASSIGN_OR_RETURN(jvm::ArrayObject * arr,
                                 info->ctx->NewByteArray(Slice(bytes)));
         info->result = reinterpret_cast<int64_t>(arr);
         return Status::OK();
       }});
}

Result<std::unique_ptr<JvmUdfRunner>> JvmUdfRunner::Create(
    jvm::Jvm* vm, const UdfInfo& info, jvm::ResourceLimits limits) {
  auto runner = std::unique_ptr<JvmUdfRunner>(new JvmUdfRunner());
  runner->vm_ = vm;
  runner->limits_ = limits;
  runner->return_type_ = info.return_type;
  runner->arg_types_ = info.arg_types;

  // Least privilege: only the two callback natives. Every security decision
  // is audited under the UDF's registered name (the tracing capability the
  // paper found missing from 1998 Java).
  runner->security_ = jvm::SecurityManager();
  runner->security_.Grant("udf.callback");
  runner->security_.Grant("udf.fetch");
  runner->security_.SetAudit(vm->audit_log(), info.name);

  // Per-UDF namespace (Section 6.1): isolates this UDF's classes from other
  // UDFs while still seeing trusted system classes.
  runner->loader_ = std::make_unique<jvm::ClassLoader>(vm->system_loader());
  JAGUAR_RETURN_IF_ERROR(
      runner->loader_->LoadClass(Slice(info.payload)).status());

  size_t dot = info.impl_name.find('.');
  if (dot == std::string::npos) {
    return InvalidArgument("JJava UDF entry point must be 'Class.method': " +
                           info.impl_name);
  }
  runner->class_name_ = info.impl_name.substr(0, dot);
  runner->method_name_ = info.impl_name.substr(dot + 1);

  JAGUAR_ASSIGN_OR_RETURN(const jvm::LoadedClass* cls,
                          runner->loader_->FindClass(runner->class_name_));
  JAGUAR_ASSIGN_OR_RETURN(const jvm::VerifiedMethod* method,
                          cls->cls.FindMethod(runner->method_name_));

  // Entry-point signature must agree with the SQL declaration.
  if (method->sig.params.size() != info.arg_types.size()) {
    return InvalidArgument(StringPrintf(
        "UDF %s: entry point takes %zu params but %zu are declared",
        info.name.c_str(), method->sig.params.size(), info.arg_types.size()));
  }
  for (size_t i = 0; i < info.arg_types.size(); ++i) {
    JAGUAR_ASSIGN_OR_RETURN(jvm::VType want, SqlTypeToVmType(info.arg_types[i]));
    if (method->sig.params[i] != want) {
      return InvalidArgument(StringPrintf(
          "UDF %s: parameter %zu is %s in bytecode but %s in the declaration",
          info.name.c_str(), i, jvm::VTypeToString(method->sig.params[i]),
          TypeIdToString(info.arg_types[i])));
    }
  }
  JAGUAR_ASSIGN_OR_RETURN(jvm::VType want_ret,
                          SqlTypeToVmType(info.return_type));
  if (method->sig.returns_void || method->sig.return_type != want_ret) {
    return InvalidArgument(StringPrintf("UDF %s: return type mismatch",
                                        info.name.c_str()));
  }
  return runner;
}

Result<std::vector<int64_t>> JvmUdfRunner::MarshalArgs(
    jvm::ExecContext* exec, const std::vector<Value>& args) {
  // Copies across the language boundary (byte arrays into the VM heap).
  std::vector<int64_t> slots;
  slots.reserve(args.size());
  for (const Value& v : args) {
    if (v.is_null()) {
      return InvalidArgument("JJava UDFs do not accept NULL arguments");
    }
    switch (v.type()) {
      case TypeId::kInt:
        slots.push_back(v.AsInt());
        break;
      case TypeId::kBool:
        slots.push_back(v.AsBool() ? 1 : 0);
        break;
      case TypeId::kBytes: {
        JAGUAR_ASSIGN_OR_RETURN(jvm::ArrayObject * arr,
                                exec->NewByteArray(Slice(v.AsBytes())));
        slots.push_back(reinterpret_cast<int64_t>(arr));
        break;
      }
      default:
        return NotSupported("unsupported JJava UDF argument type");
    }
  }
  return slots;
}

Result<Value> JvmUdfRunner::UnmarshalResult(int64_t raw) const {
  switch (return_type_) {
    case TypeId::kInt:
      return Value::Int(raw);
    case TypeId::kBool:
      return Value::Bool(raw != 0);
    case TypeId::kBytes: {
      const auto* arr = reinterpret_cast<const jvm::ArrayObject*>(raw);
      return Value::Bytes(jvm::ExecContext::ReadByteArray(arr));
    }
    default:
      return Internal("unexpected JJava UDF return type");
  }
}

Result<Value> JvmUdfRunner::DoInvoke(const std::vector<Value>& args,
                                     UdfContext* ctx) {
  JAGUAR_RETURN_IF_ERROR(CheckUdfArgs(method_name_, arg_types_, args));

  // One ExecContext per invocation: fresh heap pool, fresh budget, the UDF
  // context riding along for the Jaguar.* natives.
  jvm::ExecContext exec(vm_, loader_.get(), &security_, limits_, ctx);
  if (ctx != nullptr) exec.set_deadline(ctx->deadline());
  JAGUAR_ASSIGN_OR_RETURN(std::vector<int64_t> slots,
                          MarshalArgs(&exec, args));
  JAGUAR_ASSIGN_OR_RETURN(int64_t raw,
                          exec.CallStatic(class_name_, method_name_, slots));
  // The heap pool dies with `exec`; UnmarshalResult copies bytes out first.
  return UnmarshalResult(raw);
}

Result<std::vector<Value>> JvmUdfRunner::DoInvokeBatch(
    const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx) {
  for (const std::vector<Value>& args : args_batch) {
    JAGUAR_RETURN_IF_ERROR(CheckUdfArgs(method_name_, arg_types_, args));
  }
  // One boundary crossing for the whole batch: a single ExecContext and one
  // name resolution, recycled between items (Section 2.5's amortization).
  jvm::ExecContext exec(vm_, loader_.get(), &security_, limits_, ctx);
  if (ctx != nullptr) exec.set_deadline(ctx->deadline());
  JAGUAR_ASSIGN_OR_RETURN(jvm::ExecContext::ResolvedStatic target,
                          exec.ResolveStatic(class_name_, method_name_));
  std::vector<Value> results;
  results.reserve(args_batch.size());
  for (size_t row = 0; row < args_batch.size(); ++row) {
    if (row > 0) exec.ResetForNextItem();
    JAGUAR_ASSIGN_OR_RETURN(std::vector<int64_t> slots,
                            MarshalArgs(&exec, args_batch[row]));
    JAGUAR_ASSIGN_OR_RETURN(int64_t raw, exec.CallResolvedStatic(target, slots));
    // Copy the result out before the next item resets the heap pool.
    JAGUAR_ASSIGN_OR_RETURN(Value out, UnmarshalResult(raw));
    results.push_back(std::move(out));
  }
  return results;
}

UdfManager::RunnerFactory MakeJvmRunnerFactory(jvm::Jvm* vm,
                                               jvm::ResourceLimits limits) {
  return [vm, limits](const UdfInfo& info)
             -> Result<std::unique_ptr<UdfRunner>> {
    JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<JvmUdfRunner> runner,
                            JvmUdfRunner::Create(vm, info, limits));
    return std::unique_ptr<UdfRunner>(std::move(runner));
  };
}

}  // namespace jaguar
