#include "udf/udf_manager.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {

void UdfManager::SetRunnerFactory(UdfLanguage lang, RunnerFactory factory) {
  factories_[lang] = std::move(factory);
}

Result<UdfManager::CachedRunner> UdfManager::Build(const std::string& name) {
  // Catalog registrations take precedence: a client can register a UDF that
  // shadows nothing (new name) or fail at registration time on a clash.
  if (catalog_ != nullptr) {
    Result<const UdfInfo*> info = catalog_->GetUdf(name);
    if (info.ok()) {
      const UdfInfo& udf = **info;
      switch (udf.language) {
        case UdfLanguage::kNative:
        case UdfLanguage::kNativeChecked: {
          JAGUAR_ASSIGN_OR_RETURN(
              const NativeUdfEntry* entry,
              NativeUdfRegistry::Global()->Lookup(udf.impl_name));
          return CachedRunner{std::make_unique<IntegratedNativeRunner>(entry),
                              udf.return_type, udf.arg_types};
        }
        default: {
          auto it = factories_.find(udf.language);
          if (it == factories_.end()) {
            return NotSupported(
                StringPrintf("no runner factory installed for %s UDF '%s'",
                             UdfLanguageToString(udf.language),
                             udf.name.c_str()));
          }
          JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<UdfRunner> runner,
                                  it->second(udf));
          return CachedRunner{std::move(runner), udf.return_type,
                              udf.arg_types};
        }
      }
    }
    if (!info.status().IsNotFound()) return info.status();
  }
  // Fallback: direct native-registry lookup (builtins, Design 1 defaults).
  JAGUAR_ASSIGN_OR_RETURN(const NativeUdfEntry* entry,
                          NativeUdfRegistry::Global()->Lookup(name));
  return CachedRunner{std::make_unique<IntegratedNativeRunner>(entry),
                      entry->return_type, entry->arg_types};
}

Result<UdfRunner*> UdfManager::Resolve(const std::string& name,
                                       TypeId* return_type,
                                       std::vector<TypeId>* arg_types) {
  static obs::Counter* cache_hits =
      obs::MetricsRegistry::Global()->GetCounter("udf.runner_cache_hits");
  static obs::Counter* cache_misses =
      obs::MetricsRegistry::Global()->GetCounter("udf.runner_cache_misses");
  const std::string key = ToLower(name);
  if (quarantine_ != nullptr) {
    JAGUAR_RETURN_IF_ERROR(quarantine_->CheckAllowed(key));
  }
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    cache_misses->Add();
    JAGUAR_ASSIGN_OR_RETURN(CachedRunner built, Build(name));
    if (memo_capacity_ > 0) {
      built.memo = std::make_unique<UdfMemoCache>(memo_capacity_);
      built.runner->set_memo_cache(built.memo.get());
    }
    if (quarantine_ != nullptr) {
      QuarantineTracker* tracker = quarantine_;
      built.runner->set_outcome_listener([tracker, key](const Status& s) {
        tracker->RecordOutcome(key, s);
      });
    }
    it = cache_.emplace(key, std::move(built)).first;
  } else {
    cache_hits->Add();
  }
  if (return_type != nullptr) *return_type = it->second.return_type;
  if (arg_types != nullptr) *arg_types = it->second.arg_types;
  return it->second.runner.get();
}

}  // namespace jaguar
