#ifndef JAGUAR_UDF_BUILTINS_H_
#define JAGUAR_UDF_BUILTINS_H_

/// \file builtins.h
/// Built-in scalar functions, registered as ordinary native UDFs so that the
/// whole function machinery has a single code path:
///
///   * `length(BYTEARRAY) -> INT`        — byte-array length
///   * `strlen(STRING) -> INT`           — string length
///   * `byte_at(BYTEARRAY, INT) -> INT`  — one (bounds-checked) byte
///   * `randbytes(INT, INT) -> BYTEARRAY`— n deterministic pseudo-random
///     bytes from a seed; this is how SQL INSERT statements materialize the
///     paper's ByteArray attributes, which have no literal syntax
///   * `zerobytes(INT) -> BYTEARRAY`     — n zero bytes
///   * `abs_int(INT) -> INT`

namespace jaguar {

/// Registers all builtins in the global native registry. Idempotent.
void RegisterBuiltinUdfs();

}  // namespace jaguar

#endif  // JAGUAR_UDF_BUILTINS_H_
