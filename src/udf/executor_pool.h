#ifndef JAGUAR_UDF_EXECUTOR_POOL_H_
#define JAGUAR_UDF_EXECUTOR_POOL_H_

/// \file executor_pool.h
/// A pool of remote executor processes backing one isolated UDF runner.
///
/// The paper assigns "one remote executor process per UDF in the query";
/// morsel-driven parallel scans put N worker threads behind the same UDF, so
/// the isolated designs scale the paper's policy to one executor process per
/// *worker*: the pool pre-spawns up to `max_size` children (one shm channel
/// each) and worker threads lease them for the duration of a batch crossing.
/// A leased executor serves exactly one thread, so the SPSC channel protocol
/// needs no cross-process locking.
///
/// Death handling: when a crossing fails with IoError the worker discards its
/// lease — the child is killed and reaped, only that worker's in-flight batch
/// fails, and the next Acquire() respawns a replacement lazily.
///
/// Teardown: the destructor shuts down every idle executor, and any executor
/// still leased at that point (a worker leaked its lease or the Database is
/// being torn down mid-failure) is SIGKILLed and reaped through the pool's
/// registry pointer — no zombie children survive pool shutdown. Such
/// orphan reaps are counted (`udf.pool.orphans` and `orphans_reaped()`), and
/// a Lease outliving its pool degrades to a safe no-op via a liveness token
/// instead of dereferencing a dead pool.
///
/// Metrics:
///   udf.pool.spawns     executor children forked
///   udf.pool.acquires   leases handed out
///   udf.pool.waits      acquires that had to block on a busy pool
///   udf.pool.discards   executors discarded after a transport failure
///   udf.pool.orphans    leased executors SIGKILLed+reaped at pool teardown

#include <sys/types.h>

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "ipc/remote_executor.h"

namespace jaguar {

class ExecutorPool {
 public:
  /// Forks one executor child (the pool respawns with this after a death).
  using SpawnFn =
      std::function<Result<std::unique_ptr<ipc::RemoteExecutor>>()>;

  /// Exclusive use of one executor. Returns it to the pool on destruction
  /// unless Discard() was called. If the pool died first, return/discard
  /// degrade to shutting the executor down locally (the pool already reaped
  /// the child as an orphan).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    ipc::RemoteExecutor* get() const { return executor_.get(); }
    ipc::RemoteExecutor* operator->() const { return executor_.get(); }

    /// Kills + reaps the leased executor and drops it from the pool (after a
    /// transport failure the child is dead or wedged). The pool slot frees
    /// up; the next Acquire() forks a replacement.
    void Discard();

   private:
    friend class ExecutorPool;
    Lease(ExecutorPool* pool, std::unique_ptr<ipc::RemoteExecutor> executor,
          std::weak_ptr<ExecutorPool*> alive)
        : pool_(pool), alive_(std::move(alive)),
          executor_(std::move(executor)) {}

    void Settle();

    ExecutorPool* pool_ = nullptr;
    std::weak_ptr<ExecutorPool*> alive_;
    std::unique_ptr<ipc::RemoteExecutor> executor_;
  };

  /// \param max_size concurrent-executor cap (>= 1); Acquire() blocks once
  /// `max_size` leases are outstanding.
  ExecutorPool(SpawnFn spawn, size_t max_size);

  /// Shuts down every idle executor and SIGKILLs + reaps any still-leased
  /// one (see file comment).
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Leases an idle executor, forking one if the pool is below its cap, or
  /// blocking until a lease is returned (or discarded) otherwise.
  Result<Lease> Acquire();

  /// Ensures at least `min(n, max_size)` executors are alive, forking the
  /// shortfall. Called before a parallel section so no worker forks
  /// mid-query.
  Status Prewarm(size_t n);

  /// Receive timeout applied to every live and future executor channel.
  void set_timeout_seconds(int seconds);

  /// Pid of one live executor child (tests assert liveness/cleanup), or -1
  /// when none is alive.
  pid_t first_child_pid() const;

  /// Pids of every live executor child, leased or idle.
  std::vector<pid_t> executor_pids() const;

  /// Executors currently alive (idle + leased).
  size_t live_count() const;

  /// Leased-but-never-returned executors the destructor had to SIGKILL and
  /// reap (the assertion counter for teardown tests; 0 in a clean run).
  size_t orphans_reaped() const { return orphans_reaped_; }

  size_t max_size() const { return max_size_; }

 private:
  /// Forks + registers one executor. Requires mutex_ held.
  Result<std::unique_ptr<ipc::RemoteExecutor>> SpawnLocked();
  /// Lease hand-back path.
  void Return(std::unique_ptr<ipc::RemoteExecutor> executor);
  /// Lease discard bookkeeping (the lease already killed + reaped the child).
  void OnDiscard(ipc::RemoteExecutor* executor);

  SpawnFn spawn_;
  size_t max_size_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int timeout_seconds_ = 0;
  size_t live_ = 0;  ///< Spawned and not discarded (idle + leased).
  size_t orphans_reaped_ = 0;
  std::vector<std::unique_ptr<ipc::RemoteExecutor>> idle_;
  /// Every live executor, leased or idle — for pid queries and orphan
  /// reaping at teardown.
  std::vector<ipc::RemoteExecutor*> registry_;
  /// Liveness token observed by leases; reset first thing in the destructor
  /// so a lease that outlives the pool never touches it.
  std::shared_ptr<ExecutorPool*> alive_ =
      std::make_shared<ExecutorPool*>(this);
};

}  // namespace jaguar

#endif  // JAGUAR_UDF_EXECUTOR_POOL_H_
