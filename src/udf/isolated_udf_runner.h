#ifndef JAGUAR_UDF_ISOLATED_UDF_RUNNER_H_
#define JAGUAR_UDF_ISOLATED_UDF_RUNNER_H_

/// \file isolated_udf_runner.h
/// Design 2 ("IC++"): native UDFs running in a separate executor process,
/// talking to the server over a shared-memory channel (src/ipc).
///
/// Per invocation, the argument values are serialized into the shared-memory
/// segment, the request is posted, and the parent then services callback
/// requests until the result (or an error) comes back — the exact hand-off
/// protocol of Section 4.1. The process-switch cost this design pays per
/// crossing is what Figures 5 and 8 measure.
///
/// Request/response payloads are uniformly count-prefixed (`BatchCodec`): a
/// scalar invocation is a batch of one, and `InvokeBatch` ships a whole
/// argument batch in **one** boundary crossing (chunked only when the
/// serialized batch would overflow the shared-memory segment) — the Section
/// 2.5 batching amortization. When a batch spans multiple chunks the
/// crossing is *pipelined*: the parent serializes chunk k+1 while the child
/// executes chunk k (double buffering across the boundary). On the default
/// ring transport the pipeline goes further: chunk k+1 is serialized
/// *directly into the shared-memory ring* and committed while chunk k is
/// still executing, and results are decoded in place from the ring — no
/// intermediate request/reply buffers at all (`ipc.ring.zero_copy_batches`).
///
/// The runner is backed by an `ExecutorPool` of up to `pool_size` executor
/// processes, so the N worker threads of a morsel-driven parallel scan can
/// cross the boundary concurrently, each through its own leased child. If an
/// executor child dies mid-request (detected as an IoError on the channel),
/// only the leasing worker's batch fails; the dead child is discarded and
/// the pool forks a replacement on the next acquire.

#include <memory>

#include "catalog/catalog.h"
#include "ipc/remote_executor.h"
#include "jvm/security.h"
#include "udf/executor_pool.h"
#include "udf/udf.h"
#include "udf/udf_manager.h"

namespace jaguar {

class IsolatedNativeRunner : public UdfRunner {
 public:
  /// Forks an executor pool for the native function `impl_name` (resolved in
  /// each child from the inherited native registry). All `pool_size`
  /// executors are pre-spawned so no worker thread forks mid-query.
  /// \param shm_capacity per-direction shared-memory data size; must hold
  /// the largest serialized argument list (default fits Rel10000 rows).
  /// \param pool_size executor processes (one per parallel scan worker).
  /// \param transport IPC transport for every executor channel (the zero-copy
  /// ring by default; "message" keeps the copying semaphore channel).
  static Result<std::unique_ptr<IsolatedNativeRunner>> Spawn(
      const std::string& impl_name, TypeId return_type,
      std::vector<TypeId> arg_types, size_t shm_capacity = 1 << 20,
      size_t pool_size = 1,
      ipc::Transport transport = ipc::Transport::kRing);

  std::string design_label() const override { return "IC++"; }

  /// Pid of one live executor child (tests assert liveness/cleanup), or -1
  /// when every executor died and none has been respawned yet.
  pid_t child_pid() const { return pool_->first_child_pid(); }

  /// Pids of all live executor children (fault-injection tests pick one to
  /// kill).
  std::vector<pid_t> executor_pids() const { return pool_->executor_pids(); }

  /// Ensures at least n executors are alive (capped at the pool size).
  Status Prewarm(size_t n) { return pool_->Prewarm(n); }

  /// Receive timeout for the shared-memory channels, forwarded to
  /// `Channel::set_timeout_seconds` (and re-applied after a respawn).
  /// Fault-injection tests shorten it so a killed child fails the
  /// invocation quickly.
  void set_ipc_timeout_seconds(unsigned seconds);

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;
  Result<std::vector<Value>> DoInvokeBatch(
      const std::vector<std::vector<Value>>& args_batch,
      UdfContext* ctx) override;

 private:
  IsolatedNativeRunner() = default;

  std::string impl_name_;
  TypeId return_type_ = TypeId::kInt;
  std::vector<TypeId> arg_types_;
  size_t shm_capacity_ = 1 << 20;
  std::unique_ptr<ExecutorPool> pool_;
};

/// UdfManager factory for `UdfLanguage::kNativeIsolated`.
UdfManager::RunnerFactory MakeIsolatedRunnerFactory(
    size_t shm_capacity = 1 << 20, size_t pool_size = 1,
    ipc::Transport transport = ipc::Transport::kRing);

/// Design 4 ("IJNI"): a JJava UDF inside a JagVM hosted by a separate
/// executor process — Table 1's fourth cell, which the paper only
/// extrapolates ("a combination of Design 2 and Design 3") and jaguar
/// implements. The UDF gets both OS-level isolation and the VM's
/// verification/security/quotas; every invocation pays the process crossing,
/// and callbacks pay it twice (IPC) plus the VM boundary.
class IsolatedJvmRunner : public UdfRunner {
 public:
  static Result<std::unique_ptr<IsolatedJvmRunner>> Spawn(
      const UdfInfo& info, jvm::ResourceLimits limits,
      size_t shm_capacity = 1 << 20, size_t pool_size = 1,
      ipc::Transport transport = ipc::Transport::kRing);

  std::string design_label() const override { return "IJNI"; }

  /// See IsolatedNativeRunner::child_pid.
  pid_t child_pid() const { return pool_->first_child_pid(); }

  std::vector<pid_t> executor_pids() const { return pool_->executor_pids(); }

  Status Prewarm(size_t n) { return pool_->Prewarm(n); }

  /// See IsolatedNativeRunner::set_ipc_timeout_seconds.
  void set_ipc_timeout_seconds(unsigned seconds);

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;
  Result<std::vector<Value>> DoInvokeBatch(
      const std::vector<std::vector<Value>>& args_batch,
      UdfContext* ctx) override;

 private:
  IsolatedJvmRunner() = default;

  TypeId return_type_ = TypeId::kInt;
  std::vector<TypeId> arg_types_;
  size_t shm_capacity_ = 1 << 20;
  /// Captured by the pool's spawn function: every executor child inherits
  /// the same pre-loaded VM state at fork.
  ipc::RemoteExecutor::RequestHandler handler_;
  std::unique_ptr<ExecutorPool> pool_;
};

/// UdfManager factory for `UdfLanguage::kJJavaIsolated`.
UdfManager::RunnerFactory MakeIsolatedJvmRunnerFactory(
    jvm::ResourceLimits limits, size_t shm_capacity = 1 << 20,
    size_t pool_size = 1, ipc::Transport transport = ipc::Transport::kRing);

}  // namespace jaguar

#endif  // JAGUAR_UDF_ISOLATED_UDF_RUNNER_H_
