#ifndef JAGUAR_UDF_ISOLATED_UDF_RUNNER_H_
#define JAGUAR_UDF_ISOLATED_UDF_RUNNER_H_

/// \file isolated_udf_runner.h
/// Design 2 ("IC++"): native UDFs running in a separate executor process,
/// talking to the server over shared memory + semaphores (src/ipc).
///
/// Per invocation, the argument values are serialized into the shared-memory
/// segment, the request semaphore is posted, and the parent then services
/// callback requests until the result (or an error) comes back — the exact
/// hand-off protocol of Section 4.1. The process-switch cost this design
/// pays per crossing is what Figures 5 and 8 measure.
///
/// Request/response payloads are uniformly count-prefixed (`BatchCodec`): a
/// scalar invocation is a batch of one, and `InvokeBatch` ships a whole
/// argument batch in **one** semaphore round trip (chunked only when the
/// serialized batch would overflow the shared-memory segment) — the Section
/// 2.5 batching amortization. If the executor child dies mid-request
/// (detected as an IoError on the channel), the whole batch fails cleanly
/// and the runner forks a fresh executor on the next invocation.

#include <memory>

#include "catalog/catalog.h"
#include "ipc/remote_executor.h"
#include "jvm/security.h"
#include "udf/udf.h"
#include "udf/udf_manager.h"

namespace jaguar {

class IsolatedNativeRunner : public UdfRunner {
 public:
  /// Forks an executor for the native function `impl_name` (resolved in the
  /// child from the inherited native registry).
  /// \param shm_capacity per-direction shared-memory data size; must hold
  /// the largest serialized argument list (default fits Rel10000 rows).
  static Result<std::unique_ptr<IsolatedNativeRunner>> Spawn(
      const std::string& impl_name, TypeId return_type,
      std::vector<TypeId> arg_types, size_t shm_capacity = 1 << 20);

  std::string design_label() const override { return "IC++"; }

  /// The executor child's pid (tests assert liveness/cleanup), or -1 when
  /// the executor died and has not been respawned yet.
  pid_t child_pid() const {
    return executor_ != nullptr ? executor_->child_pid() : -1;
  }

  /// Receive timeout for the shared-memory channel, forwarded to
  /// `ShmChannel::set_timeout_seconds` (and re-applied after a respawn).
  /// Fault-injection tests shorten it so a killed child fails the
  /// invocation quickly.
  void set_ipc_timeout_seconds(unsigned seconds);

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;
  Result<std::vector<Value>> DoInvokeBatch(
      const std::vector<std::vector<Value>>& args_batch,
      UdfContext* ctx) override;

 private:
  IsolatedNativeRunner() = default;

  /// Respawns the executor if the previous one was declared dead.
  Status EnsureExecutor();
  /// Kills + reaps the executor after a transport failure; the next
  /// invocation respawns it.
  void MarkExecutorDead();

  std::string impl_name_;
  TypeId return_type_ = TypeId::kInt;
  std::vector<TypeId> arg_types_;
  size_t shm_capacity_ = 1 << 20;
  int timeout_seconds_ = 0;
  std::unique_ptr<ipc::RemoteExecutor> executor_;
};

/// UdfManager factory for `UdfLanguage::kNativeIsolated`.
UdfManager::RunnerFactory MakeIsolatedRunnerFactory(
    size_t shm_capacity = 1 << 20);

/// Design 4 ("IJNI"): a JJava UDF inside a JagVM hosted by a separate
/// executor process — Table 1's fourth cell, which the paper only
/// extrapolates ("a combination of Design 2 and Design 3") and jaguar
/// implements. The UDF gets both OS-level isolation and the VM's
/// verification/security/quotas; every invocation pays the process crossing,
/// and callbacks pay it twice (IPC) plus the VM boundary.
class IsolatedJvmRunner : public UdfRunner {
 public:
  static Result<std::unique_ptr<IsolatedJvmRunner>> Spawn(
      const UdfInfo& info, jvm::ResourceLimits limits,
      size_t shm_capacity = 1 << 20);

  std::string design_label() const override { return "IJNI"; }

  pid_t child_pid() const {
    return executor_ != nullptr ? executor_->child_pid() : -1;
  }

  /// See IsolatedNativeRunner::set_ipc_timeout_seconds.
  void set_ipc_timeout_seconds(unsigned seconds);

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;
  Result<std::vector<Value>> DoInvokeBatch(
      const std::vector<std::vector<Value>>& args_batch,
      UdfContext* ctx) override;

 private:
  IsolatedJvmRunner() = default;

  Status EnsureExecutor();
  void MarkExecutorDead();

  TypeId return_type_ = TypeId::kInt;
  std::vector<TypeId> arg_types_;
  size_t shm_capacity_ = 1 << 20;
  int timeout_seconds_ = 0;
  /// Kept so a dead executor can be respawned with the same child state.
  ipc::RemoteExecutor::RequestHandler handler_;
  std::unique_ptr<ipc::RemoteExecutor> executor_;
};

/// UdfManager factory for `UdfLanguage::kJJavaIsolated`.
UdfManager::RunnerFactory MakeIsolatedJvmRunnerFactory(
    jvm::ResourceLimits limits, size_t shm_capacity = 1 << 20);

}  // namespace jaguar

#endif  // JAGUAR_UDF_ISOLATED_UDF_RUNNER_H_
