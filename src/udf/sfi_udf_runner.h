#ifndef JAGUAR_UDF_SFI_UDF_RUNNER_H_
#define JAGUAR_UDF_SFI_UDF_RUNNER_H_

/// \file sfi_udf_runner.h
/// Software-fault-isolated native UDF execution (Section 2.3 / the paper's
/// "from published research we expect such a mechanism to add ~25%").
///
/// True SFI rewrites untrusted machine code; jaguar demonstrates the
/// mechanism at the source level: the UDF's data lives inside an `SfiRegion`
/// and every access goes through the region's address-masking accessors, so
/// even a wild index cannot touch server memory. The runner copies arguments
/// into the sandbox, executes, and copies the result out.
///
/// Because source-level SFI requires the UDF to be written against the
/// accessor API, this runner supports the SFI builds of the UDFs jaguar
/// ships (the paper's generic benchmark UDF and a checksum example) rather
/// than arbitrary native functions; `bench_ablation_sfi` uses it to measure
/// the masking overhead.

#include <memory>
#include <mutex>

#include "catalog/catalog.h"
#include "sfi/sfi.h"
#include "udf/udf.h"
#include "udf/udf_manager.h"

namespace jaguar {

/// An SFI-instrumented UDF body: all data accesses must go through `region`.
/// `data_len` bytes of the ByteArray argument were copied to sandbox
/// address 0.
using SfiUdfFn = Status (*)(sfi::SfiRegion* region, uint64_t data_len,
                            const std::vector<Value>& args, UdfContext* ctx,
                            Value* out);

class SfiNativeRunner : public UdfRunner {
 public:
  /// \param region_log2 sandbox size (2^n bytes); the ByteArray argument
  /// must fit.
  static Result<std::unique_ptr<SfiNativeRunner>> Create(
      const std::string& impl_name, TypeId return_type,
      std::vector<TypeId> arg_types, unsigned region_log2 = 24);

  std::string design_label() const override { return "SFI-C++"; }

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;

 private:
  SfiNativeRunner() = default;

  SfiUdfFn fn_ = nullptr;
  TypeId return_type_ = TypeId::kInt;
  std::vector<TypeId> arg_types_;
  /// Serializes invocations: the runner owns a single sandbox region.
  std::mutex region_mutex_;
  sfi::SfiRegion region_;
};

/// Looks up an SFI UDF implementation by name ("generic_udf" is built in).
Result<SfiUdfFn> FindSfiUdf(const std::string& impl_name);

/// UdfManager factory for `UdfLanguage::kNativeSfi`.
UdfManager::RunnerFactory MakeSfiRunnerFactory(unsigned region_log2 = 24);

}  // namespace jaguar

#endif  // JAGUAR_UDF_SFI_UDF_RUNNER_H_
