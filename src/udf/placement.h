#ifndef JAGUAR_UDF_PLACEMENT_H_
#define JAGUAR_UDF_PLACEMENT_H_

/// \file placement.h
/// Cost-based UDF placement — the paper's stated future work ("In future
/// work, we intend to explore client-side UDFs and find query optimization
/// techniques to choose between server-side and client-side execution",
/// Section 3.1; "optimization mechanisms to choose between the various
/// execution options", Section 7).
///
/// The model captures the paper's own framing of the tradeoff:
///
/// * **Server-side** (function shipping): every tuple pays the UDF cost at
///   the server (including the design's boundary cost) plus its callbacks;
///   only the *selected* tuples cross the network.
/// * **Client-side** (data shipping, §3.1's REDNESS discussion): every
///   candidate tuple's ByteArray crosses the network, then the client pays
///   the (cheap, trusted) local UDF cost; server-side callbacks become
///   network round trips.
///
/// Cost parameters can be filled from the calibration experiments (Figures
/// 4/5 measure the per-design invocation costs; Figure 8 the callback
/// costs).

#include <cstdint>
#include <string>

namespace jaguar {

/// Inputs to the placement decision. Times in seconds, sizes in bytes.
struct PlacementCosts {
  double tuples = 0;              ///< Candidate tuples reaching the UDF.
  double selectivity = 1.0;       ///< Fraction the UDF predicate keeps.
  double bytes_per_tuple = 0;     ///< UDF argument size (the ByteArray).
  double result_bytes_per_tuple = 64;  ///< Non-argument row bytes shipped.

  double network_bytes_per_second = 10e6;  ///< Client↔server bandwidth.
  double network_round_trip_seconds = 1e-3;

  /// Per-invocation UDF cost at the server, including the design's boundary
  /// (e.g. Figure 5's IC++ ≈ 3-5 us, JNI ≈ 0.1-0.2 us on our hardware).
  double server_seconds_per_invocation = 0;
  /// Per-invocation UDF cost at the client (no sandboxing needed: the
  /// client only endangers itself — the paper's "obviously secure" case).
  double client_seconds_per_invocation = 0;

  /// Server interactions per invocation and their one-way cost at each site.
  double callbacks_per_invocation = 0;
  double server_callback_seconds = 1e-7;  ///< In-process / VM boundary.
};

enum class Placement { kServer, kClient };

struct PlacementDecision {
  Placement placement;
  double server_seconds;  ///< Modeled cost of server-side execution.
  double client_seconds;  ///< Modeled cost of client-side execution.

  /// Human-readable explanation for EXPLAIN-style output.
  std::string ToString() const;
};

/// Evaluates both strategies under the model and picks the cheaper.
PlacementDecision ChoosePlacement(const PlacementCosts& costs);

}  // namespace jaguar

#endif  // JAGUAR_UDF_PLACEMENT_H_
