#include "udf/generic_udf.h"

#include "common/logging.h"

namespace jaguar {

namespace {

/// Opaque barrier: the compiler must assume `v` changed. This levels the
/// playing field between optimized C++ and the JagVM JIT (which performs
/// every iteration for real), exactly as the paper's measured loops did.
inline void Opaque(int64_t& v) { asm volatile("" : "+r"(v)); }
inline void Opaque(uint64_t& v) { asm volatile("" : "+r"(v)); }

/// The measured loops live in separate noinline functions with aligned loop
/// heads so that unrelated edits elsewhere in this file cannot shift their
/// code layout and perturb the benchmark baselines.
__attribute__((noinline, optimize("align-loops=32"))) int64_t
UncheckedDataPass(const uint8_t* p, uint64_t n, int64_t acc) {
  for (uint64_t j = 0; j < n; ++j) {
    acc += p[j];
    Opaque(acc);
  }
  return acc;
}

/// One pass with a per-access bounds check doing the *same work* a JVM does:
/// the check compares an opaque index against the array length **reloaded
/// from memory** each time — in Java the length is an object field, and the
/// JITs of the paper's era did not hoist it out of loops.
__attribute__((noinline, optimize("align-loops=32"))) bool
CheckedDataPass(const uint8_t* p, uint64_t n, int64_t* acc_io) {
  volatile uint64_t length_field = n;
  int64_t acc = *acc_io;
  for (uint64_t j = 0; j < n; ++j) {
    uint64_t jj = j;
    Opaque(jj);
    if (jj >= length_field) return false;
    acc += p[jj];
    Opaque(acc);
  }
  *acc_io = acc;
  return true;
}

__attribute__((noinline, optimize("align-loops=32"))) int64_t
IndepComputePass(int64_t count, int64_t acc) {
  for (int64_t i = 0; i < count; ++i) {
    acc += i;
    Opaque(acc);
  }
  return acc;
}

}  // namespace

Result<int64_t> GenericUdfCompute(const std::vector<uint8_t>& data,
                                  int64_t indep_comps, int64_t dep_comps,
                                  int64_t callbacks, UdfContext* ctx,
                                  bool bounds_checked) {
  int64_t acc = 0;

  // Data-independent computation: NumDataIndepComps integer additions.
  acc = IndepComputePass(indep_comps, acc);

  // Data-dependent computation: NumDataDepComps full passes over the array
  // ("C++" plain, or the explicitly bounds-checked "BC++" of Section 5.4).
  const uint8_t* p = data.data();
  const uint64_t n = data.size();
  for (int64_t pass = 0; pass < dep_comps; ++pass) {
    if (bounds_checked) {
      if (!CheckedDataPass(p, n, &acc)) {
        return RuntimeError("array index out of bounds in generic UDF");
      }
    } else {
      acc = UncheckedDataPass(p, n, acc);
    }
  }

  // Callbacks to the server; the standard handler echoes its argument.
  for (int64_t c = 0; c < callbacks; ++c) {
    JAGUAR_ASSIGN_OR_RETURN(int64_t r, ctx->Callback(0, c));
    acc += r;
  }
  return acc;
}

int64_t GenericUdfExpected(const std::vector<uint8_t>& data,
                           int64_t indep_comps, int64_t dep_comps,
                           int64_t callbacks) {
  auto sum_0_to = [](int64_t k) { return k > 0 ? k * (k - 1) / 2 : 0; };
  int64_t data_sum = 0;
  for (uint8_t b : data) data_sum += b;
  return sum_0_to(indep_comps) + dep_comps * data_sum + sum_0_to(callbacks);
}

namespace {

Status ExtractGenericArgs(const std::vector<Value>& args,
                          const std::vector<uint8_t>** data, int64_t* indep,
                          int64_t* dep, int64_t* callbacks) {
  if (args.size() != 4) {
    return InvalidArgument("generic_udf expects 4 arguments");
  }
  if (args[0].type() != TypeId::kBytes) {
    return InvalidArgument("generic_udf argument 1 must be BYTEARRAY");
  }
  *data = &args[0].AsBytes();
  JAGUAR_ASSIGN_OR_RETURN(*indep, args[1].CoerceInt());
  JAGUAR_ASSIGN_OR_RETURN(*dep, args[2].CoerceInt());
  JAGUAR_ASSIGN_OR_RETURN(*callbacks, args[3].CoerceInt());
  return Status::OK();
}

Status GenericUdfNative(const std::vector<Value>& args, UdfContext* ctx,
                        Value* out) {
  const std::vector<uint8_t>* data;
  int64_t indep, dep, callbacks;
  JAGUAR_RETURN_IF_ERROR(
      ExtractGenericArgs(args, &data, &indep, &dep, &callbacks));
  JAGUAR_ASSIGN_OR_RETURN(
      int64_t acc, GenericUdfCompute(*data, indep, dep, callbacks, ctx,
                                     /*bounds_checked=*/false));
  *out = Value::Int(acc);
  return Status::OK();
}

Status GenericUdfChecked(const std::vector<Value>& args, UdfContext* ctx,
                         Value* out) {
  const std::vector<uint8_t>* data;
  int64_t indep, dep, callbacks;
  JAGUAR_RETURN_IF_ERROR(
      ExtractGenericArgs(args, &data, &indep, &dep, &callbacks));
  JAGUAR_ASSIGN_OR_RETURN(
      int64_t acc, GenericUdfCompute(*data, indep, dep, callbacks, ctx,
                                     /*bounds_checked=*/true));
  *out = Value::Int(acc);
  return Status::OK();
}

Status NoopUdf(const std::vector<Value>& args, UdfContext* ctx, Value* out) {
  *out = Value::Int(0);
  return Status::OK();
}

}  // namespace

void RegisterGenericUdfs() {
  static const bool registered = [] {
    NativeUdfRegistry* reg = NativeUdfRegistry::Global();
    const std::vector<TypeId> sig = {TypeId::kBytes, TypeId::kInt, TypeId::kInt,
                                     TypeId::kInt};
    reg->Register({"generic_udf", TypeId::kInt, sig, &GenericUdfNative}).ok();
    reg->Register({"generic_udf_checked", TypeId::kInt, sig,
                   &GenericUdfChecked})
        .ok();
    reg->Register({"noop_udf", TypeId::kInt, sig, &NoopUdf}).ok();
    return true;
  }();
  (void)registered;
}

const char* GenericUdfJJavaSource() {
  return R"jj(
class GenericUdf {
  static int run(byte[] data, int indep, int dep, int callbacks) {
    int acc = 0;
    int i = 0;
    while (i < indep) {
      acc = acc + i;
      i = i + 1;
    }
    int p = 0;
    while (p < dep) {
      int j = 0;
      while (j < data.length) {
        acc = acc + data[j];
        j = j + 1;
      }
      p = p + 1;
    }
    int c = 0;
    while (c < callbacks) {
      acc = acc + Jaguar.callback(0, c);
      c = c + 1;
    }
    return acc;
  }
}
)jj";
}

}  // namespace jaguar
